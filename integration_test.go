package repro

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/prank"
	"repro/internal/rwr"
	"repro/internal/simrank"
)

// Integration tests assert the paper's claims end to end, across packages —
// the table of Figure 1, the Theorem-1 ⟺ path-analysis equivalence on real
// workloads, and the structural identities behind the Fig. 6(a) undirected
// observations.

// The full Figure-1 table: sign pattern of all four measures on all seven
// pairs, plus three-decimal value checks for the columns our edge
// reconstruction reproduces exactly.
func TestFigure1TableEndToEnd(t *testing.T) {
	g := dataset.Figure1()
	const c, k = 0.8, 25
	sr := simrank.MatrixForm(g, simrank.Options{C: c, K: k})
	pr := prank.MatrixForm(g, prank.Options{C: c, K: k, Lambda: 0.5})
	star := core.Geometric(g, core.Options{C: c, K: k})
	rw := rwr.AllPairs(g, rwr.Options{C: c, K: k})

	id := func(l string) int {
		i, ok := g.NodeByLabel(l)
		if !ok {
			t.Fatalf("missing node %q", l)
		}
		return i
	}
	type rowCheck struct {
		a, b                string
		srPos, prPos, rwPos bool
		starWant            float64 // paper's SR* column (3 decimals)
	}
	rows := []rowCheck{
		{"h", "d", false, true, false, 0.010},
		{"a", "f", false, true, true, 0.032},
		{"a", "c", false, false, true, 0.025},
		{"g", "a", false, false, false, 0.025},
		{"g", "b", false, false, false, 0.075},
		{"i", "a", false, false, false, 0.015},
		{"i", "h", true, true, false, 0.031},
	}
	for _, r := range rows {
		i, j := id(r.a), id(r.b)
		if got := sr.At(i, j) > 1e-9; got != r.srPos {
			t.Errorf("SR(%s,%s) positivity = %v, want %v", r.a, r.b, got, r.srPos)
		}
		// PR's "zero" cells can carry sub-millesimal residue in our edge
		// reconstruction; test at the paper's display precision.
		if got := pr.At(i, j) > 5e-3; got != r.prPos {
			t.Errorf("PR(%s,%s) = %.4f, positivity want %v", r.a, r.b, pr.At(i, j), r.prPos)
		}
		if got := rw.At(i, j) > 1e-9; got != r.rwPos {
			t.Errorf("RWR(%s,%s) positivity = %v, want %v", r.a, r.b, got, r.rwPos)
		}
		if v := star.At(i, j); math.Abs(v-r.starWant) > 0.0016 {
			t.Errorf("SR*(%s,%s) = %.4f, want %.3f (paper)", r.a, r.b, v, r.starWant)
		}
		if star.At(i, j) <= 0 {
			t.Errorf("SR*(%s,%s) must be positive", r.a, r.b)
		}
	}
	// Value checks for the matrix-form SR/PR columns.
	if v := sr.At(id("i"), id("h")); math.Abs(v-0.044) > 0.002 {
		t.Errorf("SR(i,h) = %.4f, want .044", v)
	}
	if v := pr.At(id("h"), id("d")); math.Abs(v-0.049) > 0.002 {
		t.Errorf("PR(h,d) = %.4f, want .049", v)
	}
}

// Theorem 1 at workload scale: on a scaled preset, the set of pairs the
// path analyser marks "completely dissimilar" is exactly the set of
// path-connected pairs with zero SimRank.
func TestTheorem1OnPreset(t *testing.T) {
	p, err := dataset.ByName("D05-s")
	if err != nil {
		t.Fatal(err)
	}
	g := p.Build()
	const k = 4
	s := simrank.PSum(g, simrank.Options{C: 0.9, K: k})
	a := paths.Analyze(g, k)
	n := g.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !a.HasAnyPath(i, j) {
				continue
			}
			zero := s.At(i, j) == 0
			if zero != !a.Sym.Get(i, j) {
				t.Fatalf("pair (%d,%d): SimRank zero=%v but symmetric-path=%v",
					i, j, zero, a.Sym.Get(i, j))
			}
		}
	}
}

// The Fig. 6(a) undirected identity: on a symmetric graph I(x) = O(x), so
// P-Rank's in- and out-terms coincide and P-Rank equals SimRank exactly for
// any λ.
func TestUndirectedPRankEqualsSimRank(t *testing.T) {
	net := dataset.Coauthor(dataset.CoauthorOptions{Authors: 150, Seed: 77})
	g := net.G
	if !g.IsSymmetric() {
		t.Fatal("coauthor graph must be symmetric")
	}
	for _, lambda := range []float64{0.3, 0.5, 0.9} {
		pr := prank.AllPairs(g, prank.Options{C: 0.6, K: 5, Lambda: lambda})
		sr := simrank.PSum(g, simrank.Options{C: 0.6, K: 5})
		if d := pr.MaxAbsDiff(sr); d > 1e-10 {
			t.Fatalf("λ=%.1f: undirected P-Rank differs from SimRank by %g", lambda, d)
		}
	}
}

// On an undirected graph RWR obeys detailed balance, d_i·s(i,j) =
// d_j·s(j,i): the "Me vs Father" one-way-zero pathology disappears (either
// both directions are positive or both are zero) — the reason RWR catches
// up with SimRank* in the paper's DBLP panel.
func TestUndirectedRWRDetailedBalance(t *testing.T) {
	net := dataset.Coauthor(dataset.CoauthorOptions{Authors: 120, Seed: 78})
	g := net.G
	rw := rwr.AllPairs(g, rwr.Options{C: 0.6, K: 5})
	n := g.N()
	for i := 0; i < n; i++ {
		di := float64(g.OutDeg(i))
		for j := i + 1; j < n; j++ {
			dj := float64(g.OutDeg(j))
			lhs := di * rw.At(i, j)
			rhs := dj * rw.At(j, i)
			if math.Abs(lhs-rhs) > 1e-10 {
				t.Fatalf("detailed balance violated at (%d,%d): %g vs %g", i, j, lhs, rhs)
			}
			if (rw.At(i, j) > 0) != (rw.At(j, i) > 0) {
				t.Fatalf("one-way zero at (%d,%d) on an undirected graph", i, j)
			}
		}
	}
}

// All-pairs and single-source SimRank* must agree on a workload-scale
// preset through the full pipeline (compression included).
func TestSingleSourceAgreesOnPreset(t *testing.T) {
	p, _ := dataset.ByName("D05-s")
	g := p.Build()
	opt := core.Options{C: 0.6, K: 5}
	all := core.GeometricMemo(g, opt)
	for _, q := range []int{0, g.N() / 2, g.N() - 1} {
		row := core.SingleSourceGeometric(g, q, opt)
		for j, v := range row {
			if math.Abs(v-all.At(q, j)) > 1e-10 {
				t.Fatalf("q=%d j=%d: %g vs %g", q, j, v, all.At(q, j))
			}
		}
	}
}

// The ε-driven iteration choice must actually deliver ε accuracy against a
// deeply converged reference, for both forms.
func TestEpsDrivenAccuracy(t *testing.T) {
	g := dataset.ErdosRenyi(80, 500, 9)
	const c, eps = 0.6, 0.001
	geoRef := core.Geometric(g, core.Options{C: c, K: 80})
	geo := core.Geometric(g, core.Options{C: c, Eps: eps})
	if d := geo.MaxAbsDiff(geoRef); d > eps {
		t.Fatalf("geometric ε-run off by %g > %g", d, eps)
	}
	expRef := core.Exponential(g, core.Options{C: c, K: 40})
	exp := core.Exponential(g, core.Options{C: c, Eps: eps})
	if d := exp.MaxAbsDiff(expRef); d > eps {
		t.Fatalf("exponential ε-run off by %g > %g", d, eps)
	}
}

// Round-trip the quickstart scenario through graph I/O and both solver
// backends — the path a downstream user hits first.
func TestQuickstartScenario(t *testing.T) {
	b := graph.NewBuilder()
	for _, e := range [][2]string{
		{"survey", "classicA"}, {"survey", "classicB"},
		{"followup1", "survey"}, {"followup2", "survey"},
		{"review", "followup1"}, {"review", "followup2"},
		{"preprint", "followup1"},
	} {
		b.AddEdgeLabeled(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{C: 0.6, K: 10}
	star := core.GeometricMemo(g, opt)
	sr := simrank.MatrixForm(g, simrank.Options{C: 0.6, K: 10})

	id := func(l string) int { i, _ := g.NodeByLabel(l); return i }
	// Co-cited pairs: both positive.
	if star.At(id("classicA"), id("classicB")) <= 0 || sr.At(id("classicA"), id("classicB")) <= 0 {
		t.Fatal("co-cited classics must be similar under both measures")
	}
	// Cross-generation: SimRank blind, SimRank* not.
	if sr.At(id("survey"), id("classicA")) != 0 {
		t.Fatal("SimRank(survey, classicA) must be 0")
	}
	if star.At(id("survey"), id("classicA")) <= 0 {
		t.Fatal("SimRank*(survey, classicA) must be positive")
	}
	// No in-link path at all: both zero.
	if star.At(id("preprint"), id("followup2")) != 0 {
		t.Fatal("SimRank*(preprint, followup2) must be 0 (no in-link path)")
	}
}
