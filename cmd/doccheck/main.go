// Command doccheck fails (exit 1) when an exported identifier in the given
// package directories lacks a godoc comment. It is the CI teeth behind the
// "every exported identifier is documented" guarantee of the public API:
// gofmt keeps the code shaped, go vet keeps it sound, doccheck keeps it
// explained.
//
//	go run ./cmd/doccheck ./simstar
//
// With no arguments it checks the repository's enforced set: the public
// simstar package plus the simlint analyzer suite (internal/lint and its
// analysistest harness), whose exported API the lint tests and future
// analyzers build on.
//
// Checked: package-level funcs and methods on exported receivers, types,
// consts and vars, plus struct fields and interface methods of exported
// types. A grouped const/var spec is fine with either a group doc or a
// per-spec line comment. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// defaultDirs is the repository's enforced documentation set, checked when
// doccheck runs without arguments (the CI invocation).
var defaultDirs = []string{"./simstar", "./internal/lint", "./internal/lint/analysistest", "./internal/obs"}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir and reports exported
// identifiers without documentation as "file:line: name".
func checkDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	sawPackageDoc := false
	var firstFile string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if firstFile == "" {
			firstFile = path
		}
		if f.Doc != nil {
			sawPackageDoc = true
		}
		for _, decl := range f.Decls {
			checkDecl(decl, report)
		}
	}
	if firstFile != "" && !sawPackageDoc {
		missing = append(missing, fmt.Sprintf("%s: package %s has no package doc comment", firstFile, filepath.Base(dir)))
	}
	return missing, nil
}

func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc == nil {
			report(d.Pos(), "func "+d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				if sp.Doc == nil && d.Doc == nil {
					report(sp.Pos(), "type "+sp.Name.Name)
				}
				checkTypeMembers(sp, report)
			case *ast.ValueSpec:
				for _, n := range sp.Names {
					if !n.IsExported() {
						continue
					}
					// A spec inside a documented group may rely on the group
					// doc or a trailing line comment.
					if sp.Doc == nil && sp.Comment == nil && d.Doc == nil {
						report(n.Pos(), d.Tok.String()+" "+n.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether f is a plain function or a method on an
// exported receiver type — methods of unexported types are not API surface.
func exportedReceiver(f *ast.FuncDecl) bool {
	if f.Recv == nil || len(f.Recv.List) == 0 {
		return true
	}
	t := f.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// checkTypeMembers walks exported struct fields and interface methods.
func checkTypeMembers(sp *ast.TypeSpec, report func(token.Pos, string)) {
	switch t := sp.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			for _, n := range f.Names {
				if n.IsExported() && f.Doc == nil && f.Comment == nil {
					report(n.Pos(), "field "+sp.Name.Name+"."+n.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, n := range m.Names {
				if n.IsExported() && m.Doc == nil && m.Comment == nil {
					report(n.Pos(), "method "+sp.Name.Name+"."+n.Name)
				}
			}
		}
	}
}
