package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"
)

// benchReport is the schema-versioned output of one simbench run —
// serving-path behaviour under load, the counterpart of cmd/benchjson's
// kernel ns/op. Checked-in BENCH_<pr>.json files embed it under "serving"
// (see benchjson -serving). Schema history: 1 = latency/cache/churn rows;
// 2 adds per-scenario "server_metrics" counter deltas; 3 adds the chaos
// ledger ("chaos") on -chaos runs.
type benchReport struct {
	Schema    int            `json:"schema"`
	Tool      string         `json:"tool"`
	Go        string         `json:"go"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	CPUs      int            `json:"cpus"`
	Profile   string         `json:"profile"`
	Seed      int64          `json:"seed"`
	Mode      string         `json:"mode"`
	Nodes     int            `json:"nodes"`
	Edges     int            `json:"edges"`
	Note      string         `json:"note,omitempty"`
	Scenarios []scenarioJSON `json:"scenarios"`
}

// latencyJSON is the per-op latency distribution in microseconds. Under an
// open-loop scenario latencies are measured from each op's intended start
// time, so queueing delay is charged to the server, not hidden
// (coordinated omission).
type latencyJSON struct {
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
	MeanUs float64 `json:"mean_us"`
}

type cacheJSON struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type churnJSON struct {
	Batches      int     `json:"batches"`
	Edits        int     `json:"edits"`
	FinalEpoch   uint64  `json:"final_epoch"`
	AvgRefreshMs float64 `json:"avg_refresh_ms"`
}

type scenarioJSON struct {
	Name             string         `json:"name"`
	Ops              int            `json:"ops"`
	Errors           int            `json:"errors"`
	Workers          int            `json:"workers"`
	OpenRateOpsSec   float64        `json:"open_rate_ops_sec,omitempty"`
	DurationMs       float64        `json:"duration_ms"`
	ThroughputOpsSec float64        `json:"throughput_ops_sec"`
	Latency          latencyJSON    `json:"latency"`
	Kinds            map[string]int `json:"kinds"`
	Cache            *cacheJSON     `json:"cache,omitempty"`
	AllocsPerOp      float64        `json:"allocs_per_op,omitempty"`
	BytesPerOp       float64        `json:"bytes_per_op,omitempty"`
	Churn            *churnJSON     `json:"churn,omitempty"`
	// WorkloadChecksum fingerprints the generated op stream: same profile,
	// same seed, same checksum — byte-reproducible across runs and, being
	// an XOR of per-worker FNV streams, independent of scheduling.
	WorkloadChecksum string `json:"workload_checksum"`
	// ResultChecksum fingerprints every answer's bits. Omitted under churn,
	// where answers legitimately depend on which epoch served each op.
	ResultChecksum string `json:"result_checksum,omitempty"`
	// ServerMetrics holds the scenario's delta of the serving side's
	// cumulative counter families (keys ending _total or _count, as named
	// by obs.Registry.Snapshot) — in engine mode from the target's own
	// observer, in http mode from a /metrics scrape before and after the
	// run. Gauges and zero deltas are elided so the member stays a
	// cross-checkable statement of what the workload exercised.
	ServerMetrics map[string]float64 `json:"server_metrics,omitempty"`
	// Chaos is the -chaos mode resilience ledger: how every injected fault
	// and shed request was answered, the healthz availability record, and
	// the exact-or-certified audit results.
	Chaos *chaosJSON `json:"chaos,omitempty"`
}

func newReport(profile string, seed int64, mode string, nodes, edges int, note string) benchReport {
	return benchReport{
		Schema:  3,
		Tool:    "simbench",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Profile: profile,
		Seed:    seed,
		Mode:    mode,
		Nodes:   nodes,
		Edges:   edges,
		Note:    note,
	}
}

// percentile returns the p-th percentile (0..100) of sorted durations by
// nearest-rank, in microseconds.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank].Nanoseconds()) / 1e3
}

func summarizeLatency(durations []time.Duration) latencyJSON {
	if len(durations) == 0 {
		return latencyJSON{}
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return latencyJSON{
		P50Us:  percentile(sorted, 50),
		P95Us:  percentile(sorted, 95),
		P99Us:  percentile(sorted, 99),
		MaxUs:  float64(sorted[len(sorted)-1].Nanoseconds()) / 1e3,
		MeanUs: float64(sum.Nanoseconds()) / float64(len(sorted)) / 1e3,
	}
}

func checksumHex(sum uint64) string { return fmt.Sprintf("%016x", sum) }
