package main

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/simstar"
)

// The workload model: each worker owns ONE seeded rand.Rand (and the zipf
// sampler drawn from it) and generates its whole op stream up front, before
// any timing starts. Sampling never races execution, so
// -profile tiny -seed 1 replays the identical op sequence on every run and
// every machine — the property the workload checksum certifies.

// opKind enumerates the serving-path surfaces a workload mixes.
type opKind int

const (
	opSingle    opKind = iota // exact single-source score vector
	opTopK                    // materialised ranked top-k
	opStream                  // lazy TopKStream / NDJSON stream
	opBatch                   // multi-query BatchTopK round
	opTolerance               // certified approximate single-source
	opKindCount
)

func (k opKind) String() string {
	switch k {
	case opSingle:
		return "single"
	case opTopK:
		return "topk"
	case opStream:
		return "stream"
	case opBatch:
		return "batch"
	case opTolerance:
		return "tolerance"
	}
	return "unknown"
}

// batchItem is one query slot of a batch op.
type batchItem struct {
	measure string
	node    int
}

// op is one pre-generated unit of load.
type op struct {
	kind    opKind
	measure string
	node    int
	k       int
	batch   []batchItem // opBatch only
	// deadlineMS is the op's deadline budget, stamped on by the chaos
	// scenario (see decorateChaos). Not part of the workload checksum: the
	// sampled stream is the mixed scenario's, chaos only decorates it.
	deadlineMS int
}

// opMeasures are the measures the mix samples from — the fast-path kernels a
// serving deployment would put behind an endpoint. Batch slots alternate
// over the same set.
var opMeasures = []string{
	simstar.MeasureGeometric,
	simstar.MeasureRWR,
	simstar.MeasureExponential,
}

// tolMeasure is what opTolerance queries run — deliberately NOT a member of
// opMeasures. A tolerance query whose measure is also queried exactly can be
// answered from an exact cached vector (the engine's exact-donor probe),
// whose bits differ from the sieved approximate kernel's; which one a given
// op sees would then depend on scheduling, and the result checksum would
// stop being reproducible. A measure the exact mix never touches keeps the
// certified path deterministic.
const tolMeasure = simstar.MeasureGeometricMemo

// mixWeights is the op mix in percent, indexed by opKind. A batch op counts
// as one op for throughput purposes (it is one request).
var mixWeights = [opKindCount]int{
	opSingle:    25,
	opTopK:      25,
	opStream:    20,
	opBatch:     15,
	opTolerance: 15,
}

// profile is a named workload size. The graph itself is always built with
// the fixed benchGraph seed (shared with cmd/benchjson) — the -seed flag
// moves only the sampling, so two seeds exercise the same graph.
type profile struct {
	name       string
	nodes      int
	deg        int
	ops        int
	workers    int
	k          int
	batchSize  int
	zipfS      float64 // zipf skew (s > 1)
	zipfV      float64 // zipf value offset (v >= 1)
	tolerance  float64 // certified bound for opTolerance queries
	churnBatch int     // edits per churn round
	churnPause time.Duration
	openRate   float64 // ops/sec for the open-loop scenario; 0 = closed only
}

var profiles = map[string]profile{
	"tiny": {
		name: "tiny", nodes: 2_000, deg: 4,
		ops: 480, workers: 4, k: 10, batchSize: 8,
		zipfS: 1.2, zipfV: 1, tolerance: 1e-3,
		churnBatch: 16, churnPause: 2 * time.Millisecond,
	},
	"small": {
		name: "small", nodes: 20_000, deg: 4,
		ops: 1_600, workers: 4, k: 20, batchSize: 8,
		zipfS: 1.2, zipfV: 1, tolerance: 1e-3,
		churnBatch: 32, churnPause: 2 * time.Millisecond,
		openRate: 200,
	},
	"medium": {
		name: "medium", nodes: 100_000, deg: 3,
		ops: 2_400, workers: 8, k: 50, batchSize: 16,
		zipfS: 1.1, zipfV: 1, tolerance: 1e-3,
		churnBatch: 64, churnPause: 5 * time.Millisecond,
		openRate: 400,
	},
}

// scenario is one timed pass over the profile's op budget.
type scenario struct {
	name  string
	churn bool    // race a concurrent edit stream against the queries
	rate  float64 // > 0: open loop at this many ops/sec overall
	chaos bool    // decorate ops with deadlines and keep the chaos ledger
}

// scenariosFor lists the profile's scenarios: the closed-loop baseline, the
// same mix racing churn, and — when the profile sets a rate — an open-loop
// pass that charges queueing delay to latency.
func scenariosFor(p profile) []scenario {
	scs := []scenario{
		{name: "mixed"},
		{name: "mixed_churn", churn: true},
	}
	if p.openRate > 0 {
		scs = append(scs, scenario{name: "mixed_open", rate: p.openRate})
	}
	return scs
}

// workerSeed derives the one rng seed a worker uses, folding the scenario
// name so mixed and mixed_churn sample independent streams.
func workerSeed(seed int64, scenarioName string, worker int) int64 {
	h := fnv.New64a()
	h.Write([]byte(scenarioName))
	return seed*1_000_003 + int64(h.Sum64()%99_991) + int64(worker)
}

// opsForWorker splits the op budget across workers, front-loading the
// remainder so counts differ by at most one.
func opsForWorker(total, workers, worker int) int {
	base := total / workers
	if worker < total%workers {
		base++
	}
	return base
}

// genOps produces one worker's deterministic op stream. Every random draw —
// kind, measure, zipfian node — comes from the single rng, in a fixed
// order, so the stream is a pure function of (profile, scenario, seed,
// worker).
func genOps(p profile, scenarioName string, seed int64, worker int) []op {
	rng := rand.New(rand.NewSource(workerSeed(seed, scenarioName, worker)))
	zipf := rand.NewZipf(rng, p.zipfS, p.zipfV, uint64(p.nodes-1))
	count := opsForWorker(p.ops, p.workers, worker)
	ops := make([]op, count)
	for i := range ops {
		ops[i] = genOp(rng, zipf, p)
	}
	return ops
}

func genOp(rng *rand.Rand, zipf *rand.Zipf, p profile) op {
	kind := pickKind(rng)
	o := op{
		kind:    kind,
		measure: opMeasures[rng.Intn(len(opMeasures))],
		node:    int(zipf.Uint64()),
		k:       p.k,
	}
	if kind == opTolerance {
		o.measure = tolMeasure
	}
	if kind == opBatch {
		o.batch = make([]batchItem, p.batchSize)
		for j := range o.batch {
			o.batch[j] = batchItem{
				measure: opMeasures[j%len(opMeasures)],
				node:    int(zipf.Uint64()),
			}
		}
	}
	return o
}

func pickKind(rng *rand.Rand) opKind {
	r := rng.Intn(100)
	for k := opKind(0); k < opKindCount; k++ {
		if r < mixWeights[k] {
			return k
		}
		r -= mixWeights[k]
	}
	return opSingle
}

// hashInto folds the op into a worker's FNV stream for the workload
// checksum.
func (o *op) hashInto(h hash.Hash64) {
	var buf [8]byte
	wr := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wr(uint64(o.kind))
	h.Write([]byte(o.measure))
	wr(uint64(o.node))
	wr(uint64(o.k))
	for _, it := range o.batch {
		h.Write([]byte(it.measure))
		wr(uint64(it.node))
	}
}

// workloadChecksum is the XOR of per-worker op-stream hashes: stable across
// runs, and independent of how the scheduler interleaves workers.
func workloadChecksum(p profile, scenarioName string, seed int64) uint64 {
	var sum uint64
	for w := 0; w < p.workers; w++ {
		h := fnv.New64a()
		for _, o := range genOps(p, scenarioName, seed, w) {
			o.hashInto(h)
		}
		sum ^= h.Sum64()
	}
	return sum
}

// churnStream generates the deterministic edit-batch sequence for a churn
// scenario: each round inserts fresh random edges and deletes the oldest
// previously-inserted ones (a ring), so the graph drifts without growing
// unboundedly and every node id stays < p.nodes.
type churnStream struct {
	rng      *rand.Rand
	nodes    int
	batch    int
	inserted [][2]int // ring of live inserted edges
}

func newChurnStream(p profile, seed int64) *churnStream {
	return &churnStream{
		rng:   rand.New(rand.NewSource(seed*7_919 + 101)),
		nodes: p.nodes,
		batch: p.churnBatch,
	}
}

// next returns one round's insertions and deletions.
func (c *churnStream) next() (insert, del [][2]int) {
	for i := 0; i < c.batch/2; i++ {
		e := [2]int{c.rng.Intn(c.nodes), c.rng.Intn(c.nodes)}
		insert = append(insert, e)
	}
	// Delete up to batch/2 of the oldest still-live inserted edges, once
	// enough have accumulated to keep the ring from draining.
	c.inserted = append(c.inserted, insert...)
	if len(c.inserted) > 4*c.batch {
		n := c.batch / 2
		del = append(del, c.inserted[:n]...)
		c.inserted = append(c.inserted[:0], c.inserted[n:]...)
	}
	return insert, del
}
