package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/simstar"
)

// A target executes ops against one serving surface. The two
// implementations answer the same op with the same digest: engineTarget
// folds the engine's float64 bits directly, httpTarget folds the floats
// parsed back off the wire — encoding/json round-trips float64 exactly
// (shortest-form strconv), so `-mode engine` and `-mode http` runs of the
// same seed produce the same result checksum against the same graph epoch.
type target interface {
	// run executes one op and returns a digest of every score it observed.
	run(ctx context.Context, o op) (uint64, error)
	// applyChurn applies one churn round (insertions then deletions).
	applyChurn(ctx context.Context, insert, del [][2]int) (churnDelta, error)
	// cacheCounters reports the serving-side result-cache counters, when
	// the surface exposes them.
	cacheCounters() (hits, misses uint64, ok bool)
	// metricsSnapshot reports the serving side's cumulative metrics — the
	// engine observer's registry in-process, a GET /metrics scrape over
	// HTTP — keyed like obs.Registry.Snapshot. Scenario rows record the
	// delta of the counter families across the run.
	metricsSnapshot() (map[string]float64, bool)
	// certFetch answers one certified tolerance query — scores plus the
	// maxError certificate — for the chaos mode's exact-or-certified audit.
	certFetch(ctx context.Context, measure string, node int, tol float64) (scores []float64, maxErr float64, err error)
}

// statusError is a non-200 HTTP answer with enough structure for the chaos
// classifier: the status code, and whether the contract's Retry-After header
// came with a shed response.
type statusError struct {
	code       int
	retryAfter bool
	msg        string
}

func (e *statusError) Error() string { return e.msg }

type churnDelta struct {
	epoch     uint64
	applied   int
	refreshMs float64
}

// digestWriter folds (node, score) observations into an FNV-1a stream in
// observation order.
type digestWriter struct {
	h   hash.Hash64
	buf [8]byte
}

func newDigest() *digestWriter {
	return &digestWriter{h: fnv.New64a()}
}

func (d *digestWriter) word(v uint64) {
	binary.LittleEndian.PutUint64(d.buf[:], v)
	d.h.Write(d.buf[:])
}

func (d *digestWriter) score(node int, score float64) {
	d.word(uint64(node))
	d.word(math.Float64bits(score))
}

func (d *digestWriter) scores(scores []float64) {
	for i, s := range scores {
		d.score(i, s)
	}
}

func (d *digestWriter) sum() uint64 { return d.h.Sum64() }

// engineTarget drives an in-process engine. tol is the pre-derived
// tolerance view (Engine.With), built once so opTolerance queries do not
// pay a per-op derivation.
type engineTarget struct {
	eng  *simstar.Engine
	tol  *simstar.Engine
	obsv *simstar.Observer
}

func newEngineTarget(g *simstar.Graph, tolerance float64, opts ...simstar.Option) *engineTarget {
	// The observer is part of the measured configuration: the serving path
	// always runs instrumented in production, so the benchmark does too
	// (BENCH_8's "obs" member bounds what that instrumentation costs).
	o := simstar.NewObserver(nil)
	eng := simstar.NewEngine(g, append(opts, simstar.WithObserver(o))...)
	return &engineTarget{eng: eng, tol: eng.With(simstar.WithTolerance(tolerance)), obsv: o}
}

func (t *engineTarget) run(ctx context.Context, o op) (uint64, error) {
	d := newDigest()
	switch o.kind {
	case opSingle, opTolerance:
		eng := t.eng
		if o.kind == opTolerance {
			eng = t.tol
		}
		if o.deadlineMS > 0 {
			eng = eng.With(simstar.WithDeadline(time.Duration(o.deadlineMS) * time.Millisecond))
		}
		scores, err := eng.SingleSource(ctx, o.measure, o.node)
		if err != nil {
			return 0, err
		}
		d.scores(scores)
	case opTopK:
		top, err := t.eng.TopK(ctx, o.measure, o.node, o.k)
		if err != nil {
			return 0, err
		}
		for _, r := range top {
			d.score(r.Node, r.Score)
		}
	case opStream:
		st, err := t.eng.TopKStream(ctx, o.measure, o.node, o.k)
		if err != nil {
			return 0, err
		}
		for {
			r, ok := st.Next()
			if !ok {
				break
			}
			d.score(r.Node, r.Score)
		}
	case opBatch:
		queries := make([]simstar.Query, len(o.batch))
		for i, it := range o.batch {
			queries[i] = simstar.Query{Measure: it.measure, Node: it.node, K: o.k}
		}
		for _, res := range t.eng.BatchTopK(ctx, queries) {
			if res.Err != nil {
				return 0, res.Err
			}
			for _, r := range res.Top {
				d.score(r.Node, r.Score)
			}
		}
	}
	return d.sum(), nil
}

func (t *engineTarget) applyChurn(ctx context.Context, insert, del [][2]int) (churnDelta, error) {
	edits := make([]simstar.Edit, 0, len(insert)+len(del))
	for _, e := range insert {
		edits = append(edits, simstar.InsertEdge(e[0], e[1]))
	}
	for _, e := range del {
		edits = append(edits, simstar.DeleteEdge(e[0], e[1]))
	}
	st, err := t.eng.ApplyEdits(edits...)
	if err != nil {
		return churnDelta{}, err
	}
	return churnDelta{
		epoch:     st.Epoch,
		applied:   st.Applied,
		refreshMs: float64(st.RefreshTime.Microseconds()) / 1e3,
	}, nil
}

func (t *engineTarget) cacheCounters() (uint64, uint64, bool) {
	cs := t.eng.CacheStats()
	return cs.Hits, cs.Misses, true
}

func (t *engineTarget) metricsSnapshot() (map[string]float64, bool) {
	return t.obsv.Registry().Snapshot(), true
}

// certFetch answers through the engine's batch path, which carries the
// MaxError certificate alongside the scores. In chaos mode the engine still
// has the fault hook installed — an injected panic or deadline surfaces as
// the Result's error and the audit skips the sample.
func (t *engineTarget) certFetch(ctx context.Context, measure string, node int, tol float64) ([]float64, float64, error) {
	res := t.eng.With(simstar.WithTolerance(tol)).MultiSource(ctx, []simstar.Query{{Measure: measure, Node: node}})[0]
	return res.Scores, res.MaxError, res.Err
}

// httpTarget drives a running simserve over its v1 wire protocol, streaming
// NDJSON for opStream ops. Request bodies mirror cmd/simserve's queryJSON.
type httpTarget struct {
	base      string
	client    *http.Client
	tolerance float64
}

func newHTTPTarget(addr string, tolerance float64) *httpTarget {
	return &httpTarget{
		base:      strings.TrimRight(addr, "/"),
		client:    &http.Client{},
		tolerance: tolerance,
	}
}

// httpError is the decoded {"error": ...} payload of a non-200 answer,
// carried as a statusError so the chaos classifier can see the status code
// and the Retry-After header.
func httpError(resp *http.Response) error {
	se := &statusError{
		code:       resp.StatusCode,
		retryAfter: resp.Header.Get("Retry-After") != "",
	}
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		se.msg = fmt.Sprintf("%s: %s", resp.Status, e.Error)
	} else {
		se.msg = fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return se
}

func (t *httpTarget) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// wireQuery mirrors simserve's queryJSON request shape.
type wireQuery struct {
	Measure    string   `json:"measure"`
	Node       *int     `json:"node,omitempty"`
	K          int      `json:"k,omitempty"`
	Tolerance  *float64 `json:"tolerance,omitempty"`
	Stream     bool     `json:"stream,omitempty"`
	DeadlineMS int      `json:"deadline_ms,omitempty"`
}

// wireRanked mirrors simserve's rankedJSON.
type wireRanked struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

func (t *httpTarget) run(ctx context.Context, o op) (uint64, error) {
	d := newDigest()
	node := o.node
	switch o.kind {
	case opSingle, opTolerance:
		q := wireQuery{Measure: o.measure, Node: &node, DeadlineMS: o.deadlineMS}
		if o.kind == opTolerance {
			tol := t.tolerance
			q.Tolerance = &tol
		}
		var out struct {
			Scores []float64 `json:"scores"`
		}
		if err := t.post(ctx, "/v1/query/single", q, &out); err != nil {
			return 0, err
		}
		d.scores(out.Scores)
	case opTopK:
		var out struct {
			Top []wireRanked `json:"top"`
		}
		if err := t.post(ctx, "/v1/query/topk", wireQuery{Measure: o.measure, Node: &node, K: o.k}, &out); err != nil {
			return 0, err
		}
		for _, r := range out.Top {
			d.score(r.Node, r.Score)
		}
	case opStream:
		if err := t.stream(ctx, o, d); err != nil {
			return 0, err
		}
	case opBatch:
		queries := make([]wireQuery, len(o.batch))
		for i, it := range o.batch {
			n := it.node
			queries[i] = wireQuery{Measure: it.measure, Node: &n, K: o.k}
		}
		var out struct {
			Results []struct {
				Top   []wireRanked `json:"top"`
				Error string       `json:"error"`
			} `json:"results"`
		}
		body := map[string]any{"mode": "topk", "queries": queries}
		if err := t.post(ctx, "/v1/query/batch", body, &out); err != nil {
			return 0, err
		}
		for i, res := range out.Results {
			if res.Error != "" {
				return 0, fmt.Errorf("batch slot %d: %s", i, res.Error)
			}
			for _, r := range res.Top {
				d.score(r.Node, r.Score)
			}
		}
	}
	return d.sum(), nil
}

// stream runs one NDJSON topk stream, folding entry lines as they arrive —
// the consumer-side counterpart of the server's chunked writer.
func (t *httpTarget) stream(ctx context.Context, o op, d *digestWriter) error {
	node := o.node
	raw, err := json.Marshal(wireQuery{Measure: o.measure, Node: &node, K: o.k, Stream: true})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+"/v1/query/topk", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	// Entry lines carry "score"; the header does not, and the trailer
	// reports done/error. Any error line fails the op.
	type line struct {
		Node  *int     `json:"node"`
		Score *float64 `json:"score"`
		Done  *bool    `json:"done"`
		Error string   `json:"error"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	done := false
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return fmt.Errorf("bad NDJSON line %q: %w", sc.Text(), err)
		}
		switch {
		case l.Error != "":
			return fmt.Errorf("stream trailer: %s", l.Error)
		case l.Score != nil && l.Node != nil:
			d.score(*l.Node, *l.Score)
		case l.Done != nil && *l.Done:
			done = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("stream ended without a done trailer")
	}
	return nil
}

func (t *httpTarget) applyChurn(ctx context.Context, insert, del [][2]int) (churnDelta, error) {
	body := map[string]any{}
	if len(insert) > 0 {
		body["insert"] = insert
	}
	if len(del) > 0 {
		body["delete"] = del
	}
	var out struct {
		Epoch     uint64  `json:"epoch"`
		Applied   int     `json:"applied"`
		RefreshMs float64 `json:"refresh_ms"`
	}
	if err := t.post(ctx, "/v1/edges", body, &out); err != nil {
		return churnDelta{}, err
	}
	return churnDelta{epoch: out.Epoch, applied: out.Applied, refreshMs: out.RefreshMs}, nil
}

func (t *httpTarget) cacheCounters() (uint64, uint64, bool) {
	var out struct {
		Cache *struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	req, err := http.NewRequest(http.MethodGet, t.base+"/v1/stats", nil)
	if err != nil {
		return 0, 0, false
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil || out.Cache == nil {
		return 0, 0, false
	}
	return out.Cache.Hits, out.Cache.Misses, true
}

// metricsSnapshot scrapes the server's /metrics exposition. A scrape
// failure (an older simserve without the endpoint) degrades to "no
// metrics", never to a failed benchmark.
func (t *httpTarget) metricsSnapshot() (map[string]float64, bool) {
	resp, err := t.client.Get(t.base + "/metrics")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	vals, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, false
	}
	return vals, true
}

// certFetch answers a certified tolerance query over the wire, for the
// chaos mode's audit of the server's maxError certificates.
func (t *httpTarget) certFetch(ctx context.Context, measure string, node int, tol float64) ([]float64, float64, error) {
	q := wireQuery{Measure: measure, Node: &node, Tolerance: &tol}
	var out struct {
		Scores   []float64 `json:"scores"`
		MaxError float64   `json:"maxError"`
	}
	if err := t.post(ctx, "/v1/query/single", q, &out); err != nil {
		return nil, 0, err
	}
	return out.Scores, out.MaxError, nil
}

// probeHealth is one GET /healthz liveness probe (see healthProber). The
// control plane is exempt from admission control, so it must answer 200
// however overloaded or faulted the query plane is.
func (t *httpTarget) probeHealth(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz answered %s", resp.Status)
	}
	return nil
}

// loadGraph installs the benchmark graph on the remote server so both modes
// measure the same workload on the same topology.
func (t *httpTarget) loadGraph(ctx context.Context, nodes int, edges [][2]int) error {
	var out struct {
		Nodes int `json:"nodes"`
		Edges int `json:"edges"`
	}
	body := map[string]any{"nodes": nodes, "edges": edges}
	if err := t.post(ctx, "/v1/graph", body, &out); err != nil {
		return err
	}
	if out.Nodes != nodes {
		return fmt.Errorf("server loaded %d nodes, want %d", out.Nodes, nodes)
	}
	return nil
}
