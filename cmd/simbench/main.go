// Command simbench is the production-workload harness for the serving path:
// it drives a mixed stream of single-source, top-k (materialised and
// streamed), batch and certified-tolerance queries from zipfian-sampled
// sources against either an in-process engine (-mode engine) or a running
// simserve (-mode http), optionally racing a concurrent edit-churn stream,
// and reports latency percentiles, throughput, cache hit rate and allocation
// counts as schema-versioned JSON.
//
// Workload sampling is fully deterministic: one seeded rand.Rand per worker,
// generated before timing starts, so `simbench -profile tiny -seed 1`
// replays the identical op stream on every run (the report's
// workload_checksum certifies it, and result_checksum certifies the
// answers' bits on churn-free scenarios).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/simstar"
)

// benchGraph mirrors cmd/benchjson's benchmark graph — local structure
// behind scrambled ids, fixed seed — so kernel benchmarks and serving
// benchmarks measure the same topology. It also returns the edge list, which
// -mode http uploads to the server under test.
func benchGraph(n, deg int) (*simstar.Graph, [][2]int) {
	rng := rand.New(rand.NewSource(271828))
	shuf := rng.Perm(n)
	edges := make([][2]int, 0, n*deg)
	for u := 0; u < n; u++ {
		for d := 0; d < deg; d++ {
			v := u + 1 + rng.Intn(64)
			if v >= n {
				v -= n
			}
			edges = append(edges, [2]int{shuf[u], shuf[v]})
		}
	}
	return simstar.GraphFromEdges(n, edges), edges
}

// workerOut is one worker's timed results.
type workerOut struct {
	durations []time.Duration
	resHash   uint64
	errs      int
	kinds     [opKindCount]int
	chaos     chaosJSON // chaos scenarios: this worker's failure ledger
}

// runWorker executes one worker's pre-generated op stream. In closed-loop
// mode each op starts when the previous one finished; in open-loop mode ops
// have intended start times on a fixed schedule and latency is measured from
// the intended start, so a slow server accrues queueing delay instead of
// quietly slowing the load down.
func runWorker(ctx context.Context, t target, p profile, sc scenario, seed int64, worker int, start time.Time, digest bool) workerOut {
	ops := genOps(p, sc.name, seed, worker)
	if sc.chaos {
		decorateChaos(ops)
	}
	out := workerOut{durations: make([]time.Duration, 0, len(ops))}
	const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
	fold := uint64(fnvOffset)
	for i, o := range ops {
		opStart := time.Now()
		if sc.rate > 0 {
			intended := start.Add(time.Duration(float64(i*p.workers+worker) / sc.rate * float64(time.Second)))
			if d := time.Until(intended); d > 0 {
				time.Sleep(d)
			}
			opStart = intended
		}
		dg, err := t.run(ctx, o)
		out.durations = append(out.durations, time.Since(opStart))
		out.kinds[o.kind]++
		if err != nil {
			out.errs++
			if sc.chaos {
				classifyChaosErr(err, &out.chaos)
			}
			continue
		}
		fold = (fold ^ dg) * fnvPrime
	}
	if digest {
		out.resHash = fold
	}
	return out
}

// churnOut is what the churn goroutine hands back when stopped.
type churnOut struct {
	cj   churnJSON
	errs int
}

// runChurn streams deterministic edit batches at the target until stopped,
// pausing churnPause between rounds so refreshes interleave with queries
// rather than monopolising the store.
func runChurn(ctx context.Context, t target, p profile, seed int64, stop <-chan struct{}) churnOut {
	cs := newChurnStream(p, seed)
	var out churnOut
	var sumRefresh float64
	for {
		select {
		case <-stop:
			if out.cj.Batches > 0 {
				out.cj.AvgRefreshMs = sumRefresh / float64(out.cj.Batches)
			}
			return out
		default:
		}
		insert, del := cs.next()
		delta, err := t.applyChurn(ctx, insert, del)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: churn: %v\n", err)
			out.errs++
			if out.cj.Batches > 0 {
				out.cj.AvgRefreshMs = sumRefresh / float64(out.cj.Batches)
			}
			return out
		}
		out.cj.Batches++
		out.cj.Edits += delta.applied
		out.cj.FinalEpoch = delta.epoch
		sumRefresh += delta.refreshMs
		time.Sleep(p.churnPause)
	}
}

// runScenario executes one scenario end to end and aggregates the report
// row. measureAllocs turns on runtime.MemStats deltas — meaningful for
// -mode engine, where the process under measurement is the serving path
// (under churn the delta includes the churn goroutine's refresh work).
func runScenario(t target, p profile, sc scenario, seed int64, measureAllocs bool) scenarioJSON {
	ctx := context.Background()
	hits0, misses0, cacheOK := t.cacheCounters()
	metrics0, metricsOK := t.metricsSnapshot()

	var m0, m1 runtime.MemStats
	if measureAllocs {
		runtime.ReadMemStats(&m0)
	}

	stop := make(chan struct{})
	churnCh := make(chan churnOut, 1)
	if sc.churn {
		go func() { churnCh <- runChurn(ctx, t, p, seed, stop) }()
	}
	// Chaos scenarios poll liveness for the whole run when the target has a
	// health endpoint (http mode): the server must answer /healthz however
	// badly the query plane is faulted.
	proberCh := make(chan proberOut, 1)
	probing := false
	if sc.chaos {
		if hp, ok := t.(healthProber); ok {
			probing = true
			go func() { proberCh <- runHealthProber(ctx, hp, stop) }()
		}
	}

	outs := make([]workerOut, p.workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Result digests are meaningless under churn (epoch-dependent)
			// and under chaos (which answers a given op is fault-dependent).
			outs[w] = runWorker(ctx, t, p, sc, seed, w, start, !sc.churn && !sc.chaos)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)

	var churn *churnJSON
	if sc.churn {
		co := <-churnCh
		cj := co.cj
		churn = &cj
		outs[0].errs += co.errs
	}
	if measureAllocs {
		runtime.ReadMemStats(&m1)
	}

	row := scenarioJSON{
		Name:           sc.name,
		Workers:        p.workers,
		OpenRateOpsSec: sc.rate,
		DurationMs:     float64(elapsed.Microseconds()) / 1e3,
		Kinds:          make(map[string]int),
		Churn:          churn,
	}
	var durations []time.Duration
	var resSum uint64
	for _, o := range outs {
		durations = append(durations, o.durations...)
		row.Errors += o.errs
		resSum ^= o.resHash
		for k, n := range o.kinds {
			if n > 0 {
				row.Kinds[opKind(k).String()] += n
			}
		}
	}
	if sc.chaos {
		cj := chaosJSON{}
		for _, o := range outs {
			cj.add(o.chaos)
		}
		if probing {
			po := <-proberCh
			cj.HealthzProbes = po.probes
			cj.HealthzFailures = po.failures
		}
		row.Chaos = &cj
	}
	row.Ops = len(durations)
	row.Latency = summarizeLatency(durations)
	if elapsed > 0 {
		row.ThroughputOpsSec = float64(row.Ops) / elapsed.Seconds()
	}
	row.WorkloadChecksum = checksumHex(workloadChecksum(p, sc.name, seed))
	if !sc.churn && !sc.chaos {
		row.ResultChecksum = checksumHex(resSum)
	}
	if cacheOK {
		hits1, misses1, _ := t.cacheCounters()
		c := cacheJSON{Hits: hits1 - hits0, Misses: misses1 - misses0}
		if total := c.Hits + c.Misses; total > 0 {
			c.HitRate = float64(c.Hits) / float64(total)
		}
		row.Cache = &c
	}
	if measureAllocs && row.Ops > 0 {
		row.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(row.Ops)
		row.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(row.Ops)
	}
	if metricsOK {
		if metrics1, ok := t.metricsSnapshot(); ok {
			row.ServerMetrics = counterDeltas(metrics0, metrics1)
		}
	}
	return row
}

// counterDeltas keeps the positive before/after deltas of the cumulative
// families — counters (_total) and histogram counts (_count). Gauges read
// instantaneous state, not work done, so they are dropped; zero deltas are
// dropped so each row lists only what the scenario exercised.
func counterDeltas(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for key, v1 := range after {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") && !strings.HasSuffix(name, "_count") {
			continue
		}
		if d := v1 - before[key]; d > 0 {
			out[key] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// filterScenarios keeps the comma-separated names in filter, or all when
// filter is empty.
func filterScenarios(scs []scenario, filter string) []scenario {
	if filter == "" {
		return scs
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(filter, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var out []scenario
	for _, sc := range scs {
		if want[sc.name] {
			out = append(out, sc)
		}
	}
	return out
}

func main() {
	profileFlag := flag.String("profile", "tiny", "workload profile: tiny, small or medium")
	seed := flag.Int64("seed", 1, "workload sampling seed (the graph is fixed; the seed moves only the queries)")
	mode := flag.String("mode", "engine", "target: engine (in-process) or http (a running simserve)")
	addr := flag.String("addr", "http://localhost:8080", "simserve base URL for -mode http")
	out := flag.String("out", "BENCH_7.json", "output path for the JSON report (\"-\" for stdout)")
	note := flag.String("note", "", "free-form context recorded in the report")
	opsFlag := flag.Int("ops", 0, "override the profile's op budget")
	workersFlag := flag.Int("workers", 0, "override the profile's worker count")
	sweepsFlag := flag.Int("parallel-sweeps", 0, "WithParallelSweeps for -mode engine: 0/1 serial, n>1 that many workers, -1 all cores")
	scenariosFlag := flag.String("scenarios", "", "comma-separated scenario filter (default: all)")
	chaosFlag := flag.Bool("chaos", false, "run the chaos scenario instead: the mixed workload with per-op deadlines, scored on the resilience contract (nonzero exit on violations)")
	faultSpec := flag.String("fault", "", "fault-injection spec for -chaos -mode engine, e.g. 'kernel.panic:0.02,kernel.slow:0.05:2ms' (for -mode http start simserve with -fault instead)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault schedule")
	flag.Parse()

	p, ok := profiles[*profileFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "simbench: unknown profile %q (want tiny, small or medium)\n", *profileFlag)
		os.Exit(2)
	}
	if *opsFlag > 0 {
		p.ops = *opsFlag
	}
	if *workersFlag > 0 {
		p.workers = *workersFlag
	}

	g, edges := benchGraph(p.nodes, p.deg)
	// engineOpts is the measured engine configuration; the chaos oracle is
	// built with the same options (minus faults) so certificates are checked
	// against the exact kernel the target actually deviates from.
	engineOpts := []simstar.Option{
		simstar.WithParallelSweeps(*sweepsFlag),
		simstar.WithMiner(simstar.MinerOptions{
			MinSources: 64, MinTargets: 64, DisablePairMining: true,
		}),
	}
	var t target
	switch *mode {
	case "engine":
		opts := engineOpts
		if *faultSpec != "" {
			injector, err := fault.Parse(*faultSeed, *faultSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
				os.Exit(2)
			}
			if injector != nil {
				fmt.Fprintf(os.Stderr, "simbench: fault injection armed: %s (seed %d)\n", injector, *faultSeed)
				opts = append(opts[:len(opts):len(opts)], simstar.WithFaultHook(injector.Hook()))
			}
		}
		t = newEngineTarget(g, p.tolerance, opts...)
	case "http":
		if *sweepsFlag != 0 {
			fmt.Fprintf(os.Stderr, "simbench: -parallel-sweeps applies to -mode engine only; the server's own configuration wins\n")
		}
		if *faultSpec != "" {
			fmt.Fprintf(os.Stderr, "simbench: -fault applies to -mode engine only; start simserve with -fault to inject server-side\n")
		}
		ht := newHTTPTarget(*addr, p.tolerance)
		fmt.Fprintf(os.Stderr, "simbench: loading %d-node graph onto %s\n", p.nodes, *addr)
		if err := ht.loadGraph(context.Background(), p.nodes, edges); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: loading graph: %v\n", err)
			os.Exit(1)
		}
		t = ht
	default:
		fmt.Fprintf(os.Stderr, "simbench: unknown mode %q (want engine or http)\n", *mode)
		os.Exit(2)
	}

	scs := filterScenarios(scenariosFor(p), *scenariosFlag)
	var oracle *simstar.Engine
	if *chaosFlag {
		// Chaos replaces the benchmark scenarios with one resilience pass,
		// and needs an exact, fault-free oracle for the certificate audit.
		scs = []scenario{{name: "chaos", chaos: true}}
		if *mode == "engine" {
			oracle = simstar.NewEngine(g, engineOpts...)
		} else {
			oracle = simstar.NewEngine(g)
		}
	}

	rep := newReport(p.name, *seed, *mode, g.N(), g.M(), *note)
	for _, sc := range scs {
		fmt.Fprintf(os.Stderr, "simbench: scenario %s (%d ops, %d workers, churn=%v)\n",
			sc.name, p.ops, p.workers, sc.churn)
		row := runScenario(t, p, sc, *seed, *mode == "engine")
		fmt.Fprintf(os.Stderr, "simbench:   %.0f ops/s, p50 %.0fµs p99 %.0fµs, %d errors\n",
			row.ThroughputOpsSec, row.Latency.P50Us, row.Latency.P99Us, row.Errors)
		if sc.chaos && row.Chaos != nil {
			verifyCertificates(context.Background(), t, oracle, p, *seed, row.Chaos)
			cj := row.Chaos
			fmt.Fprintf(os.Stderr, "simbench:   chaos: shed %d/%d, 500s %d, panics %d, deadline misses %d, cert %d ok / %d failed / %d skipped, healthz %d/%d ok\n",
				cj.Shed429, cj.Shed503, cj.Server500, cj.KernelPanics,
				cj.Deadline504+cj.DeadlineExceeded,
				cj.CertChecks-cj.CertFailures, cj.CertFailures, cj.CertSkipped,
				cj.HealthzProbes-cj.HealthzFailures, cj.HealthzProbes)
		}
		rep.Scenarios = append(rep.Scenarios, row)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: encoding report: %v\n", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "simbench: wrote %s\n", *out)
	}

	// Chaos runs gate CI: any breach of the resilience contract is a
	// nonzero exit, after the report (the evidence) is safely written.
	failed := false
	for _, row := range rep.Scenarios {
		if row.Chaos == nil {
			continue
		}
		for _, v := range row.Chaos.violations() {
			fmt.Fprintf(os.Stderr, "simbench: chaos invariant violated (%s): %s\n", row.Name, v)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
