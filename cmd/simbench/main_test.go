package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func tinyProfile(ops int) profile {
	p := profiles["tiny"]
	p.ops = ops
	return p
}

// TestTinyProfileDeterminism is the satellite contract: two independent runs
// of the tiny profile at the same seed — fresh graph, fresh engine, fresh
// rngs, real concurrent workers — produce identical workload AND result
// checksums, op counts and kind mixes. Only timing may differ.
func TestTinyProfileDeterminism(t *testing.T) {
	p := tinyProfile(96)
	run := func() scenarioJSON {
		g, _ := benchGraph(p.nodes, p.deg)
		return runScenario(newEngineTarget(g, p.tolerance), p, scenario{name: "mixed"}, 1, false)
	}
	a, b := run(), run()
	if a.WorkloadChecksum != b.WorkloadChecksum {
		t.Errorf("workload checksum drifted: %s vs %s", a.WorkloadChecksum, b.WorkloadChecksum)
	}
	if a.ResultChecksum == "" || a.ResultChecksum != b.ResultChecksum {
		t.Errorf("result checksum drifted: %q vs %q", a.ResultChecksum, b.ResultChecksum)
	}
	if a.Ops != p.ops || b.Ops != p.ops {
		t.Errorf("ops = %d, %d, want %d", a.Ops, b.Ops, p.ops)
	}
	if !reflect.DeepEqual(a.Kinds, b.Kinds) {
		t.Errorf("kind mix drifted: %v vs %v", a.Kinds, b.Kinds)
	}
	if a.Errors != 0 || b.Errors != 0 {
		t.Errorf("errors: %d, %d", a.Errors, b.Errors)
	}

	// A different seed must actually move the workload — the checksum is not
	// a constant.
	g, _ := benchGraph(p.nodes, p.deg)
	c := runScenario(newEngineTarget(g, p.tolerance), p, scenario{name: "mixed"}, 2, false)
	if c.WorkloadChecksum == a.WorkloadChecksum {
		t.Errorf("seed 2 produced seed 1's workload checksum %s", a.WorkloadChecksum)
	}
}

// TestScenarioReportShape pins the report row invariants the regression
// tooling depends on: ordered percentiles, positive throughput, a full kind
// mix, cache counters, and the churn row's epoch/err accounting with its
// result checksum withheld.
func TestScenarioReportShape(t *testing.T) {
	p := tinyProfile(120)
	g, _ := benchGraph(p.nodes, p.deg)
	tgt := newEngineTarget(g, p.tolerance)

	row := runScenario(tgt, p, scenario{name: "mixed"}, 1, true)
	if row.Errors != 0 {
		t.Fatalf("mixed scenario had %d errors", row.Errors)
	}
	l := row.Latency
	if !(l.P50Us <= l.P95Us && l.P95Us <= l.P99Us && l.P99Us <= l.MaxUs) {
		t.Errorf("latency percentiles out of order: %+v", l)
	}
	if l.P50Us <= 0 || row.ThroughputOpsSec <= 0 || row.DurationMs <= 0 {
		t.Errorf("non-positive timing: %+v", row)
	}
	total := 0
	for _, n := range row.Kinds {
		total += n
	}
	if total != row.Ops || row.Ops != p.ops {
		t.Errorf("kind counts sum to %d, ops %d, budget %d", total, row.Ops, p.ops)
	}
	for _, kind := range []string{"single", "topk", "stream", "batch", "tolerance"} {
		if row.Kinds[kind] == 0 {
			t.Errorf("op mix never produced a %s op", kind)
		}
	}
	if row.Cache == nil || row.Cache.Hits+row.Cache.Misses == 0 {
		t.Errorf("cache counters missing: %+v", row.Cache)
	}
	if row.AllocsPerOp <= 0 {
		t.Errorf("allocs_per_op = %v, want > 0 when measured", row.AllocsPerOp)
	}
	if row.ResultChecksum == "" || len(row.WorkloadChecksum) != 16 {
		t.Errorf("checksums malformed: %q %q", row.WorkloadChecksum, row.ResultChecksum)
	}
	if row.ServerMetrics == nil {
		t.Fatalf("server_metrics missing from engine-mode row")
	}
	queries := 0.0
	for key, d := range row.ServerMetrics {
		if d <= 0 {
			t.Errorf("server_metrics[%q] = %v, want positive deltas only", key, d)
		}
		if strings.HasPrefix(key, `simstar_queries_total{`) {
			queries += d
		}
	}
	if queries == 0 {
		t.Errorf("server_metrics recorded no simstar_queries_total deltas: %v", row.ServerMetrics)
	}
	if _, ok := row.ServerMetrics["simstar_kernel_seconds_count"]; !ok {
		t.Errorf("server_metrics missing kernel histogram count: %v", row.ServerMetrics)
	}

	churnRow := runScenario(tgt, p, scenario{name: "mixed_churn", churn: true}, 1, false)
	if churnRow.Errors != 0 {
		t.Fatalf("churn scenario had %d errors", churnRow.Errors)
	}
	if churnRow.Churn == nil || churnRow.Churn.Batches < 1 {
		t.Fatalf("churn scenario recorded no churn: %+v", churnRow.Churn)
	}
	if churnRow.Churn.FinalEpoch == 0 {
		t.Errorf("churn never advanced the epoch")
	}
	if churnRow.ResultChecksum != "" {
		t.Errorf("churn scenario must withhold the result checksum (epoch-dependent), got %q", churnRow.ResultChecksum)
	}
}

// TestOpenLoopPacing checks that an open-loop scenario completes its budget
// and spreads it over at least the scheduled span (ops/rate), rather than
// collapsing into a closed loop.
func TestOpenLoopPacing(t *testing.T) {
	p := tinyProfile(40)
	g, _ := benchGraph(p.nodes, p.deg)
	tgt := newEngineTarget(g, p.tolerance)
	sc := scenario{name: "mixed_open", rate: 2000}
	row := runScenario(tgt, p, sc, 1, false)
	if row.Ops != p.ops || row.Errors != 0 {
		t.Fatalf("ops %d errors %d", row.Ops, row.Errors)
	}
	if minMs := float64(p.ops-1) / sc.rate * 1000; row.DurationMs < minMs {
		t.Errorf("open loop at %v ops/s finished %d ops in %.1fms, want >= %.1fms",
			sc.rate, row.Ops, row.DurationMs, minMs)
	}
	if row.OpenRateOpsSec != sc.rate {
		t.Errorf("report dropped the open rate: %+v", row)
	}
}

func TestOpsForWorkerPartition(t *testing.T) {
	for _, tc := range []struct{ total, workers int }{{480, 4}, {7, 3}, {3, 4}, {0, 2}} {
		sum := 0
		for w := 0; w < tc.workers; w++ {
			n := opsForWorker(tc.total, tc.workers, w)
			if n < 0 || n > tc.total/tc.workers+1 {
				t.Errorf("opsForWorker(%d,%d,%d) = %d", tc.total, tc.workers, w, n)
			}
			sum += n
		}
		if sum != tc.total {
			t.Errorf("partition of %d over %d workers sums to %d", tc.total, tc.workers, sum)
		}
	}
}

func TestPercentiles(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(100-i) * time.Microsecond // descending: summarize must sort
	}
	l := summarizeLatency(ds)
	if l.P50Us != 50 || l.P99Us != 99 || l.MaxUs != 100 {
		t.Errorf("percentiles: %+v", l)
	}
	if one := summarizeLatency(ds[:1]); one.P50Us != one.P99Us || one.P50Us != one.MaxUs {
		t.Errorf("single-sample percentiles disagree: %+v", one)
	}
	if zero := summarizeLatency(nil); zero != (latencyJSON{}) {
		t.Errorf("empty latency summary: %+v", zero)
	}
}

func TestFilterScenarios(t *testing.T) {
	scs := scenariosFor(profiles["small"])
	if len(scs) != 3 {
		t.Fatalf("small profile scenarios: %d, want 3", len(scs))
	}
	got := filterScenarios(scs, "mixed_churn")
	if len(got) != 1 || got[0].name != "mixed_churn" {
		t.Errorf("filter: %+v", got)
	}
	if all := filterScenarios(scs, ""); len(all) != len(scs) {
		t.Errorf("empty filter dropped scenarios")
	}
}

// TestChurnStreamDeterminism: same seed, same batches; all node ids in
// range; deletions only ever name previously-inserted edges.
func TestChurnStreamDeterminism(t *testing.T) {
	p := profiles["tiny"]
	a, b := newChurnStream(p, 1), newChurnStream(p, 1)
	live := make(map[[2]int]int)
	for round := 0; round < 20; round++ {
		ia, da := a.next()
		ib, db := b.next()
		if !reflect.DeepEqual(ia, ib) || !reflect.DeepEqual(da, db) {
			t.Fatalf("round %d diverged", round)
		}
		for _, e := range ia {
			if e[0] < 0 || e[0] >= p.nodes || e[1] < 0 || e[1] >= p.nodes {
				t.Fatalf("edge %v out of range", e)
			}
			live[e]++
		}
		for _, e := range da {
			if live[e] == 0 {
				t.Fatalf("round %d deletes never-inserted edge %v", round, e)
			}
			live[e]--
		}
	}
	if _, d := newChurnStream(p, 2).next(); len(d) != 0 {
		t.Errorf("first round deleted edges before inserting any")
	}
}

// stubServe is a canned simserve look-alike: fixed answers in the real wire
// shapes, so the test can assert httpTarget's parsing and digesting against
// digests computed directly from the same data.
func stubServe(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("POST /v1/query/single", func(w http.ResponseWriter, r *http.Request) {
		var q wireQuery
		json.NewDecoder(r.Body).Decode(&q)
		if q.Measure == "no-such-measure" {
			w.WriteHeader(http.StatusBadRequest)
			writeJSON(w, map[string]string{"error": "unknown measure"})
			return
		}
		resp := map[string]any{"scores": []float64{1, 0.5, 0.25}}
		if q.Tolerance != nil {
			resp["maxError"] = *q.Tolerance
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/query/topk", func(w http.ResponseWriter, r *http.Request) {
		var q wireQuery
		json.NewDecoder(r.Body).Decode(&q)
		top := []wireRanked{{Node: 2, Score: 0.5}, {Node: 7, Score: 0.25}}
		if !q.Stream {
			writeJSON(w, map[string]any{"top": top})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.Encode(map[string]any{"measure": q.Measure, "k": q.K, "maxError": 0.0})
		for _, e := range top {
			enc.Encode(e)
		}
		enc.Encode(map[string]any{"done": true, "count": len(top)})
	})
	mux.HandleFunc("POST /v1/query/batch", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"results": []map[string]any{
			{"top": []wireRanked{{Node: 1, Score: 0.75}}},
			{"top": []wireRanked{{Node: 4, Score: 0.125}}},
		}})
	})
	mux.HandleFunc("POST /v1/edges", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"epoch": 3, "applied": 5, "refresh_ms": 1.5})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"cache": map[string]any{"hits": 11, "misses": 4}})
	})
	mux.HandleFunc("POST /v1/graph", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Nodes int      `json:"nodes"`
			Edges [][2]int `json:"edges"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		writeJSON(w, map[string]any{"nodes": req.Nodes, "edges": len(req.Edges)})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestHTTPTargetWireProtocol drives every op kind at the stub and checks
// each digest equals the one computed directly from the canned floats — the
// cross-mode equivalence the target layer promises.
func TestHTTPTargetWireProtocol(t *testing.T) {
	srv := stubServe(t)
	tgt := newHTTPTarget(srv.URL+"/", 1e-3) // trailing slash must not break URLs
	ctx := context.Background()

	wantSingle := func() uint64 {
		d := newDigest()
		d.scores([]float64{1, 0.5, 0.25})
		return d.sum()
	}()
	wantTop := func() uint64 {
		d := newDigest()
		d.score(2, 0.5)
		d.score(7, 0.25)
		return d.sum()
	}()
	wantBatch := func() uint64 {
		d := newDigest()
		d.score(1, 0.75)
		d.score(4, 0.125)
		return d.sum()
	}()

	cases := []struct {
		op   op
		want uint64
	}{
		{op{kind: opSingle, measure: "simrank-star", node: 3}, wantSingle},
		{op{kind: opTolerance, measure: "simrank-star", node: 3}, wantSingle},
		{op{kind: opTopK, measure: "simrank-star", node: 3, k: 2}, wantTop},
		{op{kind: opStream, measure: "simrank-star", node: 3, k: 2}, wantTop},
		{op{kind: opBatch, batch: []batchItem{{"simrank-star", 1}, {"rwr", 4}}, k: 1}, wantBatch},
	}
	for _, tc := range cases {
		got, err := tgt.run(ctx, tc.op)
		if err != nil {
			t.Fatalf("%s: %v", tc.op.kind, err)
		}
		if got != tc.want {
			t.Errorf("%s digest = %016x, want %016x", tc.op.kind, got, tc.want)
		}
	}

	// Stream and materialised topk must digest identically — the NDJSON
	// entries carry the same (node, score) sequence.
	if _, err := tgt.run(ctx, op{kind: opSingle, measure: "no-such-measure"}); err == nil {
		t.Errorf("400 answer did not surface as an error")
	}

	delta, err := tgt.applyChurn(ctx, [][2]int{{1, 2}}, [][2]int{{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if delta.epoch != 3 || delta.applied != 5 || delta.refreshMs != 1.5 {
		t.Errorf("churn delta: %+v", delta)
	}

	hits, misses, ok := tgt.cacheCounters()
	if !ok || hits != 11 || misses != 4 {
		t.Errorf("cache counters: %d %d %v", hits, misses, ok)
	}

	if err := tgt.loadGraph(ctx, 10, [][2]int{{0, 1}}); err != nil {
		t.Errorf("loadGraph: %v", err)
	}
}

// TestHTTPTargetStreamTrailerContract: a stream that ends without a done
// trailer (aborted server side) or whose trailer carries an error must fail
// the op rather than silently digesting a prefix.
func TestHTTPTargetStreamTrailerContract(t *testing.T) {
	fail := "trailer"
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query/topk", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.Encode(map[string]any{"measure": "m", "k": 2})
		enc.Encode(wireRanked{Node: 1, Score: 0.5})
		if fail == "trailer" {
			enc.Encode(map[string]any{"error": "client closed request", "status": 499})
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	tgt := newHTTPTarget(srv.URL, 1e-3)

	if _, err := tgt.run(context.Background(), op{kind: opStream, measure: "m", node: 0, k: 2}); err == nil {
		t.Errorf("error trailer did not fail the op")
	}
	fail = "truncate"
	if _, err := tgt.run(context.Background(), op{kind: opStream, measure: "m", node: 0, k: 2}); err == nil {
		t.Errorf("truncated stream did not fail the op")
	}
}
