package main

// Chaos mode (-chaos): one closed-loop pass of the mixed workload run under
// fault injection, scored not on speed but on the resilience contract:
//
//	availability  — the process under test keeps answering /healthz while
//	                kernels panic and sleep underneath it;
//	honesty       — overload is shed with 429/503 + Retry-After and deadline
//	                misses answer 504, never a hang or a junk 200;
//	certification — every 2xx tolerance answer is exact-or-certified: its
//	                maxError is within the requested ceiling AND its scores
//	                are within maxError of an independently-computed exact
//	                oracle.
//
// Every op error is classified into the chaos ledger below; anything that
// does not match an expected failure shape counts as an unexpected error,
// and violations() turns the ledger into a nonzero exit for CI.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/simstar"
)

// chaosDeadlineMS is the per-op budget stamped onto every chaosDeadlineEvery-th
// single/tolerance op: tight enough that injected kernel.slow delays and
// admission queueing push some ops over it, long enough that an unloaded
// query never trips it by accident.
const (
	chaosDeadlineMS    = 5
	chaosDeadlineEvery = 5
	certSamples        = 24
	healthProbePause   = 5 * time.Millisecond
)

// chaosJSON is the per-scenario resilience ledger in the report row.
type chaosJSON struct {
	// Shed429/Shed503 count requests admission control refused (queue full /
	// queue timeout or draining); RetryAfterMissing counts those that
	// arrived without the Retry-After header the contract promises.
	Shed429           int `json:"shed_429"`
	Shed503           int `json:"shed_503"`
	RetryAfterMissing int `json:"retry_after_missing"`
	// Server500 counts kernel panics the server isolated into a 500 answer;
	// KernelPanics counts the same fault surfaced in-process (engine mode,
	// or inside a batch slot). Deadline504/DeadlineExceeded likewise split
	// deadline misses by surface.
	Server500        int `json:"server_500"`
	KernelPanics     int `json:"kernel_panics"`
	Deadline504      int `json:"deadline_504"`
	DeadlineExceeded int `json:"deadline_exceeded"`
	// UnexpectedErrors is everything that matched no expected failure shape
	// — a connection refused, a malformed answer, a crash. Always a
	// violation.
	UnexpectedErrors int `json:"unexpected_errors"`
	// Healthz prober results: the liveness endpoint must answer 200 for the
	// whole run (http mode only).
	HealthzProbes   int `json:"healthz_probes,omitempty"`
	HealthzFailures int `json:"healthz_failures,omitempty"`
	// Certificate audit: CertChecks tolerance answers were cross-checked
	// against an exact oracle; CertSkipped were shed or faulted before
	// answering (only 2xx answers owe a certificate).
	CertChecks   int `json:"cert_checks"`
	CertSkipped  int `json:"cert_skipped,omitempty"`
	CertFailures int `json:"cert_failures"`
}

func (c *chaosJSON) add(o chaosJSON) {
	c.Shed429 += o.Shed429
	c.Shed503 += o.Shed503
	c.RetryAfterMissing += o.RetryAfterMissing
	c.Server500 += o.Server500
	c.KernelPanics += o.KernelPanics
	c.Deadline504 += o.Deadline504
	c.DeadlineExceeded += o.DeadlineExceeded
	c.UnexpectedErrors += o.UnexpectedErrors
}

// violations lists the invariant breaches that must fail the run.
func (c *chaosJSON) violations() []string {
	var out []string
	if c.UnexpectedErrors > 0 {
		out = append(out, fmt.Sprintf("%d errors matched no expected failure shape", c.UnexpectedErrors))
	}
	if c.RetryAfterMissing > 0 {
		out = append(out, fmt.Sprintf("%d shed responses lacked a Retry-After header", c.RetryAfterMissing))
	}
	if c.HealthzFailures > 0 {
		out = append(out, fmt.Sprintf("%d/%d healthz probes failed", c.HealthzFailures, c.HealthzProbes))
	}
	if c.CertFailures > 0 {
		out = append(out, fmt.Sprintf("%d/%d certificate checks failed", c.CertFailures, c.CertChecks))
	}
	return out
}

// decorateChaos stamps the deadline budget onto every chaosDeadlineEvery-th
// single/tolerance op of a pre-generated stream. Deadlines ride outside the
// workload checksum: the sampled ops are identical to the mixed scenario's,
// chaos only decorates them.
func decorateChaos(ops []op) {
	for i := range ops {
		if i%chaosDeadlineEvery == 0 && (ops[i].kind == opSingle || ops[i].kind == opTolerance) {
			ops[i].deadlineMS = chaosDeadlineMS
		}
	}
}

// classifyChaosErr sorts one failed op into the ledger. The string matches
// are for failure text that crossed a serialization boundary — a batch
// slot's error field, an HTTP body — where the sentinel error values are no
// longer Is-able.
func classifyChaosErr(err error, cj *chaosJSON) {
	var se *statusError
	switch {
	case errors.As(err, &se):
		switch se.code {
		case http.StatusTooManyRequests:
			cj.Shed429++
			if !se.retryAfter {
				cj.RetryAfterMissing++
			}
		case http.StatusServiceUnavailable:
			cj.Shed503++
			if !se.retryAfter {
				cj.RetryAfterMissing++
			}
		case http.StatusInternalServerError:
			cj.Server500++
		case http.StatusGatewayTimeout:
			cj.Deadline504++
		default:
			cj.UnexpectedErrors++
		}
	case errors.Is(err, simstar.ErrKernelPanic):
		cj.KernelPanics++
	case errors.Is(err, context.DeadlineExceeded):
		cj.DeadlineExceeded++
	case strings.Contains(err.Error(), "kernel panic"):
		cj.KernelPanics++
	case strings.Contains(err.Error(), context.DeadlineExceeded.Error()):
		cj.DeadlineExceeded++
	default:
		cj.UnexpectedErrors++
	}
}

// healthProber is the optional target surface the chaos scenario polls for
// liveness; only httpTarget implements it (an in-process engine's liveness
// is the process itself).
type healthProber interface {
	probeHealth(ctx context.Context) error
}

type proberOut struct{ probes, failures int }

// runHealthProber polls the target's liveness endpoint until stopped. The
// control plane is exempt from admission control, so under full queues and
// kernel faults every probe must still answer.
func runHealthProber(ctx context.Context, hp healthProber, stop <-chan struct{}) proberOut {
	var out proberOut
	for {
		select {
		case <-stop:
			return out
		default:
		}
		out.probes++
		if err := hp.probeHealth(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: healthz probe failed: %v\n", err)
			out.failures++
		}
		time.Sleep(healthProbePause)
	}
}

// verifyCertificates audits the exact-or-certified contract after the chaos
// run: certSamples fresh tolerance queries go through the (still faulted)
// target, and every one that answers must carry maxError within the
// requested ceiling AND scores within maxError of the oracle — an engine
// built from the same graph with no faults and no tolerance. Queries the
// faults or the admission gate refused are skipped: only answers owe a
// certificate.
func verifyCertificates(ctx context.Context, t target, oracle *simstar.Engine, p profile, seed int64, cj *chaosJSON) {
	rng := rand.New(rand.NewSource(seed*86_243 + 11))
	zipf := rand.NewZipf(rng, p.zipfS, p.zipfV, uint64(p.nodes-1))
	const slack = 1e-12
	for i := 0; i < certSamples; i++ {
		node := int(zipf.Uint64())
		scores, maxErr, err := t.certFetch(ctx, tolMeasure, node, p.tolerance)
		if err != nil {
			cj.CertSkipped++
			continue
		}
		cj.CertChecks++
		if maxErr < 0 || maxErr > p.tolerance+slack {
			cj.CertFailures++
			fmt.Fprintf(os.Stderr, "simbench: cert: node %d maxError %g outside ceiling %g\n", node, maxErr, p.tolerance)
			continue
		}
		exact, err := oracle.SingleSource(ctx, tolMeasure, node)
		if err != nil || len(exact) != len(scores) {
			cj.CertFailures++
			fmt.Fprintf(os.Stderr, "simbench: cert: node %d oracle mismatch (%v, %d vs %d scores)\n", node, err, len(exact), len(scores))
			continue
		}
		for j := range exact {
			if math.Abs(scores[j]-exact[j]) > maxErr+slack {
				cj.CertFailures++
				fmt.Fprintf(os.Stderr, "simbench: cert: node %d score[%d] off by %g, certificate %g\n", node, j, math.Abs(scores[j]-exact[j]), maxErr)
				break
			}
		}
	}
}
