package main

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/simstar"
)

// TestChaosEngineMode runs the chaos scenario against an in-process engine
// with a deterministic fault schedule: the first two kernel invocations
// panic. The ledger must classify every failure as an expected shape (no
// unexpected errors), the run must survive, and the result checksum must be
// withheld (which op a fault eats is schedule-dependent).
func TestChaosEngineMode(t *testing.T) {
	p := tinyProfile(120)
	g, _ := benchGraph(p.nodes, p.deg)
	injector, err := fault.Parse(7, "kernel.panic:x2")
	if err != nil {
		t.Fatal(err)
	}
	tgt := newEngineTarget(g, p.tolerance, simstar.WithFaultHook(injector.Hook()))

	row := runScenario(tgt, p, scenario{name: "chaos", chaos: true}, 1, false)
	cj := row.Chaos
	if cj == nil {
		t.Fatal("chaos scenario produced no chaos ledger")
	}
	if cj.KernelPanics < 1 || cj.KernelPanics > 2 {
		t.Errorf("kernel panics = %d, want 1 or 2 (x2 schedule, possibly both in one batch op)", cj.KernelPanics)
	}
	if cj.UnexpectedErrors != 0 {
		t.Errorf("%d unexpected errors under a pure kernel.panic schedule", cj.UnexpectedErrors)
	}
	if classified := cj.Shed429 + cj.Shed503 + cj.Server500 + cj.KernelPanics +
		cj.Deadline504 + cj.DeadlineExceeded + cj.UnexpectedErrors; classified != row.Errors {
		t.Errorf("ledger classified %d errors, row counted %d", classified, row.Errors)
	}
	if row.ResultChecksum != "" {
		t.Errorf("chaos row must withhold the result checksum, got %q", row.ResultChecksum)
	}
	if row.Ops != p.ops {
		t.Errorf("chaos run completed %d/%d ops", row.Ops, p.ops)
	}

	// The audit against a fault-free oracle: the x2 schedule is exhausted,
	// so every sample must answer with a valid certificate.
	oracle := simstar.NewEngine(g)
	verifyCertificates(context.Background(), tgt, oracle, p, 1, cj)
	if cj.CertChecks != certSamples || cj.CertFailures != 0 {
		t.Errorf("cert audit: %d checks (%d failed, %d skipped), want %d clean",
			cj.CertChecks, cj.CertFailures, cj.CertSkipped, certSamples)
	}
	if len(cj.violations()) != 0 {
		t.Errorf("violations on a clean run: %v", cj.violations())
	}
}

// TestChaosDeadlineClassified: an op with a deadline budget smaller than an
// injected kernel.slow delay must fail with context.DeadlineExceeded and be
// ledgered as a deadline miss, not an unexpected error.
func TestChaosDeadlineClassified(t *testing.T) {
	p := tinyProfile(8)
	g, _ := benchGraph(p.nodes, p.deg)
	injector, err := fault.Parse(3, "kernel.slow:x1:50ms")
	if err != nil {
		t.Fatal(err)
	}
	tgt := newEngineTarget(g, p.tolerance, simstar.WithFaultHook(injector.Hook()))

	_, runErr := tgt.run(context.Background(),
		op{kind: opSingle, measure: simstar.MeasureGeometric, node: 0, deadlineMS: 1})
	if runErr == nil {
		t.Fatal("50ms injected delay beat a 1ms deadline")
	}
	if !errors.Is(runErr, context.DeadlineExceeded) {
		t.Fatalf("deadline miss surfaced as %v, want context.DeadlineExceeded", runErr)
	}
	var cj chaosJSON
	classifyChaosErr(runErr, &cj)
	if cj.DeadlineExceeded != 1 || cj.UnexpectedErrors != 0 {
		t.Errorf("deadline miss ledgered as %+v", cj)
	}
}

func TestDecorateChaos(t *testing.T) {
	ops := []op{
		{kind: opSingle}, {kind: opTopK}, {kind: opBatch}, {kind: opStream}, {kind: opTolerance},
		{kind: opTolerance}, {kind: opSingle},
	}
	decorateChaos(ops)
	for i, o := range ops {
		want := 0
		if i%chaosDeadlineEvery == 0 && (o.kind == opSingle || o.kind == opTolerance) {
			want = chaosDeadlineMS
		}
		if o.deadlineMS != want {
			t.Errorf("op %d (%s): deadlineMS = %d, want %d", i, o.kind, o.deadlineMS, want)
		}
	}
}

func TestClassifyChaosErr(t *testing.T) {
	read := func(c chaosJSON) [8]int {
		return [8]int{c.Shed429, c.Shed503, c.RetryAfterMissing, c.Server500,
			c.KernelPanics, c.Deadline504, c.DeadlineExceeded, c.UnexpectedErrors}
	}
	cases := []struct {
		name string
		err  error
		want [8]int
	}{
		{"429+retry-after", &statusError{code: 429, retryAfter: true}, [8]int{1, 0, 0, 0, 0, 0, 0, 0}},
		{"429 bare", &statusError{code: 429}, [8]int{1, 0, 1, 0, 0, 0, 0, 0}},
		{"503 bare", &statusError{code: 503}, [8]int{0, 1, 1, 0, 0, 0, 0, 0}},
		{"500", &statusError{code: 500}, [8]int{0, 0, 0, 1, 0, 0, 0, 0}},
		{"504", &statusError{code: 504}, [8]int{0, 0, 0, 0, 0, 1, 0, 0}},
		{"418", &statusError{code: 418}, [8]int{0, 0, 0, 0, 0, 0, 0, 1}},
		{"kernel panic sentinel", simstar.ErrKernelPanic, [8]int{0, 0, 0, 0, 1, 0, 0, 0}},
		{"deadline sentinel", context.DeadlineExceeded, [8]int{0, 0, 0, 0, 0, 0, 1, 0}},
		{"panic over the wire", errors.New("batch slot 3: simstar: kernel panic: boom"), [8]int{0, 0, 0, 0, 1, 0, 0, 0}},
		{"deadline over the wire", errors.New("batch slot 1: context deadline exceeded"), [8]int{0, 0, 0, 0, 0, 0, 1, 0}},
		{"connection refused", errors.New("dial tcp: connection refused"), [8]int{0, 0, 0, 0, 0, 0, 0, 1}},
	}
	for _, tc := range cases {
		var cj chaosJSON
		classifyChaosErr(tc.err, &cj)
		if got := read(cj); got != tc.want {
			t.Errorf("%s: ledger %v, want %v", tc.name, got, tc.want)
		}
	}
}
