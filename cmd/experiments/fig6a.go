package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/simstar"
)

func init() {
	register("fig6a", "semantic effectiveness: Kendall/Spearman/NDCG vs ground truth", runFig6a)
}

// measure is a named registry measure at the paper's defaults.
type measure struct {
	name    string
	measure string
}

func (m measure) run(g *simstar.Graph) *simstar.Scores {
	return allPairsOf(g, m.measure, simstar.WithC(0.6), simstar.WithK(5))
}

// paperMeasures returns the five Exp-1 contenders at the paper's defaults
// (C = 0.6, K = 5).
func paperMeasures() []measure {
	return []measure{
		{"eSR*", simstar.MeasureExponentialMemo},
		{"gSR*", simstar.MeasureGeometricMemo},
		{"RWR", simstar.MeasureRWR},
		{"SR", simstar.MeasureSimRank},
		{"PR", simstar.MeasurePRank},
	}
}

// semanticAccuracy runs the Exp-1 protocol on one corpus: stratified
// single-node queries, rankings of all other nodes by each measure, scored
// against the planted-topic oracle with Kendall's τ, Spearman's ρ and
// NDCG@50.
func semanticAccuracy(g *simstar.Graph, corpus *dataset.Corpus, queries []int) *bench.Table {
	n := g.N()
	// Deterministic Kendall subsample keeps the O(N²) tie-aware τ tractable.
	const kendallSample = 250
	sample := make([]int, 0, kendallSample)
	for i := 0; i < kendallSample && i < n; i++ {
		sample = append(sample, i*n/min(kendallSample, n))
	}

	tab := bench.NewTable("measure", "Kendall", "Spearman", "NDCG@50")
	for _, m := range paperMeasures() {
		s := m.run(g)
		var kSum, rSum, nSum float64
		for _, q := range queries {
			truth := make([]float64, n)
			for j := 0; j < n; j++ {
				truth[j] = corpus.TrueSim(q, j)
			}
			got := s.Row(q)
			// Exclude the query itself (its self-score is degenerate).
			got[q] = 0
			truth[q] = 0

			gs := make([]float64, len(sample))
			ts := make([]float64, len(sample))
			for si, node := range sample {
				gs[si] = got[node]
				ts[si] = truth[node]
			}
			kSum += eval.KendallTau(gs, ts)
			rSum += eval.SpearmanRho(got, truth)
			rel := make([]float64, n)
			for j := range rel {
				rel[j] = 4 * truth[j] // grade in [0,4] for NDCG contrast
			}
			nSum += eval.NDCGOfScores(got, rel, 50)
		}
		q := float64(len(queries))
		tab.Add(m.name, kSum/q, rSum/q, nSum/q)
	}
	return tab
}

func runFig6a(cfg config) {
	bench.Section(os.Stdout, "FIG6a", "semantic effectiveness on CitHepTh-s (directed) and DBLP-s (undirected)")
	nCit, nDblp, perGroup := 1200, 1000, 100
	if cfg.quick {
		nCit, nDblp, perGroup = 300, 250, 10
	}

	// CitHepTh-s: directed planted-topic citation corpus.
	cit := dataset.TopicCitation(dataset.TopicCitationOptions{N: nCit, AvgOut: 12, Seed: 101})
	inDeg := make([]int, cit.G.N())
	for i := range inDeg {
		inDeg[i] = cit.G.InDeg(i)
	}
	queries := eval.StratifiedQueries(inDeg, 5, perGroup)
	fmt.Printf("CitHepTh-s: n=%d m=%d (density %.1f), %d queries\n",
		cit.G.N(), cit.G.M(), cit.G.Density(), len(queries))
	semanticAccuracy(cit.G, cit, queries).Render(os.Stdout)

	// DBLP-s: the same corpus family symmetrised — undirected collaboration
	// shape. The paper's claim: on undirected data RWR matches SimRank* and
	// PR matches SR, because edge direction is what separates them.
	dblp := dataset.TopicCitation(dataset.TopicCitationOptions{N: nDblp, AvgOut: 3, Seed: 102})
	und := dblp.G.AsUndirected()
	inDeg = make([]int, und.N())
	for i := range inDeg {
		inDeg[i] = und.InDeg(i)
	}
	queries = eval.StratifiedQueries(inDeg, 5, perGroup)
	fmt.Printf("\nDBLP-s (undirected): n=%d m=%d (density %.1f), %d queries\n",
		und.N(), und.M(), und.Density(), len(queries))
	semanticAccuracy(und, dblp, queries).Render(os.Stdout)

	fmt.Println("\npaper shape: SR* variants highest on directed data (Spearman ≈ 0.91 vs")
	fmt.Println("SR 0.29, RWR 0.12, PR 0.42); on undirected data RWR ties SR* and PR ties SR.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
