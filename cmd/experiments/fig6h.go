package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/simstar"
)

func init() {
	register("fig6h", "memory space of each algorithm", runFig6h)
}

// runFig6h reproduces Fig. 6(h): live-heap growth of each algorithm on the
// DBLP snapshots, measured over the engine-served all-pairs runs so the
// shared caches (built once, before measurement) are excluded. The paper's
// claims: the memo variants stay within the same order of magnitude as
// iter-gSR*/psum-SR (the fine-grained partial sums are freed each
// iteration), while mtx-SR explodes because the SVD destroys sparsity (it
// is therefore run only on the smallest snapshot, as the paper ran it only
// on DBLP).
func runFig6h(cfg config) {
	bench.Section(os.Stdout, "FIG6h", "heap usage per algorithm (DBLP snapshots, ε=.001)")
	const eps = 0.001
	ctx := context.Background()
	tab := bench.NewTable("dataset", "n", "memo-eSR*", "memo-gSR*", "iter-gSR*", "psum-SR", "mtx-SR")
	for _, name := range []string{"D05-s", "D08-s", "D11-s"} {
		p, _ := dataset.ByName(name)
		if cfg.quick {
			p.ScaledN /= 2
		}
		g := p.Build()
		eng := simstar.NewEngine(g, simstar.WithC(0.6))
		row := []interface{}{name, g.N()}
		for _, a := range competitorSuite() {
			a := a
			k := a.kFor(eps)
			row = append(row, heapOf(func() {
				if _, err := eng.With(simstar.WithK(k)).AllPairs(ctx, a.measure); err != nil {
					panic(err)
				}
			}))
		}
		if name == "D05-s" {
			row = append(row, heapOf(func() {
				if _, err := eng.With(simstar.WithRank(15)).AllPairs(ctx, simstar.MeasureMtxSimRank); err != nil {
					panic(err)
				}
			}))
		} else {
			row = append(row, "— (SVD cost-inhibitive)")
		}
		tab.Add(row...)
	}
	tab.Render(os.Stdout)
	fmt.Println("\npaper shape: all iterative algorithms within the same order of")
	fmt.Println("magnitude (memo variants ≈20–30% above iter/psum); mtx-SR at least an")
	fmt.Println("order of magnitude above on the dataset where it runs.")
}

func heapOf(fn func()) string {
	_, used := bench.PeakHeap(fn)
	return bench.MB(used)
}
