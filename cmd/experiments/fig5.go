package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
)

func init() {
	register("fig5", "dataset table (paper Figure 5), scaled versions", runFig5)
}

// runFig5 regenerates the Figure-5 dataset table for the scaled stand-ins:
// the generated |V|, |E| and density next to the paper's originals. Density
// is the column the substitution preserves.
func runFig5(config) {
	bench.Section(os.Stdout, "FIG5", "scaled datasets vs paper originals")
	tab := bench.NewTable("dataset", "N(scaled)", "M(scaled)", "density", "paper N", "paper M", "paper density")
	for _, p := range dataset.Presets {
		g := p.Build()
		tab.Add(p.Name, g.N(), g.M(), fmt.Sprintf("%.1f", g.Density()),
			p.PaperN, p.PaperM, fmt.Sprintf("%.1f", p.Density))
	}
	tab.Render(os.Stdout)
}
