package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/simstar"
)

func init() {
	register("fig6e", "time efficiency of the five algorithms", runFig6e)
}

// timedAlgo names one competitor: a registry measure at a fixed iteration
// count K (derived from the accuracy ε where the experiment calls for it).
// All competitors run through one simstar.Engine per dataset, so the memo
// variants see a pre-mined compression: edge concentration is one-off
// preprocessing (amortised across runs and K values, exactly as the paper
// treats it); its cost is reported separately in Fig. 6(f).
type timedAlgo struct {
	name string
	// kFor maps the shared accuracy target to this algorithm's iteration
	// count (the exponential form needs far fewer iterations for equal ε —
	// that is the paper's Exp-2 headline).
	kFor    func(eps float64) int
	measure string
}

func competitorSuite() []timedAlgo {
	const c = 0.6
	geoK := func(eps float64) int {
		return simstar.IterationsGeometric(simstar.WithC(c), simstar.WithEps(eps))
	}
	expK := func(eps float64) int {
		return simstar.IterationsExponential(simstar.WithC(c), simstar.WithEps(eps))
	}
	return []timedAlgo{
		{"memo-eSR*", expK, simstar.MeasureExponentialMemo},
		{"memo-gSR*", geoK, simstar.MeasureGeometricMemo},
		{"iter-gSR*", geoK, simstar.MeasureGeometric},
		{"psum-SR", geoK, simstar.MeasureSimRank},
	}
}

// timeAlgo times one competitor's all-pairs run off the engine's caches.
func timeAlgo(eng *simstar.Engine, a timedAlgo, k int) interface{} {
	return bench.Timed(func() {
		if _, err := eng.With(simstar.WithK(k)).AllPairs(context.Background(), a.measure); err != nil {
			panic(err)
		}
	})
}

func runFig6e(cfg config) {
	bench.Section(os.Stdout, "FIG6e", "elapsed time (ε=.001 on DBLP snapshots; K sweeps on webgraph/patents)")
	const eps = 0.001

	// Panel 1: D05/D08/D11 at fixed accuracy, including mtx-SR.
	fmt.Println("DBLP snapshots at ε=.001 (C=0.6):")
	tab := bench.NewTable("dataset", "n", "m", "m̃", "memo-eSR*", "memo-gSR*", "iter-gSR*", "psum-SR", "mtx-SR")
	for _, name := range []string{"D05-s", "D08-s", "D11-s"} {
		p, _ := dataset.ByName(name)
		if cfg.quick {
			p.ScaledN /= 2
		}
		g := p.Build()
		eng := simstar.NewEngine(g, simstar.WithC(0.6))
		row := []interface{}{name, g.N(), g.M(), eng.Stats().CompressedEdges}
		for _, a := range competitorSuite() {
			row = append(row, timeAlgo(eng, a, a.kFor(eps)))
		}
		// mtx-SR: rank-15 SVD solver. The paper reports 1457s / 1672s on
		// D08/D11 — cost-inhibitive; we run it everywhere at this scale but
		// it is reliably the slowest.
		dm := bench.Timed(func() {
			if _, err := eng.With(simstar.WithRank(15)).AllPairs(context.Background(), simstar.MeasureMtxSimRank); err != nil {
				panic(err)
			}
		})
		row = append(row, dm)
		tab.Add(row...)
	}
	tab.Render(os.Stdout)

	// Panels 2–3: K sweeps.
	sweeps := []struct {
		preset string
		ks     []int
	}{
		{"WebGoogle-s", []int{5, 10, 15, 20}},
		{"CitPatent-s", []int{3, 6, 9, 12}},
	}
	for _, sw := range sweeps {
		p, _ := dataset.ByName(sw.preset)
		if cfg.quick {
			p.ScaledN /= 2
		}
		g := p.Build()
		eng := simstar.NewEngine(g, simstar.WithC(0.6))
		fmt.Printf("\n%s (n=%d m=%d d=%.1f, m̃=%d), time per #iterations K:\n",
			sw.preset, g.N(), g.M(), g.Density(), eng.Stats().CompressedEdges)
		header := []string{"algorithm"}
		for _, k := range sw.ks {
			header = append(header, fmt.Sprintf("K=%d", k))
		}
		tab := bench.NewTable(header...)
		for _, a := range competitorSuite() {
			row := []interface{}{a.name}
			for _, k := range sw.ks {
				row = append(row, timeAlgo(eng, a, k))
			}
			tab.Add(row...)
		}
		tab.Render(os.Stdout)
	}

	fmt.Println("\npaper shape: memo-eSR* fastest (fewest iterations at equal ε),")
	fmt.Println("memo-gSR* > iter-gSR* > psum-SR (one vs two summations per iteration,")
	fmt.Println("plus fine-grained sharing); mtx-SR slowest on the snapshot panel.")
}
