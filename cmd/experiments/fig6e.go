package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/biclique"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/simrank"
)

func init() {
	register("fig6e", "time efficiency of the five algorithms", runFig6e)
}

// timedAlgo runs one competitor at a fixed iteration count K (derived from
// the accuracy ε where the experiment calls for it). The memo variants take
// a pre-mined compression: edge concentration is one-off preprocessing
// (amortised across runs and K values, exactly as the paper treats it);
// its cost is reported separately in Fig. 6(f).
type timedAlgo struct {
	name string
	// kFor maps the shared accuracy target to this algorithm's iteration
	// count (the exponential form needs far fewer iterations for equal ε —
	// that is the paper's Exp-2 headline).
	kFor func(eps float64) int
	run  func(g *graph.Graph, comp *biclique.Compressed, k int)
}

func competitorSuite() []timedAlgo {
	const c = 0.6
	geoK := func(eps float64) int { return core.Options{C: c, Eps: eps}.IterationsGeometric() }
	expK := func(eps float64) int { return core.Options{C: c, Eps: eps}.IterationsExponential() }
	return []timedAlgo{
		{"memo-eSR*", expK, func(g *graph.Graph, comp *biclique.Compressed, k int) {
			core.ExponentialWithCompressed(g, comp, core.Options{C: c, K: k})
		}},
		{"memo-gSR*", geoK, func(g *graph.Graph, comp *biclique.Compressed, k int) {
			core.GeometricWithCompressed(g, comp, core.Options{C: c, K: k})
		}},
		{"iter-gSR*", geoK, func(g *graph.Graph, _ *biclique.Compressed, k int) {
			core.Geometric(g, core.Options{C: c, K: k})
		}},
		{"psum-SR", geoK, func(g *graph.Graph, _ *biclique.Compressed, k int) {
			simrank.PSum(g, simrank.Options{C: c, K: k})
		}},
	}
}

func runFig6e(cfg config) {
	bench.Section(os.Stdout, "FIG6e", "elapsed time (ε=.001 on DBLP snapshots; K sweeps on webgraph/patents)")
	const eps = 0.001

	// Panel 1: D05/D08/D11 at fixed accuracy, including mtx-SR.
	fmt.Println("DBLP snapshots at ε=.001 (C=0.6):")
	tab := bench.NewTable("dataset", "n", "m", "m̃", "memo-eSR*", "memo-gSR*", "iter-gSR*", "psum-SR", "mtx-SR")
	for _, name := range []string{"D05-s", "D08-s", "D11-s"} {
		p, _ := dataset.ByName(name)
		if cfg.quick {
			p.ScaledN /= 2
		}
		g := p.Build()
		comp := biclique.Compress(g, biclique.Options{})
		row := []interface{}{name, g.N(), g.M(), comp.MCompressed}
		for _, a := range competitorSuite() {
			k := a.kFor(eps)
			d := bench.Timed(func() { a.run(g, comp, k) })
			row = append(row, d)
		}
		// mtx-SR: rank-15 SVD solver. The paper reports 1457s / 1672s on
		// D08/D11 — cost-inhibitive; we run it everywhere at this scale but
		// it is reliably the slowest.
		dm := bench.Timed(func() {
			if _, err := simrank.MtxSR(g, simrank.MtxOptions{C: 0.6, Rank: 15}); err != nil {
				panic(err)
			}
		})
		row = append(row, dm)
		tab.Add(row...)
	}
	tab.Render(os.Stdout)

	// Panels 2–3: K sweeps.
	sweeps := []struct {
		preset string
		ks     []int
	}{
		{"WebGoogle-s", []int{5, 10, 15, 20}},
		{"CitPatent-s", []int{3, 6, 9, 12}},
	}
	for _, sw := range sweeps {
		p, _ := dataset.ByName(sw.preset)
		if cfg.quick {
			p.ScaledN /= 2
		}
		g := p.Build()
		comp := biclique.Compress(g, biclique.Options{})
		fmt.Printf("\n%s (n=%d m=%d d=%.1f, m̃=%d), time per #iterations K:\n",
			sw.preset, g.N(), g.M(), g.Density(), comp.MCompressed)
		header := []string{"algorithm"}
		for _, k := range sw.ks {
			header = append(header, fmt.Sprintf("K=%d", k))
		}
		tab := bench.NewTable(header...)
		for _, a := range competitorSuite() {
			row := []interface{}{a.name}
			for _, k := range sw.ks {
				d := bench.Timed(func() { a.run(g, comp, k) })
				row = append(row, d)
			}
			tab.Add(row...)
		}
		tab.Render(os.Stdout)
	}

	fmt.Println("\npaper shape: memo-eSR* fastest (fewest iterations at equal ε),")
	fmt.Println("memo-gSR* > iter-gSR* > psum-SR (one vs two summations per iteration,")
	fmt.Println("plus fine-grained sharing); mtx-SR slowest on the snapshot panel.")
}
