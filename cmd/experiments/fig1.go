package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/simstar"
)

func init() {
	register("fig1", "similarities on the citation graph (paper Figure 1 table)", runFig1)
}

// allPairsOf runs a registry measure to completion, panicking on error —
// the experiments run under a background context where only a registry typo
// can fail.
func allPairsOf(g *simstar.Graph, name string, opts ...simstar.Option) *simstar.Scores {
	m, err := simstar.Lookup(name, opts...)
	if err != nil {
		panic(err)
	}
	s, err := m.AllPairs(context.Background(), g)
	if err != nil {
		panic(err)
	}
	return s
}

// runFig1 reproduces the Figure-1 table: SR, PR, SR* and RWR scores of the
// seven node pairs the paper lists, at C = 0.8 run to convergence. Paper
// values are printed alongside. Exact magnitudes depend on the edge set
// (reconstructed from the paper's prose, see dataset.Figure1); the zero /
// non-zero pattern and the qualitative ordering are the claims under test.
func runFig1(config) {
	bench.Section(os.Stdout, "FIG1", "node-pair similarities on the Figure-1 citation graph (C=0.8)")
	g := dataset.Figure1()
	opts := []simstar.Option{simstar.WithC(0.8), simstar.WithK(25)}

	// The paper's table uses the (1−C)-normalised matrix-form conventions
	// (Eq. 3 for SimRank and its P-Rank analogue), which makes all four
	// columns directly comparable.
	sr := allPairsOf(g, simstar.MeasureSimRankMatrix, opts...)
	pr := allPairsOf(g, simstar.MeasurePRankMatrix, append(opts, simstar.WithLambda(0.5))...)
	srStar := allPairsOf(g, simstar.MeasureGeometric, opts...)
	rw := allPairsOf(g, simstar.MeasureRWR, opts...)

	paper := map[string][4]string{
		"(h,d)": {"0", ".049", ".010", "0"},
		"(a,f)": {"0", ".075", ".032", ".032"},
		"(a,c)": {"0", "0", ".025", ".024"},
		"(g,a)": {"0", "0", ".025", "0"},
		"(g,b)": {"0", "0", ".075", "0"},
		"(i,a)": {"0", "0", ".015", "0"},
		"(i,h)": {".044", ".041", ".031", "0"},
	}
	pairs := [][2]string{{"h", "d"}, {"a", "f"}, {"a", "c"}, {"g", "a"}, {"g", "b"}, {"i", "a"}, {"i", "h"}}

	tab := bench.NewTable("pair", "SR", "PR", "SR*", "RWR", "paper(SR,PR,SR*,RWR)")
	for _, p := range pairs {
		i, _ := g.NodeByLabel(p[0])
		j, _ := g.NodeByLabel(p[1])
		key := fmt.Sprintf("(%s,%s)", p[0], p[1])
		pv := paper[key]
		tab.Add(key,
			fmt.Sprintf("%.3f", sr.At(i, j)),
			fmt.Sprintf("%.3f", pr.At(i, j)),
			fmt.Sprintf("%.3f", srStar.At(i, j)),
			fmt.Sprintf("%.3f", rw.At(i, j)),
			fmt.Sprintf("%s %s %s %s", pv[0], pv[1], pv[2], pv[3]),
		)
	}
	tab.Render(os.Stdout)
	fmt.Println("\nclaims: SR zero on first six pairs; SR* positive on all seven;")
	fmt.Println("PR rescues (h,d),(a,f) only; RWR positive only on (a,f),(a,c).")
}
