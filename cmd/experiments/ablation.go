package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/simstar"
)

func init() {
	register("ablation", "design-choice ablations (length weight, miner, damping)", runAblation)
}

// runAblation probes the design choices Secs. 3.2 and 4.3 argue for:
//
//  1. Length weight: Cˡ (geometric) vs Cˡ/l! (exponential) vs Cˡ/l (the
//     harmonic candidate the paper rejects as unsimplifiable) — ranking
//     accuracy against the planted oracle is near-identical, supporting the
//     paper's position that the weight is chosen for computability, not
//     semantics.
//  2. Biclique miner strategy: identical-set pass alone vs full pair-seeded
//     mining — compression ratio and mining cost, read off engine stats.
//  3. Damping factor C sensitivity of SimRank* accuracy.
func runAblation(cfg config) {
	bench.Section(os.Stdout, "ABL", "ablations of the paper's design choices")
	n := 600
	if cfg.quick {
		n = 200
	}
	corpus := dataset.TopicCitation(dataset.TopicCitationOptions{N: n, AvgOut: 8, Seed: 401})
	g := corpus.G
	ctx := context.Background()

	// --- 1. Length weights -------------------------------------------------
	fmt.Println("1) length-weight ablation (Spearman vs planted oracle, K=8, C=0.6):")
	inDeg := make([]int, n)
	for i := range inDeg {
		inDeg[i] = g.InDeg(i)
	}
	queries := eval.StratifiedQueries(inDeg, 5, 10)
	weights := []simstar.LengthWeight{
		simstar.GeometricWeight(0.6),
		simstar.ExponentialWeight(0.6),
		simstar.HarmonicWeight(0.6),
	}
	spearmanVsTruth := func(s *simstar.Scores) float64 {
		var sum float64
		for _, q := range queries {
			truth := make([]float64, n)
			for j := 0; j < n; j++ {
				truth[j] = corpus.TrueSim(q, j)
			}
			truth[q] = 0
			row := s.Row(q)
			row[q] = 0
			sum += eval.SpearmanRho(row, truth)
		}
		return sum / float64(len(queries))
	}
	tab := bench.NewTable("length weight", "Spearman", "norm Σw_l")
	for _, w := range weights {
		s := simstar.SeriesWeighted(g, w, 8)
		tab.Add(w.Name, spearmanVsTruth(s), fmt.Sprintf("%.4f", w.Norm))
	}
	tab.Render(os.Stdout)

	// --- 2. Miner strategy -------------------------------------------------
	fmt.Println("\n2) biclique miner ablation (density-10 synthetic, n=" + fmt.Sprint(n) + "):")
	dg := dataset.ErdosRenyi(n, 10*n, 402)
	tab = bench.NewTable("miner", "m̃", "compression %", "#bicliques", "mine time")
	for _, mode := range []struct {
		name  string
		miner simstar.MinerOptions
	}{
		{"identical-set only", simstar.MinerOptions{DisablePairMining: true}},
		{"full (ident + pair-seeded)", simstar.MinerOptions{}},
		{"single pass", simstar.MinerOptions{Passes: 1}},
	} {
		st := simstar.NewEngine(dg, simstar.WithMiner(mode.miner)).Stats()
		tab.Add(mode.name, st.CompressedEdges, fmt.Sprintf("%.1f", st.CompressionRatio),
			st.ConcentrationNodes, st.CompressionTime)
	}
	tab.Render(os.Stdout)

	// --- 3. Damping sensitivity --------------------------------------------
	fmt.Println("\n3) damping-factor sensitivity (gSR*, K from ε=.001):")
	eng := simstar.NewEngine(g)
	tab = bench.NewTable("C", "K(ε=.001)", "Spearman", "time")
	for _, c := range []float64{0.4, 0.6, 0.8} {
		k := simstar.IterationsGeometric(simstar.WithC(c), simstar.WithEps(0.001))
		var rho float64
		d := bench.Timed(func() {
			s, err := eng.With(simstar.WithC(c), simstar.WithK(k)).AllPairs(ctx, simstar.MeasureGeometricMemo)
			if err != nil {
				panic(err)
			}
			rho = spearmanVsTruth(s)
		})
		tab.Add(fmt.Sprintf("%.1f", c), k, rho, d)
	}
	tab.Render(os.Stdout)
	fmt.Println("\nreading: accuracy is weight- and C-robust; the exponential weight wins")
	fmt.Println("on compute (fewer iterations), the full miner wins on compression.")
}
