package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/biclique"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func init() {
	register("ablation", "design-choice ablations (length weight, miner, damping)", runAblation)
}

// runAblation probes the design choices Secs. 3.2 and 4.3 argue for:
//
//  1. Length weight: Cˡ (geometric) vs Cˡ/l! (exponential) vs Cˡ/l (the
//     harmonic candidate the paper rejects as unsimplifiable) — ranking
//     accuracy against the planted oracle is near-identical, supporting the
//     paper's position that the weight is chosen for computability, not
//     semantics.
//  2. Biclique miner strategy: identical-set pass alone vs full pair-seeded
//     mining — compression ratio and mining cost.
//  3. Damping factor C sensitivity of SimRank* accuracy.
func runAblation(cfg config) {
	bench.Section(os.Stdout, "ABL", "ablations of the paper's design choices")
	n := 600
	if cfg.quick {
		n = 200
	}
	corpus := dataset.TopicCitation(dataset.TopicCitationOptions{N: n, AvgOut: 8, Seed: 401})
	g := corpus.G

	// --- 1. Length weights -------------------------------------------------
	fmt.Println("1) length-weight ablation (Spearman vs planted oracle, K=8, C=0.6):")
	inDeg := make([]int, n)
	for i := range inDeg {
		inDeg[i] = g.InDeg(i)
	}
	queries := eval.StratifiedQueries(inDeg, 5, 10)
	weights := []core.LengthWeight{
		core.GeometricWeight(0.6),
		core.ExponentialWeight(0.6),
		core.HarmonicWeight(0.6),
	}
	tab := bench.NewTable("length weight", "Spearman", "norm Σw_l")
	for _, w := range weights {
		s := core.SeriesWeighted(g, w, 8)
		var sum float64
		for _, q := range queries {
			truth := make([]float64, n)
			for j := 0; j < n; j++ {
				truth[j] = corpus.TrueSim(q, j)
			}
			truth[q] = 0
			row := rowOf(s, q)
			row[q] = 0
			sum += eval.SpearmanRho(row, truth)
		}
		tab.Add(w.Name, sum/float64(len(queries)), fmt.Sprintf("%.4f", w.Norm))
	}
	tab.Render(os.Stdout)

	// --- 2. Miner strategy -------------------------------------------------
	fmt.Println("\n2) biclique miner ablation (density-10 synthetic, n=" + fmt.Sprint(n) + "):")
	dg := dataset.ErdosRenyi(n, 10*n, 402)
	tab = bench.NewTable("miner", "m̃", "compression %", "#bicliques", "mine time")
	for _, mode := range []struct {
		name string
		opt  biclique.Options
	}{
		{"identical-set only", biclique.Options{DisablePairMining: true}},
		{"full (ident + pair-seeded)", biclique.Options{}},
		{"single pass", biclique.Options{Passes: 1}},
	} {
		var comp *biclique.Compressed
		d := bench.Timed(func() { comp = biclique.Compress(dg, mode.opt) })
		tab.Add(mode.name, comp.MCompressed, fmt.Sprintf("%.1f", comp.CompressionRatio()),
			comp.NumConcentration(), d)
	}
	tab.Render(os.Stdout)

	// --- 3. Damping sensitivity --------------------------------------------
	fmt.Println("\n3) damping-factor sensitivity (gSR*, K from ε=.001):")
	tab = bench.NewTable("C", "K(ε=.001)", "Spearman", "time")
	for _, c := range []float64{0.4, 0.6, 0.8} {
		opt := core.Options{C: c, Eps: 0.001}
		k := opt.IterationsGeometric()
		var sum float64
		d := bench.Timed(func() {
			s := core.GeometricMemo(g, core.Options{C: c, K: k})
			for _, q := range queries {
				truth := make([]float64, n)
				for j := 0; j < n; j++ {
					truth[j] = corpus.TrueSim(q, j)
				}
				truth[q] = 0
				row := rowOf(s, q)
				row[q] = 0
				sum += eval.SpearmanRho(row, truth)
			}
		})
		tab.Add(fmt.Sprintf("%.1f", c), k, sum/float64(len(queries)), d)
	}
	tab.Render(os.Stdout)
	fmt.Println("\nreading: accuracy is weight- and C-robust; the exponential weight wins")
	fmt.Println("on compute (fewer iterations), the full miner wins on compression.")
}
