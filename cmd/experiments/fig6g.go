package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/simstar"
)

func init() {
	register("fig6g", "effect of graph density on CPU time and compression", runFig6g)
}

// runFig6g reproduces Fig. 6(g): fixed n, density d = m/n swept over
// {10, 20, 30, 40} on synthetic data; elapsed time of the four iterative
// algorithms at ε=.001 plus the edge-concentration compression ratio.
// Denser graphs overlap more in-neighbour sets, so the memo variants'
// advantage and the compression ratio both grow with d — the paper's
// "speedups are sensitive to graph density" claim.
func runFig6g(cfg config) {
	bench.Section(os.Stdout, "FIG6g", "density sweep at ε=.001 (C=0.6), synthetic R-MAT graphs")
	scale := 10 // n = 1024, GTgraph-style heavy-tailed sampler
	if cfg.quick {
		scale = 8
	}
	const eps = 0.001
	densities := []int{10, 20, 30, 40}

	header := []string{"algorithm"}
	for _, d := range densities {
		header = append(header, fmt.Sprintf("d=%d", d))
	}
	tab := bench.NewTable(header...)
	rows := map[string][]interface{}{}
	order := []string{}
	for _, a := range competitorSuite() {
		rows[a.name] = []interface{}{a.name}
		order = append(order, a.name)
	}
	ratios := []interface{}{"compression ratio"}

	for _, d := range densities {
		g := dataset.RMATDefault(scale, d, int64(9000+d))
		eng := simstar.NewEngine(g, simstar.WithC(0.6))
		st := eng.Stats()
		ratios = append(ratios, fmt.Sprintf("%.1f%% (m̃/n=%.1f)",
			st.CompressionRatio, float64(st.CompressedEdges)/float64(g.N())))
		for _, a := range competitorSuite() {
			rows[a.name] = append(rows[a.name], timeAlgo(eng, a, a.kFor(eps)))
		}
	}
	for _, name := range order {
		tab.Add(rows[name]...)
	}
	tab.Add(ratios...)
	tab.Render(os.Stdout)
	fmt.Println("\npaper shape: memo-eSR* beats memo-gSR* beats iter-gSR* beats psum-SR,")
	fmt.Println("with the gap and the compression ratio growing as density rises")
	fmt.Println("(paper: 52.7% compression at d=40).")
}
