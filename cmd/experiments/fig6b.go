package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/simstar"
)

func init() {
	register("fig6b", "role difference of top-ranked node pairs", runFig6b)
}

// runFig6b reproduces Fig. 6(b): for the top x% most-similar pairs under
// each measure, the average difference in role proxy (#-citations on the
// citation corpus, H-index on the coauthor corpus), against the random-pair
// baseline RAN. Reliable measures keep the difference low as x grows;
// measures that degenerate to noise approach RAN.
func runFig6b(cfg config) {
	bench.Section(os.Stdout, "FIG6b", "avg role difference of top-x% similar pairs (lower = more reliable)")
	nCit, nAuth := 1200, 800
	if cfg.quick {
		nCit, nAuth = 300, 200
	}

	// CitHepTh-s with #-citations = in-degree.
	cit := dataset.TopicCitation(dataset.TopicCitationOptions{N: nCit, AvgOut: 12, Seed: 201})
	role := make([]int, cit.G.N())
	for i := range role {
		role[i] = cit.G.InDeg(i)
	}
	fmt.Printf("CitHepTh-s (role = #-citations): n=%d m=%d\n", cit.G.N(), cit.G.M())
	roleDiffTable(cit.G, role, []float64{0.02, 0.2, 2, 20}).Render(os.Stdout)

	// DBLP-s with H-index role; productive authors (6 papers each on
	// average) give the H-index distribution enough spread to discriminate.
	net := dataset.Coauthor(dataset.CoauthorOptions{Authors: nAuth, Papers: 6 * nAuth, Seed: 202})
	hrole := make([]int, nAuth)
	for a := range hrole {
		hrole[a] = net.HIndex(a)
	}
	fmt.Printf("\nDBLP-s (role = H-index): n=%d m=%d\n", net.G.N(), net.G.M())
	roleDiffTable(net.G, hrole, []float64{0.1, 0.5, 1, 5, 10}).Render(os.Stdout)

	fmt.Println("\npaper shape: SR* keeps the smallest difference at every cutoff;")
	fmt.Println("SR converges to random scoring as the cutoff grows; RWR is worst on directed data.")
}

func roleDiffTable(g *simstar.Graph, role []int, cutoffs []float64) *bench.Table {
	n := g.N()
	totalPairs := n * (n - 1) / 2

	// RAN: the expected |role(A) − role(B)| of a uniform random pair.
	rng := rand.New(rand.NewSource(7))
	var ranSum float64
	const ranSamples = 20000
	for s := 0; s < ranSamples; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		d := role[i] - role[j]
		if d < 0 {
			d = -d
		}
		ranSum += float64(d)
	}
	ran := ranSum / ranSamples

	header := []string{"measure"}
	for _, c := range cutoffs {
		header = append(header, fmt.Sprintf("top %.3g%%", c))
	}
	tab := bench.NewTable(header...)
	for _, m := range paperMeasures() {
		s := m.run(g)
		// Symmetrise asymmetric measures (RWR) by max, matching how a
		// retrieval system would treat a pair.
		at := func(i, j int) float64 {
			a, b := s.At(i, j), s.At(j, i)
			if a > b {
				return a
			}
			return b
		}
		maxCount := int(cutoffs[len(cutoffs)-1]/100*float64(totalPairs)) + 1
		pairs := eval.TopPairs(n, at, maxCount)
		row := []interface{}{m.name}
		for _, c := range cutoffs {
			count := int(c / 100 * float64(totalPairs))
			if count < 1 {
				count = 1
			}
			if count > len(pairs) {
				count = len(pairs)
			}
			row = append(row, fmt.Sprintf("%.1f", eval.AvgRoleDiff(pairs[:count], role)))
		}
		tab.Add(row...)
	}
	row := []interface{}{"RAN"}
	for range cutoffs {
		row = append(row, fmt.Sprintf("%.1f", ran))
	}
	tab.Add(row...)
	return tab
}
