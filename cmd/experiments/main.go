// Command experiments regenerates every table and figure of the paper's
// evaluation section (Sec. 5) on the scaled datasets described in DESIGN.md.
//
// Usage:
//
//	experiments [-exp id] [-quick]
//
// where id is one of: fig1, fig5, fig6a, fig6b, fig6c, fig6d, fig6e, fig6f,
// fig6g, fig6h, ablation, all (default all). -quick shrinks workloads for
// smoke runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

type experiment struct {
	id    string
	title string
	run   func(cfg config)
}

type config struct {
	quick bool
}

var registry []experiment

func register(id, title string, run func(cfg config)) {
	registry = append(registry, experiment{id: id, title: title, run: run})
}

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, fig5, fig6a..fig6h, ablation, all)")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	flag.Parse()

	sort.Slice(registry, func(i, j int) bool { return registry[i].id < registry[j].id })
	cfg := config{quick: *quick}
	if *exp == "all" {
		for _, e := range registry {
			e.run(cfg)
		}
		return
	}
	for _, e := range registry {
		if e.id == *exp {
			e.run(cfg)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q; have:\n", *exp)
	for _, e := range registry {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.id, e.title)
	}
	os.Exit(2)
}
