package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/paths"
)

func init() {
	register("fig6d", "% of zero-similarity node pairs (SimRank and RWR)", runFig6d)
}

// runFig6d reproduces Fig. 6(d): on three datasets, the share of node pairs
// afflicted by the zero-similarity issue, split into "completely dissimilar"
// (score identically zero: no symmetric in-link path for SimRank, no
// directed walk for RWR) and "partially missing" (score non-zero but
// contributions of other in-link paths ignored). Percentages are over pairs
// with at least one in-link path within the horizon.
func runFig6d(cfg config) {
	bench.Section(os.Stdout, "FIG6d", "% of pairs with zero-similarity issues (horizon K=5)")
	names := []string{"CitHepTh-s", "DBLP-s", "WebGoogle-s"}
	horizon := 5

	srTab := bench.NewTable("dataset", "zero-SR %", "completely %", "partially %", "paper zero-SR %")
	rwTab := bench.NewTable("dataset", "zero-RWR %", "completely %", "partially %", "paper zero-RWR %")
	paperSR := map[string]string{"CitHepTh-s": "99.92", "DBLP-s": "69.91", "WebGoogle-s": "97.13"}
	paperRW := map[string]string{"CitHepTh-s": "99.84", "DBLP-s": "69.91", "WebGoogle-s": "96.42"}

	for _, name := range names {
		p, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		if cfg.quick {
			p.ScaledN /= 4
		}
		g := p.Build()
		st := paths.Analyze(g, horizon).Stats()
		fmt.Printf("%s: n=%d m=%d, %d/%d pairs have an in-link path\n",
			name, g.N(), g.M(), st.PairsWithPath, st.TotalPairs)
		srTab.Add(name,
			fmt.Sprintf("%.2f", st.SRZeroIssuePct()),
			fmt.Sprintf("%.2f", st.SRCompletelyPct()),
			fmt.Sprintf("%.2f", st.SRPartialPct()),
			paperSR[name])
		rwTab.Add(name,
			fmt.Sprintf("%.2f", st.RWRZeroIssuePct()),
			fmt.Sprintf("%.2f", st.RWRCompletelyPct()),
			fmt.Sprintf("%.2f", st.RWRPartialPct()),
			paperRW[name])
	}
	fmt.Println("\nSimRank column:")
	srTab.Render(os.Stdout)
	fmt.Println("\nRWR column:")
	rwTab.Render(os.Stdout)
	fmt.Println("\npaper shape: the issue afflicts the vast majority of pairs on directed")
	fmt.Println("graphs, less on collaboration graphs; both 'completely' and 'partially'")
	fmt.Println("components are substantial — the motivation for SimRank*.")
}
