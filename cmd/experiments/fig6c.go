package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/simstar"
)

func init() {
	register("fig6c", "average similarity of role-grouped node pairs", runFig6c)
}

// runFig6c reproduces Fig. 6(c): nodes are grouped into 10 roles (deciles of
// #-citations / H-index); for each measure the average similarity of pairs
// within the same decile ("within") and of pairs at each decile distance
// ("cross") is reported. The paper's claims: SimRank* within-role similarity
// is stable; its cross-role similarity decreases with role distance;
// SimRank fluctuates and approaches random scoring across roles.
func runFig6c(cfg config) {
	bench.Section(os.Stdout, "FIG6c", "avg similarity within / across role deciles")
	nCit, nAuth := 1000, 800
	if cfg.quick {
		nCit, nAuth = 300, 200
	}

	cit := dataset.TopicCitation(dataset.TopicCitationOptions{N: nCit, AvgOut: 12, Seed: 301})
	role := make([]int, cit.G.N())
	for i := range role {
		role[i] = cit.G.InDeg(i)
	}
	fmt.Printf("CitHepTh-s (role = #-citations): n=%d m=%d\n", cit.G.N(), cit.G.M())
	decileTables(cit.G, role)

	net := dataset.Coauthor(dataset.CoauthorOptions{Authors: nAuth, Papers: 6 * nAuth, Seed: 302})
	hrole := make([]int, nAuth)
	for a := range hrole {
		hrole[a] = net.HIndex(a)
	}
	fmt.Printf("\nDBLP-s (role = H-index): n=%d m=%d\n", net.G.N(), net.G.M())
	decileTables(net.G, hrole)

	fmt.Println("\npaper shape: eSR* 'within' stays flat; eSR* and RWR 'cross' decrease")
	fmt.Println("with decile distance; SR 'cross' hovers near its random level.")
}

func decileTables(g *simstar.Graph, role []int) {
	n := g.N()
	dec := eval.Deciles(role)
	keys := []int{3, 4, 5, 6, 7, 8, 9, 10}

	subset := []string{"eSR*", "RWR", "SR"} // the three series the figure plots
	for _, mode := range []struct {
		name   string
		within bool
	}{{"within (decile k)", true}, {"cross (decile diff k)", false}} {
		header := []string{mode.name}
		for _, k := range keys {
			header = append(header, fmt.Sprintf("%d", k))
		}
		tab := bench.NewTable(header...)
		for _, m := range paperMeasures() {
			if !contains(subset, m.name) {
				continue
			}
			s := m.run(g)
			at := func(i, j int) float64 {
				a, b := s.At(i, j), s.At(j, i)
				if a > b {
					return a
				}
				return b
			}
			// Normalise each measure by its mean positive score so the
			// series are comparable on one axis (the paper plots raw scores;
			// scales differ across measures either way).
			vals := eval.DecileSimilarity(n, at, dec, mode.within)
			row := []interface{}{m.name}
			for _, k := range keys {
				key := k
				if !mode.within {
					key = k - 2 // cross-distance axis in the figure starts lower
				}
				if v, ok := vals[key]; ok {
					row = append(row, fmt.Sprintf("%.4f", v))
				} else {
					row = append(row, "-")
				}
			}
			tab.Add(row...)
		}
		tab.Render(os.Stdout)
		fmt.Println()
	}
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
