package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/simstar"
)

func init() {
	register("fig6f", "amortised time of the two memo phases", runFig6f)
}

// runFig6f reproduces Fig. 6(f): for memo-eSR* and memo-gSR* at ε=.001, the
// split between the one-off "Compress Bigraph" preprocessing (done inside
// simstar.NewEngine and read off its stats) and the per-run "Share Sums"
// iterations. The paper's claims: compression is one or more orders of
// magnitude cheaper than iterating, and occupies a larger *fraction* of
// memo-eSR*'s total because its iteration phase is shorter.
func runFig6f(cfg config) {
	bench.Section(os.Stdout, "FIG6f", "amortised phase time at ε=.001 (C=0.6)")
	const c, eps = 0.6, 0.001
	kGeo := simstar.IterationsGeometric(simstar.WithC(c), simstar.WithEps(eps))
	kExp := simstar.IterationsExponential(simstar.WithC(c), simstar.WithEps(eps))
	ctx := context.Background()

	tab := bench.NewTable("dataset", "algorithm", "compress", "share sums", "compress %")
	for _, name := range []string{"WebGoogle-s", "CitPatent-s"} {
		p, _ := dataset.ByName(name)
		if cfg.quick {
			p.ScaledN /= 2
		}
		g := p.Build()
		eng := simstar.NewEngine(g, simstar.WithC(c))
		dCompress := eng.Stats().CompressionTime

		dShareG := bench.Timed(func() {
			if _, err := eng.With(simstar.WithK(kGeo)).AllPairs(ctx, simstar.MeasureGeometricMemo); err != nil {
				panic(err)
			}
		})
		dShareE := bench.Timed(func() {
			if _, err := eng.With(simstar.WithK(kExp)).AllPairs(ctx, simstar.MeasureExponentialMemo); err != nil {
				panic(err)
			}
		})
		pctG := 100 * dCompress.Seconds() / (dCompress + dShareG).Seconds()
		pctE := 100 * dCompress.Seconds() / (dCompress + dShareE).Seconds()
		tab.Add(name, fmt.Sprintf("memo-gSR* (K=%d)", kGeo), dCompress, dShareG, fmt.Sprintf("%.1f%%", pctG))
		tab.Add(name, fmt.Sprintf("memo-eSR* (K=%d)", kExp), dCompress, dShareE, fmt.Sprintf("%.1f%%", pctE))
	}
	tab.Render(os.Stdout)
	fmt.Println("\npaper shape: compress ≪ share-sums (preprocessing is cheap); the")
	fmt.Println("compress share is larger for memo-eSR* (13% vs 4% on Web-Google).")
}
