package main

// Chunked NDJSON streaming for the topk and batch endpoints. A request with
// "stream": true answers with Content-Type application/x-ndjson and a body
// of newline-delimited JSON objects, flushed per line so the client renders
// results as they arrive (Transfer-Encoding: chunked on HTTP/1.1):
//
//	header line   — query echo + cached/maxError metadata
//	entry lines   — one ranked entry (topk) or one query result (batch)
//	trailer line  — {"done":true,"count":N}, or on a mid-stream client
//	                disconnect {"error":...,"status":499} (the status line
//	                already said 200, so 499 semantics ride in the trailer
//	                and the server's streams_aborted counter).
//
// Every line is a complete JSON document: however early the client hangs
// up, what it received is well-formed NDJSON.

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/simstar"
)

// streamHeaderJSON is the first NDJSON line of a streamed topk response.
type streamHeaderJSON struct {
	Measure string `json:"measure"`
	Node    int    `json:"node"`
	Label   string `json:"label,omitempty"`
	K       int    `json:"k"`
	Cached  bool   `json:"cached"`
	// MaxError certifies the underlying score vector (see topKResponse).
	MaxError float64 `json:"maxError"`
	// Degraded marks a stream the overload governor downgraded to the
	// certified approximate path (see singleResponse.Degraded).
	Degraded bool `json:"degraded,omitempty"`
}

// streamEntryJSON is one ranked entry line. MaxError is repeated per chunk
// for tolerance queries, so a consumer acting on a prefix of the stream
// holds the certificate without needing the header line.
type streamEntryJSON struct {
	Node     int      `json:"node"`
	Label    string   `json:"label,omitempty"`
	Score    float64  `json:"score"`
	MaxError *float64 `json:"maxError,omitempty"`
}

// streamBatchHeaderJSON is the first NDJSON line of a streamed batch
// response.
type streamBatchHeaderJSON struct {
	Count int `json:"count"`
}

// streamBatchEntryJSON is one batch result line: the enveloping document's
// slot, unrolled and indexed.
type streamBatchEntryJSON struct {
	Index int `json:"index"`
	batchResultJSON
}

// streamTrailerJSON terminates every stream.
type streamTrailerJSON struct {
	Done  bool   `json:"done"`
	Count int    `json:"count"`
	Error string `json:"error,omitempty"`
	// Status carries the effective status of an aborted stream (499); the
	// HTTP status line was already committed as 200 when the body started.
	Status int `json:"status,omitempty"`
	// Trace is the request's stage trace under ?trace=1. It rides in the
	// trailer — not the header — because the stream span is still open when
	// the header line goes out.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// streamWriter emits NDJSON lines, flushing each so the response is
// actually chunked to the client rather than buffered whole. A write error
// (dead connection) latches: subsequent lines are dropped.
type streamWriter struct {
	enc *json.Encoder
	fl  http.Flusher
	err error
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	return &streamWriter{enc: json.NewEncoder(w), fl: fl}
}

// line writes one NDJSON line (Encode appends the newline) and reports
// whether the client is still there.
func (sw *streamWriter) line(v any) bool {
	if sw.err != nil {
		return false
	}
	if sw.err = sw.enc.Encode(v); sw.err != nil {
		return false
	}
	if sw.fl != nil {
		sw.fl.Flush()
	}
	return true
}

// abort terminates a stream the client abandoned: best-effort 499 trailer,
// and the counter that makes these visible in /v1/stats.
func (s *server) abort(sw *streamWriter, count int, err error) {
	s.aborted.Inc()
	trailer := streamTrailerJSON{Count: count, Status: statusClientClosedRequest}
	if err != nil {
		trailer.Error = err.Error()
	} else {
		trailer.Error = "client closed request"
	}
	sw.err = nil // the context died; the pipe may still drain the trailer
	sw.line(trailer)
}

// streamTopK answers one topk query as NDJSON, produced by the engine's
// lazy TopKStream — the serving path never materialises the O(n) score
// vector. Errors before the first byte map to ordinary JSON error
// responses; after that the stream owns the connection.
func (s *server) streamTopK(w http.ResponseWriter, r *http.Request, eng *simstar.Engine, q simstar.Query, tolerance, degraded, traced bool) {
	qe := eng
	if len(q.Opts) > 0 {
		qe = eng.With(q.Opts...)
	}
	// The ?trace=1 trace of a stream covers the serving stages — kernel
	// (stream construction, where all scoring happens) and the emission loop
	// — and rides in the trailer once both spans have closed.
	var tr *obs.Trace
	start := time.Now()
	st, err := qe.TopKStream(r.Context(), q.Measure, q.Node, q.K, q.Exclude...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if traced {
		tr = &obs.Trace{
			Measure:  q.Measure,
			Node:     q.Node,
			K:        q.K,
			Epoch:    qe.Epoch(),
			Cached:   st.Cached(),
			MaxError: st.MaxError(),
		}
		tr.AddSpan("kernel", time.Since(start))
	}
	g := eng.Graph()
	sw := newStreamWriter(w)
	if !sw.line(streamHeaderJSON{
		Measure:  q.Measure,
		Node:     q.Node,
		Label:    labelOf(g, q.Node),
		K:        q.K,
		Cached:   st.Cached(),
		MaxError: st.MaxError(),
		Degraded: degraded,
	}) {
		s.aborted.Inc()
		return
	}
	count := 0
	emit := time.Now()
	for {
		// The drain hard cap force-closes even a healthy stream: the 499
		// trailer tells the client the server, not the network, ended it.
		if s.drainForced.Load() {
			s.abort(sw, count, errDraining)
			return
		}
		if err := r.Context().Err(); err != nil {
			s.abort(sw, count, err)
			return
		}
		rk, ok := st.Next()
		if !ok {
			break
		}
		entry := streamEntryJSON{Node: rk.Node, Label: labelOf(g, rk.Node), Score: rk.Score}
		if tolerance {
			me := st.MaxError()
			entry.MaxError = &me
		}
		if !sw.line(entry) {
			s.aborted.Inc()
			return
		}
		count++
	}
	if tr != nil {
		tr.AddSpan("stream", time.Since(emit))
		tr.Finish(start)
	}
	sw.line(streamTrailerJSON{Done: true, Count: count, Trace: tr})
}

// streamBatch unrolls an assembled batch response into NDJSON: header, one
// indexed line per query slot, trailer. Result lines stream in query order
// with a context check between each, so a consumer of a long batch starts
// acting on early results while later ones are still in flight on the wire.
func (s *server) streamBatch(w http.ResponseWriter, r *http.Request, results []batchResultJSON, tr *obs.Trace, start time.Time) {
	sw := newStreamWriter(w)
	if !sw.line(streamBatchHeaderJSON{Count: len(results)}) {
		s.aborted.Inc()
		return
	}
	count := 0
	emit := time.Now()
	for i := range results {
		if s.drainForced.Load() {
			s.abort(sw, count, errDraining)
			return
		}
		if err := r.Context().Err(); err != nil {
			s.abort(sw, count, err)
			return
		}
		if !sw.line(streamBatchEntryJSON{Index: i, batchResultJSON: results[i]}) {
			s.aborted.Inc()
			return
		}
		count++
	}
	if tr != nil {
		// The batch handler already timed the engine call; the emission loop
		// is the serving stage it could not see.
		tr.AddSpan("stream", time.Since(emit))
		tr.Finish(start)
	}
	sw.line(streamTrailerJSON{Done: true, Count: count, Trace: tr})
}
