package main

// Admission control and certified degradation: the overload half of the
// resilience tier. The query endpoints (single, topk, batch) pass through a
// weighted FIFO admission gate before any engine work starts; control-plane
// and mutation routes (healthz, metrics, stats, measures, graph, edges,
// snapshot) are exempt so an overloaded server stays observable and
// operable. When the gate saturates, requests shed with 429 (queue full) or
// 503 (queued too long / draining) and always carry a Retry-After header —
// the contract a well-behaved client needs to back off instead of retrying
// into the same overload.
//
// Above shedding sits the degradation governor: sustained queue pressure
// (depth at or past the high watermark) flips the server into degraded mode,
// where eligible exact queries are downgraded to the engine's certified
// approximate path at a configured tolerance ceiling. The response carries
// both the "degraded" marker and the maxError certificate, so the client
// knows the answer is approximate and exactly how approximate — the server
// sheds precision, not queries. Hysteresis (depth back at or below the low
// watermark) exits degraded mode without flapping.

import (
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/simstar"
)

// Admission weights by endpoint: what one admitted request is allowed to
// cost relative to the concurrency limit. A batch fans out across the
// engine's sweep pools, so it reserves several tokens.
const (
	weightSingle = 1
	weightTopK   = 1
	weightBatch  = 4
)

// Shed reasons, as they appear in the simstar_shed_total{reason=...} metric
// and the JSON error body.
const (
	shedQueueFull    = "queue_full"
	shedQueueTimeout = "queue_timeout"
	shedDraining     = "draining"
)

var (
	errQueueFull    = errors.New("admission queue full")
	errQueueTimeout = errors.New("admission queue wait exceeded")
	errDraining     = errors.New("server draining")
)

// admissionConfig is the operator-facing tuning of the gate, set from
// simserve flags.
type admissionConfig struct {
	// Limit is the concurrency capacity in weight tokens; 0 disables the
	// gate entirely (queries run unthrottled, the governor never engages).
	Limit int
	// Queue bounds how many requests may wait for tokens before new
	// arrivals shed with 429.
	Queue int
	// Wait bounds how long one request may queue before shedding with 503.
	Wait time.Duration
	// DegradeHigh and DegradeLow are the queue-depth watermarks of the
	// degradation governor: depth >= high enters degraded mode, depth <=
	// low exits it. high <= 0 disables degradation.
	DegradeHigh int
	DegradeLow  int
	// DegradeTolerance is the certified error ceiling degraded queries are
	// downgraded to.
	DegradeTolerance float64
}

// waiter is one queued request: its token weight and the channel the
// releaser closes when the tokens are granted.
type waiter struct {
	weight  int
	ready   chan struct{}
	granted bool
}

// admission is a weighted FIFO semaphore with a bounded waiter queue and a
// queue-depth-driven degradation governor. FIFO matters: granting out of
// order would starve heavy (batch) requests behind a stream of light ones.
type admission struct {
	cfg admissionConfig

	mu       sync.Mutex
	inUse    int
	queue    []*waiter
	degraded bool
}

// newAdmission builds the gate, clamping nonsense configurations: the queue
// is never negative and the low watermark never exceeds the high one.
func newAdmission(cfg admissionConfig) *admission {
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.DegradeLow > cfg.DegradeHigh {
		cfg.DegradeLow = cfg.DegradeHigh
	}
	if cfg.DegradeTolerance <= 0 {
		cfg.DegradeTolerance = 1e-3
	}
	return &admission{cfg: cfg}
}

// clampWeight bounds a request's token cost to the capacity, so a batch
// request on a small -admit-limit still fits (it just reserves everything).
func (a *admission) clampWeight(weight int) int {
	if weight > a.cfg.Limit {
		return a.cfg.Limit
	}
	if weight < 1 {
		return 1
	}
	return weight
}

// updateGovernor re-evaluates the degradation watermarks. Caller holds mu.
func (a *admission) updateGovernor() {
	if a.cfg.DegradeHigh <= 0 {
		return
	}
	depth := len(a.queue)
	if !a.degraded && depth >= a.cfg.DegradeHigh {
		a.degraded = true
	} else if a.degraded && depth <= a.cfg.DegradeLow {
		a.degraded = false
	}
}

// isDegraded reports whether the governor currently has the server in
// degraded mode.
func (a *admission) isDegraded() bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.degraded
}

// queueDepth reports how many requests are waiting for tokens.
func (a *admission) queueDepth() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// acquire reserves weight tokens, queuing FIFO behind earlier arrivals when
// the capacity is exhausted. It sheds with errQueueFull when the waiter
// queue is at its bound and errQueueTimeout when the configured wait
// expires first; a dying request context sheds with its ctx error.
func (a *admission) acquire(done <-chan struct{}, weight int) error {
	weight = a.clampWeight(weight)
	a.mu.Lock()
	if len(a.queue) == 0 && a.inUse+weight <= a.cfg.Limit {
		a.inUse += weight
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.cfg.Queue {
		a.updateGovernor()
		a.mu.Unlock()
		return errQueueFull
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.updateGovernor()
	a.mu.Unlock()

	timer := time.NewTimer(a.cfg.Wait)
	defer timer.Stop()
	select {
	case <-w.ready:
		return nil
	case <-timer.C:
		return a.abandon(w, errQueueTimeout)
	case <-done:
		return a.abandon(w, errDraining)
	}
}

// abandon removes a timed-out or cancelled waiter from the queue. If the
// grant raced the timeout the tokens are already ours — the request
// proceeds rather than leaking them.
func (a *admission) abandon(w *waiter, err error) error {
	a.mu.Lock()
	if w.granted {
		a.mu.Unlock()
		return nil
	}
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			break
		}
	}
	a.updateGovernor()
	a.mu.Unlock()
	return err
}

// release returns a request's tokens and grants the head of the queue while
// capacity allows, preserving arrival order.
func (a *admission) release(weight int) {
	weight = a.clampWeight(weight)
	a.mu.Lock()
	a.inUse -= weight
	for len(a.queue) > 0 {
		head := a.queue[0]
		if a.inUse+head.weight > a.cfg.Limit {
			break
		}
		a.inUse += head.weight
		head.granted = true
		a.queue = a.queue[1:]
		close(head.ready)
	}
	a.updateGovernor()
	a.mu.Unlock()
}

// shed answers a request the gate refused: the mapped status, the reason in
// the body, and the Retry-After a backoff-aware client keys on.
func (s *server) shed(w http.ResponseWriter, code int, reason string, err error) {
	s.shedTotal(reason).Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// admit wraps a query route with the admission gate. Draining is checked
// first — a shutting-down server sheds everything — then tokens are
// acquired (or the request sheds), and the queue wait is recorded whether
// or not admission succeeded.
func (s *server) admit(weight int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.shed(w, http.StatusServiceUnavailable, shedDraining, errDraining)
			return
		}
		if s.adm == nil {
			h(w, r)
			return
		}
		start := time.Now()
		err := s.adm.acquire(r.Context().Done(), weight)
		s.queueWait.Observe(time.Since(start).Seconds())
		switch {
		case errors.Is(err, errQueueFull):
			s.shed(w, http.StatusTooManyRequests, shedQueueFull, err)
		case errors.Is(err, errQueueTimeout):
			s.shed(w, http.StatusServiceUnavailable, shedQueueTimeout, err)
		case err != nil:
			writeError(w, http.StatusServiceUnavailable, r.Context().Err())
		default:
			defer s.adm.release(weight)
			h(w, r)
		}
	}
}

// maybeDegrade downgrades an eligible exact query to the certified
// approximate path while the governor has the server in degraded mode.
// Queries that already asked for a tolerance keep their own certificate,
// and measures without a certified approximate kernel are never downgraded
// — degrading them would trade a correct answer for an uncertified one.
// Reports whether the query was downgraded, which the response surfaces as
// the "degraded" marker next to the maxError certificate.
func (s *server) maybeDegrade(q *simstar.Query, wantsTolerance bool) bool {
	if !s.adm.isDegraded() || wantsTolerance || !simstar.HasCertifiedPath(q.Measure) {
		return false
	}
	q.Opts = append(q.Opts, simstar.WithTolerance(s.adm.cfg.DegradeTolerance))
	s.degradedTotal.Inc()
	return true
}

// beginDrain flips the server into draining: the query routes shed
// everything from here on while in-flight requests finish.
func (s *server) beginDrain() { s.draining.Store(true) }

// forceDrain marks the drain window exhausted: NDJSON emission loops abort
// at their next iteration with an in-band 499 trailer, so even infinite
// streams terminate within one entry of the hard cap.
func (s *server) forceDrain() { s.drainForced.Store(true) }
