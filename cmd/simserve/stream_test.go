package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// ndjsonLines splits a streamed body and asserts every line is a complete
// JSON document — the well-formedness guarantee that must hold for any
// prefix a disconnecting client saw.
func ndjsonLines(t *testing.T, body string) []map[string]any {
	t.Helper()
	var lines []map[string]any
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// The streamed topk response must carry, over the wire with chunked
// transfer encoding, exactly the entries of the materialized response.
func TestTopKStreamNDJSONMatchesMaterialized(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	srv := httptest.NewServer(h)
	defer srv.Close()

	query := `{"measure":"gsimrank*","label":"followup1","k":5}`
	rec := doJSON(t, h, "POST", "/v1/query/topk", json.RawMessage(query))
	if rec.Code != http.StatusOK {
		t.Fatalf("materialized topk: %d: %s", rec.Code, rec.Body)
	}
	var want topKResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	streamed := strings.Replace(query, "}", `,"stream":true}`, 1)
	resp, err := http.Post(srv.URL+"/v1/query/topk", "application/json", strings.NewReader(streamed))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	chunked := false
	for _, te := range resp.TransferEncoding {
		chunked = chunked || te == "chunked"
	}
	if !chunked {
		t.Fatalf("TransferEncoding = %v, want chunked", resp.TransferEncoding)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := ndjsonLines(t, buf.String())
	if len(lines) != len(want.Top)+2 {
		t.Fatalf("%d lines, want header + %d entries + trailer", len(lines), len(want.Top))
	}
	header, entries, trailer := lines[0], lines[1:len(lines)-1], lines[len(lines)-1]
	if header["measure"] != "gsimrank*" || header["label"] != "followup1" {
		t.Fatalf("header = %v", header)
	}
	for i, e := range entries {
		w := want.Top[i]
		if int(e["node"].(float64)) != w.Node || e["score"].(float64) != w.Score || e["label"] != w.Label {
			t.Fatalf("entry %d = %v, want %+v", i, e, w)
		}
		if _, hasErr := e["maxError"]; hasErr {
			t.Fatalf("exact entry %d carries maxError: %v", i, e)
		}
	}
	if trailer["done"] != true || int(trailer["count"].(float64)) != len(want.Top) {
		t.Fatalf("trailer = %v", trailer)
	}
}

// Tolerance queries must repeat the certificate on every chunk.
func TestTopKStreamTolerancePerChunkMaxError(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	rec := doJSON(t, h, "POST", "/v1/query/topk", map[string]any{
		"measure": "gsimrank*", "label": "review", "k": 4,
		"tolerance": 1e-3, "stream": true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	lines := ndjsonLines(t, rec.Body.String())
	if len(lines) < 3 {
		t.Fatalf("only %d lines", len(lines))
	}
	for i, e := range lines[1 : len(lines)-1] {
		me, ok := e["maxError"]
		if !ok {
			t.Fatalf("tolerance entry %d missing per-chunk maxError: %v", i, e)
		}
		if me.(float64) > 1e-3 {
			t.Fatalf("entry %d certificate %v exceeds tolerance", i, me)
		}
	}
}

// The streamed batch response: header with the slot count, one indexed line
// per query (wire-level failures answer in their line), trailer.
func TestBatchStreamNDJSON(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	body := map[string]any{
		"mode":   "topk",
		"stream": true,
		"queries": []map[string]any{
			{"measure": "gsimrank*", "label": "survey", "k": 3},
			{"measure": "rwr", "label": "no-such-node", "k": 3},
			{"measure": "rwr", "label": "review", "k": 2},
		},
	}
	rec := doJSON(t, h, "POST", "/v1/query/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	lines := ndjsonLines(t, rec.Body.String())
	if len(lines) != 5 {
		t.Fatalf("%d lines, want header + 3 entries + trailer", len(lines))
	}
	if int(lines[0]["count"].(float64)) != 3 {
		t.Fatalf("header = %v", lines[0])
	}
	for i, e := range lines[1:4] {
		if int(e["index"].(float64)) != i {
			t.Fatalf("entry %d has index %v", i, e["index"])
		}
	}
	if _, ok := lines[2]["error"]; !ok {
		t.Fatalf("bad-label slot has no error: %v", lines[2])
	}
	if _, ok := lines[1]["top"]; !ok {
		t.Fatalf("good slot has no top: %v", lines[1])
	}
	if lines[4]["done"] != true {
		t.Fatalf("trailer = %v", lines[4])
	}

	// The streamed lines must carry the same results as the enveloping
	// document.
	delete(body, "stream")
	recPlain := doJSON(t, h, "POST", "/v1/query/batch", body)
	var plain batchResponse
	if err := json.Unmarshal(recPlain.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	for i, res := range plain.Results {
		line := lines[i+1]
		if res.Error != "" {
			if line["error"] != res.Error {
				t.Fatalf("slot %d: stream error %v != %q", i, line["error"], res.Error)
			}
			continue
		}
		top := line["top"].([]any)
		if len(top) != len(res.Top) {
			t.Fatalf("slot %d: %d streamed entries, want %d", i, len(top), len(res.Top))
		}
		for j, te := range top {
			e := te.(map[string]any)
			if int(e["node"].(float64)) != res.Top[j].Node || e["score"].(float64) != res.Top[j].Score {
				t.Fatalf("slot %d entry %d: %v != %+v", i, j, e, res.Top[j])
			}
		}
	}
}

// abortWriter is a ResponseWriter whose client "hangs up" after a fixed
// number of flushed lines: it cancels the request context, the way the net
// poller surfaces a closed connection. Writes keep succeeding — what the
// handler emits after the cancellation is exactly what a slow proxy would
// still buffer — so the test can assert the 499 trailer.
type abortWriter struct {
	header      http.Header
	buf         bytes.Buffer
	code        int
	flushes     int
	cancelAfter int
	cancel      context.CancelFunc
}

func (a *abortWriter) Header() http.Header { return a.header }

func (a *abortWriter) WriteHeader(code int) { a.code = code }

func (a *abortWriter) Write(p []byte) (int, error) { return a.buf.Write(p) }

func (a *abortWriter) Flush() {
	a.flushes++
	if a.flushes == a.cancelAfter {
		a.cancel()
	}
}

// A client disconnect mid-stream: the partial body stays well-formed
// NDJSON, the final line carries 499, and the abort is counted in stats.
func TestTopKStreamClientDisconnectMidStream(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := `{"measure":"gsimrank*","label":"followup1","k":6,"stream":true}`
	req := httptest.NewRequest("POST", "/v1/query/topk", strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	// Hang up after the header line and the first entry have been flushed.
	aw := &abortWriter{header: make(http.Header), cancelAfter: 2, cancel: cancel}
	h.ServeHTTP(aw, req)

	if aw.code != http.StatusOK {
		t.Fatalf("status %d (the stream had already committed 200)", aw.code)
	}
	lines := ndjsonLines(t, aw.buf.String())
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 1 entry + abort trailer:\n%s", len(lines), aw.buf.String())
	}
	trailer := lines[len(lines)-1]
	if int(trailer["status"].(float64)) != statusClientClosedRequest {
		t.Fatalf("trailer = %v, want status %d", trailer, statusClientClosedRequest)
	}
	if trailer["done"] == true {
		t.Fatalf("aborted stream claims done: %v", trailer)
	}
	if _, ok := trailer["error"]; !ok {
		t.Fatalf("abort trailer has no error: %v", trailer)
	}
	if got := s.aborted.Value(); got != 1 {
		t.Fatalf("streamsAborted = %d, want 1", got)
	}
	rec := doJSON(t, h, "GET", "/v1/stats", nil)
	var stats statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.StreamsAborted != 1 {
		t.Fatalf("stats streams_aborted = %d, want 1", stats.StreamsAborted)
	}
}

// Batch streams abort the same way.
func TestBatchStreamClientDisconnectMidStream(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := `{"mode":"topk","stream":true,"queries":[` +
		`{"measure":"gsimrank*","label":"survey","k":2},` +
		`{"measure":"rwr","label":"review","k":2},` +
		`{"measure":"rwr","label":"survey","k":2}]}`
	req := httptest.NewRequest("POST", "/v1/query/batch", strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	aw := &abortWriter{header: make(http.Header), cancelAfter: 2, cancel: cancel}
	h.ServeHTTP(aw, req)

	lines := ndjsonLines(t, aw.buf.String())
	trailer := lines[len(lines)-1]
	if int(trailer["status"].(float64)) != statusClientClosedRequest {
		t.Fatalf("trailer = %v, want 499", trailer)
	}
	if len(lines) != 3 { // header + first result + abort trailer
		t.Fatalf("%d lines: %s", len(lines), aw.buf.String())
	}
	if got := s.aborted.Value(); got != 1 {
		t.Fatalf("streamsAborted = %d, want 1", got)
	}
}

// A stream that emitted several chunks before the client hung up must
// record its route latency exactly once — per stream, not per chunk or per
// time.Now() mark inside the chunk loop — and bump streams_aborted exactly
// once, no matter how many chunks were in flight when the abort landed.
func TestAbortedMultiChunkStreamCountsOnce(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)
	lat := s.reg.Histogram("simserve_request_seconds",
		"HTTP request latency in seconds, by route.",
		obs.LatencyBuckets,
		obs.Label{Name: "route", Value: "topk"})
	if lat.Count() != 0 {
		t.Fatalf("latency histogram starts at %d observations", lat.Count())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// k=8 gives header + 8 entry chunks + trailer; hang up after four chunks
	// have been flushed, so the abort lands mid-stream with several chunks
	// already timed and emitted.
	body := `{"measure":"gsimrank*","label":"followup1","k":8,"stream":true}`
	req := httptest.NewRequest("POST", "/v1/query/topk", strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	aw := &abortWriter{header: make(http.Header), cancelAfter: 4, cancel: cancel}
	h.ServeHTTP(aw, req)

	lines := ndjsonLines(t, aw.buf.String())
	if len(lines) < 4 {
		t.Fatalf("only %d lines — the stream never got multi-chunk:\n%s", len(lines), aw.buf.String())
	}
	trailer := lines[len(lines)-1]
	if int(trailer["status"].(float64)) != statusClientClosedRequest {
		t.Fatalf("trailer = %v, want status %d", trailer, statusClientClosedRequest)
	}
	if got := s.aborted.Value(); got != 1 {
		t.Fatalf("streamsAborted = %d after one aborted stream, want exactly 1", got)
	}
	if got := lat.Count(); got != 1 {
		t.Fatalf("route latency observed %d times for one aborted stream, want exactly 1", got)
	}
}

// Errors before the first streamed byte must answer as ordinary JSON with a
// real HTTP status, not as a half-open stream.
func TestStreamErrorsBeforeFirstByte(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	rec := doJSON(t, h, "POST", "/v1/query/topk", map[string]any{
		"measure": "no-such-measure", "label": "survey", "k": 3, "stream": true,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want plain JSON error", ct)
	}
	// And the single endpoint rejects the flag outright.
	rec = doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "rwr", "label": "survey", "stream": true,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("single with stream: status %d, want 400", rec.Code)
	}
}
