package main

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

// loadApproxTestGraph loads an unlabelled random-ish graph big enough for
// the sieve to actually drop mass.
func loadApproxTestGraph(t *testing.T, h http.Handler) {
	t.Helper()
	edges := make([][2]int, 0, 180)
	// Deterministic pseudo-random low-degree wiring (no RNG needed).
	for u := 0; u < 60; u++ {
		for d := 1; d <= 3; d++ {
			edges = append(edges, [2]int{u, (u*7 + d*13) % 60})
		}
	}
	rec := doJSON(t, h, "POST", "/v1/graph", map[string]any{
		"edges":   edges,
		"options": map[string]any{"c": 0.6, "k": 5},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("load graph: status %d: %s", rec.Code, rec.Body)
	}
}

// A single query with a tolerance must answer with a certificate within the
// tolerance, and the certificate must actually bound the deviation from the
// exact answer to the same query.
func TestSingleQueryTolerance(t *testing.T) {
	_, h := newTestServer(t)
	loadApproxTestGraph(t, h)

	// Approximate first, so the request actually exercises the sieved path
	// (a cached exact result would legitimately serve it with maxError 0).
	var approxResp singleResponse
	rec := doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "gsimrank*", "node": 1, "tolerance": 1e-4,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("approx query: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &approxResp); err != nil {
		t.Fatal(err)
	}
	if approxResp.MaxError <= 0 || approxResp.MaxError > 1e-4 {
		t.Fatalf("approx maxError %g outside (0, 1e-4]", approxResp.MaxError)
	}

	var exactResp singleResponse
	rec = doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "gsimrank*", "node": 1,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("exact query: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &exactResp); err != nil {
		t.Fatal(err)
	}
	if exactResp.MaxError != 0 {
		t.Fatalf("exact query reported maxError %g", exactResp.MaxError)
	}
	if exactResp.Cached {
		t.Fatal("exact query must not be served from the approximate entry")
	}
	if len(approxResp.Scores) != len(exactResp.Scores) {
		t.Fatalf("score lengths differ: %d vs %d", len(approxResp.Scores), len(exactResp.Scores))
	}
	for i := range exactResp.Scores {
		if diff := math.Abs(approxResp.Scores[i] - exactResp.Scores[i]); diff > approxResp.MaxError {
			t.Fatalf("node %d: |approx−exact| = %g exceeds maxError %g", i, diff, approxResp.MaxError)
		}
	}

	// Re-asking with the same tolerance re-serves the approximate entry and
	// its original certificate.
	var again singleResponse
	rec = doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "gsimrank*", "node": 1, "tolerance": 1e-4,
	})
	if err := json.Unmarshal(rec.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.MaxError != approxResp.MaxError {
		t.Fatalf("repeat approx query: cached=%v maxError=%g, want cached with %g",
			again.Cached, again.MaxError, approxResp.MaxError)
	}

	// A node cached only exactly serves an approximate request from the
	// exact donor entry: cached, certificate 0.
	rec = doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "gsimrank*", "node": 9,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("exact warmup: status %d: %s", rec.Code, rec.Body)
	}
	var donor singleResponse
	rec = doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "gsimrank*", "node": 9, "tolerance": 1e-4,
	})
	if err := json.Unmarshal(rec.Body.Bytes(), &donor); err != nil {
		t.Fatal(err)
	}
	if !donor.Cached || donor.MaxError != 0 {
		t.Fatalf("donor-served approx query: cached=%v maxError=%g, want cached exact", donor.Cached, donor.MaxError)
	}
}

// The nested options.tolerance spelling must behave identically to the
// top-level shorthand, and the explicit options field must win when both
// are given.
func TestToleranceOptionSpellings(t *testing.T) {
	_, h := newTestServer(t)
	loadApproxTestGraph(t, h)

	var viaOptions singleResponse
	rec := doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "rwr", "node": 2, "options": map[string]any{"tolerance": 1e-3},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("options.tolerance: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &viaOptions); err != nil {
		t.Fatal(err)
	}
	if viaOptions.MaxError <= 0 || viaOptions.MaxError > 1e-3 {
		t.Fatalf("options.tolerance maxError %g outside (0, 1e-3]", viaOptions.MaxError)
	}

	var both singleResponse
	rec = doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "rwr", "node": 2,
		"tolerance": 1e-8, // overridden by the explicit options field below
		"options":   map[string]any{"tolerance": 1e-3},
	})
	if err := json.Unmarshal(rec.Body.Bytes(), &both); err != nil {
		t.Fatal(err)
	}
	if !both.Cached || both.MaxError != viaOptions.MaxError {
		t.Fatalf("options.tolerance should win: cached=%v maxError=%g, want cache hit with %g",
			both.Cached, both.MaxError, viaOptions.MaxError)
	}
}

// TopK and batch responses must carry the certificate too.
func TestTopKAndBatchTolerance(t *testing.T) {
	_, h := newTestServer(t)
	loadApproxTestGraph(t, h)

	var topResp topKResponse
	rec := doJSON(t, h, "POST", "/v1/query/topk", map[string]any{
		"measure": "esimrank*", "node": 3, "k": 5, "tolerance": 1e-4,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("topk: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &topResp); err != nil {
		t.Fatal(err)
	}
	if len(topResp.Top) != 5 {
		t.Fatalf("topk returned %d entries", len(topResp.Top))
	}
	if topResp.MaxError <= 0 || topResp.MaxError > 1e-4 {
		t.Fatalf("topk maxError %g outside (0, 1e-4]", topResp.MaxError)
	}

	var batchResp batchResponse
	rec = doJSON(t, h, "POST", "/v1/query/batch", map[string]any{
		"queries": []map[string]any{
			{"measure": "gsimrank*", "node": 4, "tolerance": 1e-4},
			{"measure": "gsimrank*", "node": 5},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &batchResp); err != nil {
		t.Fatal(err)
	}
	if len(batchResp.Results) != 2 {
		t.Fatalf("batch returned %d results", len(batchResp.Results))
	}
	if e := batchResp.Results[0].MaxError; e <= 0 || e > 1e-4 {
		t.Fatalf("approximate batch query maxError %g outside (0, 1e-4]", e)
	}
	if e := batchResp.Results[1].MaxError; e != 0 {
		t.Fatalf("exact batch query maxError %g, want 0", e)
	}
}
