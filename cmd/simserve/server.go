package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/simstar"
)

// server is the HTTP face of one simstar.Engine. The engine pointer swaps
// atomically under mu when a new graph is loaded; queries in flight keep the
// engine they started with (engines are immutable per graph, so a swap can
// never corrupt them — old ones simply fall out of use). Everything else a
// request needs flows through its context, so client disconnects and server
// shutdown cancel the kernels mid-iteration.
type server struct {
	mu      sync.RWMutex
	eng     *simstar.Engine
	loaded  time.Time
	started time.Time
	served  atomic.Int64

	// snapPath, when set with -snapshot, is where POST /v1/snapshot persists
	// the current epoch for warm restarts. snapMu serialises writers so two
	// concurrent snapshot requests cannot interleave the temp-file dance.
	snapPath string
	snapMu   sync.Mutex

	// reg backs GET /metrics; obsv is the engine observer every served
	// engine shares, so query counters survive graph swaps (see metrics.go).
	reg  *obs.Registry
	obsv *simstar.Observer
	// inflight gauges requests currently being served.
	inflight *obs.Gauge
	// aborted counts NDJSON streams cut short by a client disconnect
	// mid-stream — the 499s that never reach an access log because the
	// status line already said 200.
	aborted *obs.Counter
	// logRequests turns on the per-request access log line; main() sets it,
	// tests leave it off.
	logRequests bool

	// adm is the admission gate in front of the query routes; nil when the
	// server runs without -admit-limit (queries run unthrottled and the
	// degradation governor never engages). See admission.go.
	adm *admission
	// draining sheds all new query work with 503 once shutdown begins;
	// drainForced additionally makes NDJSON emission loops abort at their
	// next iteration when the drain window is exhausted.
	draining    atomic.Bool
	drainForced atomic.Bool
	// faultHook, when simserve runs with -fault, is attached to every
	// engine the server builds so the injector's kernel faults fire inside
	// real queries.
	faultHook func(site string)

	// Resilience instruments (registered unconditionally in initMetrics so
	// the chaos CI job can assert on their presence even at zero).
	shedByReason    map[string]*obs.Counter
	degradedTotal   *obs.Counter
	queueWait       *obs.Histogram
	panicsRecovered *obs.Counter
}

func newServer() *server {
	s := &server{started: time.Now()}
	s.initMetrics()
	return s
}

// engine returns the currently-served engine, or nil before the first load.
func (s *server) engine() *simstar.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng
}

// swap installs a freshly-built engine. The previous engine's result cache
// dies with it — exactly the invalidation-on-graph-change the cache design
// wants, with no epochs or locks on the query path.
func (s *server) swap(eng *simstar.Engine) {
	s.mu.Lock()
	s.eng = eng
	s.loaded = time.Now()
	s.mu.Unlock()
}

// handler builds the route table. Method-qualified patterns (Go 1.22
// net/http) give 405s for free.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/measures", s.instrument("measures", s.handleMeasures))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("POST /v1/graph", s.instrument("graph", s.handleLoadGraph))
	mux.HandleFunc("POST /v1/edges", s.instrument("edges", s.handleEditEdges))
	mux.HandleFunc("DELETE /v1/edges", s.instrument("edges_delete", s.handleDeleteEdges))
	mux.HandleFunc("POST /v1/snapshot", s.instrument("snapshot", s.handleSnapshot))
	// Only the query routes sit behind the admission gate: control-plane
	// and mutation endpoints stay reachable on an overloaded server.
	mux.HandleFunc("POST /v1/query/single", s.instrument("single", s.admit(weightSingle, s.handleSingle)))
	mux.HandleFunc("POST /v1/query/topk", s.instrument("topk", s.admit(weightTopK, s.handleTopK)))
	mux.HandleFunc("POST /v1/query/batch", s.instrument("batch", s.admit(weightBatch, s.handleBatch)))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.served.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// statusClientClosedRequest is nginx's conventional status for requests the
// client abandoned; there is no standard code, and 4xx is the right class.
const statusClientClosedRequest = 499

// writeJSON writes v with status code; encoding errors at this point can
// only mean a dead connection, so they are dropped.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeError maps an error to a JSON error payload: context cancellation
// (client gone), deadline overrun, recovered kernel panics and oversized
// bodies get their own statuses so operators can tell load problems from
// bad requests in access logs.
func writeError(w http.ResponseWriter, code int, err error) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, context.Canceled):
		code = statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, simstar.ErrKernelPanic):
		// A fault inside the kernel is the server's problem, not the
		// request's — and it was isolated, so the process answers 500 and
		// keeps serving.
		code = http.StatusInternalServerError
	case errors.As(err, &tooBig):
		code = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// Body limits: one request must not be able to OOM the server. Graphs are
// bulk data and get a generous cap; query payloads are small by nature.
// maxGraphNodes bounds the node-id space the same way — a 30-byte request
// naming node 10⁹ must not allocate gigabytes of CSR offsets (and ids past
// int32 would silently wrap in the graph builder).
const (
	maxGraphBody  = 1 << 30 // 1 GiB of edge list
	maxQueryBody  = 8 << 20 // 8 MiB of queries
	maxGraphNodes = 1 << 24 // ~16.8M nodes
)

// optionsJSON is the wire form of the simstar options a request may set.
// Pointers distinguish "absent" from zero so e.g. {"k": 0} still means
// "override K to the default-resolving zero" only when explicitly sent.
type optionsJSON struct {
	C         *float64 `json:"c,omitempty"`
	K         *int     `json:"k,omitempty"`
	Eps       *float64 `json:"eps,omitempty"`
	Sieve     *float64 `json:"sieve,omitempty"`
	Tolerance *float64 `json:"tolerance,omitempty"`
	Lambda    *float64 `json:"lambda,omitempty"`
	Delta     *float64 `json:"delta,omitempty"`
	Rank      *int     `json:"rank,omitempty"`
	Workers   *int     `json:"workers,omitempty"`
	CacheSize *int     `json:"cache_size,omitempty"`
}

func (o *optionsJSON) options() []simstar.Option {
	if o == nil {
		return nil
	}
	var opts []simstar.Option
	if o.C != nil {
		opts = append(opts, simstar.WithC(*o.C))
	}
	if o.K != nil {
		opts = append(opts, simstar.WithK(*o.K))
	}
	if o.Eps != nil {
		opts = append(opts, simstar.WithEps(*o.Eps))
	}
	if o.Sieve != nil {
		opts = append(opts, simstar.WithSieve(*o.Sieve))
	}
	if o.Tolerance != nil {
		opts = append(opts, simstar.WithTolerance(*o.Tolerance))
	}
	if o.Lambda != nil {
		opts = append(opts, simstar.WithLambda(*o.Lambda))
	}
	if o.Delta != nil {
		opts = append(opts, simstar.WithDelta(*o.Delta))
	}
	if o.Rank != nil {
		opts = append(opts, simstar.WithRank(*o.Rank))
	}
	if o.Workers != nil {
		opts = append(opts, simstar.WithWorkers(*o.Workers))
	}
	if o.CacheSize != nil {
		opts = append(opts, simstar.WithCacheSize(*o.CacheSize))
	}
	return opts
}

// graphRequest loads or replaces the served graph. Exactly one of EdgeList
// (the SNAP-style text format ReadGraph parses) or Edges (+ optional Nodes
// floor) must be set. Options become the new engine's defaults.
type graphRequest struct {
	EdgeList string       `json:"edge_list,omitempty"`
	Edges    [][2]int     `json:"edges,omitempty"`
	Nodes    int          `json:"nodes,omitempty"`
	Options  *optionsJSON `json:"options,omitempty"`
}

type graphResponse struct {
	Nodes              int     `json:"nodes"`
	Edges              int     `json:"edges"`
	Epoch              uint64  `json:"epoch"`
	PendingEdits       int     `json:"pending_edits,omitempty"`
	CompressedEdges    int     `json:"compressed_edges"`
	ConcentrationNodes int     `json:"concentration_nodes"`
	CompressionRatio   float64 `json:"compression_ratio"`
	TransitionMillis   float64 `json:"transition_ms"`
	CompressionMillis  float64 `json:"compression_ms"`
}

func engineStatsJSON(st simstar.EngineStats) graphResponse {
	return graphResponse{
		Nodes:              st.Nodes,
		Edges:              st.Edges,
		Epoch:              st.Epoch,
		PendingEdits:       st.PendingEdits,
		CompressedEdges:    st.CompressedEdges,
		ConcentrationNodes: st.ConcentrationNodes,
		CompressionRatio:   st.CompressionRatio,
		TransitionMillis:   float64(st.TransitionTime.Microseconds()) / 1e3,
		CompressionMillis:  float64(st.CompressionTime.Microseconds()) / 1e3,
	}
}

// handleLoadGraph builds the engine for a new graph and swaps it in. The
// body may also be a raw text edge list (any non-JSON content type).
func (s *server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxGraphBody)
	var req graphRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") || ct == "" {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding graph request: %w", err))
			return
		}
	} else {
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading edge list body: %w", err))
			return
		}
		req.EdgeList = string(raw)
	}
	var g *simstar.Graph
	switch {
	case req.EdgeList != "" && req.Edges != nil:
		writeError(w, http.StatusBadRequest, errors.New("edge_list and edges are mutually exclusive"))
		return
	case req.EdgeList != "":
		if err := checkEdgeListIDs(req.EdgeList); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var err error
		g, err = simstar.ReadGraph(strings.NewReader(req.EdgeList))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.Edges != nil:
		if req.Nodes > maxGraphNodes {
			writeError(w, http.StatusBadRequest, fmt.Errorf("nodes %d exceeds the limit of %d", req.Nodes, maxGraphNodes))
			return
		}
		for _, e := range req.Edges {
			if e[0] < 0 || e[1] < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("negative node id in edge %v", e))
				return
			}
			if e[0] >= maxGraphNodes || e[1] >= maxGraphNodes {
				writeError(w, http.StatusBadRequest, fmt.Errorf("node id in edge %v exceeds the limit of %d", e, maxGraphNodes))
				return
			}
		}
		g = simstar.GraphFromEdges(req.Nodes, req.Edges)
	default:
		writeError(w, http.StatusBadRequest, errors.New("need edge_list or edges"))
		return
	}
	eng := simstar.NewEngine(g, s.engineOptions(req.Options.options())...)
	s.swap(eng)
	writeJSON(w, http.StatusOK, engineStatsJSON(eng.Stats()))
}

// checkEdgeListIDs pre-scans a numeric edge list for node ids past
// maxGraphNodes before the graph builder allocates O(max id) state. It
// mirrors ReadGraph's format: once any endpoint is non-numeric the whole
// file is labelled — node count is then bounded by the (already capped)
// body size — so scanning stops there.
func checkEdgeListIDs(edgeList string) error {
	sc := bufio.NewScanner(strings.NewReader(edgeList))
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("edge list line %q: want two fields", line)
		}
		u, errU := strconv.Atoi(fields[0])
		v, errV := strconv.Atoi(fields[1])
		if errU != nil || errV != nil {
			return nil // labelled graph
		}
		if u >= maxGraphNodes || v >= maxGraphNodes {
			return fmt.Errorf("node id %d exceeds the limit of %d", max(u, v), maxGraphNodes)
		}
	}
	return nil
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true, "graph_loaded": s.engine() != nil})
}

func (s *server) handleMeasures(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"measures": simstar.Names()})
}

// cacheStatsJSON is the wire form of simstar.CacheStats.
type cacheStatsJSON struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// queryCountsJSON reports the cumulative queries answered since the process
// started, by engine query kind. Sourced from the shared observer, so the
// counts survive graph swaps (unlike the per-engine cache stats).
type queryCountsJSON struct {
	SingleSource uint64 `json:"single_source"`
	Stream       uint64 `json:"stream"`
	Batch        uint64 `json:"batch"`
}

// statsResponse is schema-stable: every key is present in both the loaded
// and the no-graph states (engine and cache are zero-valued before the first
// load), so dashboards and scripts never branch on key absence.
type statsResponse struct {
	Engine      graphResponse   `json:"engine"`
	Cache       cacheStatsJSON  `json:"cache"`
	Queries     queryCountsJSON `json:"queries"`
	GraphLoaded bool            `json:"graph_loaded"`
	LoadedAgoMs float64         `json:"graph_loaded_ago_ms"`
	UptimeMs    float64         `json:"uptime_ms"`
	// RequestCount counts every HTTP request the process served.
	RequestCount int64 `json:"requests"`
	// StreamsAborted counts NDJSON streams the client abandoned mid-body.
	StreamsAborted int64 `json:"streams_aborted"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	resp := statsResponse{
		Queries: queryCountsJSON{
			SingleSource: uint64(snap[`simstar_queries_total{kind="single_source"}`]),
			Stream:       uint64(snap[`simstar_queries_total{kind="stream"}`]),
			Batch:        uint64(snap[`simstar_queries_total{kind="batch"}`]),
		},
		UptimeMs:       float64(time.Since(s.started).Microseconds()) / 1e3,
		RequestCount:   s.served.Load(),
		StreamsAborted: int64(s.aborted.Value()),
	}
	s.mu.RLock()
	eng, loaded := s.eng, s.loaded
	s.mu.RUnlock()
	if eng != nil {
		resp.Engine = engineStatsJSON(eng.Stats())
		cs := eng.CacheStats()
		resp.Cache = cacheStatsJSON{
			Capacity:  cs.Capacity,
			Size:      cs.Size,
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
		}
		resp.GraphLoaded = true
		resp.LoadedAgoMs = float64(time.Since(loaded).Microseconds()) / 1e3
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryJSON is one query on the wire: the node addressed by index or, on
// labelled graphs, by label. Tolerance is first-class sugar for
// options.tolerance (the explicit options field wins when both are set):
// it switches the query to the certified approximate path, and the
// response's maxError reports the certificate.
type queryJSON struct {
	Measure   string       `json:"measure"`
	Node      *int         `json:"node,omitempty"`
	Label     string       `json:"label,omitempty"`
	K         int          `json:"k,omitempty"`
	Exclude   []int        `json:"exclude,omitempty"`
	Tolerance *float64     `json:"tolerance,omitempty"`
	Options   *optionsJSON `json:"options,omitempty"`
	// DeadlineMS is the query's compute budget in milliseconds: when it
	// expires the engine aborts the kernels mid-sweep and the request
	// answers 504.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Stream switches the topk endpoint to the chunked NDJSON response
	// (see stream.go); the single endpoint rejects it.
	Stream bool `json:"stream,omitempty"`
}

// wantsTolerance reports whether the wire query asked for the certified
// approximate path — the queries whose streamed entries carry a per-chunk
// maxError.
func (q *queryJSON) wantsTolerance() bool {
	return q.Tolerance != nil || (q.Options != nil && q.Options.Tolerance != nil)
}

// resolveNode maps the wire query to a node id on g.
func (q *queryJSON) resolveNode(g *simstar.Graph) (int, error) {
	switch {
	case q.Node != nil && q.Label != "":
		return 0, errors.New("node and label are mutually exclusive")
	case q.Node != nil:
		return *q.Node, nil
	case q.Label != "":
		id, ok := g.NodeByLabel(q.Label)
		if !ok {
			return 0, fmt.Errorf("no node labelled %q", q.Label)
		}
		return id, nil
	default:
		return 0, errors.New("need node or label")
	}
}

// toQuery converts the wire form to a batch Query.
func (q *queryJSON) toQuery(g *simstar.Graph) (simstar.Query, error) {
	node, err := q.resolveNode(g)
	if err != nil {
		return simstar.Query{}, err
	}
	if q.Measure == "" {
		return simstar.Query{}, errors.New("need measure")
	}
	var opts []simstar.Option
	if q.Tolerance != nil {
		// The shorthand goes first so an explicit options.tolerance wins.
		opts = append(opts, simstar.WithTolerance(*q.Tolerance))
	}
	if q.DeadlineMS > 0 {
		opts = append(opts, simstar.WithDeadline(time.Duration(q.DeadlineMS)*time.Millisecond))
	}
	opts = append(opts, q.Options.options()...)
	return simstar.Query{
		Measure: q.Measure,
		Node:    node,
		K:       q.K,
		Exclude: q.Exclude,
		Opts:    opts,
	}, nil
}

// requireEngine fetches the current engine or answers 409.
func (s *server) requireEngine(w http.ResponseWriter) *simstar.Engine {
	eng := s.engine()
	if eng == nil {
		writeError(w, http.StatusConflict, errors.New("no graph loaded; POST /v1/graph first"))
	}
	return eng
}

func decodeQuery(w http.ResponseWriter, r *http.Request, g *simstar.Graph) (simstar.Query, *queryJSON, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var qj queryJSON
	if err := json.NewDecoder(r.Body).Decode(&qj); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding query: %w", err))
		return simstar.Query{}, nil, false
	}
	q, err := qj.toQuery(g)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return simstar.Query{}, nil, false
	}
	return q, &qj, true
}

type singleResponse struct {
	Measure string `json:"measure"`
	Node    int    `json:"node"`
	Label   string `json:"label,omitempty"`
	Cached  bool   `json:"cached"`
	// MaxError is the certified element-wise bound on how far the scores
	// can be from the exact kernels: 0 for exact queries, at most the
	// requested tolerance for approximate ones.
	MaxError float64   `json:"maxError"`
	Scores   []float64 `json:"scores"`
	// Degraded marks an exact query the overload governor downgraded to
	// the certified approximate path; MaxError then carries the
	// certificate bounding how approximate (see admission.go).
	Degraded bool `json:"degraded,omitempty"`
	// Trace is the per-query stage trace, present under ?trace=1.
	Trace *obs.Trace `json:"trace,omitempty"`
}

func (s *server) handleSingle(w http.ResponseWriter, r *http.Request) {
	eng := s.requireEngine(w)
	if eng == nil {
		return
	}
	q, qj, ok := decodeQuery(w, r, eng.Graph())
	if !ok {
		return
	}
	if qj.Stream {
		writeError(w, http.StatusBadRequest, errors.New("stream is only supported on the topk and batch endpoints"))
		return
	}
	degraded := s.maybeDegrade(&q, qj.wantsTolerance())
	if traceWanted(r) {
		qe := eng
		if len(q.Opts) > 0 {
			qe = eng.With(q.Opts...)
		}
		scores, tr, err := qe.TraceSingleSource(r.Context(), q.Measure, q.Node)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, singleResponse{
			Measure:  q.Measure,
			Node:     q.Node,
			Label:    labelOf(eng.Graph(), q.Node),
			Cached:   tr.Cached,
			MaxError: tr.MaxError,
			Scores:   scores,
			Degraded: degraded,
			Trace:    tr,
		})
		return
	}
	// One-element batch: same cache, same validation, same kernels.
	res := eng.MultiSource(r.Context(), []simstar.Query{q})[0]
	if res.Err != nil {
		writeError(w, http.StatusBadRequest, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, singleResponse{
		Measure:  q.Measure,
		Node:     q.Node,
		Label:    labelOf(eng.Graph(), q.Node),
		Cached:   res.Cached,
		MaxError: res.MaxError,
		Scores:   res.Scores,
		Degraded: degraded,
	})
}

type rankedJSON struct {
	Node  int     `json:"node"`
	Label string  `json:"label,omitempty"`
	Score float64 `json:"score"`
}

func rankedList(g *simstar.Graph, top []simstar.Ranked) []rankedJSON {
	out := make([]rankedJSON, len(top))
	for i, r := range top {
		out[i] = rankedJSON{Node: r.Node, Label: labelOf(g, r.Node), Score: r.Score}
	}
	return out
}

func labelOf(g *simstar.Graph, node int) string {
	if !g.Labeled() {
		return ""
	}
	return g.Label(node)
}

type topKResponse struct {
	Measure string `json:"measure"`
	Node    int    `json:"node"`
	Label   string `json:"label,omitempty"`
	Cached  bool   `json:"cached"`
	// MaxError certifies the underlying score vector the ranking was drawn
	// from; two nodes whose exact scores differ by less than it may rank in
	// either order.
	MaxError float64      `json:"maxError"`
	Top      []rankedJSON `json:"top"`
	// Degraded marks a query the overload governor downgraded to the
	// certified approximate path (see singleResponse.Degraded).
	Degraded bool `json:"degraded,omitempty"`
	// Trace is the per-query stage trace, present under ?trace=1.
	Trace *obs.Trace `json:"trace,omitempty"`
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	eng := s.requireEngine(w)
	if eng == nil {
		return
	}
	q, qj, ok := decodeQuery(w, r, eng.Graph())
	if !ok {
		return
	}
	degraded := s.maybeDegrade(&q, qj.wantsTolerance())
	if qj.Stream {
		s.streamTopK(w, r, eng, q, qj.wantsTolerance() || degraded, degraded, traceWanted(r))
		return
	}
	if traceWanted(r) {
		qe := eng
		if len(q.Opts) > 0 {
			qe = eng.With(q.Opts...)
		}
		top, tr, err := qe.TraceTopK(r.Context(), q.Measure, q.Node, q.K, q.Exclude...)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, topKResponse{
			Measure:  q.Measure,
			Node:     q.Node,
			Label:    labelOf(eng.Graph(), q.Node),
			Cached:   tr.Cached,
			MaxError: tr.MaxError,
			Top:      rankedList(eng.Graph(), top),
			Degraded: degraded,
			Trace:    tr,
		})
		return
	}
	res := eng.BatchTopK(r.Context(), []simstar.Query{q})[0]
	if res.Err != nil {
		writeError(w, http.StatusBadRequest, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, topKResponse{
		Measure:  q.Measure,
		Node:     q.Node,
		Label:    labelOf(eng.Graph(), q.Node),
		Cached:   res.Cached,
		MaxError: res.MaxError,
		Top:      rankedList(eng.Graph(), res.Top),
		Degraded: degraded,
	})
}

// batchRequest runs a batch of queries. Mode selects what each query
// returns: "scores" (default) full vectors via MultiSource, "topk" ranked
// lists via BatchTopK.
type batchRequest struct {
	Mode    string      `json:"mode,omitempty"`
	Queries []queryJSON `json:"queries"`
	// DeadlineMS is a budget for the whole batch in milliseconds (on top
	// of any per-query deadline_ms): when it expires the engine call is
	// cancelled and the request answers 504.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Stream switches the response to chunked NDJSON: one line per query
	// result instead of one enveloping JSON document (see stream.go).
	Stream bool `json:"stream,omitempty"`
}

type batchResultJSON struct {
	// Node is present only when the query resolved to a node; a query that
	// failed resolution (e.g. an unknown label) has no node to report.
	Node   *int   `json:"node,omitempty"`
	Label  string `json:"label,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// MaxError is the per-query certificate (see singleResponse.MaxError).
	MaxError float64      `json:"maxError,omitempty"`
	Scores   []float64    `json:"scores,omitempty"`
	Top      []rankedJSON `json:"top,omitempty"`
	// Degraded marks a slot the overload governor downgraded to the
	// certified approximate path (see singleResponse.Degraded).
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchResultJSON `json:"results"`
	// Trace is the request-level stage trace (node -1, queries = slot
	// count), present under ?trace=1.
	Trace *obs.Trace `json:"trace,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	eng := s.requireEngine(w)
	if eng == nil {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding batch request: %w", err))
		return
	}
	topk := false
	switch req.Mode {
	case "", "scores":
	case "topk":
		topk = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q (want scores or topk)", req.Mode))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	// The batch-level budget rides the request context so it also bounds
	// response assembly and streaming, not just the engine call.
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	// Queries that fail wire-level resolution (unknown label, missing
	// measure) answer in their own slot and never reach the engine — no
	// spurious cache misses, no made-up node ids in the response.
	g := eng.Graph()
	resp := batchResponse{Results: make([]batchResultJSON, len(req.Queries))}
	queries := make([]simstar.Query, 0, len(req.Queries))
	slot := make([]int, 0, len(req.Queries))
	degraded := make([]bool, 0, len(req.Queries))
	for i := range req.Queries {
		q, err := req.Queries[i].toQuery(g)
		if err != nil {
			resp.Results[i] = batchResultJSON{Label: req.Queries[i].Label, Error: err.Error()}
			continue
		}
		degraded = append(degraded, s.maybeDegrade(&q, req.Queries[i].wantsTolerance()))
		queries = append(queries, q)
		slot = append(slot, i)
	}
	// Batches trace at request level: one obs.Trace covering the whole
	// engine call and the response assembly, not one per slot.
	var tr *obs.Trace
	if traceWanted(r) {
		tr = &obs.Trace{Node: -1, Queries: len(queries), Epoch: eng.Epoch()}
	}
	start := time.Now()
	// The traced variants record the batch planner's per-group routing in
	// tr.Plan; with tr nil they are exactly BatchTopK/MultiSource.
	var results []simstar.Result
	if topk {
		results = eng.BatchTopKTrace(ctx, queries, tr)
	} else {
		results = eng.MultiSourceTrace(ctx, queries, tr)
	}
	if tr != nil {
		tr.AddSpan("batch", time.Since(start))
	}
	// The whole batch answers 200 unless the request itself died (client
	// gone, batch deadline overrun): per-query failures ride in their
	// result slot.
	if err := ctx.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	t1 := time.Now()
	assembleBatchResults(g, resp.Results, queries, slot, degraded, results)
	if tr != nil {
		tr.AddSpan("assemble", time.Since(t1))
	}
	if req.Stream {
		// streamBatch adds the emission span and finishes the trace.
		s.streamBatch(w, r, resp.Results, tr, start)
		return
	}
	if tr != nil {
		tr.Finish(start)
		resp.Trace = tr
	}
	writeJSON(w, http.StatusOK, resp)
}

// assembleBatchResults fills each computed query's slot of dst; slots of
// queries that failed wire-level resolution were answered at decode time.
// degraded runs parallel to queries and marks the slots the overload
// governor downgraded.
func assembleBatchResults(g *simstar.Graph, dst []batchResultJSON, queries []simstar.Query, slot []int, degraded []bool, results []simstar.Result) {
	for j, res := range results {
		node := queries[j].Node
		out := batchResultJSON{Node: &node}
		if res.Err != nil {
			out.Error = res.Err.Error()
		} else {
			out.Label = labelOf(g, node)
			out.Cached = res.Cached
			out.MaxError = res.MaxError
			out.Scores = res.Scores
			out.Top = rankedList(g, res.Top)
			out.Degraded = degraded[j]
		}
		dst[slot[j]] = out
	}
}

// editsRequest is the wire form of POST /v1/edges: two parallel edge lists.
// Within one request, insertions are applied before deletions (so an edge in
// both lists ends up absent).
type editsRequest struct {
	Insert [][2]int `json:"insert,omitempty"`
	Delete [][2]int `json:"delete,omitempty"`
}

// deleteEdgesRequest is the wire form of DELETE /v1/edges.
type deleteEdgesRequest struct {
	Edges [][2]int `json:"edges"`
}

// editsResponse reports what an edge-mutation request did: the epoch now
// served, what actually changed, and the incremental refresh cost.
type editsResponse struct {
	Epoch        uint64  `json:"epoch"`
	Applied      int     `json:"applied"`
	Inserted     int     `json:"inserted"`
	Removed      int     `json:"removed"`
	PendingEdits int     `json:"pending_edits,omitempty"`
	Refreshed    bool    `json:"refreshed"`
	RefreshMs    float64 `json:"refresh_ms"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
}

// checkEditEndpoints bounds mutation node ids the same way graph loading
// does: an insertion naming node 10⁹ must not grow gigabytes of CSR.
func checkEditEndpoints(edges [][2]int) error {
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 {
			return fmt.Errorf("negative node id in edge %v", e)
		}
		if e[0] >= maxGraphNodes || e[1] >= maxGraphNodes {
			return fmt.Errorf("node id in edge %v exceeds the limit of %d", e, maxGraphNodes)
		}
	}
	return nil
}

// applyEdits funnels both mutation endpoints through the engine's versioned
// store. The engine pointer is read once; a concurrent POST /v1/graph swap
// means the edits land on the graph that was being served when the request
// arrived — the response's epoch and sizes always describe the engine the
// edits actually went to.
func (s *server) applyEdits(w http.ResponseWriter, edits []simstar.Edit) {
	eng := s.requireEngine(w)
	if eng == nil {
		return
	}
	st, err := eng.ApplyEdits(edits...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, editsResponse{
		Epoch:        st.Epoch,
		Applied:      st.Applied,
		Inserted:     st.Inserted,
		Removed:      st.Removed,
		PendingEdits: st.Pending,
		Refreshed:    st.Refreshed,
		RefreshMs:    float64(st.RefreshTime.Microseconds()) / 1e3,
		Nodes:        st.Nodes,
		Edges:        st.Edges,
	})
}

// handleEditEdges streams a mixed batch of insertions and deletions into the
// served graph.
func (s *server) handleEditEdges(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req editsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding edits request: %w", err))
		return
	}
	if len(req.Insert) == 0 && len(req.Delete) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("need insert or delete edges"))
		return
	}
	if err := checkEditEndpoints(req.Insert); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := checkEditEndpoints(req.Delete); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	edits := make([]simstar.Edit, 0, len(req.Insert)+len(req.Delete))
	for _, e := range req.Insert {
		edits = append(edits, simstar.InsertEdge(e[0], e[1]))
	}
	for _, e := range req.Delete {
		edits = append(edits, simstar.DeleteEdge(e[0], e[1]))
	}
	s.applyEdits(w, edits)
}

// handleDeleteEdges removes a batch of edges.
func (s *server) handleDeleteEdges(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req deleteEdgesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding delete request: %w", err))
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("need edges"))
		return
	}
	if err := checkEditEndpoints(req.Edges); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	edits := make([]simstar.Edit, 0, len(req.Edges))
	for _, e := range req.Edges {
		edits = append(edits, simstar.DeleteEdge(e[0], e[1]))
	}
	s.applyEdits(w, edits)
}

type snapshotResponse struct {
	Path  string `json:"path"`
	Epoch uint64 `json:"epoch"`
	Bytes int64  `json:"bytes"`
}

// handleSnapshot persists the current epoch's graph to the -snapshot path
// (write to a temp file, then rename, so a crash mid-write never corrupts
// the warm-restart image). 409 when the server was started without one.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	eng := s.requireEngine(w)
	if eng == nil {
		return
	}
	if s.snapPath == "" {
		writeError(w, http.StatusConflict, errors.New("no snapshot path configured; start simserve with -snapshot"))
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	tmp := s.snapPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// The returned snapshot is the version actually written — a mutation
	// racing this request must not make the response lie about the file.
	snap, err := eng.WriteSnapshot(f)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	size, _ := f.Seek(0, io.SeekCurrent)
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if err := os.Rename(tmp, s.snapPath); err != nil {
		os.Remove(tmp)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{Path: s.snapPath, Epoch: snap.Epoch, Bytes: size})
}
