package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/simstar"
)

// newAdmittedServer builds a test server with the admission gate armed and,
// optionally, a kernel hook the engine fires on every kernel entry.
func newAdmittedServer(t *testing.T, cfg admissionConfig, hook func(site string)) (*server, http.Handler) {
	t.Helper()
	s := newServer()
	s.adm = newAdmission(cfg)
	s.faultHook = hook
	h := s.handler()
	loadTestGraph(t, h)
	return s, h
}

func singleQuery(measure string) map[string]any {
	return map[string]any{"measure": measure, "label": "survey"}
}

// A saturated gate with no queue must shed the second request with 429 and
// a Retry-After header while the first still holds the tokens.
func TestAdmissionShedsQueueFull(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	_, h := newAdmittedServer(t, admissionConfig{Limit: 1, Queue: 0, Wait: 50 * time.Millisecond},
		func(string) {
			entered <- struct{}{}
			<-release
		})

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(singleQuery("gsimrank*"))
		req := httptest.NewRequest("POST", "/v1/query/single", &buf)
		h.ServeHTTP(rec, req)
		firstDone <- rec
	}()
	<-entered // the first request is inside the kernel, holding the token

	rec := doJSON(t, h, "POST", "/v1/query/single", singleQuery("gsimrank*"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated gate answered %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	close(release)
	if first := <-firstDone; first.Code != http.StatusOK {
		t.Fatalf("admitted request answered %d: %s", first.Code, first.Body)
	}
}

// A queued request whose wait budget expires must shed with 503, again with
// Retry-After.
func TestAdmissionShedsQueueTimeout(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s, h := newAdmittedServer(t, admissionConfig{Limit: 1, Queue: 4, Wait: 20 * time.Millisecond},
		func(string) {
			entered <- struct{}{}
			<-release
		})
	defer close(release)

	go func() {
		rec := httptest.NewRecorder()
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(singleQuery("gsimrank*"))
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query/single", &buf))
	}()
	<-entered

	rec := doJSON(t, h, "POST", "/v1/query/single", singleQuery("gsimrank*"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request answered %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	snap := s.reg.Snapshot()
	if snap[`simstar_shed_total{reason="queue_timeout"}`] != 1 {
		t.Fatalf("shed counter not incremented: %v", snap[`simstar_shed_total{reason="queue_timeout"}`])
	}
	if snap["simstar_queue_wait_seconds_count"] < 1 {
		t.Fatal("queue wait histogram saw no observations")
	}
}

// Once draining starts, query routes shed everything with 503 while the
// control plane stays reachable.
func TestDrainingShedsQueriesNotControlPlane(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)
	s.beginDrain()

	rec := doJSON(t, h, "POST", "/v1/query/single", singleQuery("gsimrank*"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("draining shed missing Retry-After")
	}
	for _, path := range []string{"/healthz", "/metrics", "/v1/stats"} {
		if rec := doJSON(t, h, "GET", path, nil); rec.Code != http.StatusOK {
			t.Fatalf("control-plane %s answered %d while draining", path, rec.Code)
		}
	}
}

// Degraded mode must downgrade eligible exact queries to the certified
// approximate path: the response carries the degraded marker and a maxError
// certificate that actually bounds the deviation from the exact answer.
func TestDegradedModeCertified(t *testing.T) {
	s, h := newAdmittedServer(t, admissionConfig{
		Limit: 4, Queue: 8, Wait: 100 * time.Millisecond,
		DegradeHigh: 1, DegradeLow: 0, DegradeTolerance: 1e-3,
	}, nil)

	// Exact baseline before the governor engages.
	var exact singleResponse
	rec := doJSON(t, h, "POST", "/v1/query/single", singleQuery("gsimrank*"))
	if rec.Code != http.StatusOK {
		t.Fatalf("exact query: %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Degraded || exact.MaxError != 0 {
		t.Fatalf("unloaded server degraded a query: %+v", exact)
	}

	s.adm.mu.Lock()
	s.adm.degraded = true
	s.adm.mu.Unlock()

	var deg singleResponse
	rec = doJSON(t, h, "POST", "/v1/query/single", singleQuery("gsimrank*"))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded query: %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &deg); err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Fatal("degraded mode did not mark the response")
	}
	// On a graph this small the sieve may drop nothing — a certificate of
	// exactly 0 then means "certified exact", which is fine; what must hold
	// is the ceiling.
	if deg.MaxError < 0 || deg.MaxError > 1e-3 {
		t.Fatalf("degraded certificate %g outside [0, 1e-3]", deg.MaxError)
	}
	for i := range exact.Scores {
		if d := math.Abs(deg.Scores[i] - exact.Scores[i]); d > deg.MaxError+1e-12 {
			t.Fatalf("score %d off by %g, certificate promised %g", i, d, deg.MaxError)
		}
	}
	if got := s.reg.Snapshot()["simstar_degraded_total"]; got < 1 {
		t.Fatalf("simstar_degraded_total = %g, want >= 1", got)
	}

	// A query that asked for its own tolerance keeps it (no double
	// degrade), and a measure without a certified path is never downgraded.
	withTol := singleQuery("gsimrank*")
	withTol["tolerance"] = 1e-6
	rec = doJSON(t, h, "POST", "/v1/query/single", withTol)
	var own singleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &own); err != nil {
		t.Fatal(err)
	}
	if own.Degraded || own.MaxError > 1e-6 {
		t.Fatalf("tolerance query was degraded: %+v", own)
	}
	rec = doJSON(t, h, "POST", "/v1/query/single", singleQuery("simrank"))
	var sr singleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || sr.Degraded || sr.MaxError != 0 {
		t.Fatalf("uncertified measure was degraded: %d %+v", rec.Code, sr)
	}
}

// An injected kernel panic answers 500 — isolated, counted, and gone: the
// very next request must succeed.
func TestKernelPanicAnswers500AndServerSurvives(t *testing.T) {
	in, err := fault.Parse(7, "kernel.panic:x1")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer()
	s.faultHook = in.Hook()
	h := s.handler()
	loadTestGraph(t, h)

	rec := doJSON(t, h, "POST", "/v1/query/single", singleQuery("gsimrank*"))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("kernel panic answered %d, want 500: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "panic") {
		t.Fatalf("error body does not mention the panic: %s", rec.Body)
	}
	rec = doJSON(t, h, "POST", "/v1/query/single", singleQuery("gsimrank*"))
	if rec.Code != http.StatusOK {
		t.Fatalf("server did not survive the kernel panic: %d: %s", rec.Code, rec.Body)
	}
}

// A panic in the serving layer itself (not the kernels) is caught by the
// per-request barrier: 500 to the client, counter incremented, process
// intact.
func TestHandlerPanicRecovered(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.instrument("boom", func(http.ResponseWriter, *http.Request) {
		panic("serving-layer bug")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("recovered panic answered %d, want 500", rec.Code)
	}
	if got := s.reg.Snapshot()["simserve_panics_recovered_total"]; got != 1 {
		t.Fatalf("simserve_panics_recovered_total = %g, want 1", got)
	}
}

// deadline_ms must abort a slow kernel with 504, on the single endpoint and
// at batch level.
func TestDeadlineMSAnswers504(t *testing.T) {
	_, h := newAdmittedServer(t, admissionConfig{Limit: 4, Queue: 8, Wait: time.Second},
		func(string) { time.Sleep(30 * time.Millisecond) })

	q := singleQuery("gsimrank*")
	q["deadline_ms"] = 1
	rec := doJSON(t, h, "POST", "/v1/query/single", q)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline answered %d, want 504: %s", rec.Code, rec.Body)
	}

	rec = doJSON(t, h, "POST", "/v1/query/batch", map[string]any{
		"deadline_ms": 1,
		"queries":     []map[string]any{singleQuery("gsimrank*"), singleQuery("rwr")},
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired batch deadline answered %d, want 504: %s", rec.Code, rec.Body)
	}
}

// The drain hard cap must terminate a stream with the in-band 499 trailer
// rather than leaving the client on a silently dead connection.
func TestForceDrainEndsStreamWith499Trailer(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)
	s.forceDrain()
	// Force-drain only cuts emission loops; admission still runs, so reach
	// the stream through a non-draining gate state by resetting draining.
	s.draining.Store(false)

	q := singleQuery("gsimrank*")
	q["k"] = 5
	q["stream"] = true
	rec := doJSON(t, h, "POST", "/v1/query/topk", q)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d, want 200 (499 rides in the trailer)", rec.Code)
	}
	var lines []string
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 2 {
		t.Fatalf("forced stream emitted %d lines, want header+trailer: %v", len(lines), lines)
	}
	var trailer streamTrailerJSON
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer.Done || trailer.Status != statusClientClosedRequest {
		t.Fatalf("trailer %+v, want status 499", trailer)
	}
	if !strings.Contains(trailer.Error, "draining") {
		t.Fatalf("trailer error %q does not mention draining", trailer.Error)
	}
}

// The startup snapshot loader retries transient read failures and succeeds
// once the (deterministic) fault schedule runs dry — and gives up with the
// underlying error when it does not.
func TestLoadSnapshotRetries(t *testing.T) {
	g, err := simstar.ReadGraph(strings.NewReader(testGraphEdgeList))
	if err != nil {
		t.Fatal(err)
	}
	eng := simstar.NewEngine(g)
	path := filepath.Join(t.TempDir(), "snap.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	in, err := fault.Parse(1, "snapshot.err:x2")
	if err != nil {
		t.Fatal(err)
	}
	got, epoch, err := loadSnapshot(path, in, 2)
	if err != nil {
		t.Fatalf("retry did not recover from 2 injected failures: %v", err)
	}
	if epoch != 0 || got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("reloaded %d nodes / %d edges at epoch %d", got.N(), got.M(), epoch)
	}

	in, err = fault.Parse(1, "snapshot.err:x100")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSnapshot(path, in, 1); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("persistent failure surfaced as %v, want fault.ErrInjected", err)
	}
}
