package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// scrape fetches /metrics and parses the exposition text; every scrape must
// be well-formed Prometheus text or the test dies on the spot.
func scrape(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	rec := doJSON(t, h, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != prometheusContentType {
		t.Fatalf("/metrics content type %q, want %q", ct, prometheusContentType)
	}
	vals, err := obs.ParseText(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, rec.Body)
	}
	return vals
}

// The /metrics endpoint must account for every request by route, mirror the
// engine's query counters, and read the live graph state through the gauges.
func TestMetricsEndpointCountsRequests(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)

	single := json.RawMessage(`{"measure":"gsimrank*","label":"survey"}`)
	for i := 0; i < 2; i++ {
		if rec := doJSON(t, h, "POST", "/v1/query/single", single); rec.Code != http.StatusOK {
			t.Fatalf("single: %d: %s", rec.Code, rec.Body)
		}
	}
	if rec := doJSON(t, h, "POST", "/v1/query/topk", json.RawMessage(`{"measure":"rwr","label":"review","k":3}`)); rec.Code != http.StatusOK {
		t.Fatalf("topk: %d: %s", rec.Code, rec.Body)
	}
	if rec := doJSON(t, h, "POST", "/v1/query/topk", json.RawMessage(`{"measure":"gsimrank*","label":"review","k":3,"stream":true}`)); rec.Code != http.StatusOK {
		t.Fatalf("stream topk: %d: %s", rec.Code, rec.Body)
	}
	batch := json.RawMessage(`{"mode":"topk","queries":[{"measure":"gsimrank*","label":"survey","k":2},{"measure":"esimrank*","label":"review","k":2}]}`)
	if rec := doJSON(t, h, "POST", "/v1/query/batch", batch); rec.Code != http.StatusOK {
		t.Fatalf("batch: %d: %s", rec.Code, rec.Body)
	}
	// A bad request must land in the error counter, not just the total.
	if rec := doJSON(t, h, "POST", "/v1/query/single", json.RawMessage(`{"measure":"gsimrank*","label":"nope"}`)); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad single: %d", rec.Code)
	}

	vals := scrape(t, h)
	wantRoutes := map[string]float64{
		`simserve_requests_total{route="graph"}`:        1,
		`simserve_requests_total{route="single"}`:       3,
		`simserve_requests_total{route="topk"}`:         2,
		`simserve_requests_total{route="batch"}`:        1,
		`simserve_request_errors_total{route="single"}`: 1,
	}
	for key, want := range wantRoutes {
		if got := vals[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	// Engine-side counters flow into the same registry: the single endpoint
	// serves through a one-element batch, topk through BatchTopK, and the
	// streamed topk through the stream path.
	wantQueries := map[string]float64{
		`simstar_queries_total{kind="batch"}`:  2 + 1 + 2, // 2 single + 1 topk + 2 batch slots
		`simstar_queries_total{kind="stream"}`: 1,
	}
	for key, want := range wantQueries {
		if got := vals[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	if vals[`simserve_request_seconds_count{route="single"}`] != 3 {
		t.Errorf("latency histogram count = %g, want 3", vals[`simserve_request_seconds_count{route="single"}`])
	}
	// The scrape observes itself mid-flight: exactly one request (the
	// /metrics GET rendering the snapshot) is in the gauge.
	if vals["simserve_inflight_requests"] != 1 {
		t.Errorf("inflight = %g during the scrape, want 1 (the scrape itself)", vals["simserve_inflight_requests"])
	}
	if vals["simserve_graph_loaded"] != 1 || vals["simserve_graph_nodes"] != 7 || vals["simserve_graph_edges"] != 9 {
		t.Errorf("graph gauges wrong: loaded=%g nodes=%g edges=%g",
			vals["simserve_graph_loaded"], vals["simserve_graph_nodes"], vals["simserve_graph_edges"])
	}
	if vals["simstar_kernel_seconds_count"] == 0 {
		t.Error("no kernel latencies observed through the served engine")
	}
}

// Query counters must be cumulative across graph swaps: a new engine shares
// the server's observer, only the per-engine cache stats reset.
func TestMetricsSurviveGraphSwap(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	single := json.RawMessage(`{"measure":"gsimrank*","label":"survey"}`)
	if rec := doJSON(t, h, "POST", "/v1/query/single", single); rec.Code != http.StatusOK {
		t.Fatalf("single: %d", rec.Code)
	}
	before := scrape(t, h)[`simstar_queries_total{kind="batch"}`]
	loadTestGraph(t, h) // swap in a fresh engine
	if rec := doJSON(t, h, "POST", "/v1/query/single", single); rec.Code != http.StatusOK {
		t.Fatalf("single after swap: %d", rec.Code)
	}
	after := scrape(t, h)[`simstar_queries_total{kind="batch"}`]
	if after != before+1 {
		t.Fatalf("query counter %g -> %g across a graph swap, want +1", before, after)
	}
}

// ?trace=1 must embed the per-query stage trace in every response shape:
// single, topk, request-level batch, and the NDJSON trailer of a stream.
func TestTraceParameter(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)

	plain := doJSON(t, h, "POST", "/v1/query/single", json.RawMessage(`{"measure":"gsimrank*","label":"survey"}`))
	var want singleResponse
	if err := json.Unmarshal(plain.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, h, "POST", "/v1/query/single?trace=1", json.RawMessage(`{"measure":"gsimrank*","label":"survey"}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("traced single: %d: %s", rec.Code, rec.Body)
	}
	var got singleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil {
		t.Fatal("traced single carries no trace")
	}
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("traced scores length %d, want %d", len(got.Scores), len(want.Scores))
	}
	for i := range want.Scores {
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("traced scores differ at %d", i)
		}
	}
	stages := map[string]bool{}
	for _, sp := range got.Trace.Spans {
		stages[sp.Stage] = true
	}
	for _, stage := range []string{"plan", "cache"} {
		if !stages[stage] {
			t.Errorf("single trace missing %q span: %+v", stage, got.Trace.Spans)
		}
	}
	// The untraced request above warmed the cache, so the traced one hits.
	if !got.Trace.Cached || !got.Cached {
		t.Errorf("traced repeat query not served from cache: %+v", got.Trace)
	}

	rec = doJSON(t, h, "POST", "/v1/query/topk?trace=1", json.RawMessage(`{"measure":"rwr","label":"review","k":3}`))
	var topk topKResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &topk); err != nil {
		t.Fatal(err)
	}
	if topk.Trace == nil || topk.Trace.K != 3 {
		t.Fatalf("topk trace missing or wrong K: %+v", topk.Trace)
	}

	batch := json.RawMessage(`{"queries":[{"measure":"gsimrank*","label":"survey"},{"measure":"esimrank*","label":"review"}]}`)
	rec = doJSON(t, h, "POST", "/v1/query/batch?trace=1", batch)
	var br batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	if br.Trace == nil || br.Trace.Queries != 2 || br.Trace.Node != -1 {
		t.Fatalf("batch trace missing or wrong shape: %+v", br.Trace)
	}
	if len(br.Trace.Spans) == 0 || br.Trace.Spans[0].Stage != "batch" {
		t.Fatalf("batch trace spans: %+v", br.Trace.Spans)
	}

	rec = doJSON(t, h, "POST", "/v1/query/topk?trace=1", json.RawMessage(`{"measure":"gsimrank*","label":"review","k":3,"stream":true}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("traced stream: %d: %s", rec.Code, rec.Body)
	}
	lines := ndjsonLines(t, rec.Body.String())
	trailer := lines[len(lines)-1]
	if trailer["done"] != true {
		t.Fatalf("stream trailer not done: %v", trailer)
	}
	tr, ok := trailer["trace"].(map[string]any)
	if !ok {
		t.Fatalf("stream trailer carries no trace: %v", trailer)
	}
	if tr["measure"] != "gsimrank*" {
		t.Errorf("stream trace measure = %v", tr["measure"])
	}
	// An untraced stream must keep its trailer lean.
	rec = doJSON(t, h, "POST", "/v1/query/topk", json.RawMessage(`{"measure":"gsimrank*","label":"review","k":3,"stream":true}`))
	lines = ndjsonLines(t, rec.Body.String())
	if _, has := lines[len(lines)-1]["trace"]; has {
		t.Error("untraced stream trailer carries a trace")
	}
}

// /v1/stats must be schema-stable: the same keys in the no-graph and loaded
// states, with cumulative query counts from the shared observer.
func TestStatsSchemaStable(t *testing.T) {
	_, h := newTestServer(t)

	keysOf := func(rec string) map[string]bool {
		var m map[string]any
		if err := json.Unmarshal([]byte(rec), &m); err != nil {
			t.Fatal(err)
		}
		keys := map[string]bool{}
		for k := range m {
			keys[k] = true
		}
		return keys
	}
	empty := doJSON(t, h, "GET", "/v1/stats", nil)
	if empty.Code != http.StatusOK {
		t.Fatalf("stats without a graph: %d", empty.Code)
	}
	emptyKeys := keysOf(empty.Body.String())
	for _, k := range []string{"engine", "cache", "queries", "graph_loaded", "graph_loaded_ago_ms", "uptime_ms", "requests", "streams_aborted"} {
		if !emptyKeys[k] {
			t.Errorf("no-graph stats missing key %q", k)
		}
	}
	var st statsResponse
	if err := json.Unmarshal(empty.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.GraphLoaded || st.Engine.Nodes != 0 || st.Queries.SingleSource != 0 {
		t.Fatalf("no-graph stats not zero-valued: %+v", st)
	}

	loadTestGraph(t, h)
	if rec := doJSON(t, h, "POST", "/v1/query/single", json.RawMessage(`{"measure":"gsimrank*","label":"survey"}`)); rec.Code != http.StatusOK {
		t.Fatalf("single: %d", rec.Code)
	}
	if rec := doJSON(t, h, "POST", "/v1/query/topk", json.RawMessage(`{"measure":"gsimrank*","label":"review","k":3,"stream":true}`)); rec.Code != http.StatusOK {
		t.Fatalf("stream: %d", rec.Code)
	}
	loaded := doJSON(t, h, "GET", "/v1/stats", nil)
	loadedKeys := keysOf(loaded.Body.String())
	for k := range emptyKeys {
		if !loadedKeys[k] {
			t.Errorf("loaded stats dropped key %q", k)
		}
	}
	for k := range loadedKeys {
		if !emptyKeys[k] {
			t.Errorf("key %q appears only when a graph is loaded", k)
		}
	}
	if err := json.Unmarshal(loaded.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries.Batch == 0 || st.Queries.Stream != 1 {
		t.Fatalf("loaded stats query counts wrong: %+v", st.Queries)
	}
}

// Scraping /metrics while edits churn epochs and queries run concurrently
// must always parse, and the counters must be monotonic scrape over scrape.
// Run under -race this also proves the registry and the observer hooks are
// data-race free against the edit path.
func TestMetricsScrapeDuringChurn(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)

	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			body := json.RawMessage(fmt.Sprintf(`{"insert":[[%d,%d]]}`, i%5, (i+3)%7))
			doJSON(t, h, "POST", "/v1/edges", body)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			doJSON(t, h, "POST", "/v1/query/single", json.RawMessage(fmt.Sprintf(`{"measure":"gsimrank*","node":%d}`, i%7)))
			doJSON(t, h, "POST", "/v1/query/topk", json.RawMessage(fmt.Sprintf(`{"measure":"rwr","node":%d,"k":3,"stream":true}`, i%7)))
		}
	}()

	monotonic := []string{
		`simserve_requests_total{route="single"}`,
		`simserve_requests_total{route="edges"}`,
		`simstar_queries_total{kind="batch"}`,
		`simstar_queries_total{kind="stream"}`,
		"simstar_kernel_sweeps_total",
	}
	prev := map[string]float64{}
	for i := 0; i < rounds; i++ {
		vals := scrape(t, h) // dies if the exposition ever fails to parse
		for _, key := range monotonic {
			if vals[key] < prev[key] {
				t.Fatalf("%s went backwards: %g -> %g", key, prev[key], vals[key])
			}
			prev[key] = vals[key]
		}
	}
	wg.Wait()
	final := scrape(t, h)
	if got := final[`simserve_requests_total{route="single"}`]; got != rounds {
		t.Fatalf("single route counter = %g, want %d", got, rounds)
	}
	if got := final[`simserve_requests_total{route="edges"}`]; got != rounds {
		t.Fatalf("edges route counter = %g, want %d", got, rounds)
	}
}
