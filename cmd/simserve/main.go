// Command simserve serves simstar similarity queries over HTTP/JSON: the
// serving layer the ROADMAP's north star asks for, put on top of the
// Engine's amortised preprocessing and the MultiSource/BatchTopK batch
// paths. One process serves one graph at a time; loading a new graph swaps
// in a freshly-preprocessed engine (and with it a fresh result cache)
// without interrupting queries already running against the old one, and
// streamed edge mutations evolve the served graph in place through the
// dyngraph versioned store — each batch materialises a new epoch whose
// preprocessing is refreshed incrementally, never rebuilt.
//
// Endpoints:
//
//	GET    /healthz          liveness + whether a graph is loaded
//	GET    /metrics          Prometheus text exposition: request, engine and kernel metrics
//	GET    /v1/measures      registered measure names
//	GET    /v1/stats         engine preprocessing + epoch + result-cache + process stats
//	POST   /v1/graph         load/replace the graph (JSON edges or text edge list)
//	POST   /v1/edges         stream edge mutations ({"insert": [[u,v]...], "delete": [[u,v]...]})
//	DELETE /v1/edges         remove edges ({"edges": [[u,v]...]})
//	POST   /v1/snapshot      persist the current epoch to the -snapshot path
//	POST   /v1/query/single  one single-source score vector
//	POST   /v1/query/topk    one ranked top-k query
//	POST   /v1/query/batch   many queries in one request (mode: scores | topk)
//
// With -snapshot, a binary image written by POST /v1/snapshot is reloaded at
// the next start (epoch included), so the server warm-restarts without
// re-parsing an edge list or replaying mutations.
//
// The query endpoints accept ?trace=1, which embeds a per-query stage trace
// (plan/cache/kernel spans plus kernel counters) in the JSON response — in
// the NDJSON trailer for streamed responses. GET /metrics exposes the
// cumulative counters behind those traces in the Prometheus text format;
// they survive graph swaps because every engine shares one observer.
//
// Each request's context flows into the iterative kernels, so a client
// disconnect aborts the computation mid-iteration. SIGINT/SIGTERM drain
// in-flight requests before exit (bounded by -drain).
//
// See README.md for curl examples and ARCHITECTURE.md for the request
// lifecycle and the dyngraph epoch design.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers used by -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/simstar"
)

func main() {
	addr := flag.String("addr", ":8451", "listen address")
	graphPath := flag.String("graph", "", "edge-list file to serve at startup (optional; POST /v1/graph works any time)")
	snapPath := flag.String("snapshot", "", "binary snapshot path: loaded at startup if present (overriding -graph), written by POST /v1/snapshot")
	c := flag.Float64("c", 0, "damping factor for the startup engine (0 = paper default)")
	k := flag.Int("k", 0, "iteration count for the startup engine (0 = paper default)")
	cacheSize := flag.Int("cache", 0, "result-cache capacity in entries (0 = default, negative = disabled)")
	epochEvery := flag.Int("epoch-interval", 0, "edits buffered before materialising a graph epoch (<=1 = every mutation request)")
	drain := flag.Duration("drain", 10*time.Second, "how long shutdown waits for in-flight requests")
	drainGrace := flag.Duration("drain-grace", time.Second, "after the drain window, how long force-closed NDJSON streams get to emit their 499 trailer before connections are cut")
	pprofAddr := flag.String("pprof", "", "optional listen address for net/http/pprof (e.g. localhost:6060); profiling is off when empty")
	admitLimit := flag.Int("admit-limit", 0, "admission concurrency limit in weight tokens for the query endpoints (0 = no admission control)")
	admitQueue := flag.Int("admit-queue", 64, "bounded admission queue: requests past this depth shed with 429")
	admitWait := flag.Duration("admit-wait", 100*time.Millisecond, "max time a request may wait in the admission queue before shedding with 503")
	degradeHigh := flag.Int("degrade-high", 0, "queue depth at which the governor degrades eligible exact queries to the certified approximate path (0 = never degrade)")
	degradeLow := flag.Int("degrade-low", 0, "queue depth at which the governor exits degraded mode (hysteresis)")
	degradeTol := flag.Float64("degrade-tolerance", 1e-3, "certified error ceiling for degraded queries")
	faultSpec := flag.String("fault", "", "fault-injection spec, e.g. 'kernel.panic:0.02,kernel.slow:0.1:2ms,snapshot.err:x2' (empty = no injection)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault schedule")
	snapRetries := flag.Int("snapshot-retries", 2, "startup snapshot read retries before giving up")
	flag.Parse()

	// Opt-in profiling sidecar: the pprof handlers live on their own
	// listener (http.DefaultServeMux), never on the serving mux, so enabling
	// profiling on localhost exposes nothing on the query port.
	if *pprofAddr != "" {
		go func() {
			log.Printf("simserve: pprof listening on %s (/debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("simserve: pprof server: %v", err)
			}
		}()
	}

	injector, err := fault.Parse(*faultSeed, *faultSpec)
	if err != nil {
		log.Fatalf("simserve: %v", err)
	}
	if injector != nil {
		log.Printf("simserve: fault injection armed: %s (seed %d)", injector, *faultSeed)
	}

	srv := newServer()
	srv.snapPath = *snapPath
	srv.logRequests = true
	srv.faultHook = injector.Hook()
	if *admitLimit > 0 {
		srv.adm = newAdmission(admissionConfig{
			Limit:            *admitLimit,
			Queue:            *admitQueue,
			Wait:             *admitWait,
			DegradeHigh:      *degradeHigh,
			DegradeLow:       *degradeLow,
			DegradeTolerance: *degradeTol,
		})
	}
	opts := func() []simstar.Option {
		var opts []simstar.Option
		if *c > 0 {
			opts = append(opts, simstar.WithC(*c))
		}
		if *k > 0 {
			opts = append(opts, simstar.WithK(*k))
		}
		if *cacheSize != 0 {
			opts = append(opts, simstar.WithCacheSize(*cacheSize))
		}
		if *epochEvery > 1 {
			opts = append(opts, simstar.WithEpochInterval(*epochEvery))
		}
		return opts
	}

	// Startup graph: a warm-restart snapshot wins over -graph, because it is
	// the later state — it carries the epochs of every mutation served since
	// the edge list was first loaded.
	switch {
	case *snapPath != "", *graphPath != "":
		var (
			g     *simstar.Graph
			epoch uint64
			src   string
			err   error
		)
		if *snapPath != "" {
			g, epoch, err = loadSnapshot(*snapPath, injector, *snapRetries)
			src = *snapPath
			if err != nil && !os.IsNotExist(err) {
				log.Fatalf("simserve: %s: %v", *snapPath, err)
			}
		}
		if g == nil && *graphPath != "" {
			g, err = loadEdgeList(*graphPath)
			src = *graphPath
			if err != nil {
				log.Fatalf("simserve: %s: %v", *graphPath, err)
			}
		}
		if g != nil {
			eng := simstar.NewEngine(g, srv.engineOptions(append(opts(), simstar.WithBaseEpoch(epoch)))...)
			srv.swap(eng)
			st := eng.Stats()
			log.Printf("simserve: serving %s: %d nodes, %d edges, epoch %d (compression %.1f%% in %v)",
				src, st.Nodes, st.Edges, st.Epoch, st.CompressionRatio, st.CompressionTime.Round(time.Millisecond))
		}
	}

	runServer(srv, *addr, *drain, *drainGrace)
}

// loadEdgeList reads a startup graph in the text edge-list format.
func loadEdgeList(path string) (*simstar.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return simstar.ReadGraph(f)
}

// loadSnapshot reads a warm-restart binary snapshot with bounded
// retry-and-backoff: a transient read failure (flaky disk, fault injection)
// re-opens the file up to retries more times, doubling a 50ms backoff
// between attempts, while a missing file is reported immediately with
// os.IsNotExist so the caller can fall back to -graph. The strict snapshot
// framing makes the retry safe — a partially-read or corrupt image can
// never validate, so the only snapshot a retry can load is a whole one.
func loadSnapshot(path string, injector *fault.Injector, retries int) (*simstar.Graph, uint64, error) {
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			log.Printf("simserve: %s: retrying snapshot read in %v (attempt %d/%d): %v",
				path, backoff, attempt+1, retries+1, lastErr)
			time.Sleep(backoff)
			backoff *= 2
		}
		g, epoch, err := readSnapshotOnce(path, injector)
		if err == nil {
			return g, epoch, nil
		}
		if os.IsNotExist(err) {
			return nil, 0, err
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("snapshot read failed after %d attempts: %w", retries+1, lastErr)
}

// readSnapshotOnce is one snapshot read attempt, with the fault injector's
// reader wrapped around the file when injection is armed.
func readSnapshotOnce(path string, injector *fault.Injector) (*simstar.Graph, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return simstar.ReadSnapshot(injector.Reader(f))
}

// runServer serves until SIGINT/SIGTERM, then drains in three stages: shed
// new query work immediately, wait up to drain for in-flight requests, and
// past that force-close NDJSON streams (in-band 499 trailer) with grace to
// flush before connections are cut.
func runServer(srv *server, addr string, drain, grace time.Duration) {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("simserve: listening on %s", addr)

	select {
	case err := <-errc:
		log.Fatalf("simserve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("simserve: shutting down (draining up to %v)", drain)
	// Stage 1: shed all new query work so the drain window belongs to the
	// requests already in flight.
	srv.beginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			httpSrv.Close()
			log.Fatalf("simserve: shutdown: %v", err)
		}
		// Stage 2: drain window exhausted. Force NDJSON streams to end
		// themselves with an in-band 499 trailer, give them grace to flush
		// it, then cut whatever is left — cancelling the stragglers'
		// request contexts and thereby their kernels.
		fmt.Fprintln(os.Stderr, "simserve: drain window exhausted, force-closing streams")
		srv.forceDrain()
		time.Sleep(grace)
		httpSrv.Close()
	}
}
