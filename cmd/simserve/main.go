// Command simserve serves simstar similarity queries over HTTP/JSON: the
// serving layer the ROADMAP's north star asks for, put on top of the
// Engine's amortised preprocessing and the MultiSource/BatchTopK batch
// paths. One process serves one graph at a time; loading a new graph swaps
// in a freshly-preprocessed engine (and with it a fresh result cache)
// without interrupting queries already running against the old one.
//
// Endpoints:
//
//	GET  /healthz          liveness + whether a graph is loaded
//	GET  /v1/measures      registered measure names
//	GET  /v1/stats         engine preprocessing + result-cache + process stats
//	POST /v1/graph         load/replace the graph (JSON edges or text edge list)
//	POST /v1/query/single  one single-source score vector
//	POST /v1/query/topk    one ranked top-k query
//	POST /v1/query/batch   many queries in one request (mode: scores | topk)
//
// Each request's context flows into the iterative kernels, so a client
// disconnect aborts the computation mid-iteration. SIGINT/SIGTERM drain
// in-flight requests before exit (bounded by -drain).
//
// See README.md for curl examples and ARCHITECTURE.md for the request
// lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/simstar"
)

func main() {
	addr := flag.String("addr", ":8451", "listen address")
	graphPath := flag.String("graph", "", "edge-list file to serve at startup (optional; POST /v1/graph works any time)")
	c := flag.Float64("c", 0, "damping factor for the startup engine (0 = paper default)")
	k := flag.Int("k", 0, "iteration count for the startup engine (0 = paper default)")
	cacheSize := flag.Int("cache", 0, "result-cache capacity in entries (0 = default, negative = disabled)")
	drain := flag.Duration("drain", 10*time.Second, "how long shutdown waits for in-flight requests")
	flag.Parse()

	srv := newServer()
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatalf("simserve: %v", err)
		}
		g, err := simstar.ReadGraph(f)
		f.Close()
		if err != nil {
			log.Fatalf("simserve: %s: %v", *graphPath, err)
		}
		var opts []simstar.Option
		if *c > 0 {
			opts = append(opts, simstar.WithC(*c))
		}
		if *k > 0 {
			opts = append(opts, simstar.WithK(*k))
		}
		if *cacheSize != 0 {
			opts = append(opts, simstar.WithCacheSize(*cacheSize))
		}
		eng := simstar.NewEngine(g, opts...)
		srv.swap(eng)
		st := eng.Stats()
		log.Printf("simserve: serving %s: %d nodes, %d edges (compression %.1f%% in %v)",
			*graphPath, st.Nodes, st.Edges, st.CompressionRatio, st.CompressionTime.Round(time.Millisecond))
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("simserve: listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("simserve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("simserve: shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// Drain window exhausted: cut the stragglers' connections, which
		// cancels their request contexts and thereby their kernels.
		httpSrv.Close()
		if !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("simserve: shutdown: %v", err)
		}
		fmt.Fprintln(os.Stderr, "simserve: drain window exhausted, connections closed")
	}
}
