package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/simstar"
)

// testGraphJSON is a small labelled graph in the wire format of POST
// /v1/graph, mirroring the toy citation graph of the simstar tests.
const testGraphEdgeList = `survey	classicA
survey	classicB
followup1	survey
followup2	survey
review	followup1
review	followup2
preprint	followup1
preprint	classicA
classicB	classicA
`

func newTestServer(t *testing.T) (*server, http.Handler) {
	t.Helper()
	s := newServer()
	return s, s.handler()
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func loadTestGraph(t *testing.T, h http.Handler) {
	t.Helper()
	rec := doJSON(t, h, "POST", "/v1/graph", map[string]any{
		"edge_list": testGraphEdgeList,
		"options":   map[string]any{"c": 0.6, "k": 5},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("load graph: status %d: %s", rec.Code, rec.Body)
	}
}

func TestLoadGraphJSONAndStats(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	var gr graphResponse
	rec := doJSON(t, h, "POST", "/v1/graph", map[string]any{"edge_list": testGraphEdgeList})
	if err := json.Unmarshal(rec.Body.Bytes(), &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Nodes != 7 || gr.Edges != 9 {
		t.Fatalf("graph response %+v, want 7 nodes / 9 edges", gr)
	}
	var st statsResponse
	rec = doJSON(t, h, "GET", "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.GraphLoaded || st.Engine.Nodes != 7 {
		t.Fatalf("stats %+v, want loaded 7-node engine", st)
	}
	if st.RequestCount < 2 {
		t.Fatalf("request count %d, want >= 2", st.RequestCount)
	}
}

func TestLoadGraphRawEdgeList(t *testing.T) {
	_, h := newTestServer(t)
	req := httptest.NewRequest("POST", "/v1/graph", strings.NewReader("0\t1\n1\t2\n"))
	req.Header.Set("Content-Type", "text/plain")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var gr graphResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Nodes != 3 || gr.Edges != 2 {
		t.Fatalf("graph response %+v, want 3 nodes / 2 edges", gr)
	}
}

func TestLoadGraphFromEdges(t *testing.T) {
	_, h := newTestServer(t)
	rec := doJSON(t, h, "POST", "/v1/graph", map[string]any{
		"edges": [][2]int{{0, 1}, {1, 2}, {3, 1}},
		"nodes": 5,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var gr graphResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Nodes != 5 || gr.Edges != 3 {
		t.Fatalf("graph response %+v, want 5 nodes / 3 edges", gr)
	}
}

func TestLoadGraphBadRequests(t *testing.T) {
	_, h := newTestServer(t)
	for name, body := range map[string]any{
		"empty":     map[string]any{},
		"both":      map[string]any{"edge_list": "0\t1\n", "edges": [][2]int{{0, 1}}},
		"negative":  map[string]any{"edges": [][2]int{{-1, 0}}},
		"malformed": map[string]any{"edge_list": "only-one-field\n"},
		// A tiny request naming a huge node id must not allocate O(id)
		// engine state (or wrap past int32 in the builder).
		"huge-id-json": map[string]any{"edges": [][2]int{{0, 1 << 40}}},
		"huge-nodes":   map[string]any{"edges": [][2]int{{0, 1}}, "nodes": 1 << 40},
		"huge-id-text": map[string]any{"edge_list": "0\t1099511627776\n"},
	} {
		if rec := doJSON(t, h, "POST", "/v1/graph", body); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, rec.Code)
		}
	}
}

func TestQueryBeforeGraphLoaded(t *testing.T) {
	_, h := newTestServer(t)
	for _, path := range []string{"/v1/query/single", "/v1/query/topk", "/v1/query/batch"} {
		rec := doJSON(t, h, "POST", path, map[string]any{"measure": "rwr", "node": 0})
		if rec.Code != http.StatusConflict {
			t.Fatalf("%s: status %d, want 409", path, rec.Code)
		}
	}
}

func TestMeasuresEndpoint(t *testing.T) {
	_, h := newTestServer(t)
	rec := doJSON(t, h, "GET", "/v1/measures", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Measures []string `json:"measures"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range resp.Measures {
		if m == simstar.MeasureGeometric {
			found = true
		}
	}
	if !found {
		t.Fatalf("measures %v missing %q", resp.Measures, simstar.MeasureGeometric)
	}
}

func TestSingleSourceRoundTrip(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)
	rec := doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "gsimrank*", "label": "followup1",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp singleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	eng := s.engine()
	q, _ := eng.Graph().NodeByLabel("followup1")
	want, err := eng.SingleSource(context.Background(), "gsimrank*", q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != q || resp.Label != "followup1" || len(resp.Scores) != len(want) {
		t.Fatalf("response %+v, want node %d with %d scores", resp, q, len(want))
	}
	for i := range want {
		if resp.Scores[i] != want[i] {
			t.Fatalf("scores[%d] = %g, want %g", i, resp.Scores[i], want[i])
		}
	}
	if resp.Cached {
		t.Fatal("first query must not be served from cache")
	}
	// The identical repeat is a cache hit.
	rec = doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "gsimrank*", "label": "followup1",
	})
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("repeat query must be served from cache")
	}
}

func TestTopKRoundTrip(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)
	rec := doJSON(t, h, "POST", "/v1/query/topk", map[string]any{
		"measure": "rwr", "label": "review", "k": 3,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp topKResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Top) != 3 {
		t.Fatalf("got %d ranked entries, want 3", len(resp.Top))
	}
	eng := s.engine()
	q, _ := eng.Graph().NodeByLabel("review")
	want, err := eng.TopK(context.Background(), "rwr", q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if resp.Top[i].Node != want[i].Node || resp.Top[i].Score != want[i].Score {
			t.Fatalf("top[%d] = %+v, want %+v", i, resp.Top[i], want[i])
		}
		if resp.Top[i].Label == "" {
			t.Fatalf("top[%d] missing label on a labelled graph", i)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	// scores mode, including one bad query that must fail alone.
	rec := doJSON(t, h, "POST", "/v1/query/batch", map[string]any{
		"queries": []map[string]any{
			{"measure": "gsimrank*", "label": "survey"},
			{"measure": "no-such-measure", "node": 0},
			{"measure": "rwr", "node": 2},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != "" || len(resp.Results[0].Scores) == 0 {
		t.Fatalf("good query failed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Fatal("unknown measure must carry a per-query error")
	}
	if resp.Results[2].Error != "" || len(resp.Results[2].Scores) == 0 {
		t.Fatalf("good query failed: %+v", resp.Results[2])
	}
	// A query that fails resolution (unknown label) answers in its slot
	// without reaching the engine, and reports no made-up node id.
	rec = doJSON(t, h, "POST", "/v1/query/batch", map[string]any{
		"queries": []map[string]any{
			{"measure": "rwr", "label": "no-such-paper"},
			{"measure": "rwr", "label": "survey"},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	resp = batchResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error == "" || resp.Results[0].Node != nil {
		t.Fatalf("unresolved query: %+v, want error without node", resp.Results[0])
	}
	if resp.Results[1].Error != "" || resp.Results[1].Node == nil {
		t.Fatalf("resolved query: %+v", resp.Results[1])
	}

	// topk mode.
	rec = doJSON(t, h, "POST", "/v1/query/batch", map[string]any{
		"mode": "topk",
		"queries": []map[string]any{
			{"measure": "gsimrank*", "label": "followup1", "k": 2},
			{"measure": "gsimrank*", "label": "followup2", "k": 2},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("topk batch: status %d: %s", rec.Code, rec.Body)
	}
	resp = batchResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Error != "" || len(r.Top) != 2 {
			t.Fatalf("topk result %d: %+v", i, r)
		}
		if len(r.Scores) != 0 {
			t.Fatalf("topk result %d carries raw scores", i)
		}
	}
	// Bad mode.
	rec = doJSON(t, h, "POST", "/v1/query/batch", map[string]any{
		"mode":    "everything",
		"queries": []map[string]any{{"measure": "rwr", "node": 0}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad mode: status %d, want 400", rec.Code)
	}
}

// Loading a new graph swaps the engine: new node space, fresh result cache.
func TestGraphSwapInvalidatesCache(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)
	// Warm the cache.
	for i := 0; i < 2; i++ {
		if rec := doJSON(t, h, "POST", "/v1/query/single", map[string]any{
			"measure": "rwr", "node": 0,
		}); rec.Code != http.StatusOK {
			t.Fatalf("warm-up: status %d", rec.Code)
		}
	}
	if st := s.engine().CacheStats(); st.Hits != 1 || st.Size == 0 {
		t.Fatalf("warm cache: %+v", st)
	}
	old := s.engine()
	rec := doJSON(t, h, "POST", "/v1/graph", map[string]any{
		"edges": [][2]int{{0, 1}, {2, 1}}, "nodes": 3,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("swap: status %d", rec.Code)
	}
	if s.engine() == old {
		t.Fatal("graph load did not swap the engine")
	}
	if st := s.engine().CacheStats(); st.Size != 0 || st.Hits != 0 {
		t.Fatalf("cache survived the graph swap: %+v", st)
	}
	// The same query now answers against the new 3-node graph, not a stale
	// 7-node cache entry.
	rec = doJSON(t, h, "POST", "/v1/query/single", map[string]any{
		"measure": "rwr", "node": 0,
	})
	var resp singleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached || len(resp.Scores) != 3 {
		t.Fatalf("post-swap query: cached=%v with %d scores, want fresh 3", resp.Cached, len(resp.Scores))
	}
}

// blockingMeasure parks in SingleSource until its context dies — the hook
// the cancellation tests use to hold a request mid-flight deterministically.
type blockingMeasure struct {
	entered chan struct{}
}

func (m blockingMeasure) Name() string { return "test-blocking" }

func (m blockingMeasure) AllPairs(ctx context.Context, g *simstar.Graph) (*simstar.Scores, error) {
	return nil, ctx.Err()
}

func (m blockingMeasure) SingleSource(ctx context.Context, g *simstar.Graph, q int) ([]float64, error) {
	m.entered <- struct{}{}
	<-ctx.Done()
	return nil, ctx.Err()
}

// A client abandoning a request mid-computation must cancel the kernel and
// answer 499 — the request-scoped context flows all the way down.
func TestMidRequestCancellation(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	entered := make(chan struct{}, 1)
	simstar.Register("test-blocking", func(opts ...simstar.Option) simstar.Measure {
		return blockingMeasure{entered: entered}
	})

	for _, tc := range []struct {
		path string
		body map[string]any
	}{
		{"/v1/query/single", map[string]any{"measure": "test-blocking", "node": 0}},
		{"/v1/query/topk", map[string]any{"measure": "test-blocking", "node": 0, "k": 2}},
		{"/v1/query/batch", map[string]any{
			"queries": []map[string]any{{"measure": "test-blocking", "node": 0}},
		}},
	} {
		body, err := json.Marshal(tc.body)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		req := httptest.NewRequest("POST", tc.path, bytes.NewReader(body)).WithContext(ctx)
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		done := make(chan struct{})
		go func() {
			h.ServeHTTP(rec, req)
			close(done)
		}()
		// Wait until the kernel is provably inside the measure, then pull
		// the plug like a disconnecting client.
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: request never reached the measure", tc.path)
		}
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: handler did not return after cancellation", tc.path)
		}
		if tc.path == "/v1/query/batch" {
			// Batch requests fail wholesale only because the request died.
			if rec.Code != statusClientClosedRequest {
				t.Fatalf("%s: status %d, want %d: %s", tc.path, rec.Code, statusClientClosedRequest, rec.Body)
			}
			continue
		}
		if rec.Code != statusClientClosedRequest {
			t.Fatalf("%s: status %d, want %d: %s", tc.path, rec.Code, statusClientClosedRequest, rec.Body)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, h := newTestServer(t)
	rec := doJSON(t, h, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp map[string]bool
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp["ok"] || resp["graph_loaded"] {
		t.Fatalf("healthz %v, want ok without graph", resp)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, h := newTestServer(t)
	rec := doJSON(t, h, "GET", "/v1/query/single", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rec.Code)
	}
}

// Ensure the wire scores match fmt expectations (guards against accidental
// NaN/Inf, which encoding/json rejects).
func TestScoresAreFinite(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	for _, m := range []string{"gsimrank*", "esimrank*", "rwr", "simrank", "prank"} {
		rec := doJSON(t, h, "POST", "/v1/query/single", map[string]any{"measure": m, "node": 1})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", m, rec.Code, rec.Body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("%s: invalid JSON response", m)
		}
	}
}
