package main

// Server-side observability: the obs.Registry behind GET /metrics, the
// per-route instrumentation wrapper, and the process-level gauges. The
// registry is shared with the engine's simstar.Observer — every engine the
// server builds (startup, POST /v1/graph) is handed the same Observer, so
// query counters are cumulative across graph swaps and epochs while the
// per-graph result cache keeps dying with its engine.

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/simstar"
)

const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// initMetrics builds the server's registry, the shared engine observer and
// the request-level instruments, and registers the gauge functions that
// read live server state at scrape time.
func (s *server) initMetrics() {
	s.reg = obs.NewRegistry()
	s.obsv = simstar.NewObserver(s.reg)
	s.inflight = s.reg.Gauge("simserve_inflight_requests",
		"HTTP requests currently being served.")
	s.aborted = s.reg.Counter("simserve_streams_aborted_total",
		"NDJSON streams cut short by a client disconnect mid-stream.")
	s.reg.GaugeFunc("simserve_graph_loaded",
		"Whether a graph is loaded (1) or the server is empty (0).",
		func() float64 {
			if s.engine() != nil {
				return 1
			}
			return 0
		})
	s.reg.GaugeFunc("simserve_graph_epoch",
		"Epoch of the currently-served graph (0 when none is loaded).",
		func() float64 {
			if eng := s.engine(); eng != nil {
				return float64(eng.Epoch())
			}
			return 0
		})
	s.reg.GaugeFunc("simserve_graph_nodes",
		"Node count of the currently-served graph.",
		func() float64 {
			if eng := s.engine(); eng != nil {
				return float64(eng.Snapshot().Graph.N())
			}
			return 0
		})
	s.reg.GaugeFunc("simserve_graph_edges",
		"Edge count of the currently-served graph.",
		func() float64 {
			if eng := s.engine(); eng != nil {
				return float64(eng.Snapshot().Graph.M())
			}
			return 0
		})
	s.reg.GaugeFunc("simserve_cache_entries",
		"Entries resident in the served engine's result cache.",
		func() float64 {
			if eng := s.engine(); eng != nil {
				return float64(eng.CacheStats().Size)
			}
			return 0
		})
	// Resilience instruments: registered unconditionally (even when the
	// admission gate is off) so the chaos CI job can assert on their
	// presence and dashboards never branch on series absence.
	s.shedByReason = make(map[string]*obs.Counter)
	for _, reason := range []string{shedQueueFull, shedQueueTimeout, shedDraining} {
		s.shedByReason[reason] = s.reg.Counter("simstar_shed_total",
			"Query requests shed by admission control, by reason.",
			obs.Label{Name: "reason", Value: reason})
	}
	s.degradedTotal = s.reg.Counter("simstar_degraded_total",
		"Exact queries the overload governor downgraded to the certified approximate path.")
	s.queueWait = s.reg.Histogram("simstar_queue_wait_seconds",
		"Time query requests spent in the admission queue (admitted or shed).",
		obs.LatencyBuckets)
	s.panicsRecovered = s.reg.Counter("simserve_panics_recovered_total",
		"Handler panics caught by the per-request isolation barrier.")
	s.reg.GaugeFunc("simserve_admission_queue_depth",
		"Requests currently waiting in the admission queue.",
		func() float64 { return float64(s.adm.queueDepth()) })
	s.reg.GaugeFunc("simserve_degraded_mode",
		"Whether the overload governor has the server in degraded mode (1) or not (0).",
		func() float64 {
			if s.adm.isDegraded() {
				return 1
			}
			return 0
		})
}

// shedTotal resolves the shed counter for a reason; unknown reasons fall
// back to on-demand registration rather than a nil dereference.
func (s *server) shedTotal(reason string) *obs.Counter {
	if c, ok := s.shedByReason[reason]; ok {
		return c
	}
	return s.reg.Counter("simstar_shed_total",
		"Query requests shed by admission control, by reason.",
		obs.Label{Name: "reason", Value: reason})
}

// engineOptions appends the server's shared observer — and, under -fault,
// the injector's hook — to a request's engine options. They go last so
// nothing on the wire can detach the metrics or dodge the fault schedule.
func (s *server) engineOptions(opts []simstar.Option) []simstar.Option {
	opts = append(opts, simstar.WithObserver(s.obsv))
	if s.faultHook != nil {
		opts = append(opts, simstar.WithFaultHook(s.faultHook))
	}
	return opts
}

// statusWriter records the response status and size for the route
// instruments. It forwards Flush because the NDJSON streamWriter type-asserts
// http.Flusher on whatever ResponseWriter it is handed — dropping the
// interface here would silently turn chunked streams into buffered bodies.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// status is the effective response status: a handler that never wrote is an
// implicit 200, exactly as net/http treats it.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps one route's handler with the request metrics: a counter
// and an error counter labelled by route, a latency histogram, the in-flight
// gauge, and (when -log-requests style logging is on) one logfmt access line.
// The instruments are resolved once at route-table build time, so the
// per-request cost is a few atomic updates — no registry lookups.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("simserve_requests_total",
		"HTTP requests served, by route.",
		obs.Label{Name: "route", Value: route})
	errs := s.reg.Counter("simserve_request_errors_total",
		"HTTP requests answered with a 4xx/5xx status, by route.",
		obs.Label{Name: "route", Value: route})
	lat := s.reg.Histogram("simserve_request_seconds",
		"HTTP request latency in seconds, by route.",
		obs.LatencyBuckets,
		obs.Label{Name: "route", Value: route})
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		s.serveRecovered(route, sw, r, h)
		d := time.Since(start)
		s.inflight.Dec()
		reqs.Inc()
		if sw.status() >= 400 {
			errs.Inc()
		}
		lat.Observe(d.Seconds())
		if s.logRequests {
			log.Printf("simserve: method=%s route=%s status=%d dur_ms=%.3f bytes=%d",
				r.Method, route, sw.status(), float64(d.Microseconds())/1e3, sw.bytes)
		}
	}
}

// serveRecovered runs one route handler behind the per-request panic
// barrier: a panic anywhere in the serving layer answers 500 (when the
// status line is still open) and is counted, instead of net/http tearing
// down the connection — one poisoned request must not look like a crash to
// the client or take out keep-alive neighbours. http.ErrAbortHandler is the
// deliberate abort idiom and passes through untouched. Engine kernels have
// their own recovery (simstar.ErrKernelPanic) and normally never reach
// this; the barrier is the serving layer's own last line.
func (s *server) serveRecovered(route string, sw *statusWriter, r *http.Request, h http.HandlerFunc) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
			panic(rec)
		}
		s.panicsRecovered.Inc()
		log.Printf("simserve: route=%s recovered panic: %v", route, rec)
		if sw.code == 0 {
			writeError(sw, http.StatusInternalServerError,
				fmt.Errorf("internal error: recovered panic serving %s", route))
		}
	}()
	h(sw, r)
}

// handleMetrics serves the registry in the Prometheus text exposition
// format. A scrape only snapshots atomics; it never blocks the query path.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", prometheusContentType)
	// An encoding error here can only mean a dead scraper connection.
	_ = s.reg.WritePrometheus(w)
}

// traceWanted reports whether the request opted into the per-query trace
// (?trace=1) that embeds the obs.Trace in the response.
func traceWanted(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1"
}
