package main

// Server-side observability: the obs.Registry behind GET /metrics, the
// per-route instrumentation wrapper, and the process-level gauges. The
// registry is shared with the engine's simstar.Observer — every engine the
// server builds (startup, POST /v1/graph) is handed the same Observer, so
// query counters are cumulative across graph swaps and epochs while the
// per-graph result cache keeps dying with its engine.

import (
	"log"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/simstar"
)

const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// initMetrics builds the server's registry, the shared engine observer and
// the request-level instruments, and registers the gauge functions that
// read live server state at scrape time.
func (s *server) initMetrics() {
	s.reg = obs.NewRegistry()
	s.obsv = simstar.NewObserver(s.reg)
	s.inflight = s.reg.Gauge("simserve_inflight_requests",
		"HTTP requests currently being served.")
	s.aborted = s.reg.Counter("simserve_streams_aborted_total",
		"NDJSON streams cut short by a client disconnect mid-stream.")
	s.reg.GaugeFunc("simserve_graph_loaded",
		"Whether a graph is loaded (1) or the server is empty (0).",
		func() float64 {
			if s.engine() != nil {
				return 1
			}
			return 0
		})
	s.reg.GaugeFunc("simserve_graph_epoch",
		"Epoch of the currently-served graph (0 when none is loaded).",
		func() float64 {
			if eng := s.engine(); eng != nil {
				return float64(eng.Epoch())
			}
			return 0
		})
	s.reg.GaugeFunc("simserve_graph_nodes",
		"Node count of the currently-served graph.",
		func() float64 {
			if eng := s.engine(); eng != nil {
				return float64(eng.Snapshot().Graph.N())
			}
			return 0
		})
	s.reg.GaugeFunc("simserve_graph_edges",
		"Edge count of the currently-served graph.",
		func() float64 {
			if eng := s.engine(); eng != nil {
				return float64(eng.Snapshot().Graph.M())
			}
			return 0
		})
	s.reg.GaugeFunc("simserve_cache_entries",
		"Entries resident in the served engine's result cache.",
		func() float64 {
			if eng := s.engine(); eng != nil {
				return float64(eng.CacheStats().Size)
			}
			return 0
		})
}

// engineOptions appends the server's shared observer to a request's engine
// options. It goes last so nothing on the wire can detach the metrics.
func (s *server) engineOptions(opts []simstar.Option) []simstar.Option {
	return append(opts, simstar.WithObserver(s.obsv))
}

// statusWriter records the response status and size for the route
// instruments. It forwards Flush because the NDJSON streamWriter type-asserts
// http.Flusher on whatever ResponseWriter it is handed — dropping the
// interface here would silently turn chunked streams into buffered bodies.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// status is the effective response status: a handler that never wrote is an
// implicit 200, exactly as net/http treats it.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps one route's handler with the request metrics: a counter
// and an error counter labelled by route, a latency histogram, the in-flight
// gauge, and (when -log-requests style logging is on) one logfmt access line.
// The instruments are resolved once at route-table build time, so the
// per-request cost is a few atomic updates — no registry lookups.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("simserve_requests_total",
		"HTTP requests served, by route.",
		obs.Label{Name: "route", Value: route})
	errs := s.reg.Counter("simserve_request_errors_total",
		"HTTP requests answered with a 4xx/5xx status, by route.",
		obs.Label{Name: "route", Value: route})
	lat := s.reg.Histogram("simserve_request_seconds",
		"HTTP request latency in seconds, by route.",
		obs.LatencyBuckets,
		obs.Label{Name: "route", Value: route})
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		d := time.Since(start)
		s.inflight.Dec()
		reqs.Inc()
		if sw.status() >= 400 {
			errs.Inc()
		}
		lat.Observe(d.Seconds())
		if s.logRequests {
			log.Printf("simserve: method=%s route=%s status=%d dur_ms=%.3f bytes=%d",
				r.Method, route, sw.status(), float64(d.Microseconds())/1e3, sw.bytes)
		}
	}
}

// handleMetrics serves the registry in the Prometheus text exposition
// format. A scrape only snapshots atomics; it never blocks the query path.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", prometheusContentType)
	// An encoding error here can only mean a dead scraper connection.
	_ = s.reg.WritePrometheus(w)
}

// traceWanted reports whether the request opted into the per-query trace
// (?trace=1) that embeds the obs.Trace in the response.
func traceWanted(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1"
}
