package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/simstar"
)

func TestEdgeMutationEndpoints(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)
	base := s.engine().Graph()
	// The test graph is labelled; mutate by id ("preprint"→"classicB").
	pre, _ := base.NodeByLabel("preprint")
	clB, _ := base.NodeByLabel("classicB")

	rec := doJSON(t, h, "POST", "/v1/edges", map[string]any{
		"insert": [][2]int{{pre, clB}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: status %d: %s", rec.Code, rec.Body)
	}
	var er editsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Epoch != 1 || er.Inserted != 1 || !er.Refreshed || er.Edges != 10 {
		t.Fatalf("insert response %+v, want epoch 1, 1 inserted, 10 edges", er)
	}
	if !s.engine().Graph().HasEdge(pre, clB) {
		t.Fatal("edge not visible after insert")
	}

	// DELETE /v1/edges takes it back out.
	rec = doJSON(t, h, "DELETE", "/v1/edges", map[string]any{
		"edges": [][2]int{{pre, clB}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Epoch != 2 || er.Removed != 1 || er.Edges != 9 {
		t.Fatalf("delete response %+v, want epoch 2, 1 removed, 9 edges", er)
	}

	// Stats reports the epoch.
	var st statsResponse
	rec = doJSON(t, h, "GET", "/v1/stats", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.Epoch != 2 {
		t.Fatalf("stats engine %+v, want epoch 2", st.Engine)
	}
}

func TestEdgeMutationChangesScores(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)
	g := s.engine().Graph()
	q, _ := g.NodeByLabel("classicA")
	query := map[string]any{"measure": simstar.MeasureGeometric, "node": q}

	var before, after singleResponse
	rec := doJSON(t, h, "POST", "/v1/query/single", query)
	if err := json.Unmarshal(rec.Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}
	rev, _ := g.NodeByLabel("review")
	rec = doJSON(t, h, "POST", "/v1/edges", map[string]any{"insert": [][2]int{{rev, q}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: status %d: %s", rec.Code, rec.Body)
	}
	rec = doJSON(t, h, "POST", "/v1/query/single", query)
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("post-mutation query served from cache: stale epoch")
	}
	same := true
	for i := range before.Scores {
		if before.Scores[i] != after.Scores[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("scores unchanged after an in-link mutation of the query node")
	}
}

func TestEdgeMutationBadRequests(t *testing.T) {
	_, h := newTestServer(t)
	// 409 before a graph is loaded.
	rec := doJSON(t, h, "POST", "/v1/edges", map[string]any{"insert": [][2]int{{0, 1}}})
	if rec.Code != http.StatusConflict {
		t.Fatalf("no graph: status %d, want 409", rec.Code)
	}
	loadTestGraph(t, h)
	for name, body := range map[string]map[string]any{
		"empty":        {},
		"negative":     {"insert": [][2]int{{-1, 0}}},
		"huge-node-id": {"insert": [][2]int{{0, maxGraphNodes}}},
	} {
		rec := doJSON(t, h, "POST", "/v1/edges", body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, rec.Code)
		}
	}
	rec = doJSON(t, h, "DELETE", "/v1/edges", map[string]any{"edges": [][2]int{}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty delete: status %d, want 400", rec.Code)
	}
}

func TestSnapshotEndpointAndWarmRestart(t *testing.T) {
	s, h := newTestServer(t)
	s.snapPath = filepath.Join(t.TempDir(), "graph.snap")
	loadTestGraph(t, h)
	if rec := doJSON(t, h, "POST", "/v1/edges", map[string]any{"insert": [][2]int{{0, 4}}}); rec.Code != http.StatusOK {
		t.Fatalf("insert: status %d", rec.Code)
	}
	rec := doJSON(t, h, "POST", "/v1/snapshot", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d: %s", rec.Code, rec.Body)
	}
	var sr snapshotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Epoch != 1 || sr.Bytes <= 0 {
		t.Fatalf("snapshot response %+v", sr)
	}
	if fi, err := os.Stat(s.snapPath); err != nil || fi.Size() != sr.Bytes {
		t.Fatalf("snapshot file: %v (size %v, want %d)", err, fi, sr.Bytes)
	}

	// Warm restart: the loader main uses resumes graph AND epoch.
	g, epoch, err := loadSnapshot(s.snapPath, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || g.N() != 7 || g.M() != 10 {
		t.Fatalf("reloaded epoch %d, %d nodes, %d edges", epoch, g.N(), g.M())
	}
	s2 := newServer()
	s2.swap(simstar.NewEngine(g, simstar.WithBaseEpoch(epoch)))
	if got := s2.engine().Epoch(); got != 1 {
		t.Fatalf("warm engine epoch = %d, want 1", got)
	}
}

func TestSnapshotWithoutPathIs409(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)
	if rec := doJSON(t, h, "POST", "/v1/snapshot", nil); rec.Code != http.StatusConflict {
		t.Fatalf("status %d, want 409", rec.Code)
	}
}

// Concurrent batch queries racing edge mutations and full graph swaps: every
// response must be a coherent answer from some epoch — no 5xx, no torn
// vectors. Runs under the -race CI job.
func TestConcurrentBatchQueriesRacingMutations(t *testing.T) {
	_, h := newTestServer(t)
	loadTestGraph(t, h)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := doJSON(t, h, "POST", "/v1/query/batch", map[string]any{
					"mode": "scores",
					"queries": []map[string]any{
						{"measure": simstar.MeasureGeometric, "node": (w + i) % 7},
						{"measure": simstar.MeasureRWR, "node": (w + i + 1) % 7},
					},
				})
				if rec.Code != http.StatusOK {
					t.Errorf("batch status %d: %s", rec.Code, rec.Body)
					return
				}
				var br batchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
					t.Error(err)
					return
				}
				for _, res := range br.Results {
					if res.Error != "" {
						t.Errorf("query error under mutation: %s", res.Error)
						return
					}
					// Vectors answer from one coherent epoch: always a full
					// row of whatever graph version served it (>= base size).
					if len(res.Scores) < 7 {
						t.Errorf("torn score vector: len %d", len(res.Scores))
						return
					}
				}
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		switch rng.Intn(3) {
		case 0: // stream an insert + a delete
			rec := doJSON(t, h, "POST", "/v1/edges", map[string]any{
				"insert": [][2]int{{rng.Intn(7), rng.Intn(7)}},
				"delete": [][2]int{{rng.Intn(7), rng.Intn(7)}},
			})
			if rec.Code != http.StatusOK {
				t.Fatalf("edit %d: status %d: %s", i, rec.Code, rec.Body)
			}
		case 1: // DELETE endpoint
			rec := doJSON(t, h, "DELETE", "/v1/edges", map[string]any{
				"edges": [][2]int{{rng.Intn(7), rng.Intn(7)}},
			})
			if rec.Code != http.StatusOK {
				t.Fatalf("delete %d: status %d: %s", i, rec.Code, rec.Body)
			}
		case 2: // full graph swap
			loadTestGraph(t, h)
		}
	}
	close(stop)
	wg.Wait()
}

// The epoch must survive a snapshot/restore/mutate cycle without colliding
// with cache entries of earlier epochs (regression guard for the cache key).
func TestEpochMonotoneAcrossMutations(t *testing.T) {
	s, h := newTestServer(t)
	loadTestGraph(t, h)
	last := uint64(0)
	for i := 0; i < 5; i++ {
		rec := doJSON(t, h, "POST", "/v1/edges", map[string]any{
			"insert": [][2]int{{0, 3 + i}},
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("edit %d: status %d: %s", i, rec.Code, rec.Body)
		}
		var er editsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Fatal(err)
		}
		if er.Epoch != last+1 {
			t.Fatalf("epoch %d after edit %d, want %d", er.Epoch, i, last+1)
		}
		last = er.Epoch
	}
	if got := s.engine().Epoch(); got != last {
		t.Fatalf("engine epoch %d, want %d", got, last)
	}
}
