// Command simtool is the general-purpose CLI over the simstar API: compute
// all-pairs similarities, answer single-source top-k queries, inspect graph
// statistics, and report edge-concentration compression — the operations a
// downstream user of SimRank* needs day to day.
//
// Usage:
//
//	simtool measures
//	simtool stats    -graph g.txt
//	simtool compress -graph g.txt
//	simtool topk     -graph g.txt -query <node> [-k 10] [-measure gsimrank*]
//	simtool pairs    -graph g.txt [-measure gsimrank*] [-top 20]
//	simtool explain  -graph g.txt -query <a> -other <b> [-len 5] [-top 10]
//
// Graphs are SNAP-style edge lists. Measures are selected by registry name
// (`simtool measures` lists them); topk and pairs go through a
// simstar.Engine, so the transition matrices and the compression are built
// once per invocation however many queries follow.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"

	"repro/internal/bench"
	"repro/internal/eval"
	"repro/simstar"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list file (required)")
	measureName := fs.String("measure", simstar.MeasureGeometric, "measure name (see `simtool measures`)")
	c := fs.Float64("c", 0.6, "damping factor")
	k := fs.Int("k", 10, "top-k size")
	iters := fs.Int("iters", 5, "iterations")
	query := fs.String("query", "", "query node (label or id) for topk/explain")
	other := fs.String("other", "", "second node (label or id) for explain")
	maxLen := fs.Int("len", 5, "max total in-link path length for explain")
	top := fs.Int("top", 20, "number of pairs for pairs / paths for explain")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	if cmd == "measures" {
		runMeasures()
		return
	}

	if *graphPath == "" {
		fatal("missing -graph")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := simstar.ReadGraph(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}

	// Ctrl-C cancels in-flight iterations instead of killing mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []simstar.Option{simstar.WithC(*c), simstar.WithK(*iters)}

	switch cmd {
	case "stats":
		runStats(g)
	case "compress":
		runCompress(g, opts)
	case "topk":
		runTopK(ctx, g, opts, *measureName, *query, *k)
	case "pairs":
		runPairs(ctx, g, opts, *measureName, *top)
	case "explain":
		runExplain(g, *query, *other, *c, *maxLen, *top)
	default:
		usage()
	}
}

func runMeasures() {
	tab := bench.NewTable("measure")
	for _, name := range simstar.Names() {
		tab.Add(name)
	}
	tab.Render(os.Stdout)
}

// runExplain prints the top in-link path pairs behind a SimRank* score —
// the Sec. 3.2 contribution analysis as a tool.
func runExplain(g *simstar.Graph, query, other string, c float64, maxLen, top int) {
	if query == "" || other == "" {
		fatal("explain needs -query and -other")
	}
	a, err := resolveNode(g, query)
	if err != nil {
		fatal(err)
	}
	b, err := resolveNode(g, other)
	if err != nil {
		fatal(err)
	}
	exps := simstar.Explain(g, a, b, c, maxLen, 0)
	fmt.Printf("SimRank*(%s, %s) ≈ %.6f from %d in-link path pairs (length <= %d)\n\n",
		g.Label(a), g.Label(b), simstar.ExplainedScore(exps), len(exps), maxLen)
	tab := bench.NewTable("contribution", "kind", "source", "walk to "+g.Label(a), "walk to "+g.Label(b))
	for i, e := range exps {
		if i >= top {
			break
		}
		kind := "dissymmetric"
		if e.Symmetric() {
			kind = "symmetric"
		}
		tab.Add(fmt.Sprintf("%.6f", e.Contribution), kind, g.Label(e.Source),
			walkString(g, e.WalkToA), walkString(g, e.WalkToB))
	}
	tab.Render(os.Stdout)
}

func walkString(g *simstar.Graph, nodes []int) string {
	if len(nodes) == 1 {
		return g.Label(nodes[0]) + " (source itself)"
	}
	s := ""
	for i, n := range nodes {
		if i > 0 {
			s += "→"
		}
		s += g.Label(n)
	}
	return s
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: simtool {measures|stats|compress|topk|pairs|explain} -graph FILE [flags]")
	os.Exit(2)
}

func fatal(v interface{}) {
	fmt.Fprintln(os.Stderr, "simtool:", v)
	os.Exit(1)
}

func runStats(g *simstar.Graph) {
	st := g.ComputeStats()
	tab := bench.NewTable("stat", "value")
	tab.Add("nodes", st.N)
	tab.Add("edges", st.M)
	tab.Add("density (m/n)", fmt.Sprintf("%.2f", st.Density))
	tab.Add("max in-degree", st.MaxInDeg)
	tab.Add("max out-degree", st.MaxOutDeg)
	tab.Add("sources (no in-links)", st.Sources)
	tab.Add("sinks (no out-links)", st.Sinks)
	tab.Add("self-loops", st.SelfLoops)
	tab.Add("symmetric (undirected)", st.SymmetricShape)
	tab.Render(os.Stdout)
}

func runCompress(g *simstar.Graph, opts []simstar.Option) {
	eng := simstar.NewEngine(g, opts...)
	st := eng.Stats()
	tab := bench.NewTable("stat", "value")
	tab.Add("edges m", st.Edges)
	tab.Add("compressed edges m̃", st.CompressedEdges)
	tab.Add("compression ratio", fmt.Sprintf("%.1f%%", st.CompressionRatio))
	tab.Add("concentration nodes", st.ConcentrationNodes)
	tab.Add("mining time", st.CompressionTime)
	tab.Add("transition build time", st.TransitionTime)
	tab.Render(os.Stdout)
}

func resolveNode(g *simstar.Graph, s string) (int, error) {
	if id, ok := g.NodeByLabel(s); ok {
		return id, nil
	}
	id, err := strconv.Atoi(s)
	if err != nil || id < 0 || id >= g.N() {
		return 0, fmt.Errorf("unknown node %q", s)
	}
	return id, nil
}

func runTopK(ctx context.Context, g *simstar.Graph, opts []simstar.Option, measure, query string, k int) {
	if query == "" {
		fatal("missing -query")
	}
	q, err := resolveNode(g, query)
	if err != nil {
		fatal(err)
	}
	eng := simstar.NewEngine(g, opts...)
	top, err := eng.TopK(ctx, measure, q, k)
	if err != nil {
		fatal(err)
	}
	tab := bench.NewTable("rank", "node", "score")
	for i, r := range top {
		tab.Add(i+1, g.Label(r.Node), fmt.Sprintf("%.6f", r.Score))
	}
	tab.Render(os.Stdout)
}

func runPairs(ctx context.Context, g *simstar.Graph, opts []simstar.Option, measure string, top int) {
	eng := simstar.NewEngine(g, opts...)
	s, err := eng.AllPairs(ctx, measure)
	if err != nil {
		fatal(err)
	}
	at := func(i, j int) float64 {
		a, b := s.At(i, j), s.At(j, i)
		if a > b {
			return a
		}
		return b
	}
	tab := bench.NewTable("rank", "pair", "score")
	for i, p := range eval.TopPairs(g.N(), at, top) {
		tab.Add(i+1, fmt.Sprintf("(%s, %s)", g.Label(p.A), g.Label(p.B)), fmt.Sprintf("%.6f", p.Score))
	}
	tab.Render(os.Stdout)
}
