// Command simtool is the general-purpose CLI over the library: compute
// all-pairs similarities, answer single-source top-k queries, inspect graph
// statistics, and report edge-concentration compression — the operations a
// downstream user of SimRank* needs day to day.
//
// Usage:
//
//	simtool stats    -graph g.txt
//	simtool compress -graph g.txt
//	simtool topk     -graph g.txt -query <node> [-k 10] [-measure gsimrank*]
//	simtool pairs    -graph g.txt [-measure gsimrank*] [-top 20]
//	simtool explain  -graph g.txt -query <a> -other <b> [-len 5] [-top 10]
//
// Graphs are SNAP-style edge lists (see internal/graph). Measures:
// gsimrank* (default), esimrank*, simrank, prank, rwr, cocitation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/bench"
	"repro/internal/biclique"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/prank"
	"repro/internal/rwr"
	"repro/internal/simrank"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list file (required)")
	measureName := fs.String("measure", "gsimrank*", "gsimrank*, esimrank*, simrank, prank, rwr, cocitation")
	c := fs.Float64("c", 0.6, "damping factor")
	k := fs.Int("k", 10, "top-k size")
	iters := fs.Int("iters", 5, "iterations")
	query := fs.String("query", "", "query node (label or id) for topk/explain")
	other := fs.String("other", "", "second node (label or id) for explain")
	maxLen := fs.Int("len", 5, "max total in-link path length for explain")
	top := fs.Int("top", 20, "number of pairs for pairs / paths for explain")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *graphPath == "" {
		fatal("missing -graph")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "stats":
		runStats(g)
	case "compress":
		runCompress(g)
	case "topk":
		runTopK(g, *measureName, *query, *c, *iters, *k)
	case "pairs":
		runPairs(g, *measureName, *c, *iters, *top)
	case "explain":
		runExplain(g, *query, *other, *c, *maxLen, *top)
	default:
		usage()
	}
}

// runExplain prints the top in-link path pairs behind a SimRank* score —
// the Sec. 3.2 contribution analysis as a tool.
func runExplain(g *graph.Graph, query, other string, c float64, maxLen, top int) {
	if query == "" || other == "" {
		fatal("explain needs -query and -other")
	}
	a, err := resolveNode(g, query)
	if err != nil {
		fatal(err)
	}
	b, err := resolveNode(g, other)
	if err != nil {
		fatal(err)
	}
	exps := core.ExplainGeometric(g, a, b, c, maxLen, 0)
	fmt.Printf("SimRank*(%s, %s) ≈ %.6f from %d in-link path pairs (length <= %d)\n\n",
		g.Label(a), g.Label(b), core.ExplainedScore(exps), len(exps), maxLen)
	tab := bench.NewTable("contribution", "kind", "source", "walk to "+g.Label(a), "walk to "+g.Label(b))
	for i, e := range exps {
		if i >= top {
			break
		}
		kind := "dissymmetric"
		if e.Symmetric() {
			kind = "symmetric"
		}
		tab.Add(fmt.Sprintf("%.6f", e.Contribution), kind, g.Label(e.Source),
			walkString(g, e.WalkToA), walkString(g, e.WalkToB))
	}
	tab.Render(os.Stdout)
}

func walkString(g *graph.Graph, nodes []int) string {
	if len(nodes) == 1 {
		return g.Label(nodes[0]) + " (source itself)"
	}
	s := ""
	for i, n := range nodes {
		if i > 0 {
			s += "→"
		}
		s += g.Label(n)
	}
	return s
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: simtool {stats|compress|topk|pairs} -graph FILE [flags]")
	os.Exit(2)
}

func fatal(v interface{}) {
	fmt.Fprintln(os.Stderr, "simtool:", v)
	os.Exit(1)
}

func runStats(g *graph.Graph) {
	st := g.ComputeStats()
	tab := bench.NewTable("stat", "value")
	tab.Add("nodes", st.N)
	tab.Add("edges", st.M)
	tab.Add("density (m/n)", fmt.Sprintf("%.2f", st.Density))
	tab.Add("max in-degree", st.MaxInDeg)
	tab.Add("max out-degree", st.MaxOutDeg)
	tab.Add("sources (no in-links)", st.Sources)
	tab.Add("sinks (no out-links)", st.Sinks)
	tab.Add("self-loops", st.SelfLoops)
	tab.Add("symmetric (undirected)", st.SymmetricShape)
	tab.Render(os.Stdout)
}

func runCompress(g *graph.Graph) {
	var comp *biclique.Compressed
	d := bench.Timed(func() { comp = biclique.Compress(g, biclique.Options{}) })
	tab := bench.NewTable("stat", "value")
	tab.Add("edges m", comp.MOriginal)
	tab.Add("compressed edges m̃", comp.MCompressed)
	tab.Add("compression ratio", fmt.Sprintf("%.1f%%", comp.CompressionRatio()))
	tab.Add("concentration nodes", comp.NumConcentration())
	tab.Add("mining time", d)
	tab.Render(os.Stdout)
}

func resolveNode(g *graph.Graph, s string) (int, error) {
	if id, ok := g.NodeByLabel(s); ok {
		return id, nil
	}
	id, err := strconv.Atoi(s)
	if err != nil || id < 0 || id >= g.N() {
		return 0, fmt.Errorf("unknown node %q", s)
	}
	return id, nil
}

func runTopK(g *graph.Graph, measure, query string, c float64, iters, k int) {
	if query == "" {
		fatal("missing -query")
	}
	q, err := resolveNode(g, query)
	if err != nil {
		fatal(err)
	}
	var scores []float64
	opt := core.Options{C: c, K: iters}
	switch measure {
	case "gsimrank*":
		scores = core.SingleSourceGeometric(g, q, opt)
	case "esimrank*":
		scores = core.SingleSourceExponential(g, q, opt)
	case "rwr":
		scores = rwr.SingleSource(g, q, rwr.Options{C: c, K: iters})
	default:
		m := allPairsOf(g, measure, c, iters)
		scores = make([]float64, g.N())
		copy(scores, m.Row(q))
	}
	tab := bench.NewTable("rank", "node", "score")
	for i, r := range core.TopK(scores, k, q) {
		tab.Add(i+1, g.Label(r.Node), fmt.Sprintf("%.6f", r.Score))
	}
	tab.Render(os.Stdout)
}

func runPairs(g *graph.Graph, measure string, c float64, iters, top int) {
	m := allPairsOf(g, measure, c, iters)
	at := func(i, j int) float64 {
		a, b := m.At(i, j), m.At(j, i)
		if a > b {
			return a
		}
		return b
	}
	tab := bench.NewTable("rank", "pair", "score")
	for i, p := range eval.TopPairs(g.N(), at, top) {
		tab.Add(i+1, fmt.Sprintf("(%s, %s)", g.Label(p.A), g.Label(p.B)), fmt.Sprintf("%.6f", p.Score))
	}
	tab.Render(os.Stdout)
}

func allPairsOf(g *graph.Graph, measure string, c float64, iters int) *dense.Matrix {
	switch measure {
	case "gsimrank*":
		return core.GeometricMemo(g, core.Options{C: c, K: iters})
	case "esimrank*":
		return core.ExponentialMemo(g, core.Options{C: c, K: iters})
	case "simrank":
		return simrank.PSum(g, simrank.Options{C: c, K: iters})
	case "prank":
		return prank.AllPairs(g, prank.Options{C: c, K: iters})
	case "rwr":
		return rwr.AllPairs(g, rwr.Options{C: c, K: iters})
	case "cocitation":
		return classic.CoCitation(g)
	default:
		fatal(fmt.Sprintf("unknown measure %q", measure))
		return nil
	}
}
