// Command gengraph writes synthetic graphs in the edge-list format read by
// simtool — the GTgraph stand-in of the paper's synthetic experiments — and,
// with -edits, a companion mutation stream ("+ u v" / "- u v" lines) for
// exercising the dynamic-graph path in benchmarks and examples.
//
// Usage:
//
//	gengraph -kind er      -n 1000 -m 10000 [-seed 1] [-o out.txt]
//	gengraph -kind rmat    -scale 10 -ef 8
//	gengraph -kind citation -n 1000 -avgout 6
//	gengraph -kind preset  -name CitHepTh-s
//	gengraph -kind er -n 1000 -m 10000 -o base.txt -edits 100 -editsout base.edits
//
// The mutation stream alternates deletions of random existing edges with
// insertions of random absent ones, tracked against the evolving edge set,
// so replaying it against the base graph exercises genuine churn (every
// delete hits, every insert adds).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/dyngraph"
	"repro/simstar"
)

func main() {
	kind := flag.String("kind", "er", "er, rmat, citation, preset")
	n := flag.Int("n", 1000, "nodes (er, citation)")
	m := flag.Int("m", 10000, "edges (er)")
	scale := flag.Int("scale", 10, "log2 nodes (rmat)")
	ef := flag.Int("ef", 8, "edge factor (rmat)")
	avgOut := flag.Int("avgout", 6, "mean out-degree (citation)")
	name := flag.String("name", "CitHepTh-s", "preset name (preset)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	edits := flag.Int("edits", 0, "also emit a mutation stream of this many edits")
	editsOut := flag.String("editsout", "", "mutation stream output file (required with -edits)")
	flag.Parse()

	if *edits > 0 && *editsOut == "" {
		fatal("-edits requires -editsout")
	}

	var g *simstar.Graph
	switch *kind {
	case "er":
		g = dataset.ErdosRenyi(*n, *m, *seed)
	case "rmat":
		g = dataset.RMATDefault(*scale, *ef, *seed)
	case "citation":
		g = dataset.PrefAttachDAG(*n, *avgOut, *seed)
	case "preset":
		p, err := dataset.ByName(*name)
		if err != nil {
			fatal(err)
		}
		g = p.Build()
	default:
		fatal(fmt.Sprintf("unknown kind %q", *kind))
	}

	w := os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		w = f
	}
	if err := simstar.WriteGraph(w, g); err != nil {
		fatal(err)
	}
	// Close before reporting success: on a write path the close error is the
	// last chance to hear about a short write.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "gengraph: %d nodes, %d edges (density %.2f)\n", g.N(), g.M(), g.Density())

	if *edits > 0 {
		stream := mutationStream(g, *edits, *seed)
		f, err := os.Create(*editsOut)
		if err != nil {
			fatal(err)
		}
		if err := dyngraph.WriteEdits(f, stream); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gengraph: %d edits → %s\n", len(stream), *editsOut)
	}
}

// mutationStream derives a churn workload from g: alternating deletions of
// random edges still present and insertions of random edges still absent,
// tracked against the evolving set so the stream replays without no-ops.
func mutationStream(g *simstar.Graph, count int, seed int64) []dyngraph.Edit {
	rng := rand.New(rand.NewSource(seed + 1))
	set := make(map[[2]int]bool, g.M())
	var present [][2]int
	g.Edges(func(u, v int) {
		set[[2]int{u, v}] = true
		present = append(present, [2]int{u, v})
	})
	n := g.N()
	stream := make([]dyngraph.Edit, 0, count)
	for i := 0; i < count; i++ {
		if i%2 == 0 && len(present) > 0 {
			j := rng.Intn(len(present))
			e := present[j]
			present[j] = present[len(present)-1]
			present = present[:len(present)-1]
			if !set[e] { // already deleted by an earlier pick
				i--
				continue
			}
			delete(set, e)
			stream = append(stream, dyngraph.Delete(e[0], e[1]))
			continue
		}
		for tries := 0; ; tries++ {
			e := [2]int{rng.Intn(n), rng.Intn(n)}
			if !set[e] {
				set[e] = true
				present = append(present, e)
				stream = append(stream, dyngraph.Insert(e[0], e[1]))
				break
			}
			if tries > 64 { // dense graph: give up on this slot
				break
			}
		}
	}
	return stream
}

func fatal(v interface{}) {
	fmt.Fprintln(os.Stderr, "gengraph:", v)
	os.Exit(1)
}
