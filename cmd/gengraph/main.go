// Command gengraph writes synthetic graphs in the edge-list format read by
// simtool — the GTgraph stand-in of the paper's synthetic experiments.
//
// Usage:
//
//	gengraph -kind er      -n 1000 -m 10000 [-seed 1] [-o out.txt]
//	gengraph -kind rmat    -scale 10 -ef 8
//	gengraph -kind citation -n 1000 -avgout 6
//	gengraph -kind preset  -name CitHepTh-s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/simstar"
)

func main() {
	kind := flag.String("kind", "er", "er, rmat, citation, preset")
	n := flag.Int("n", 1000, "nodes (er, citation)")
	m := flag.Int("m", 10000, "edges (er)")
	scale := flag.Int("scale", 10, "log2 nodes (rmat)")
	ef := flag.Int("ef", 8, "edge factor (rmat)")
	avgOut := flag.Int("avgout", 6, "mean out-degree (citation)")
	name := flag.String("name", "CitHepTh-s", "preset name (preset)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var g *simstar.Graph
	switch *kind {
	case "er":
		g = dataset.ErdosRenyi(*n, *m, *seed)
	case "rmat":
		g = dataset.RMATDefault(*scale, *ef, *seed)
	case "citation":
		g = dataset.PrefAttachDAG(*n, *avgOut, *seed)
	case "preset":
		p, err := dataset.ByName(*name)
		if err != nil {
			fatal(err)
		}
		g = p.Build()
	default:
		fatal(fmt.Sprintf("unknown kind %q", *kind))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := simstar.WriteGraph(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gengraph: %d nodes, %d edges (density %.2f)\n", g.N(), g.M(), g.Density())
}

func fatal(v interface{}) {
	fmt.Fprintln(os.Stderr, "gengraph:", v)
	os.Exit(1)
}
