// Command benchjson runs the engine's serving-path benchmark suite through
// testing.Benchmark and emits a machine-readable JSON report — ns/op,
// B/op and allocs/op per kernel — so the repository can track a performance
// trajectory across PRs instead of comparing prose. The checked-in
// BENCH_<pr>.json files are produced by
//
//	go run ./cmd/benchjson -out BENCH_<pr>.json -note "<context>"
//
// on a quiet machine; CI runs the same suite with -quick as a smoke check
// (a kernel that regresses into a panic or an allocation storm fails the
// job), without asserting absolute times, which are runner-dependent.
//
// The suite measures the same workload as BenchmarkEngineSingleSource100k
// in the simstar package: exact single-source SimRank* and RWR on a
// 100k-node degree-3 graph whose real locality is hidden behind scrambled
// ids, across the WithRelabeling layouts, plus the pooled zero-allocation
// SingleSourceInto loop (with and without a live Observer — the "obs"
// member reports the instrumentation overhead) and a 64-query blocked
// batch. The "scaling" member repeats the pooled loop with
// WithParallelSweeps(-1) to record the intra-query fan-out speedup for
// the runner's core count.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/simstar"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report schema history: 1 = kernel results only; 2 adds the optional
// "serving" member — a cmd/simbench report embedded verbatim (-serving), so
// one BENCH file carries both the kernel ns/op and the serving-path
// latency/throughput baselines for the same graph shape; 3 adds the "obs"
// member bounding the cost of kernel instrumentation; 4 adds the "scaling"
// member recording how the pooled single-source path responds to
// WithParallelSweeps — serial vs all-core ns/op, the ratio, and both sides'
// allocs/op (the fan-out must not break the zero-alloc discipline).
type report struct {
	Schema  int             `json:"schema"`
	Go      string          `json:"go"`
	GOOS    string          `json:"goos"`
	GOARCH  string          `json:"goarch"`
	CPUs    int             `json:"cpus"`
	Nodes   int             `json:"nodes"`
	Edges   int             `json:"edges"`
	Note    string          `json:"note,omitempty"`
	Results []result        `json:"results"`
	Obs     *obsJSON        `json:"obs,omitempty"`
	Scaling *scalingJSON    `json:"scaling,omitempty"`
	Serving json.RawMessage `json:"serving,omitempty"`
}

// scalingJSON is the multi-core scaling record: the pooled SingleSourceInto
// loop at WithParallelSweeps(1) (serial sweeps, the historical baseline)
// against WithParallelSweeps(-1) (one range per available core). speedup is
// serial/parallel; on a single-CPU runner it is honestly ~1.0 — the number
// only means something where workers > 1, which is why CPUs and Workers are
// part of the record. Both allocs_per_op fields must stay 0: the sweeper's
// persistent worker pool, not the consumer, absorbs the fan-out cost.
type scalingJSON struct {
	Workers           int     `json:"workers"`
	SerialNsPerOp     float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp   float64 `json:"parallel_ns_per_op"`
	Speedup           float64 `json:"speedup"`
	AllocsPerOpSerial int64   `json:"allocs_per_op_serial"`
	AllocsPerOpPar    int64   `json:"allocs_per_op_parallel"`
}

// obsJSON records the observability tax on the hottest zero-alloc path:
// the pooled SingleSourceInto loop with no observer attached (every hook a
// single not-taken nil branch) against the same loop with a live Observer
// recording into an obs.Registry. allocs_per_op_off pins the zero-cost-
// when-off contract — instrumentation must not reintroduce allocations —
// and overhead_pct — the ratio of each side's fastest interleaved timing
// block (see measureObs) — is the figure the PR gates at ≤2%.
type obsJSON struct {
	ObserverOffNsPerOp float64 `json:"observer_off_ns_per_op"`
	ObserverOnNsPerOp  float64 `json:"observer_on_ns_per_op"`
	OverheadPct        float64 `json:"overhead_pct"`
	AllocsPerOpOff     int64   `json:"allocs_per_op_off"`
	AllocsPerOpOn      int64   `json:"allocs_per_op_on"`
}

// measureObs estimates the instrumentation overhead by interleaving short
// off and on timing blocks and comparing each side's fastest block. One
// long benchmark per side cannot resolve the sub-percent signal — machine
// noise (thermal ramp, neighbours, interrupts) across two one-second runs
// routinely exceeds it — but timing noise is one-sided, it only ever adds
// time, so over many interleaved ~200ms blocks each side's minimum
// converges on that loop's true cost and their ratio isolates the
// instrumentation. off and on run n pooled queries and return the wall
// time; offAllocs/onAllocs report steady-state allocations per query.
func measureObs(off, on func(n int) time.Duration, offAllocs, onAllocs func() float64) *obsJSON {
	const reps = 30
	const block = 200 * time.Millisecond
	// Calibrate the block length off a short probe, then warm both sides'
	// workspace pools before any timed block.
	per := off(32) / 32
	if per <= 0 {
		per = time.Microsecond
	}
	iters := int(block / per)
	if iters < 16 {
		iters = 16
	}
	on(iters)

	o := &obsJSON{ObserverOffNsPerOp: math.Inf(1), ObserverOnNsPerOp: math.Inf(1)}
	for i := 0; i < reps; i++ {
		// Alternate which side runs first so slow drift across the
		// measurement window cannot systematically favour one side.
		first, second := off, on
		if i%2 == 1 {
			first, second = on, off
		}
		d1 := float64(first(iters).Nanoseconds()) / float64(iters)
		d2 := float64(second(iters).Nanoseconds()) / float64(iters)
		offNs, onNs := d1, d2
		if i%2 == 1 {
			offNs, onNs = d2, d1
		}
		o.ObserverOffNsPerOp = math.Min(o.ObserverOffNsPerOp, offNs)
		o.ObserverOnNsPerOp = math.Min(o.ObserverOnNsPerOp, onNs)
	}
	o.OverheadPct = (o.ObserverOnNsPerOp/o.ObserverOffNsPerOp - 1) * 100
	o.AllocsPerOpOff = int64(math.Round(offAllocs()))
	o.AllocsPerOpOn = int64(math.Round(onAllocs()))
	return o
}

// benchGraph mirrors the simstar benchmark graph: local structure behind
// scrambled ids, so relabeling has something to recover.
func benchGraph(n, deg int) *simstar.Graph {
	rng := rand.New(rand.NewSource(271828))
	shuf := rng.Perm(n)
	edges := make([][2]int, 0, n*deg)
	for u := 0; u < n; u++ {
		for d := 0; d < deg; d++ {
			v := u + 1 + rng.Intn(64)
			if v >= n {
				v -= n
			}
			edges = append(edges, [2]int{shuf[u], shuf[v]})
		}
	}
	return graph.FromEdges(n, edges)
}

func main() {
	out := flag.String("out", "BENCH.json", "output path for the JSON report (\"-\" for stdout)")
	nodes := flag.Int("nodes", 100_000, "benchmark graph size")
	quick := flag.Bool("quick", false, "CI smoke mode: a small graph, same suite")
	note := flag.String("note", "", "free-form context recorded in the report")
	serving := flag.String("serving", "", "path to a cmd/simbench report to embed under \"serving\"")
	flag.Parse()
	if *quick {
		*nodes = 10_000
	}

	g := benchGraph(*nodes, 3)
	ctx := context.Background()
	miner := simstar.WithMiner(simstar.MinerOptions{
		MinSources: 64, MinTargets: 64, DisablePairMining: true,
	})
	engine := func(opts ...simstar.Option) *simstar.Engine {
		return simstar.NewEngine(g, append([]simstar.Option{simstar.WithCacheSize(-1), miner}, opts...)...)
	}
	single := func(eng *simstar.Engine, measure string) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.SingleSource(ctx, measure, (i*7919)%g.N()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	natural := engine()
	rcm := engine(simstar.WithRelabeling(simstar.RelabelRCM))
	degree := engine(simstar.WithRelabeling(simstar.RelabelDegree))
	// observed is the degree engine with a live Observer: identical kernel
	// work plus real counter/histogram updates, the "on" side of the obs
	// member.
	observed := engine(simstar.WithRelabeling(simstar.RelabelDegree), simstar.WithObserver(simstar.NewObserver(nil)))
	pooled := func(eng *simstar.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			buf := make([]float64, g.N())
			for i := 0; i < b.N; i++ {
				var err error
				if buf, err = eng.SingleSourceInto(ctx, simstar.MeasureGeometric, (i*7919)%g.N(), buf); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	const pooledOff = "engine_single_source_into_pooled_degree"
	const pooledOn = "engine_single_source_into_pooled_degree_obs"
	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"engine_single_source_exact", single(natural, simstar.MeasureGeometric)},
		{"engine_single_source_exact_rcm", single(rcm, simstar.MeasureGeometric)},
		{"engine_single_source_exact_degree", single(degree, simstar.MeasureGeometric)},
		{pooledOff, pooled(degree)},
		{pooledOn, pooled(observed)},
		{"engine_single_source_rwr_degree", single(degree, simstar.MeasureRWR)},
		{"engine_multi_source_block64_degree", func(b *testing.B) {
			queries := make([]simstar.Query, 64)
			for i := range queries {
				queries[i] = simstar.Query{Measure: simstar.MeasureGeometric, Node: (i * 1117) % g.N()}
			}
			for i := 0; i < b.N; i++ {
				for _, r := range degree.MultiSource(ctx, queries) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		}},
	}

	rep := report{
		Schema: 4,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Nodes:  g.N(),
		Edges:  g.M(),
		Note:   *note,
	}
	for _, bm := range suite {
		r := testing.Benchmark(bm.fn)
		row := result{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Results = append(rep.Results, row)
		fmt.Fprintf(os.Stderr, "%-42s %12.0f ns/op %10d B/op %6d allocs/op\n",
			bm.name, row.NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	pooledTimed := func(eng *simstar.Engine) func(n int) time.Duration {
		buf := make([]float64, g.N())
		return func(n int) time.Duration {
			start := time.Now()
			for i := 0; i < n; i++ {
				var err error
				if buf, err = eng.SingleSourceInto(ctx, simstar.MeasureGeometric, (i*7919)%g.N(), buf); err != nil {
					log.Fatalf("benchjson: obs measurement: %v", err)
				}
			}
			return time.Since(start)
		}
	}
	pooledAllocs := func(eng *simstar.Engine) func() float64 {
		buf := make([]float64, g.N())
		i := 0
		return func() float64 {
			return testing.AllocsPerRun(50, func() {
				var err error
				if buf, err = eng.SingleSourceInto(ctx, simstar.MeasureGeometric, (i*7919)%g.N(), buf); err != nil {
					log.Fatalf("benchjson: obs allocs: %v", err)
				}
				i++
			})
		}
	}
	rep.Obs = measureObs(pooledTimed(degree), pooledTimed(observed),
		pooledAllocs(degree), pooledAllocs(observed))
	fmt.Fprintf(os.Stderr, "obs overhead: %+.2f%% (off %.0f ns/op, on %.0f ns/op, allocs off=%d on=%d)\n",
		rep.Obs.OverheadPct, rep.Obs.ObserverOffNsPerOp, rep.Obs.ObserverOnNsPerOp,
		rep.Obs.AllocsPerOpOff, rep.Obs.AllocsPerOpOn)

	// Scaling: the same pooled loop, WithParallelSweeps(1) (= the degree
	// engine's default serial sweeps) against WithParallelSweeps(-1), one
	// row range per core. measureObs's interleaved-minimum trick applies
	// unchanged — the sweep fan-out signal rides on the same one-sided
	// timing noise as the instrumentation tax.
	fanout := engine(simstar.WithRelabeling(simstar.RelabelDegree), simstar.WithParallelSweeps(-1))
	sc := measureObs(pooledTimed(degree), pooledTimed(fanout),
		pooledAllocs(degree), pooledAllocs(fanout))
	rep.Scaling = &scalingJSON{
		Workers:           par.Workers(),
		SerialNsPerOp:     sc.ObserverOffNsPerOp,
		ParallelNsPerOp:   sc.ObserverOnNsPerOp,
		Speedup:           sc.ObserverOffNsPerOp / sc.ObserverOnNsPerOp,
		AllocsPerOpSerial: sc.AllocsPerOpOff,
		AllocsPerOpPar:    sc.AllocsPerOpOn,
	}
	fmt.Fprintf(os.Stderr, "scaling: %.2fx at %d workers (serial %.0f ns/op, parallel %.0f ns/op, allocs serial=%d parallel=%d)\n",
		rep.Scaling.Speedup, rep.Scaling.Workers, rep.Scaling.SerialNsPerOp,
		rep.Scaling.ParallelNsPerOp, rep.Scaling.AllocsPerOpSerial, rep.Scaling.AllocsPerOpPar)

	if *serving != "" {
		raw, err := os.ReadFile(*serving)
		if err != nil {
			log.Fatalf("benchjson: reading -serving report: %v", err)
		}
		if !json.Valid(raw) {
			log.Fatalf("benchjson: -serving report %s is not valid JSON", *serving)
		}
		rep.Serving = json.RawMessage(raw)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
}
