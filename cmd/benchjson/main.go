// Command benchjson runs the engine's serving-path benchmark suite through
// testing.Benchmark and emits a machine-readable JSON report — ns/op,
// B/op and allocs/op per kernel — so the repository can track a performance
// trajectory across PRs instead of comparing prose. The checked-in
// BENCH_<pr>.json files are produced by
//
//	go run ./cmd/benchjson -out BENCH_<pr>.json -note "<context>"
//
// on a quiet machine; CI runs the same suite with -quick as a smoke check
// (a kernel that regresses into a panic or an allocation storm fails the
// job), without asserting absolute times, which are runner-dependent.
//
// The suite measures the same workload as BenchmarkEngineSingleSource100k
// in the simstar package: exact single-source SimRank* and RWR on a
// 100k-node degree-3 graph whose real locality is hidden behind scrambled
// ids, across the WithRelabeling layouts, plus the pooled zero-allocation
// SingleSourceInto loop and a 64-query blocked batch.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/simstar"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report schema history: 1 = kernel results only; 2 adds the optional
// "serving" member — a cmd/simbench report embedded verbatim (-serving), so
// one BENCH file carries both the kernel ns/op and the serving-path
// latency/throughput baselines for the same graph shape.
type report struct {
	Schema  int             `json:"schema"`
	Go      string          `json:"go"`
	GOOS    string          `json:"goos"`
	GOARCH  string          `json:"goarch"`
	CPUs    int             `json:"cpus"`
	Nodes   int             `json:"nodes"`
	Edges   int             `json:"edges"`
	Note    string          `json:"note,omitempty"`
	Results []result        `json:"results"`
	Serving json.RawMessage `json:"serving,omitempty"`
}

// benchGraph mirrors the simstar benchmark graph: local structure behind
// scrambled ids, so relabeling has something to recover.
func benchGraph(n, deg int) *simstar.Graph {
	rng := rand.New(rand.NewSource(271828))
	shuf := rng.Perm(n)
	edges := make([][2]int, 0, n*deg)
	for u := 0; u < n; u++ {
		for d := 0; d < deg; d++ {
			v := u + 1 + rng.Intn(64)
			if v >= n {
				v -= n
			}
			edges = append(edges, [2]int{shuf[u], shuf[v]})
		}
	}
	return graph.FromEdges(n, edges)
}

func main() {
	out := flag.String("out", "BENCH.json", "output path for the JSON report (\"-\" for stdout)")
	nodes := flag.Int("nodes", 100_000, "benchmark graph size")
	quick := flag.Bool("quick", false, "CI smoke mode: a small graph, same suite")
	note := flag.String("note", "", "free-form context recorded in the report")
	serving := flag.String("serving", "", "path to a cmd/simbench report to embed under \"serving\"")
	flag.Parse()
	if *quick {
		*nodes = 10_000
	}

	g := benchGraph(*nodes, 3)
	ctx := context.Background()
	miner := simstar.WithMiner(simstar.MinerOptions{
		MinSources: 64, MinTargets: 64, DisablePairMining: true,
	})
	engine := func(opts ...simstar.Option) *simstar.Engine {
		return simstar.NewEngine(g, append([]simstar.Option{simstar.WithCacheSize(-1), miner}, opts...)...)
	}
	single := func(eng *simstar.Engine, measure string) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.SingleSource(ctx, measure, (i*7919)%g.N()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	natural := engine()
	rcm := engine(simstar.WithRelabeling(simstar.RelabelRCM))
	degree := engine(simstar.WithRelabeling(simstar.RelabelDegree))
	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"engine_single_source_exact", single(natural, simstar.MeasureGeometric)},
		{"engine_single_source_exact_rcm", single(rcm, simstar.MeasureGeometric)},
		{"engine_single_source_exact_degree", single(degree, simstar.MeasureGeometric)},
		{"engine_single_source_into_pooled_degree", func(b *testing.B) {
			buf := make([]float64, g.N())
			for i := 0; i < b.N; i++ {
				var err error
				if buf, err = degree.SingleSourceInto(ctx, simstar.MeasureGeometric, (i*7919)%g.N(), buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"engine_single_source_rwr_degree", single(degree, simstar.MeasureRWR)},
		{"engine_multi_source_block64_degree", func(b *testing.B) {
			queries := make([]simstar.Query, 64)
			for i := range queries {
				queries[i] = simstar.Query{Measure: simstar.MeasureGeometric, Node: (i * 1117) % g.N()}
			}
			for i := 0; i < b.N; i++ {
				for _, r := range degree.MultiSource(ctx, queries) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		}},
	}

	rep := report{
		Schema: 2,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Nodes:  g.N(),
		Edges:  g.M(),
		Note:   *note,
	}
	for _, bm := range suite {
		r := testing.Benchmark(bm.fn)
		rep.Results = append(rep.Results, result{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-42s %12.0f ns/op %10d B/op %6d allocs/op\n",
			bm.name, rep.Results[len(rep.Results)-1].NsPerOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	if *serving != "" {
		raw, err := os.ReadFile(*serving)
		if err != nil {
			log.Fatalf("benchjson: reading -serving report: %v", err)
		}
		if !json.Valid(raw) {
			log.Fatalf("benchjson: -serving report %s is not valid JSON", *serving)
		}
		rep.Serving = json.RawMessage(raw)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
}
