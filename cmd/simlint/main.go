// Command simlint runs the project's custom static analyzers (ctxflow,
// poolescape, noalloc, cachekey — see internal/lint) over the packages
// matching the given go patterns and reports every hot-path invariant
// violation as file:line:col: [analyzer] message.
//
//	go run ./cmd/simlint ./...
//
// Exit status: 0 when the tree is clean, 1 when violations are found, 2
// when the packages cannot be loaded. Suppress an individual finding with
// a reasoned escape hatch on (or directly above) the flagged line:
//
//	//simstar:lint-ignore <analyzer> <reason>
//
// Flags:
//
//	-list          print the analyzers and their one-line docs, then exit
//	-run a,b,...   run only the named analyzers
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [-run a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	if *run != "" {
		analyzers = selectAnalyzers(analyzers, strings.Split(*run, ","))
		if len(analyzers) == 0 {
			fmt.Fprintln(os.Stderr, "simlint: -run matched no analyzers")
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := lint.LoadPatterns(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(fset, pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// firstLine truncates a doc string to its first line.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// selectAnalyzers filters the suite down to the named checks.
func selectAnalyzers(all []*lint.Analyzer, names []string) []*lint.Analyzer {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
