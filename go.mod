module repro

go 1.22

// Pin the release the suite is developed and CI-tested against; `go` will
// download and delegate to it when the host toolchain is older.
toolchain go1.24.0
