package dataset

import (
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyi returns a G(n, m)-style random digraph: m directed edges drawn
// uniformly (self-loops excluded, duplicates collapse, so M() <= m).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
	}
	return mustBuild(b)
}

// RMAT generates a recursive-matrix power-law digraph (Chakrabarti et al.),
// the model behind GTgraph's sampler and Web-Google-style webgraphs. The
// (a, b, c, d) quadrant probabilities must sum to ~1; the classic choice
// (0.57, 0.19, 0.19, 0.05) yields heavy-tailed in-degrees.
func RMAT(scale, edgeFactor int, a, b, c, d float64, seed int64) *graph.Graph {
	n := 1 << scale
	m := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder()
	bld.EnsureN(n)
	sum := a + b + c + d
	a, b, c = a/sum, b/sum, c/sum
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			bld.AddEdge(u, v)
		}
	}
	return mustBuild(bld)
}

// RMATDefault runs RMAT with the canonical (0.57, 0.19, 0.19, 0.05) mix.
func RMATDefault(scale, edgeFactor int, seed int64) *graph.Graph {
	return RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, 0.05, seed)
}

// PrefAttachDAG returns a time-ordered citation DAG: node t (t >= 1) cites
// up to avgOut earlier papers chosen by preferential attachment (probability
// proportional to 1 + current in-degree). All edges point from newer to
// older nodes, like a real citation network.
func PrefAttachDAG(n, avgOut int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	b.EnsureN(n)
	// targets holds one entry per (node, weight) unit for O(1) preferential
	// sampling; every node enters once, and again per citation received.
	targets := make([]int32, 0, n*(avgOut+1))
	targets = append(targets, 0)
	for t := 1; t < n; t++ {
		cites := 1 + rng.Intn(2*avgOut) // mean ≈ avgOut + 1/2
		if cites > t {
			cites = t
		}
		seen := make(map[int]bool, cites)
		for c := 0; c < cites; c++ {
			v := int(targets[rng.Intn(len(targets))])
			if v >= t || seen[v] {
				v = rng.Intn(t) // fall back to uniform among older papers
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			b.AddEdge(t, v)
			targets = append(targets, int32(v))
		}
		targets = append(targets, int32(t))
	}
	return mustBuild(b)
}

// withDensity tops a graph up with uniform extra edges until it reaches the
// requested density m/n; generators use it to match the paper's Figure-5
// dataset shapes. Added edges point from larger to smaller ids, preserving
// the DAG property of citation generators.
func withDensity(g *graph.Graph, density float64, seed int64) *graph.Graph {
	n := g.N()
	want := int(density * float64(n))
	if g.M() >= want || n < 2 {
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	have := make(map[[2]int32]bool, want)
	b := graph.NewBuilder()
	b.EnsureN(n)
	g.Edges(func(u, v int) {
		b.AddEdge(u, v)
		have[[2]int32{int32(u), int32(v)}] = true
	})
	missing := want - len(have)
	for tries := 0; missing > 0 && tries < 50*want; tries++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		if u < v {
			u, v = v, u
		}
		key := [2]int32{int32(u), int32(v)}
		if have[key] {
			continue
		}
		have[key] = true
		b.AddEdge(u, v)
		missing--
	}
	return mustBuild(b)
}
