// Package dataset provides every workload used by the tests, examples and
// benchmark harness: the paper's Figure-1 citation graph, toy topologies for
// unit tests, GTgraph-style synthetic generators (Erdős–Rényi, R-MAT,
// preferential attachment), a planted-topic citation generator that doubles
// as the ground-truth oracle replacing the paper's human judges, a
// community-structured coauthor generator with H-index simulation, and
// scaled presets mirroring the densities of the paper's real datasets
// (Figure 5).
package dataset

import "repro/internal/graph"

// Figure1 builds the 11-node citation graph of the paper's Figure 1 (nodes
// labelled a..k). Its induced bigraph is the paper's Figure 4, with the two
// bicliques ({b,d},{c,g,i}) and ({e,j,k},{h,i}). The edge set is
// reconstructed from the paper's worked examples:
//
//	h ← e ← a → d and h ← e ← a → b → f → d  (Example 1, Sec. 3.2)
//	g ← b → i and g ← d → i                  (Example 1)
//	I(h) = {e,j,k}, I(i) = {b,d,e,h,j,k}, I(c) = I(g) = {b,d}  (Fig. 4, Ex. 2)
func Figure1() *graph.Graph {
	b := graph.NewBuilder()
	for _, e := range [][2]string{
		{"a", "b"}, {"a", "d"}, {"a", "e"},
		{"b", "c"}, {"b", "f"}, {"b", "g"}, {"b", "i"},
		{"d", "c"}, {"d", "g"}, {"d", "i"},
		{"e", "h"}, {"e", "i"},
		{"f", "d"},
		{"h", "i"},
		{"j", "h"}, {"j", "i"},
		{"k", "h"}, {"k", "i"},
	} {
		b.AddEdgeLabeled(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Path returns the directed path 0→1→…→n−1.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return mustBuild(b)
}

// BiPath returns the Sec. 1 counterexample a_{−n} ← … ← a_0 → … → a_n on
// 2n+1 nodes: node n is the centre a_0; nodes n−k and n+k are a_{−k}, a_k.
// SimRank is zero for every pair (a_i, a_j) with |i| ≠ |j| even though a_0
// is a common root — SimRank* is not.
func BiPath(n int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(2*n + 1)
	for k := 0; k < n; k++ {
		b.AddEdge(n+k, n+k+1) // a_k → a_{k+1}
		b.AddEdge(n-k, n-k-1) // a_{−k} → a_{−k−1}
	}
	return mustBuild(b)
}

// Cycle returns the directed cycle on n nodes.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return mustBuild(b)
}

// Star returns a star with centre 0 pointing at n−1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return mustBuild(b)
}

// CompleteBipartite returns K_{p,q}: nodes 0..p−1 each pointing at nodes
// p..p+q−1. Its induced bigraph is one biclique, the best case for edge
// concentration.
func CompleteBipartite(p, q int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(p + q)
	for u := 0; u < p; u++ {
		for v := p; v < p+q; v++ {
			b.AddEdge(u, v)
		}
	}
	return mustBuild(b)
}

// FamilyTree returns the Figure-3 family tree: Grandpa → {Father, Uncle},
// Father → Me, Uncle → Cousin, Me → Son, Son → Grandson. Labels match the
// paper.
func FamilyTree() *graph.Graph {
	b := graph.NewBuilder()
	for _, e := range [][2]string{
		{"Grandpa", "Father"}, {"Grandpa", "Uncle"},
		{"Father", "Me"}, {"Uncle", "Cousin"},
		{"Me", "Son"}, {"Son", "Grandson"},
	} {
		b.AddEdgeLabeled(e[0], e[1])
	}
	return mustBuild(b)
}

func mustBuild(b *graph.Builder) *graph.Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
