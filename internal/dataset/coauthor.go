package dataset

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// CoauthorNet is a synthetic collaboration network standing in for the
// paper's DBLP snapshots: undirected co-authorship edges generated from
// community-structured papers, plus a per-author publication record from
// which an H-index is computed (the Fig. 6(b)/(c) role proxy on DBLP).
type CoauthorNet struct {
	G *graph.Graph // symmetric: an edge each way per collaboration
	// Community[a] is the research community of author a.
	Community []int
	// PaperCites[a] holds the citation counts of a's papers.
	PaperCites [][]int
}

// CoauthorOptions controls the generator.
type CoauthorOptions struct {
	Authors     int
	Papers      int     // default 3×authors
	Communities int     // default 12
	CrossProb   float64 // probability a paper takes one out-of-community author, default 0.1
	Seed        int64
}

func (o CoauthorOptions) withDefaults() CoauthorOptions {
	if o.Papers <= 0 {
		o.Papers = 3 * o.Authors
	}
	if o.Communities <= 0 {
		o.Communities = 12
	}
	if o.CrossProb <= 0 {
		o.CrossProb = 0.1
	}
	return o
}

// Coauthor generates the network: each paper draws 2–4 authors, mostly from
// one community, links them pairwise, and receives a heavy-tailed citation
// count credited to every author. Productive authors are favoured
// preferentially, yielding the skewed degree and H-index distributions of
// real DBLP data.
func Coauthor(opt CoauthorOptions) *CoauthorNet {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	n := opt.Authors
	net := &CoauthorNet{
		Community:  make([]int, n),
		PaperCites: make([][]int, n),
	}
	members := make([][]int, opt.Communities)
	for a := 0; a < n; a++ {
		c := rng.Intn(opt.Communities)
		net.Community[a] = c
		members[c] = append(members[c], a)
	}
	b := graph.NewBuilder()
	b.EnsureN(n)
	// Preferential pool over authors (entries repeat per authored paper).
	pool := make([]int, 0, opt.Papers*3)
	for a := 0; a < n; a++ {
		pool = append(pool, a)
	}
	for p := 0; p < opt.Papers; p++ {
		comm := rng.Intn(opt.Communities)
		if len(members[comm]) == 0 {
			continue
		}
		k := 2 + rng.Intn(3) // 2–4 authors
		authors := make([]int, 0, k)
		seen := map[int]bool{}
		for len(authors) < k {
			var a int
			if rng.Float64() < opt.CrossProb {
				a = pool[rng.Intn(len(pool))]
			} else {
				// Preferential within the community via rejection from pool.
				a = members[comm][rng.Intn(len(members[comm]))]
				for tries := 0; tries < 3; tries++ {
					cand := pool[rng.Intn(len(pool))]
					if net.Community[cand] == comm {
						a = cand
						break
					}
				}
			}
			if seen[a] {
				if len(seen) >= len(members[comm]) {
					break
				}
				continue
			}
			seen[a] = true
			authors = append(authors, a)
		}
		if len(authors) < 2 {
			continue
		}
		// Heavy-tailed citations: 80% small, 20% boosted.
		cites := rng.Intn(5)
		if rng.Float64() < 0.2 {
			cites += 5 + rng.Intn(60)
		}
		for i, a := range authors {
			net.PaperCites[a] = append(net.PaperCites[a], cites)
			pool = append(pool, a)
			for _, b2 := range authors[i+1:] {
				b.AddUndirected(a, b2)
			}
		}
	}
	net.G = mustBuild(b)
	return net
}

// HIndex returns author a's H-index: the largest h such that a has h papers
// with at least h citations each.
func (net *CoauthorNet) HIndex(a int) int {
	cites := append([]int(nil), net.PaperCites[a]...)
	sort.Sort(sort.Reverse(sort.IntSlice(cites)))
	h := 0
	for i, c := range cites {
		if c >= i+1 {
			h = i + 1
		} else {
			break
		}
	}
	return h
}
