package dataset

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Preset is a scaled stand-in for one of the paper's Figure-5 datasets. The
// node counts are reduced so that all-pairs O(n²) state fits a laptop, but
// the density (edges/node, the column the paper reports) and the generative
// family (citation DAG, collaboration graph, webgraph) match the original.
type Preset struct {
	Name     string
	PaperN   int     // |V| in the paper
	PaperM   int     // |E| in the paper
	Density  float64 // paper's |E|/|V|
	ScaledN  int     // nodes generated here
	Kind     string  // "citation", "coauthor", "web"
	Directed bool
	Seed     int64
}

// Presets lists the scaled datasets in the order of the paper's Figure 5.
var Presets = []Preset{
	{Name: "CitHepTh-s", PaperN: 33_000, PaperM: 418_000, Density: 12.6, ScaledN: 1200, Kind: "citation", Directed: true, Seed: 101},
	{Name: "DBLP-s", PaperN: 15_000, PaperM: 87_000, Density: 5.8, ScaledN: 1000, Kind: "coauthor", Directed: false, Seed: 102},
	{Name: "D05-s", PaperN: 4_000, PaperM: 17_000, Density: 4.3, ScaledN: 400, Kind: "coauthor", Directed: false, Seed: 103},
	{Name: "D08-s", PaperN: 13_000, PaperM: 72_000, Density: 5.5, ScaledN: 800, Kind: "coauthor", Directed: false, Seed: 104},
	{Name: "D11-s", PaperN: 14_000, PaperM: 89_000, Density: 6.3, ScaledN: 1000, Kind: "coauthor", Directed: false, Seed: 105},
	{Name: "WebGoogle-s", PaperN: 873_000, PaperM: 4_900_000, Density: 5.6, ScaledN: 1024, Kind: "web", Directed: true, Seed: 106},
	{Name: "CitPatent-s", PaperN: 3_600_000, PaperM: 16_200_000, Density: 4.5, ScaledN: 1500, Kind: "citation", Directed: true, Seed: 107},
}

// ByName returns the preset with the given name (case-sensitive).
func ByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, len(Presets))
	for i, p := range Presets {
		names[i] = p.Name
	}
	sort.Strings(names)
	return Preset{}, fmt.Errorf("dataset: unknown preset %q (have %v)", name, names)
}

// Build generates the preset's graph. Citation presets are preferential-
// attachment DAGs topped up to the target density; coauthor presets are
// symmetric community graphs; web presets are R-MAT.
func (p Preset) Build() *graph.Graph {
	switch p.Kind {
	case "citation":
		avgOut := int(p.Density)
		if avgOut < 1 {
			avgOut = 1
		}
		g := PrefAttachDAG(p.ScaledN, avgOut, p.Seed)
		return withDensity(g, p.Density, p.Seed+1)
	case "coauthor":
		// Undirected density d means d directed edges per node after
		// symmetrisation; papers per author tunes it.
		papers := int(p.Density * float64(p.ScaledN) / 5)
		net := Coauthor(CoauthorOptions{Authors: p.ScaledN, Papers: papers, Seed: p.Seed})
		return net.G
	case "web":
		scale := 0
		for 1<<scale < p.ScaledN {
			scale++
		}
		ef := int(p.Density + 0.5)
		return RMATDefault(scale, ef, p.Seed)
	default:
		panic("dataset: unknown preset kind " + p.Kind)
	}
}

// BuildCorpus generates the preset as a planted-topic corpus when it is a
// citation dataset (ground truth available), or nil otherwise.
func (p Preset) BuildCorpus() *Corpus {
	if p.Kind != "citation" {
		return nil
	}
	return TopicCitation(TopicCitationOptions{
		N:      p.ScaledN,
		AvgOut: int(p.Density),
		Seed:   p.Seed,
	})
}
