package dataset

import (
	"math"
	"testing"
)

func TestFigure1Structure(t *testing.T) {
	g := Figure1()
	if g.N() != 11 {
		t.Fatalf("N = %d, want 11", g.N())
	}
	if g.M() != 18 {
		t.Fatalf("M = %d, want 18", g.M())
	}
	// Checks straight from the paper's text.
	id := func(l string) int {
		i, ok := g.NodeByLabel(l)
		if !ok {
			t.Fatalf("node %q missing", l)
		}
		return i
	}
	a, e, h, i := id("a"), id("e"), id("h"), id("i")
	if g.InDeg(a) != 0 {
		t.Fatal("a must have no in-neighbours (s(a,g)=0 argument)")
	}
	if g.InDeg(h) != 3 { // I(h) = {e,j,k}
		t.Fatalf("InDeg(h) = %d, want 3", g.InDeg(h))
	}
	if g.InDeg(i) != 6 { // I(i) = {b,d,e,h,j,k}
		t.Fatalf("InDeg(i) = %d, want 6", g.InDeg(i))
	}
	if !g.HasEdge(a, e) || !g.HasEdge(e, h) {
		t.Fatal("path h ← e ← a missing")
	}
}

func TestToyTopologies(t *testing.T) {
	if p := Path(5); p.M() != 4 || p.InDeg(0) != 0 || p.InDeg(4) != 1 {
		t.Fatal("Path wrong")
	}
	if c := Cycle(4); c.M() != 4 || c.InDeg(0) != 1 {
		t.Fatal("Cycle wrong")
	}
	if s := Star(6); s.OutDeg(0) != 5 || s.InDeg(3) != 1 {
		t.Fatal("Star wrong")
	}
	if k := CompleteBipartite(3, 4); k.M() != 12 || k.InDeg(5) != 3 {
		t.Fatal("CompleteBipartite wrong")
	}
}

func TestBiPath(t *testing.T) {
	g := BiPath(3) // 7 nodes, centre 3
	if g.N() != 7 || g.M() != 6 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.OutDeg(3) != 2 { // a_0 starts both arms
		t.Fatalf("centre OutDeg = %d, want 2", g.OutDeg(3))
	}
	if g.InDeg(3) != 0 {
		t.Fatal("centre must be a source")
	}
	if !g.HasEdge(3, 4) || !g.HasEdge(3, 2) || !g.HasEdge(4, 5) || !g.HasEdge(2, 1) {
		t.Fatal("arms wrong")
	}
}

func TestFamilyTree(t *testing.T) {
	g := FamilyTree()
	me, _ := g.NodeByLabel("Me")
	cousin, _ := g.NodeByLabel("Cousin")
	if g.N() != 7 {
		t.Fatalf("N = %d, want 7", g.N())
	}
	if g.InDeg(me) != 1 || g.InDeg(cousin) != 1 {
		t.Fatal("family tree degrees wrong")
	}
}

func TestErdosRenyiDeterminism(t *testing.T) {
	g1 := ErdosRenyi(50, 200, 7)
	g2 := ErdosRenyi(50, 200, 7)
	if g1.M() != g2.M() {
		t.Fatal("same seed produced different graphs")
	}
	g3 := ErdosRenyi(50, 200, 8)
	if g1.M() == g3.M() && g1.N() == g3.N() {
		// Same M can legitimately collide; check edge sets differ.
		same := true
		g1.Edges(func(u, v int) {
			if !g3.HasEdge(u, v) {
				same = false
			}
		})
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
	for v := 0; v < g1.N(); v++ {
		if g1.HasEdge(v, v) {
			t.Fatal("self-loop in ER graph")
		}
	}
}

func TestRMATShape(t *testing.T) {
	g := RMATDefault(8, 6, 3)
	if g.N() != 256 {
		t.Fatalf("N = %d, want 256", g.N())
	}
	if g.M() == 0 || g.M() > 256*6 {
		t.Fatalf("M = %d out of range", g.M())
	}
	// Power-law-ish: the max in-degree should far exceed the mean.
	st := g.ComputeStats()
	if float64(st.MaxInDeg) < 3*g.Density() {
		t.Fatalf("MaxInDeg = %d vs density %.1f: not heavy-tailed", st.MaxInDeg, g.Density())
	}
}

func TestPrefAttachDAGIsAcyclic(t *testing.T) {
	g := PrefAttachDAG(300, 5, 11)
	g.Edges(func(u, v int) {
		if v >= u {
			t.Fatalf("edge %d→%d violates time order", u, v)
		}
	})
	if g.M() < 300 {
		t.Fatalf("M = %d suspiciously small", g.M())
	}
}

func TestTopicCitation(t *testing.T) {
	c := TopicCitation(TopicCitationOptions{N: 400, Seed: 5})
	if c.G.N() != 400 {
		t.Fatalf("N = %d", c.G.N())
	}
	// DAG property.
	c.G.Edges(func(u, v int) {
		if v >= u {
			t.Fatalf("edge %d→%d violates time order", u, v)
		}
	})
	// Topic vectors are unit norm; TrueSim symmetric in [0,1]; self-sim 1.
	for _, i := range []int{0, 17, 399} {
		norm := 0.0
		for _, x := range c.Topics[i] {
			norm += x * x
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Fatalf("topic norm = %g", norm)
		}
		if math.Abs(c.TrueSim(i, i)-1) > 1e-12 {
			t.Fatal("TrueSim(i,i) != 1")
		}
	}
	if math.Abs(c.TrueSim(3, 9)-c.TrueSim(9, 3)) > 1e-15 {
		t.Fatal("TrueSim asymmetric")
	}
	// Same-topic pairs must on average beat cross-topic pairs.
	var same, cross float64
	var ns, nc int
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			if c.Dominant[i] == c.Dominant[j] {
				same += c.TrueSim(i, j)
				ns++
			} else {
				cross += c.TrueSim(i, j)
				nc++
			}
		}
	}
	if same/float64(ns) <= cross/float64(nc) {
		t.Fatalf("planted structure absent: same=%.3f cross=%.3f", same/float64(ns), cross/float64(nc))
	}
}

func TestCitationAffinity(t *testing.T) {
	c := TopicCitation(TopicCitationOptions{N: 600, Affinity: 0.9, Seed: 6})
	// Most citations should stay within the dominant topic.
	within, total := 0, 0
	c.G.Edges(func(u, v int) {
		total++
		if c.Dominant[u] == c.Dominant[v] {
			within++
		}
	})
	if frac := float64(within) / float64(total); frac < 0.4 {
		t.Fatalf("within-topic citation fraction = %.2f, want > 0.4", frac)
	}
}

func TestCoauthor(t *testing.T) {
	net := Coauthor(CoauthorOptions{Authors: 300, Seed: 9})
	if !net.G.IsSymmetric() {
		t.Fatal("coauthor graph must be undirected/symmetric")
	}
	if net.G.M() == 0 {
		t.Fatal("no collaborations generated")
	}
	// H-index sanity: 0 for authors with no cited papers; monotone bound.
	maxH := 0
	for a := 0; a < 300; a++ {
		h := net.HIndex(a)
		if h > len(net.PaperCites[a]) {
			t.Fatalf("H-index %d exceeds paper count %d", h, len(net.PaperCites[a]))
		}
		if h > maxH {
			maxH = h
		}
	}
	if maxH == 0 {
		t.Fatal("all H-indices zero; citation simulation broken")
	}
}

func TestHIndexKnownCases(t *testing.T) {
	net := &CoauthorNet{PaperCites: [][]int{
		{},               // h = 0
		{0, 0},           // h = 0
		{1},              // h = 1
		{5, 4, 3, 2, 1},  // h = 3
		{10, 10, 10, 10}, // h = 4
	}}
	want := []int{0, 0, 1, 3, 4}
	for a, w := range want {
		if got := net.HIndex(a); got != w {
			t.Errorf("HIndex(%d) = %d, want %d", a, got, w)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, p := range Presets {
		g := p.Build()
		if g.N() == 0 || g.M() == 0 {
			t.Fatalf("%s: empty graph", p.Name)
		}
		// Density within a factor ~2 of the paper's (generators are
		// stochastic; the harness reports actuals).
		d := g.Density()
		if d < p.Density/2.5 || d > p.Density*2.5 {
			t.Errorf("%s: density %.1f vs paper %.1f", p.Name, d, p.Density)
		}
		if p.Directed == g.IsSymmetric() && p.Name != "WebGoogle-s" {
			t.Errorf("%s: directedness mismatch", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("DBLP-s")
	if err != nil || p.Kind != "coauthor" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("want error for unknown preset")
	}
}

func TestBuildCorpus(t *testing.T) {
	p, _ := ByName("CitHepTh-s")
	c := p.BuildCorpus()
	if c == nil || c.G.N() != p.ScaledN {
		t.Fatal("BuildCorpus wrong")
	}
	d, _ := ByName("DBLP-s")
	if d.BuildCorpus() != nil {
		t.Fatal("coauthor preset should have no corpus")
	}
}
