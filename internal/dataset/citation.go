package dataset

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Corpus is a synthetic citation network with planted latent topics. It
// stands in for the paper's CitHepTh arXiv corpus *and* for its panel of
// human judges: every paper carries a topic mixture, citations are drawn
// preferentially within topics, and the "true" relevance of a paper pair is
// the cosine of their topic vectors. A similarity measure that aggregates
// more of the connectivity evidence recovers the planted structure better —
// exactly the axis on which the paper's Exp-1 separates SimRank* from
// SimRank and RWR.
type Corpus struct {
	G         *graph.Graph
	NumTopics int
	// Topics[i] is the unit-norm topic mixture of paper i.
	Topics [][]float64
	// Dominant[i] is the argmax topic of paper i (its "role").
	Dominant []int
}

// TopicCitationOptions controls the generator.
type TopicCitationOptions struct {
	N        int     // papers
	Topics   int     // latent topics, default 8
	AvgOut   int     // mean citations per paper, default 6
	Affinity float64 // probability a citation stays within the dominant topic, default 0.9
	// CanonSize is the number of early cross-topic "canon" classics
	// (methodology papers, famous surveys) that attract citations from every
	// topic — realistic reference noise that pollutes out-link (coupling)
	// evidence while in-link (co-citation) evidence stays topical. Default
	// max(8, N/80).
	CanonSize int
	// CanonProb is the probability a citation goes to the canon, default 0.3.
	CanonProb float64
	Seed      int64
}

func (o TopicCitationOptions) withDefaults() TopicCitationOptions {
	if o.Topics <= 0 {
		o.Topics = 8
	}
	if o.AvgOut <= 0 {
		o.AvgOut = 6
	}
	if o.Affinity <= 0 || o.Affinity > 1 {
		o.Affinity = 0.9
	}
	if o.CanonSize <= 0 {
		o.CanonSize = max(8, o.N/80)
	}
	if o.CanonProb <= 0 || o.CanonProb >= 1 {
		o.CanonProb = 0.3
	}
	return o
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TopicCitation generates a time-ordered citation DAG with planted topics.
// Paper t cites earlier papers: with probability CanonProb one of the
// cross-topic canon classics, otherwise with probability Affinity a uniform
// pick within its dominant topic, else a uniform older paper.
func TopicCitation(opt TopicCitationOptions) *Corpus {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	n := opt.N
	c := &Corpus{
		NumTopics: opt.Topics,
		Topics:    make([][]float64, n),
		Dominant:  make([]int, n),
	}
	// Topic mixtures: strong dominant component plus a little noise, so
	// same-topic cosines sit near 1 and cross-topic near 0 — a crisp oracle.
	for i := 0; i < n; i++ {
		z := rng.Intn(opt.Topics)
		c.Dominant[i] = z
		v := make([]float64, opt.Topics)
		for t := range v {
			v[t] = 0.06 * rng.Float64()
		}
		v[z] += 1
		norm := 0.0
		for _, x := range v {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for t := range v {
			v[t] /= norm
		}
		c.Topics[i] = v
	}

	b := graph.NewBuilder()
	b.EnsureN(n)
	byTopic := make([][]int32, opt.Topics)
	byTopic[c.Dominant[0]] = append(byTopic[c.Dominant[0]], 0)
	for t := 1; t < n; t++ {
		cites := 1 + rng.Intn(2*opt.AvgOut-1) // mean = AvgOut
		if cites > t {
			cites = t
		}
		seen := make(map[int]bool, cites)
		for k := 0; k < cites; k++ {
			var v int
			r := rng.Float64()
			switch {
			case t > opt.CanonSize && r < opt.CanonProb:
				v = rng.Intn(opt.CanonSize)
			case r < opt.CanonProb+opt.Affinity*(1-opt.CanonProb):
				if tp := byTopic[c.Dominant[t]]; len(tp) > 0 {
					v = int(tp[rng.Intn(len(tp))])
				} else {
					v = rng.Intn(t)
				}
			default:
				v = rng.Intn(t)
			}
			if v >= t || seen[v] {
				continue
			}
			seen[v] = true
			b.AddEdge(t, v)
		}
		byTopic[c.Dominant[t]] = append(byTopic[c.Dominant[t]], int32(t))
	}
	c.G = mustBuild(b)
	return c
}

// TrueSim returns the planted ground-truth relevance of papers i and j: the
// cosine of their topic mixtures, in [0, 1].
func (c *Corpus) TrueSim(i, j int) float64 {
	var s float64
	for t, x := range c.Topics[i] {
		s += x * c.Topics[j][t]
	}
	if s < 0 {
		return 0
	}
	return s
}

// CitationCount returns the #-citations role proxy of paper i (its
// in-degree), the measure behind the paper's Fig. 6(b) on CitHepTh.
func (c *Corpus) CitationCount(i int) int { return c.G.InDeg(i) }
