// Package paths analyses in-link paths (Definition 1) with boolean walk
// products, classifying every node pair by the kinds of in-link paths it
// has. An in-link path of pair (i, j) with split (k1, k2) is a common source
// s with a directed walk s→i of length k1 and s→j of length k2; by Lemma 1
// its existence is [(Aᵀ)^{k1}·A^{k2}]_{i,j} > 0. The package computes, up to
// a length horizon K,
//
//	Sym   — a symmetric in-link path exists (k1 = k2 >= 1): what SimRank sees
//	Mixed — a dissymmetric two-sided path exists (k1 != k2, both >= 1)
//	Uni   — a directed walk i→…→j exists (k1 = 0 side): what RWR sees
//
// from which Theorem 1 ("zero-SimRank" ⟺ no symmetric path) is tested and
// the Fig. 6(d) percentages ("completely dissimilar" vs "partially missing",
// for both SimRank and RWR) are reproduced.
package paths

import (
	"repro/internal/bitset"
	"repro/internal/graph"
)

// Analysis holds the boolean pair classifications up to the horizon.
type Analysis struct {
	N       int
	Horizon int
	// Sym[i][j]: ∃ k in [1, K] with a common source at distance k from both.
	Sym *bitset.Matrix
	// Mixed[i][j]: ∃ k1 != k2, both in [1, K], with a common source at
	// distances (k1, k2). Symmetric by construction.
	Mixed *bitset.Matrix
	// Uni[i][j]: ∃ directed walk i→…→j of length in [1, K]. NOT symmetric —
	// exactly RWR's asymmetry.
	Uni *bitset.Matrix
}

// Analyze classifies all pairs of g up to walk-length horizon K per side.
// Cost is O(K²·m·n/64) time and O(n²) bits per matrix.
func Analyze(g *graph.Graph, horizon int) *Analysis {
	n := g.N()
	a := &Analysis{
		N:       n,
		Horizon: horizon,
		Sym:     bitset.NewMatrix(n),
		Mixed:   bitset.NewMatrix(n),
		Uni:     bitset.NewMatrix(n),
	}
	// bk[k][i] = nodes reachable from i by a walk of exactly k steps.
	bk := make([]*bitset.Matrix, horizon+1)
	bk[0] = bitset.NewMatrix(n)
	for i := 0; i < n; i++ {
		bk[0].Set(i, i)
	}
	for k := 1; k <= horizon; k++ {
		bk[k] = forwardExpand(g, bk[k-1])
		a.Uni.Or(bk[k])
	}
	// For each k2, run the in-neighbour recurrence
	// P^{(k1+1,k2)}[i] = ∪_{u∈I(i)} P^{(k1,k2)}[u] starting from B_{k2},
	// accumulating sym (k1 = k2) and mixed (k1 != k2, k1 >= 1; the k2 = 0
	// column is the Uni transpose and handled via Uni).
	for k2 := 1; k2 <= horizon; k2++ {
		cur := bk[k2].Clone()
		for k1 := 1; k1 <= horizon; k1++ {
			cur = inExpand(g, cur)
			if k1 == k2 {
				a.Sym.Or(cur)
			} else {
				a.Mixed.Or(cur)
			}
		}
	}
	a.Mixed.SymmetricClosure()
	a.Sym.SymmetricClosure() // Sym is symmetric already; closure is harmless insurance.
	return a
}

// forwardExpand returns next[i] = ∪_{u ∈ Out(i)} cur[u].
func forwardExpand(g *graph.Graph, cur *bitset.Matrix) *bitset.Matrix {
	n := g.N()
	next := bitset.NewMatrix(n)
	for i := 0; i < n; i++ {
		row := next.Row(i)
		for _, u := range g.Out(i) {
			row.Or(cur.Row(int(u)))
		}
	}
	return next
}

// inExpand returns next[i] = ∪_{u ∈ I(i)} cur[u].
func inExpand(g *graph.Graph, cur *bitset.Matrix) *bitset.Matrix {
	n := g.N()
	next := bitset.NewMatrix(n)
	for i := 0; i < n; i++ {
		row := next.Row(i)
		for _, u := range g.In(i) {
			row.Or(cur.Row(int(u)))
		}
	}
	return next
}

// HasAnyPath reports whether the unordered pair (i, j) has any in-link path
// within the horizon (of any shape).
func (a *Analysis) HasAnyPath(i, j int) bool {
	return a.Sym.Get(i, j) || a.Mixed.Get(i, j) || a.Uni.Get(i, j) || a.Uni.Get(j, i)
}

// HasDissymmetric reports whether the unordered pair has a dissymmetric
// in-link path (two-sided with k1 != k2, or one-sided/unidirectional).
func (a *Analysis) HasDissymmetric(i, j int) bool {
	return a.Mixed.Get(i, j) || a.Uni.Get(i, j) || a.Uni.Get(j, i)
}

// Stats are the Fig. 6(d) aggregates over unordered pairs i < j that have at
// least one in-link path within the horizon. Percentages are relative to
// that pair population.
type Stats struct {
	TotalPairs    int // n(n−1)/2
	PairsWithPath int // denominators below

	// SimRank column: zero-issue = completely dissimilar + partially missing.
	SRCompletelyDissimilar int // no symmetric path → SimRank = 0 (Theorem 1)
	SRPartiallyMissing     int // symmetric AND dissymmetric paths → SimRank != 0 but contributions missed
	// RWR column.
	RWRCompletelyDissimilar int // no directed walk either way → RWR = 0 both directions
	RWRPartiallyMissing     int // directed walk exists but two-sided paths are ignored
}

// SRZeroIssuePct returns the share of path-connected pairs with either
// SimRank issue, in percent.
func (s Stats) SRZeroIssuePct() float64 {
	return pct(s.SRCompletelyDissimilar+s.SRPartiallyMissing, s.PairsWithPath)
}

// SRCompletelyPct returns the "completely dissimilar" share in percent.
func (s Stats) SRCompletelyPct() float64 {
	return pct(s.SRCompletelyDissimilar, s.PairsWithPath)
}

// SRPartialPct returns the "partially missing" share in percent.
func (s Stats) SRPartialPct() float64 { return pct(s.SRPartiallyMissing, s.PairsWithPath) }

// RWRZeroIssuePct returns the share of path-connected pairs with either RWR
// issue, in percent.
func (s Stats) RWRZeroIssuePct() float64 {
	return pct(s.RWRCompletelyDissimilar+s.RWRPartiallyMissing, s.PairsWithPath)
}

// RWRCompletelyPct returns the RWR "completely dissimilar" share in percent.
func (s Stats) RWRCompletelyPct() float64 {
	return pct(s.RWRCompletelyDissimilar, s.PairsWithPath)
}

// RWRPartialPct returns the RWR "partially missing" share in percent.
func (s Stats) RWRPartialPct() float64 { return pct(s.RWRPartiallyMissing, s.PairsWithPath) }

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Stats aggregates the classification over all unordered pairs.
func (a *Analysis) Stats() Stats {
	st := Stats{TotalPairs: a.N * (a.N - 1) / 2}
	for i := 0; i < a.N; i++ {
		for j := i + 1; j < a.N; j++ {
			if !a.HasAnyPath(i, j) {
				continue
			}
			st.PairsWithPath++
			sym := a.Sym.Get(i, j)
			dis := a.HasDissymmetric(i, j)
			if !sym {
				st.SRCompletelyDissimilar++
			} else if dis {
				st.SRPartiallyMissing++
			}
			uni := a.Uni.Get(i, j) || a.Uni.Get(j, i)
			twoSided := sym || a.Mixed.Get(i, j)
			if !uni {
				st.RWRCompletelyDissimilar++
			} else if twoSided {
				st.RWRPartiallyMissing++
			}
		}
	}
	return st
}
