package paths

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/simrank"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Theorem 1 positivity direction, verified mechanically: within horizon K,
// SimRank_K(i,j) > 0 exactly when a symmetric in-link path of half-length
// <= K exists.
func TestQuickTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(18)
		g := randomGraph(rng, n, rng.Intn(4*n))
		const k = 5
		s := simrank.PSum(g, simrank.Options{C: 0.9, K: k})
		a := Analyze(g, k)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (s.At(i, j) > 0) != a.Sym.Get(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The RWR analogue: rwr_K(i,j) > 0 for i != j exactly when a directed walk
// i→…→j of length <= K exists.
func TestQuickRWRZeroPattern(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(18)
		g := randomGraph(rng, n, rng.Intn(4*n))
		const k = 5
		s := rwr.AllPairs(g, rwr.Options{C: 0.9, K: k})
		a := Analyze(g, k)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if (s.At(i, j) > 0) != a.Uni.Get(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Classification(t *testing.T) {
	g := dataset.Figure1()
	a := Analyze(g, 8)
	id := func(l string) int {
		i, ok := g.NodeByLabel(l)
		if !ok {
			t.Fatalf("missing %q", l)
		}
		return i
	}
	h, d := id("h"), id("d")
	// (h,d): dissymmetric paths via a (h←e←a→d), no symmetric ones.
	if a.Sym.Get(h, d) {
		t.Fatal("(h,d) must have no symmetric path")
	}
	if !a.HasDissymmetric(h, d) || !a.HasAnyPath(h, d) {
		t.Fatal("(h,d) must have a dissymmetric path")
	}
	// (i,h): symmetric via e/j/k, and dissymmetric via h→i (length-1
	// unidirectional walk).
	i, hh := id("i"), id("h")
	if !a.Sym.Get(i, hh) {
		t.Fatal("(i,h) must have a symmetric path")
	}
	if !a.Uni.Get(hh, i) {
		t.Fatal("h→i walk missing from Uni")
	}
	if a.Uni.Get(i, hh) {
		t.Fatal("no walk i→h exists")
	}
	// (g,a): no in-link path at all (a has no in-edges and cannot be reached
	// from any common source... a is a global source: walks a→g exist!).
	// Correction: a→b→g is a directed walk, so (g,a) has a unidirectional
	// in-link path with source a at the end — RWR(a,g) > 0 but SimRank = 0.
	gg, aa := id("g"), id("a")
	if !a.Uni.Get(aa, gg) {
		t.Fatal("walk a→…→g missing")
	}
	if a.Sym.Get(gg, aa) {
		t.Fatal("(g,a) must have no symmetric path")
	}
}

func TestStatsOnBiPath(t *testing.T) {
	// a_{−2} ← a_{−1} ← a_0 → a_1 → a_2: every pair of distinct nodes has
	// an in-link path (common source a_0 or an arm ancestor); only pairs
	// (a_i, a_{−i}) have symmetric ones.
	g := dataset.BiPath(2) // 5 nodes: 0..4, centre 2
	a := Analyze(g, 4)
	st := a.Stats()
	if st.TotalPairs != 10 {
		t.Fatalf("TotalPairs = %d", st.TotalPairs)
	}
	if st.PairsWithPath != 10 {
		t.Fatalf("PairsWithPath = %d, want 10", st.PairsWithPath)
	}
	// Symmetric pairs: (1,3), (0,4) → completely dissimilar = 8.
	if st.SRCompletelyDissimilar != 8 {
		t.Fatalf("SRCompletelyDissimilar = %d, want 8", st.SRCompletelyDissimilar)
	}
	// Both symmetric pairs also have dissymmetric paths? (1,3): sources a_0
	// at (1,1); any (k1,k2) with k1 != k2? walks from 2: to 1 len 1, to 3
	// len 1 only (path graph) → no. From elsewhere: 1 reaches 0 only; no
	// common source with unequal distances to 1 and 3... via Uni: no walk
	// 1→3. So (1,3) is a pure-symmetric pair: no partial missing.
	if st.SRPartiallyMissing != 0 {
		t.Fatalf("SRPartiallyMissing = %d, want 0", st.SRPartiallyMissing)
	}
	// RWR sees only the 6 within-arm ordered pairs (2→1, 2→0, 1→0 on each
	// arm → unordered: (2,1),(2,0),(1,0),(2,3),(2,4),(3,4)).
	if st.RWRCompletelyDissimilar != 4 { // (0,3),(0,4),(1,3),(1,4) cross-arm...
		// Cross-arm pairs: (0,3),(0,4),(1,3),(1,4) → 4 with no directed walk.
		t.Fatalf("RWRCompletelyDissimilar = %d, want 4", st.RWRCompletelyDissimilar)
	}
	if st.SRZeroIssuePct() != 80 {
		t.Fatalf("SRZeroIssuePct = %g, want 80", st.SRZeroIssuePct())
	}
}

func TestStarStats(t *testing.T) {
	// Star 0→{1,2,3}: every leaf pair has a symmetric path via 0 and no
	// dissymmetric one; (0, leaf) pairs are unidirectional only.
	g := dataset.Star(4)
	a := Analyze(g, 3)
	st := a.Stats()
	if st.PairsWithPath != 6 {
		t.Fatalf("PairsWithPath = %d, want 6", st.PairsWithPath)
	}
	if st.SRCompletelyDissimilar != 3 { // the (0, leaf) pairs
		t.Fatalf("SRCompletelyDissimilar = %d, want 3", st.SRCompletelyDissimilar)
	}
	if st.SRPartiallyMissing != 0 {
		t.Fatalf("SRPartiallyMissing = %d, want 0", st.SRPartiallyMissing)
	}
	if st.RWRCompletelyDissimilar != 3 { // leaf pairs invisible to RWR
		t.Fatalf("RWRCompletelyDissimilar = %d, want 3", st.RWRCompletelyDissimilar)
	}
	// (0, leaf): RWR sees it (0→leaf) but the pair has no two-sided path,
	// so it is not partially missing either.
	if st.RWRPartiallyMissing != 0 {
		t.Fatalf("RWRPartiallyMissing = %d, want 0", st.RWRPartiallyMissing)
	}
}

func TestCycleWalksWrap(t *testing.T) {
	// On a directed 3-cycle, walks wrap: within horizon 3 every ordered pair
	// has a directed walk; symmetric pairs need equal distances from a
	// common source — distances on a cycle are unique per source, so
	// Sym(i,j) requires d(s,i) == d(s,j) which never happens for i != j
	// within small horizons... except via longer wraps (d + 3k). Horizon 3:
	// d(s,i) in {1,2,3}; equal lengths i != j impossible (distinct residues).
	g := dataset.Cycle(3)
	a := Analyze(g, 3)
	if a.Sym.Get(0, 1) || a.Sym.Get(1, 2) {
		t.Fatal("3-cycle must have no symmetric pairs at horizon 3")
	}
	// Horizon 4: s=2: walk 2→0 len 1; to 1: len 2; ... need equal: len 4
	// walk 2→0 (wrap) and len 4 2→...→? no; use s=0: 0→1 len 1, 0→...→1
	// len 4; pairs need *different* targets. Sym(1,2): source 0: d(0,1)=1,
	// d(0,2)=2; lengths (4,2)? 4≠2. (1+3k1 vs 2+3k2) never equal mod 3.
	a6 := Analyze(g, 6)
	if a6.Sym.Get(0, 1) {
		t.Fatal("cycle residues make symmetric pairs impossible")
	}
	if !a6.Uni.Get(0, 1) || !a6.Uni.Get(1, 0) {
		t.Fatal("cycle walks must connect all ordered pairs")
	}
}

func TestHorizonMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 25, 80)
	prev := Analyze(g, 2)
	for _, k := range []int{3, 4, 6} {
		cur := Analyze(g, k)
		// Bits only get added as the horizon grows.
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if prev.Sym.Get(i, j) && !cur.Sym.Get(i, j) {
					t.Fatalf("Sym lost a pair when horizon grew")
				}
				if prev.Uni.Get(i, j) && !cur.Uni.Get(i, j) {
					t.Fatalf("Uni lost a pair when horizon grew")
				}
			}
		}
		prev = cur
	}
}
