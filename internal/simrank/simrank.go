// Package simrank implements the original SimRank measure (Jeh & Widom,
// KDD'02) in the three formulations the paper builds on and compares
// against:
//
//   - Naive: the Eq. (2) component iteration, O(K·d²·n²) — test oracle.
//   - PSum: Lizorkin et al.'s partial sums memoization (psum-SR), O(K·n·m),
//     the state of the art SimRank the paper benchmarks against.
//   - MatrixForm: the Eq. (3) fixed point S = C·Q·S·Qᵀ + (1−C)·Iₙ.
//   - MtxSR: Li et al.'s (EDBT'10) low-rank SVD solver.
//
// Note the documented semantic gap: the classic iterative form pins
// diagonal entries to exactly 1, while the matrix form yields diagonals in
// [1−C, 1]. Naive and PSum follow the classic form (it is what psum-SR
// implements); MatrixForm and MtxSR follow Eq. (3)/(4). Tests cover both.
package simrank

import (
	"context"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/sparse"
)

// Options configures SimRank computation.
type Options struct {
	// C is the damping factor, default 0.6.
	C float64
	// K is the number of iterations, default 5.
	K int
	// Sieve, when positive, zeroes entries below the threshold at the end.
	Sieve float64
}

func (o Options) withDefaults() Options {
	if o.C <= 0 || o.C >= 1 {
		o.C = 0.6
	}
	if o.K <= 0 {
		o.K = 5
	}
	return o
}

// Naive computes all-pairs SimRank with the direct Eq. (2) double-summation
// iteration. Quadratic in degree per pair; intended for small graphs and as
// the oracle PSum is validated against.
func Naive(g *graph.Graph, opt Options) *dense.Matrix {
	opt = opt.withDefaults()
	n := g.N()
	s := dense.Identity(n)
	next := dense.New(n, n)
	for k := 0; k < opt.K; k++ {
		next.Zero()
		for a := 0; a < n; a++ {
			next.Set(a, a, 1)
			ia := g.In(a)
			if len(ia) == 0 {
				continue
			}
			for b := a + 1; b < n; b++ {
				ib := g.In(b)
				if len(ib) == 0 {
					continue
				}
				var sum float64
				for _, i := range ia {
					for _, j := range ib {
						sum += s.At(int(i), int(j))
					}
				}
				v := opt.C * sum / float64(len(ia)*len(ib))
				next.Set(a, b, v)
				next.Set(b, a, v)
			}
		}
		s, next = next, s
	}
	sieveMat(s, opt.Sieve)
	return s
}

// PSum computes all-pairs SimRank with partial sums memoization
// (Lizorkin et al.): for each node b the vector
// Partial_{I(b)}(x) = Σ_{y∈I(b)} s_k(x,y) is built once in O(n·|I(b)|) and
// reused for every a, giving O(n·m) per iteration (Eq. 16).
func PSum(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := PSumCtx(context.Background(), g, opt)
	return s
}

// PSumCtx is PSum with cancellation checked between iterations.
func PSumCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	n := g.N()
	s := dense.Identity(n)
	next := dense.New(n, n)
	for k := 0; k < opt.K; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		par.For(n, 0, func(lo, hi int) {
			partial := make([]float64, n)
			for b := lo; b < hi; b++ {
				ib := g.In(b)
				if len(ib) == 0 {
					for a := 0; a < n; a++ {
						if a == b {
							next.Set(a, b, 1)
						} else {
							next.Set(a, b, 0)
						}
					}
					continue
				}
				// partial[x] = Σ_{y∈I(b)} s_k(x, y); S_k is symmetric so the
				// column gather is a row gather.
				dense.ZeroVec(partial)
				for _, y := range ib {
					dense.AddTo(partial, s.Row(int(y)))
				}
				invB := 1 / float64(len(ib))
				for a := 0; a < n; a++ {
					if a == b {
						next.Set(a, b, 1)
						continue
					}
					ia := g.In(a)
					if len(ia) == 0 {
						next.Set(a, b, 0)
						continue
					}
					var sum float64
					for _, i := range ia {
						sum += partial[i]
					}
					next.Set(a, b, opt.C*sum*invB/float64(len(ia)))
				}
			}
		})
		s, next = next, s
	}
	sieveMat(s, opt.Sieve)
	return s, nil
}

// MatrixForm computes all-pairs SimRank by iterating the Eq. (3) fixed point
// S_{k+1} = C·Q·S_k·Qᵀ + (1−C)·Iₙ — two sparse×dense products per
// iteration, versus SimRank*'s one (the constant-factor gap the paper
// highlights in Sec. 4.2).
func MatrixForm(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := MatrixFormFromTransition(context.Background(), sparse.BackwardTransition(g), opt)
	return s
}

// MatrixFormCtx is MatrixForm with cancellation checked between iterations.
func MatrixFormCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	return MatrixFormFromTransition(ctx, sparse.BackwardTransition(g), opt)
}

// MatrixFormFromTransition iterates against a pre-built backward transition
// matrix Q.
func MatrixFormFromTransition(ctx context.Context, q *sparse.CSR, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	n := q.R
	s := dense.New(n, n)
	s.AddDiag(1 - opt.C)
	m1 := dense.New(n, n)
	for k := 0; k < opt.K; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q.MulDenseInto(m1, s) // m1 = Q·S_k
		// S_{k+1} = C·(Q·m1ᵀ)ᵀ + (1−C)I; m1ᵀ = S_k·Qᵀ ... compute m2 = Q·m1ᵀ.
		m1t := m1.Transpose()
		q.MulDenseInto(s, m1t) // s = Q·(Q·S_k)ᵀ = Q·S_k·Qᵀ (S_k symmetric)
		s.Scale(opt.C)
		s.AddDiag(1 - opt.C)
	}
	s.Symmetrize()
	sieveMat(s, opt.Sieve)
	return s, nil
}

func sieveMat(m *dense.Matrix, eps float64) {
	if eps <= 0 {
		return
	}
	for i, v := range m.Data {
		if v < eps {
			m.Data[i] = 0
		}
	}
}
