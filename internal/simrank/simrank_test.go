package simrank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/sparse"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// psum-SR is an exact reformulation of the naive Eq. (2) iteration.
func TestQuickPSumMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(5*n))
		opt := Options{C: 0.6, K: 5}
		return PSum(g, opt).MaxAbsDiff(Naive(g, opt)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The Eq. (3) fixed point must equal the Lemma-2 power series
// (1−C)·Σ_{l<=K} Cˡ·Qˡ·(Qᵀ)ˡ term for term.
func TestMatrixFormMatchesLemma2Series(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, g := range []*graph.Graph{dataset.Figure1(), randomGraph(rng, 15, 60)} {
		const c, k = 0.6, 6
		got := MatrixForm(g, Options{C: c, K: k})
		q := sparse.BackwardTransition(g).ToDense()
		qt := q.Transpose()
		want := dense.New(g.N(), g.N())
		ql := dense.Identity(g.N())
		qtl := dense.Identity(g.N())
		for l := 0; l <= k; l++ {
			term := dense.Mul(ql, qtl)
			want.Axpy(math.Pow(c, float64(l)), term)
			ql = dense.Mul(ql, q)
			qtl = dense.Mul(qtl, qt)
		}
		want.Scale(1 - c)
		if d := got.MaxAbsDiff(want); d > 1e-10 {
			t.Fatalf("matrix form vs Lemma-2 series differ by %g", d)
		}
	}
}

// Theorem 1 on the Figure-1 graph: the listed pairs have zero SimRank, and
// (i,h), (g,i) are positive (symmetric in-link sources exist).
func TestFigure1ZeroSimilarity(t *testing.T) {
	g := dataset.Figure1()
	s := PSum(g, Options{C: 0.8, K: 15})
	id := func(l string) int {
		i, ok := g.NodeByLabel(l)
		if !ok {
			t.Fatalf("missing %q", l)
		}
		return i
	}
	zeros := [][2]string{{"h", "d"}, {"a", "f"}, {"a", "c"}, {"g", "a"}, {"g", "b"}, {"i", "a"}}
	for _, p := range zeros {
		if v := s.At(id(p[0]), id(p[1])); v != 0 {
			t.Errorf("SimRank(%s,%s) = %g, want 0 (Theorem 1)", p[0], p[1], v)
		}
	}
	if v := s.At(id("i"), id("h")); v <= 0 {
		t.Errorf("SimRank(i,h) = %g, want > 0 (common source e/j/k)", v)
	}
	if v := s.At(id("g"), id("i")); v <= 0 {
		t.Errorf("SimRank(g,i) = %g, want > 0 (sources b, d centred)", v)
	}
}

// Sec. 1 path-graph counterexample: s(a_i, a_j) = 0 whenever |i| != |j|.
func TestBiPathZeroPattern(t *testing.T) {
	g := dataset.BiPath(3) // nodes 0..6, centre 3; a_k = 3+k, a_{−k} = 3−k
	s := PSum(g, Options{C: 0.8, K: 12})
	for i := -3; i <= 3; i++ {
		for j := -3; j <= 3; j++ {
			v := s.At(3+i, 3+j)
			if abs(i) != abs(j) && v != 0 {
				t.Fatalf("s(a_%d, a_%d) = %g, want 0", i, j, v)
			}
			if abs(i) == abs(j) && v <= 0 {
				t.Fatalf("s(a_%d, a_%d) = %g, want > 0", i, j, v)
			}
		}
	}
}

// Classic iterative form: diagonals pinned to exactly 1; matrix form:
// diagonals in [1−C, 1].
func TestDiagonalConventions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 20, 80)
	const c = 0.6
	it := PSum(g, Options{C: c, K: 5})
	mf := MatrixForm(g, Options{C: c, K: 5})
	for i := 0; i < 20; i++ {
		if it.At(i, i) != 1 {
			t.Fatalf("iterative diag = %g, want 1", it.At(i, i))
		}
		d := mf.At(i, i)
		if d < 1-c-1e-12 || d > 1+1e-12 {
			t.Fatalf("matrix-form diag = %g, want in [%g, 1]", d, 1-c)
		}
	}
}

// Property: SimRank scores are symmetric and in [0, 1].
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n))
		s := PSum(g, Options{C: 0.7, K: 5})
		if !s.IsSymmetric(1e-12) {
			return false
		}
		for _, v := range s.Data {
			if v < 0 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Full-rank mtx-SR must agree with a deeply converged Eq. (3) fixed point.
func TestMtxSRFullRankMatchesFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, g := range []*graph.Graph{dataset.Figure1(), randomGraph(rng, 12, 40)} {
		got, err := MtxSR(g, MtxOptions{C: 0.6, Rank: g.N()})
		if err != nil {
			t.Fatal(err)
		}
		want := MatrixForm(g, Options{C: 0.6, K: 60})
		if d := got.MaxAbsDiff(want); d > 1e-8 {
			t.Fatalf("mtx-SR full rank vs fixed point differ by %g", d)
		}
	}
}

// Truncated mtx-SR on an exactly low-rank Q is still exact.
func TestMtxSRLowRankGraph(t *testing.T) {
	// Star: every leaf has I = {0}, so Q has rank 1.
	g := dataset.Star(8)
	got, err := MtxSR(g, MtxOptions{C: 0.6}) // auto rank
	if err != nil {
		t.Fatal(err)
	}
	want := MatrixForm(g, Options{C: 0.6, K: 60})
	if d := got.MaxAbsDiff(want); d > 1e-8 {
		t.Fatalf("mtx-SR auto-rank vs fixed point differ by %g", d)
	}
}

func TestMtxSREdgelessGraph(t *testing.T) {
	g := graph.FromEdges(5, nil)
	s, err := MtxSR(g, MtxOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(s.At(i, i)-0.4) > 1e-12 {
			t.Fatalf("diag = %g, want 1−C", s.At(i, i))
		}
	}
}

func TestSieveOption(t *testing.T) {
	g := dataset.Figure1()
	s := PSum(g, Options{C: 0.6, K: 5, Sieve: 1e-2})
	for _, v := range s.Data {
		if v != 0 && v < 1e-2 {
			t.Fatalf("sieved score %g below threshold", v)
		}
	}
}

// SimRank's counter-intuitive trait the related work cites: adding common
// in-neighbours *decreases* pairwise similarity (1/(|I(a)||I(b)|) dilution).
func TestCommonNeighbourDilution(t *testing.T) {
	// Two nodes sharing 1 parent of 1: s = C.
	g1 := graph.FromEdges(3, [][2]int{{0, 1}, {0, 2}})
	s1 := PSum(g1, Options{C: 0.8, K: 10}).At(1, 2)
	// Two nodes sharing 2 parents: s < s1 at K=1? s = C·(Σ over 4 pairs of
	// s(x,y))/4 = C·(2·1 + 2·s(p1,p2))/4 with s(p1,p2)=0 → C/2.
	g2 := graph.FromEdges(4, [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	s2 := PSum(g2, Options{C: 0.8, K: 10}).At(2, 3)
	if s2 >= s1 {
		t.Fatalf("dilution absent: shared-2 %g >= shared-1 %g", s2, s1)
	}
}

func BenchmarkPSum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 300, 1800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PSum(g, Options{C: 0.6, K: 5})
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
