package simrank

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// MtxOptions configures the SVD-based solver.
type MtxOptions struct {
	// C is the damping factor, default 0.6.
	C float64
	// Rank truncates the SVD of Q to the given rank; 0 keeps every singular
	// value above RankTol·σ₁. The solver is O(r⁶) in the retained rank
	// (an r²×r² LU), so ranks beyond a few dozen are impractical — the
	// paper's point when comparing against mtx-SR.
	Rank int
	// RankTol is the relative singular-value cut-off used when Rank == 0.
	// Defaults to 1e-10 (numerically exact rank).
	RankTol float64
}

// MtxSR computes all-pairs SimRank via the closed form
//
//	vec(S) = (1−C)(I_{n²} − C·Q⊗Q)⁻¹ vec(Iₙ)
//
// with Q replaced by its rank-r truncated SVD U·Σ·Vᵀ (Li et al., EDBT'10).
// Applying the Sherman–Morrison–Woodbury identity with X = U⊗U, Y = V⊗V
// collapses the n²×n² inverse to an r²×r² solve:
//
//	S = (1−C)·(Iₙ + U·M·Uᵀ),   vec(M) = (I_{r²} − C·D·(B⊗B))⁻¹·C·D·vec(I_r),
//
// where B = VᵀU and D = Σ⊗Σ. With full rank the result equals the exact
// Eq. (3) fixed point; with truncated rank it is the low-rank approximation
// whose cost/accuracy trade-off the paper criticises.
func MtxSR(g *graph.Graph, opt MtxOptions) (*dense.Matrix, error) {
	if opt.C <= 0 || opt.C >= 1 {
		opt.C = 0.6
	}
	if opt.RankTol <= 0 {
		opt.RankTol = 1e-10
	}
	n := g.N()
	if n == 0 {
		return dense.New(0, 0), nil
	}
	q := sparse.BackwardTransition(g).ToDense()
	svd := dense.ComputeSVD(q)
	r := opt.Rank
	if r <= 0 || r > n {
		r = svd.Rank(opt.RankTol)
	}
	if r == 0 {
		// Q = 0 (no node has in-links): S = (1−C)·I under Eq. (3) semantics.
		s := dense.New(n, n)
		s.AddDiag(1 - opt.C)
		return s, nil
	}
	u, sig, v := svd.Truncate(r)

	// B = Vᵀ·U (r×r).
	b := dense.Mul(v.Transpose(), u)

	// L = I_{r²} − C·D·(B⊗B) with column-major vec indexing idx = i + j·r,
	// D[idx] = σ_i·σ_j. Entry L[(i,j),(p,q)] = δ − C·σ_i·σ_j·B[i,p]·B[j,q].
	r2 := r * r
	l := dense.New(r2, r2)
	for j := 0; j < r; j++ {
		for i := 0; i < r; i++ {
			row := i + j*r
			d := opt.C * sig[i] * sig[j]
			lr := l.Row(row)
			for q2 := 0; q2 < r; q2++ {
				bj := b.At(j, q2)
				for p := 0; p < r; p++ {
					lr[p+q2*r] = -d * b.At(i, p) * bj
				}
			}
			lr[row] += 1
		}
	}
	rhs := make([]float64, r2)
	for i := 0; i < r; i++ {
		rhs[i+i*r] = opt.C * sig[i] * sig[i]
	}
	lu, err := dense.ComputeLU(l)
	if err != nil {
		return nil, fmt.Errorf("simrank: mtx-SR inner system: %w", err)
	}
	kvec := lu.Solve(rhs)

	// M = unvec(kvec) (r×r, column-major).
	m := dense.New(r, r)
	for j := 0; j < r; j++ {
		for i := 0; i < r; i++ {
			m.Set(i, j, kvec[i+j*r])
		}
	}

	// S = (1−C)·(Iₙ + U·M·Uᵀ).
	um := dense.Mul(u, m)
	s := dense.MulABT(um, u)
	s.AddDiag(1)
	s.Scale(1 - opt.C)
	return s, nil
}
