package sparsesim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// With a threshold below every score the graph can produce, the sparse
// solver must match the dense solver exactly.
func TestQuickMatchesDenseAtTinyDelta(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(5*n))
		opt := Options{C: 0.6, K: 5, Delta: 1e-300}
		sp := Geometric(g, opt)
		dn := core.Geometric(g, core.Options{C: 0.6, K: 5})
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(sp.At(i, j)-dn.At(i, j)) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// With the paper's δ = 1e-4, the sparse solver deviates from dense by at
// most δ/(1−C) and stores far fewer than n² entries.
func TestSievedAccuracyBound(t *testing.T) {
	g := dataset.PrefAttachDAG(400, 6, 11)
	const c, delta = 0.6, 1e-4
	sp := Geometric(g, Options{C: c, K: 8, Delta: delta})
	dn := core.Geometric(g, core.Options{C: c, K: 8})
	bound := delta / (1 - c)
	n := g.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(sp.At(i, j) - dn.At(i, j)); d > bound {
				t.Fatalf("(%d,%d): sieved deviates by %g > %g", i, j, d, bound)
			}
		}
	}
	if sp.NNZ() >= n*n/2 {
		t.Fatalf("NNZ = %d of %d: sieving did not sparsify", sp.NNZ(), n*n)
	}
}

// Symmetry survives sparsification.
func TestQuickSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n))
		sp := Geometric(g, Options{C: 0.7, K: 4, Delta: 1e-3})
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if sp.At(i, j) != sp.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	g := dataset.Figure1()
	sp := Geometric(g, Options{C: 0.8, K: 15, Delta: 1e-6})
	i, _ := g.NodeByLabel("i")
	h, _ := g.NodeByLabel("h")
	cols, vals := sp.TopK(i, 5)
	if len(cols) != 5 {
		t.Fatalf("TopK returned %d", len(cols))
	}
	// h must rank among i's top matches (it shares citers e, j, k with i).
	found := false
	for _, c := range cols {
		if int(c) == h {
			found = true
		}
	}
	if !found {
		t.Fatalf("h missing from i's top-5: %v %v", cols, vals)
	}
	for k := 1; k < len(vals); k++ {
		if vals[k] > vals[k-1] {
			t.Fatal("TopK not descending")
		}
	}
}

func TestRowAndNNZ(t *testing.T) {
	g := dataset.Star(5)
	sp := Geometric(g, Options{C: 0.6, K: 3, Delta: 1e-9})
	if sp.NNZ() == 0 {
		t.Fatal("no entries stored")
	}
	cols, vals := sp.Row(1)
	if len(cols) != len(vals) || len(cols) == 0 {
		t.Fatal("Row shape wrong")
	}
	// Leaves share the centre: every leaf pair similar, centre-leaf pairs
	// only via the dissymmetric length-1 path.
	if sp.At(1, 2) <= 0 {
		t.Fatal("leaf pair must be similar")
	}
	if sp.At(0, 1) <= 0 {
		t.Fatal("centre-leaf must be similar under SimRank*")
	}
}

// Large-ish smoke: the sparse engine handles a graph where dense storage
// would already be 200MB+ (5000² floats), keeping NNZ bounded.
func TestScalesBeyondDense(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := dataset.PrefAttachDAG(5000, 5, 13)
	sp := Geometric(g, Options{C: 0.6, K: 5, Delta: 1e-3})
	if sp.NNZ() == 0 || sp.NNZ() > 5000*5000/10 {
		t.Fatalf("NNZ = %d out of expected sparse range", sp.NNZ())
	}
}

func BenchmarkSparseGeometric(b *testing.B) {
	g := dataset.PrefAttachDAG(2000, 6, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Geometric(g, Options{C: 0.6, K: 5, Delta: 1e-4})
	}
}
