// Package sparsesim computes threshold-sieved all-pairs SimRank* with
// sparse score storage. The paper's large-graph runs (Web-Google 873K,
// CitPatent 3.6M nodes) are only possible because similarity values below a
// threshold δ (10⁻⁴ in Sec. 5) are discarded *during* the computation, not
// after: dense n² state never exists. This package is that mode — the
// dense solvers in internal/core are the laptop-scale substitution, this is
// the scalable engine: scores live in sorted sparse rows, the Eq. (14)
// iteration runs row-by-row, and every update below δ is dropped.
//
// Sieving makes the result approximate: dropping entries below δ each
// iteration perturbs later iterations by at most δ·Σ_k Cᵏ < δ/(1−C) in
// ‖·‖_max (each iteration is a contraction that averages dropped mass), so
// with δ ≪ the scores of interest the ranking is preserved; tests bound the
// deviation from the dense solver.
package sparsesim

import (
	"context"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// Options configures the sparse solver.
type Options struct {
	// C is the damping factor, default 0.6.
	C float64
	// K is the iteration count, default 5.
	K int
	// Delta is the sieving threshold, default 1e-4 (the paper's setting).
	// Entries below Delta are dropped at the end of each iteration.
	Delta float64
}

func (o Options) withDefaults() Options {
	if o.C <= 0 || o.C >= 1 {
		o.C = 0.6
	}
	if o.K <= 0 {
		o.K = 5
	}
	if o.Delta <= 0 {
		o.Delta = 1e-4
	}
	return o
}

// Scores is a symmetric sparse similarity matrix: row i holds the non-zero
// similarities of node i, column-sorted.
type Scores struct {
	N    int
	cols [][]int32
	vals [][]float64
}

// At returns s(i, j), 0 if sieved out.
func (s *Scores) At(i, j int) float64 {
	cols := s.cols[i]
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return s.vals[i][k]
	}
	return 0
}

// NNZ returns the number of stored entries (counting both triangles).
func (s *Scores) NNZ() int {
	n := 0
	for _, c := range s.cols {
		n += len(c)
	}
	return n
}

// Row returns the non-zero columns and values of row i (views; do not
// modify).
func (s *Scores) Row(i int) ([]int32, []float64) { return s.cols[i], s.vals[i] }

// TopK returns the k highest-scoring neighbours of q, ties broken by node
// id, excluding q itself.
func (s *Scores) TopK(q, k int) ([]int32, []float64) {
	type entry struct {
		col int32
		val float64
	}
	row := make([]entry, 0, len(s.cols[q]))
	for i, c := range s.cols[q] {
		if int(c) != q {
			row = append(row, entry{c, s.vals[q][i]})
		}
	}
	sort.Slice(row, func(a, b int) bool {
		if row[a].val != row[b].val {
			return row[a].val > row[b].val
		}
		return row[a].col < row[b].col
	})
	if k > len(row) {
		k = len(row)
	}
	cols := make([]int32, k)
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		cols[i], vals[i] = row[i].col, row[i].val
	}
	return cols, vals
}

// Geometric runs the Eq. (14) fixed point with sparse rows and per-iteration
// sieving:
//
//	S_{k+1} = (C/2)·(Q·S_k + S_k·Qᵀ) + (1−C)·I,  entries < δ dropped.
//
// Row i of Q·S_k is (1/|I(i)|)·Σ_{y∈I(i)} S_k[y] — a sparse row merge; the
// S_k·Qᵀ term is its transpose by symmetry, so each iteration computes M =
// Q·S_k sparsely and assembles S_{k+1}[i][j] = (C/2)·(M[i][j] + M[j][i]).
func Geometric(g *graph.Graph, opt Options) *Scores {
	s, _ := GeometricCtx(context.Background(), g, opt)
	return s
}

// GeometricCtx is Geometric with cancellation checked between iterations.
func GeometricCtx(ctx context.Context, g *graph.Graph, opt Options) (*Scores, error) {
	opt = opt.withDefaults()
	n := g.N()
	s := &Scores{N: n, cols: make([][]int32, n), vals: make([][]float64, n)}
	for i := 0; i < n; i++ {
		s.cols[i] = []int32{int32(i)}
		s.vals[i] = []float64{1 - opt.C}
	}
	mCols := make([][]int32, n)
	mVals := make([][]float64, n)
	for k := 0; k < opt.K; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// M = Q·S_k, computed per row with a scatter accumulator.
		par.For(n, 0, func(lo, hi int) {
			acc := make([]float64, n)
			touched := make([]int32, 0, 256)
			for i := lo; i < hi; i++ {
				in := g.In(i)
				if len(in) == 0 {
					mCols[i], mVals[i] = nil, nil
					continue
				}
				w := 1 / float64(len(in))
				for _, y := range in {
					cols, vals := s.cols[y], s.vals[y]
					for t, c := range cols {
						if acc[c] == 0 {
							touched = append(touched, c)
						}
						acc[c] += w * vals[t]
					}
				}
				sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
				rc := make([]int32, len(touched))
				rv := make([]float64, len(touched))
				copy(rc, touched)
				for t, c := range rc {
					rv[t] = acc[c]
					acc[c] = 0
				}
				touched = touched[:0]
				mCols[i], mVals[i] = rc, rv
			}
		})
		// S_{k+1} = (C/2)(M + Mᵀ) + (1−C)I with sieving. Build the transpose
		// incidence first (sequential scatter), then merge per row.
		tCols := make([][]int32, n)
		tVals := make([][]float64, n)
		for i := 0; i < n; i++ {
			for t, c := range mCols[i] {
				tCols[c] = append(tCols[c], int32(i))
				tVals[c] = append(tVals[c], mVals[i][t])
			}
		}
		halfC := opt.C / 2
		par.For(n, 0, func(lo, hi int) {
			acc := make([]float64, n)
			touched := make([]int32, 0, 256)
			for i := lo; i < hi; i++ {
				for t, c := range mCols[i] {
					if acc[c] == 0 {
						touched = append(touched, c)
					}
					acc[c] += halfC * mVals[i][t]
				}
				for t, c := range tCols[i] {
					if acc[c] == 0 {
						touched = append(touched, c)
					}
					acc[c] += halfC * tVals[i][t]
				}
				if acc[int32(i)] == 0 {
					touched = append(touched, int32(i))
				}
				acc[i] += 1 - opt.C
				sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
				rc := make([]int32, 0, len(touched))
				rv := make([]float64, 0, len(touched))
				for _, c := range touched {
					if v := acc[c]; v >= opt.Delta {
						rc = append(rc, c)
						rv = append(rv, v)
					}
					acc[c] = 0
				}
				touched = touched[:0]
				s.cols[i], s.vals[i] = rc, rv
			}
		})
	}
	return s, nil
}
