// Package par provides the tiny data-parallel loop helper shared by the
// dense and sparse linear-algebra kernels. All similarity computations in
// this repository are embarrassingly parallel over matrix rows; this keeps
// the goroutine plumbing in one place.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the default parallelism degree.
func Workers() int { return runtime.GOMAXPROCS(0) }

// PanicBox collects the first panic recovered on a fan-out worker so the
// goroutine that owns the fan-out can re-raise it after the barrier. A panic
// inside a bare spawned goroutine kills the whole process; routing it
// through a PanicBox turns "one bad kernel task" into an ordinary panic on
// the caller, where the serving layers recover it into an error. The zero
// value is ready to use.
type PanicBox struct {
	mu  sync.Mutex
	val any
}

// Record stores v as the box's panic if it is the first one; later panics of
// the same fan-out are dropped (the caller can only re-raise one).
func (b *PanicBox) Record(v any) {
	b.mu.Lock()
	if b.val == nil {
		b.val = v
	}
	b.mu.Unlock()
}

// Rethrow drains the box and panics with the recorded value, if any. It must
// run after the fan-out's barrier, on the owning goroutine. Draining before
// panicking keeps a pooled owner from re-raising a stale panic on its next
// borrow.
func (b *PanicBox) Rethrow() {
	b.mu.Lock()
	v := b.val
	b.val = nil
	b.mu.Unlock()
	if v != nil {
		panic(v)
	}
}

// For splits [0, n) into contiguous chunks, one per worker, and runs fn on
// each chunk concurrently. fn must be safe to call concurrently on disjoint
// ranges. With workers <= 1 or tiny n it runs inline. The final chunk always
// runs on the caller's goroutine — the caller would otherwise idle in
// wg.Wait while a spawned goroutine does its work, so this saves one
// spawn+wake per call on the kernel hot path. A panic in fn — on any chunk —
// surfaces as a panic on the caller's goroutine after every chunk has
// stopped, never as a raw goroutine crash.
func For(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	var pan PanicBox
	chunk := (n + workers - 1) / workers
	lo := 0
	for ; lo+chunk < n; lo += chunk {
		wg.Add(1)
		go func(lo, hi int) {
			defer func() {
				if r := recover(); r != nil {
					pan.Record(r)
				}
				wg.Done()
			}()
			fn(lo, hi)
		}(lo, lo+chunk)
	}
	// The inline chunk runs under a defer that always drains the spawned
	// workers before the call returns or unwinds: a panicking caller chunk
	// must not leave workers writing into buffers the caller is about to
	// recycle, and a worker panic is re-raised here, on the caller.
	func() {
		defer func() {
			wg.Wait()
			pan.Rethrow()
		}()
		fn(lo, n)
	}()
}

// ForEach runs fn(i) for each i in [0, n) across workers, chunked.
func ForEach(n, workers int, fn func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachCtx runs fn(i) for each i in [0, n) across workers and returns
// ctx.Err(). Unlike For/ForEach it hands out indices one at a time from a
// shared counter, so it load-balances items of very different cost — the
// shape of a query batch, where one heavy query must not serialise a whole
// chunk behind it. Workers stop picking up new items as soon as ctx is
// cancelled; items already running are the callee's responsibility (fn is
// expected to observe ctx itself). Indices not dispatched are skipped, which
// the non-nil return signals to the caller.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var pan PanicBox
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					pan.Record(r)
				}
				wg.Done()
			}()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	// A worker that panicked stops pulling indices but must not crash the
	// process: re-raise on the caller, where the serving layers' recover
	// wrappers turn it into an error.
	pan.Rethrow()
	return ctx.Err()
}
