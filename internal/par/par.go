// Package par provides the tiny data-parallel loop helper shared by the
// dense and sparse linear-algebra kernels. All similarity computations in
// this repository are embarrassingly parallel over matrix rows; this keeps
// the goroutine plumbing in one place.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the default parallelism degree.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For splits [0, n) into contiguous chunks, one per worker, and runs fn on
// each chunk concurrently. fn must be safe to call concurrently on disjoint
// ranges. With workers <= 1 or tiny n it runs inline. The final chunk always
// runs on the caller's goroutine — the caller would otherwise idle in
// wg.Wait while a spawned goroutine does its work, so this saves one
// spawn+wake per call on the kernel hot path.
func For(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	lo := 0
	for ; lo+chunk < n; lo += chunk {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, lo+chunk)
	}
	fn(lo, n)
	wg.Wait()
}

// ForEach runs fn(i) for each i in [0, n) across workers, chunked.
func ForEach(n, workers int, fn func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachCtx runs fn(i) for each i in [0, n) across workers and returns
// ctx.Err(). Unlike For/ForEach it hands out indices one at a time from a
// shared counter, so it load-balances items of very different cost — the
// shape of a query batch, where one heavy query must not serialise a whole
// chunk behind it. Workers stop picking up new items as soon as ctx is
// cancelled; items already running are the callee's responsibility (fn is
// expected to observe ctx itself). Indices not dispatched are skipped, which
// the non-nil return signals to the caller.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
