package par

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

// catch runs f and returns the panic it raised, failing the test if f
// returns normally.
func catch(t *testing.T, f func()) (recovered any) {
	t.Helper()
	defer func() { recovered = recover() }()
	f()
	t.Fatal("call returned normally, want a re-raised panic")
	return nil
}

func TestForWorkerPanicReachesCaller(t *testing.T) {
	const n, workers = 100, 4
	var done atomic.Int64
	r := catch(t, func() {
		For(n, workers, func(lo, hi int) {
			if lo == 0 {
				// A spawned chunk: before this fix the panic crashed the
				// whole process as an unrecovered goroutine panic.
				panic("boom in worker chunk")
			}
			done.Add(int64(hi - lo))
		})
	})
	if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
		t.Fatalf("recovered %v, want the worker's panic value", r)
	}
	// Every non-panicking chunk ran to completion before the re-raise: the
	// barrier still holds.
	chunk := (n + workers - 1) / workers
	if got, want := done.Load(), int64(n-chunk); got != want {
		t.Fatalf("non-panicking chunks covered %d indices, want %d", got, want)
	}
}

func TestForInlinePanicStillWaitsForWorkers(t *testing.T) {
	const n, workers = 100, 4
	chunk := (n + workers - 1) / workers
	var done atomic.Int64
	catch(t, func() {
		For(n, workers, func(lo, hi int) {
			if lo+chunk >= n { // the chunk that runs inline on the caller
				panic("boom on the caller's chunk")
			}
			done.Add(int64(hi - lo))
		})
	})
	// All spawned chunks finished before the panic unwound past For — a
	// caller that recovers and recycles its buffers must not race them.
	if got, want := done.Load(), int64(n-chunk); got != want {
		t.Fatalf("spawned chunks covered %d indices, want %d", got, want)
	}
}

func TestForEachCtxWorkerPanicReachesCaller(t *testing.T) {
	var done atomic.Int64
	r := catch(t, func() {
		_ = ForEachCtx(context.Background(), 64, 4, func(i int) {
			if i == 3 {
				panic("boom in item 3")
			}
			done.Add(1)
		})
	})
	if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
		t.Fatalf("recovered %v, want the worker's panic value", r)
	}
	if done.Load() == 0 {
		t.Fatal("no sibling items completed")
	}
}

func TestForSurvivesRepeatedPanics(t *testing.T) {
	// The helpers hold no global state: a panicking call must leave nothing
	// behind that corrupts the next one.
	for round := 0; round < 3; round++ {
		catch(t, func() {
			For(64, 4, func(lo, hi int) { panic("boom") })
		})
	}
	var done atomic.Int64
	For(64, 4, func(lo, hi int) { done.Add(int64(hi - lo)) })
	if done.Load() != 64 {
		t.Fatalf("clean run after panics covered %d, want 64", done.Load())
	}
}
