package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			seen := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForEachCtxCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			seen := make([]int32, n)
			if err := ForEachCtx(context.Background(), n, workers, func(i int) {
				atomic.AddInt32(&seen[i], 1)
			}); err != nil {
				t.Fatalf("workers=%d n=%d: err = %v", workers, n, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int64
		err := ForEachCtx(ctx, 100, workers, func(i int) { atomic.AddInt64(&ran, 1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran != 0 {
			t.Fatalf("workers=%d: %d items ran under a pre-cancelled context", workers, ran)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers() < 1")
	}
}
