package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			seen := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers() < 1")
	}
}
