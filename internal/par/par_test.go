package par

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			seen := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

// goid extracts the current goroutine's id from runtime.Stack. Test-only:
// the production code never needs goroutine identity, but pinning "the final
// chunk runs on the caller's goroutine" does.
func goid() uint64 {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	// "goroutine 123 [running]:"
	buf = bytes.TrimPrefix(buf, []byte("goroutine "))
	if i := bytes.IndexByte(buf, ' '); i >= 0 {
		buf = buf[:i]
	}
	id, _ := strconv.ParseUint(string(buf), 10, 64)
	return id
}

// TestForClampTable pins the documented clamp behaviour: n == 0 never calls
// fn, workers > n clamps to n (never an empty chunk), workers <= 0 defaults
// to Workers(), and every chunk is non-empty with lo < hi.
func TestForClampTable(t *testing.T) {
	cases := []struct {
		name       string
		n, workers int
		wantCalls  int // -1: only bounds-checked, not pinned
	}{
		{"zero_n", 0, 4, 0},
		{"zero_n_zero_workers", 0, 0, 0},
		{"workers_gt_n", 3, 100, 3},
		{"workers_eq_n", 4, 4, 4},
		{"single_worker", 10, 1, 1},
		{"negative_workers_serial_fallback", 1, -3, 1},
		{"default_workers", 64, 0, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var mu sync.Mutex
			var calls int
			For(tc.n, tc.workers, func(lo, hi int) {
				if lo >= hi || lo < 0 || hi > tc.n {
					t.Errorf("chunk [%d,%d) out of bounds for n=%d", lo, hi, tc.n)
				}
				mu.Lock()
				calls++
				mu.Unlock()
			})
			if tc.wantCalls >= 0 && calls != tc.wantCalls {
				t.Fatalf("n=%d workers=%d: fn called %d times, want %d", tc.n, tc.workers, calls, tc.wantCalls)
			}
		})
	}
}

// TestForLastChunkOnCaller pins the hot-path spawn saving: the chunk holding
// index n-1 must execute on the caller's goroutine, and each earlier chunk
// on a spawned one.
func TestForLastChunkOnCaller(t *testing.T) {
	caller := goid()
	for _, tc := range []struct{ n, workers int }{
		{1000, 4}, {5, 5}, {7, 2}, {1, 1}, {3, 100},
	} {
		var mu sync.Mutex
		chunks := make(map[int]uint64) // lo -> goroutine id
		lastLo := -1
		For(tc.n, tc.workers, func(lo, hi int) {
			id := goid()
			mu.Lock()
			chunks[lo] = id
			if hi == tc.n {
				lastLo = lo
			}
			mu.Unlock()
		})
		if lastLo < 0 {
			t.Fatalf("n=%d workers=%d: no chunk ended at n", tc.n, tc.workers)
		}
		for lo, id := range chunks {
			onCaller := id == caller
			if lo == lastLo && !onCaller {
				t.Fatalf("n=%d workers=%d: final chunk lo=%d ran on goroutine %d, not the caller", tc.n, tc.workers, lo, id)
			}
			if lo != lastLo && onCaller {
				t.Fatalf("n=%d workers=%d: non-final chunk lo=%d ran on the caller's goroutine", tc.n, tc.workers, lo)
			}
		}
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForEachCtxCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			seen := make([]int32, n)
			if err := ForEachCtx(context.Background(), n, workers, func(i int) {
				atomic.AddInt32(&seen[i], 1)
			}); err != nil {
				t.Fatalf("workers=%d n=%d: err = %v", workers, n, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int64
		err := ForEachCtx(ctx, 100, workers, func(i int) { atomic.AddInt64(&ran, 1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran != 0 {
			t.Fatalf("workers=%d: %d items ran under a pre-cancelled context", workers, ran)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers() < 1")
	}
}
