package rwr

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/sparse"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// AllPairs must equal the brute-force Eq. (6) partial sum
// (1−C)·Σ_{k<=K} Cᵏ·Wᵏ.
func TestAllPairsMatchesSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.Graph{dataset.Figure1(), randomGraph(rng, 15, 60)} {
		const c, k = 0.6, 6
		got := AllPairs(g, Options{C: c, K: k})
		w := sparse.ForwardTransition(g).ToDense()
		want := dense.New(g.N(), g.N())
		wl := dense.Identity(g.N())
		for l := 0; l <= k; l++ {
			want.Axpy(math.Pow(c, float64(l)), wl)
			wl = dense.Mul(wl, w)
		}
		want.Scale(1 - c)
		if d := got.MaxAbsDiff(want); d > 1e-10 {
			t.Fatalf("AllPairs vs series differ by %g", d)
		}
	}
}

// Property: SingleSource equals the matching AllPairs row.
func TestQuickSingleSourceMatchesRow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n))
		opt := Options{C: 0.6, K: 5}
		all := AllPairs(g, opt)
		q := rng.Intn(n)
		row := SingleSource(g, q, opt)
		for j, v := range row {
			if math.Abs(v-all.At(q, j)) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Sec. 3.1: RWR is asymmetric. On the family tree, Father reaches Me
// (s(Father, Me) > 0) but no path runs Me→Father (s(Me, Father) = 0) —
// "RWR alleges Me and Father being dissimilar".
func TestFamilyTreeAsymmetry(t *testing.T) {
	g := dataset.FamilyTree()
	s := AllPairs(g, Options{C: 0.8, K: 10})
	father, _ := g.NodeByLabel("Father")
	me, _ := g.NodeByLabel("Me")
	cousin, _ := g.NodeByLabel("Cousin")
	uncle, _ := g.NodeByLabel("Uncle")
	if v := s.At(father, me); v <= 0 {
		t.Fatalf("RWR(Father, Me) = %g, want > 0", v)
	}
	if v := s.At(me, father); v != 0 {
		t.Fatalf("RWR(Me, Father) = %g, want 0", v)
	}
	// RWR ignores "Me and Cousin" (no directed path either way).
	if v := s.At(me, cousin); v != 0 {
		t.Fatalf("RWR(Me, Cousin) = %g, want 0", v)
	}
	// And "Me and Uncle".
	if v := s.At(me, uncle); v != 0 {
		t.Fatalf("RWR(Me, Uncle) = %g, want 0", v)
	}
}

// Figure-1 table, column RWR: (a,f) and (a,c) positive via directed paths,
// (h,d), (g,a), (g,b), (i,a), (i,h) zero.
func TestFigure1Pattern(t *testing.T) {
	g := dataset.Figure1()
	s := AllPairs(g, Options{C: 0.8, K: 15})
	id := func(l string) int {
		i, ok := g.NodeByLabel(l)
		if !ok {
			t.Fatalf("missing %q", l)
		}
		return i
	}
	if v := s.At(id("a"), id("f")); v <= 0 { // a→b→f
		t.Errorf("RWR(a,f) = %g, want > 0", v)
	}
	if v := s.At(id("a"), id("c")); v <= 0 { // a→b→c, a→d→c
		t.Errorf("RWR(a,c) = %g, want > 0", v)
	}
	for _, p := range [][2]string{{"h", "d"}, {"g", "a"}, {"g", "b"}, {"i", "a"}, {"i", "h"}} {
		if v := s.At(id(p[0]), id(p[1])); v != 0 {
			t.Errorf("RWR(%s,%s) = %g, want 0", p[0], p[1], v)
		}
	}
}

// Property: scores in [0, 1]; diagonal at least the restart mass 1−C.
func TestQuickRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n))
		s := AllPairs(g, Options{C: 0.7, K: 6})
		for i := 0; i < n; i++ {
			if s.At(i, i) < 1-0.7-1e-12 {
				return false
			}
			for j := 0; j < n; j++ {
				if v := s.At(i, j); v < 0 || v > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Each row of (1−C)·Σ Cᵏ·Wᵏ sums to at most 1 (equality without sinks).
func TestRowMassBound(t *testing.T) {
	g := dataset.Cycle(6) // no sinks: rows sum to (1−C)Σ Cᵏ exactly
	const c, k = 0.6, 8
	s := AllPairs(g, Options{C: c, K: k})
	wantMass := 0.0
	for l := 0; l <= k; l++ {
		wantMass += math.Pow(c, float64(l))
	}
	wantMass *= 1 - c
	for i := 0; i < 6; i++ {
		var sum float64
		for j := 0; j < 6; j++ {
			sum += s.At(i, j)
		}
		if math.Abs(sum-wantMass) > 1e-12 {
			t.Fatalf("row %d mass = %g, want %g", i, sum, wantMass)
		}
	}
}

func TestSieve(t *testing.T) {
	s := AllPairs(dataset.Figure1(), Options{C: 0.6, K: 5, Sieve: 1e-2})
	for _, v := range s.Data {
		if v != 0 && v < 1e-2 {
			t.Fatalf("sieved score %g", v)
		}
	}
	vec := SingleSource(dataset.Figure1(), 0, Options{C: 0.6, K: 5, Sieve: 1e-2})
	for _, v := range vec {
		if v != 0 && v < 1e-2 {
			t.Fatalf("sieved vector score %g", v)
		}
	}
}

// The blocked multi-source kernel must match the single-source kernel
// bitwise: same coefficients, same accumulation order.
func TestMultiSourceMatchesSingleSourceRWR(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(7)), 24, 60)
	w := sparse.ForwardTransition(g)
	wt := w.Transpose()
	ctx := context.Background()
	opt := Options{C: 0.6, K: 7}
	nodes := []int{0, 2, 3, 0}
	got, err := MultiSourceFromTransition(ctx, w, wt, nodes, opt)
	if err != nil {
		t.Fatal(err)
	}
	for c, q := range nodes {
		want, err := SingleSourceFromTransition(ctx, w, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[c][i] != want[i] {
				t.Fatalf("col %d (node %d): [%d] = %g, want %g", c, q, i, got[c][i], want[i])
			}
		}
	}
}
