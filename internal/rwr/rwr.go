// Package rwr implements Random Walk with Restart (Tong, Faloutsos & Pan,
// ICDM'06) in the series form the paper analyses (Eq. 6):
//
//	s_rwr(i,j) = (1−C)·Σ_{k=0}^{∞} Cᵏ·[Wᵏ]_{i,j}
//
// where W is the row-normalised adjacency matrix. RWR tallies only
// unidirectional paths i→…→j, so it is asymmetric and has its own
// zero-similarity issue (Sec. 3.1): s(Me, Father) = 0 when no directed path
// exists, even though s(Father, Me) > 0. Personalised PageRank is the
// single-source vector special case.
package rwr

import (
	"context"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Options configures RWR.
type Options struct {
	// C is the continuation probability (1−C is the restart probability),
	// default 0.6 to match the paper's experiments.
	C float64
	// K is the series truncation, default 5.
	K int
	// Sieve, when positive, zeroes entries below the threshold at the end.
	Sieve float64
	// Trace, when non-nil, receives kernel-level detail (sweep counts,
	// frontier widths, sieve spend). Nil costs one branch per kernel run;
	// call sites on noalloc paths guard it explicitly (simlint obsnoop).
	Trace *obs.KernelTrace
	// Parallel, when non-nil, fans each sparse sweep out across the
	// Sweeper's workers; results stay bitwise-identical to serial. The
	// caller owns the Sweeper for the duration of the call.
	Parallel *sparse.Sweeper
	// Transposed is the materialised transpose of the forward transition
	// matrix (Wᵀ). The RWR walk's backward sweeps parallelise as gathers
	// over it; when Parallel is set but Transposed is nil those sweeps
	// stay serial.
	Transposed *sparse.CSR
}

func (o Options) withDefaults() Options {
	if o.C <= 0 || o.C >= 1 {
		o.C = 0.6
	}
	if o.K <= 0 {
		o.K = 5
	}
	return o
}

// AllPairs computes the K-th partial sum of Eq. (6) for all pairs by
// iterating S_{k+1} = C·W·S_k + (1−C)·Iₙ; row i holds the RWR scores with
// respect to query node i.
func AllPairs(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := AllPairsFromTransition(context.Background(), sparse.ForwardTransition(g), opt)
	return s
}

// AllPairsCtx is AllPairs with cancellation checked between iterations.
func AllPairsCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	return AllPairsFromTransition(ctx, sparse.ForwardTransition(g), opt)
}

// AllPairsFromTransition iterates against a pre-built forward transition
// matrix W, letting a serving engine amortise the build across queries.
func AllPairsFromTransition(ctx context.Context, w *sparse.CSR, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	n := w.R
	s := dense.New(n, n)
	s.AddDiag(1 - opt.C)
	m := dense.New(n, n)
	for k := 0; k < opt.K; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w.MulDenseInto(m, s)
		m.Scale(opt.C)
		m.AddDiag(1 - opt.C)
		s, m = m, s
	}
	if opt.Sieve > 0 {
		for i, v := range s.Data {
			if v < opt.Sieve {
				s.Data[i] = 0
			}
		}
	}
	return s, nil
}

// SingleSource returns the RWR scores of query q against all nodes —
// personalised PageRank restarted at q, truncated at K terms. It equals row
// q of AllPairs and costs O(K·m).
func SingleSource(g *graph.Graph, q int, opt Options) []float64 {
	s, _ := SingleSourceFromTransition(context.Background(), sparse.ForwardTransition(g), q, opt)
	return s
}

// SingleSourceCtx is SingleSource with cancellation.
func SingleSourceCtx(ctx context.Context, g *graph.Graph, q int, opt Options) ([]float64, error) {
	return SingleSourceFromTransition(ctx, sparse.ForwardTransition(g), q, opt)
}

// SingleSourceFromTransition answers one query against a pre-built forward
// transition matrix.
func SingleSourceFromTransition(ctx context.Context, w *sparse.CSR, q int, opt Options) ([]float64, error) {
	dst := make([]float64, w.R)
	if err := SingleSourceWS(ctx, w, q, opt, nil, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// SingleSourceWS is the workspace form of the single-source kernel: scores
// accumulate into dst (length n) and the two walk buffers come from ws (nil
// for a private one), so a pooling caller pays zero allocations per query.
// The arithmetic is bitwise-identical to the allocating kernel.
//
//simstar:noalloc
func SingleSourceWS(ctx context.Context, w *sparse.CSR, q int, opt Options, ws *sparse.Workspace, dst []float64) error {
	opt = opt.withDefaults()
	n := w.R
	if len(dst) != n {
		panic("rwr: SingleSourceWS dst length mismatch")
	}
	if ws == nil {
		//simstar:lint-ignore noalloc nil-ws convenience fallback, off the pooled serving path
		ws = sparse.NewWorkspace(n)
	} else if ws.Dim() != n {
		panic("rwr: SingleSourceWS workspace dimension mismatch")
	}
	ws.Reset()
	sw := opt.Parallel
	wt := opt.Transposed
	// Row q of Σ Cᵏ Wᵏ: iterate vᵀ ← vᵀW, i.e. v ← Wᵀv.
	cur := ws.Take()
	cur[q] = 1
	next := ws.Raw()
	dense.ZeroVec(dst)
	coef := 1 - opt.C
	sweeps := 0
	// Deadlines flow through the amortised poller (stride 1 here: every
	// iteration is a full O(m) sweep, so each one consults the context) —
	// the same CtxPoll shape the ctxflow analyzer tracks in the fold loops.
	poll := sparse.PollEvery(ctx, 1)
	for k := 0; ; k++ {
		if err := poll.Check(); err != nil {
			return err
		}
		dense.Axpy(dst, coef, cur)
		if k == opt.K {
			break
		}
		if sw != nil && wt != nil {
			sw.MulVecInto(wt, next, cur)
		} else {
			w.MulVecTInto(next, cur)
		}
		sweeps++
		cur, next = next, cur
		coef *= opt.C
	}
	if opt.Sieve > 0 {
		for i, v := range dst {
			if v < opt.Sieve {
				dst[i] = 0
			}
		}
	}
	if tr := opt.Trace; tr != nil {
		tr.AddSweeps(sweeps)
		if sw != nil {
			tr.AddParSweeps(sw.TakeParSweeps(), sw.Workers())
		}
	}
	return nil
}

// SingleSourceTopKWS fuses the single-source RWR kernel with bounded top-k
// selection: the full score vector lands in scores (length n, scratch — the
// kernel resets ws, so scores must not come from the same workspace) and the
// selected entries are built in dst's backing array. With a pooled scores
// buffer and cap(dst) >= k the query materialises only its k results.
// Entries and order are exactly core.TopK(SingleSourceWS..., k, exclude...).
func SingleSourceTopKWS(ctx context.Context, w *sparse.CSR, q, k int, opt Options, ws *sparse.Workspace, scores []float64, dst []core.Ranked, exclude ...int) ([]core.Ranked, error) {
	if err := SingleSourceWS(ctx, w, q, opt, ws, scores); err != nil {
		return nil, err
	}
	return core.TopKInto(scores, k, dst, exclude...), nil
}

// MultiSourceFromTransition answers one single-source RWR query per entry
// of nodes against a pre-built forward transition matrix w and its
// materialised transpose wt, by running the series iteration on an n×B
// dense block instead of B separate vectors. Result i is exactly
// SingleSourceFromTransition(ctx, w, nodes[i], opt): same coefficients,
// same accumulation order — only the sweep over W's CSR structure is
// shared across the block.
func MultiSourceFromTransition(ctx context.Context, w, wt *sparse.CSR, nodes []int, opt Options) ([][]float64, error) {
	opt = opt.withDefaults()
	n := w.R
	b := len(nodes)
	if b == 0 {
		return nil, nil
	}
	cur := dense.New(n, b)
	for t, q := range nodes {
		cur.Row(q)[t] = 1
	}
	out := dense.New(n, b)
	tmp := dense.New(n, b)
	coef := 1 - opt.C
	for k := 0; ; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dense.Axpy(out.Data, coef, cur.Data)
		if k == opt.K {
			break
		}
		if sw := opt.Parallel; sw != nil {
			sw.MulDenseInto(wt, tmp, cur)
		} else {
			wt.MulDenseInto(tmp, cur)
		}
		cur, tmp = tmp, cur
		coef *= opt.C
	}
	if opt.Sieve > 0 {
		for i, v := range out.Data {
			if v < opt.Sieve {
				out.Data[i] = 0
			}
		}
	}
	return out.SplitColumns(), nil
}
