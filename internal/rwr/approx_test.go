package rwr

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

func TestApproxSingleSourceCertificate(t *testing.T) {
	ctx := context.Background()
	for _, tol := range []float64{1e-2, 1e-3, 1e-5, 1e-7} {
		for seed := int64(1); seed <= 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 20 + rng.Intn(60)
			g := randomGraph(rng, n, 3*n)
			w := sparse.ForwardTransition(g)
			opt := Options{C: 0.6, K: 6}
			for q := 0; q < n; q += 5 {
				exact, err := SingleSourceFromTransition(ctx, w, q, opt)
				if err != nil {
					t.Fatal(err)
				}
				approx, bound, err := ApproxSingleSourceFromTransition(ctx, w, q, tol, opt)
				if err != nil {
					t.Fatal(err)
				}
				if bound > tol {
					t.Fatalf("tol=%g q=%d: MaxError %g exceeds tolerance", tol, q, bound)
				}
				for i := range exact {
					if diff := math.Abs(approx[i] - exact[i]); diff > bound {
						t.Fatalf("tol=%g q=%d i=%d: |approx−exact| = %g exceeds certificate %g", tol, q, i, diff, bound)
					}
				}
			}
		}
	}
}

// Workspace reuse across a multi-source run must not leak state between
// queries: every result and certificate must match the standalone run.
func TestApproxMultiSourceMatchesSingleSource(t *testing.T) {
	ctx := context.Background()
	g := randomGraph(rand.New(rand.NewSource(9)), 40, 120)
	w := sparse.ForwardTransition(g)
	opt := Options{C: 0.6, K: 5}
	nodes := []int{0, 11, 11, 39}
	const tol = 1e-4
	multi, errs, err := ApproxMultiSourceFromTransition(ctx, w, nodes, tol, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range nodes {
		single, bound, err := ApproxSingleSourceFromTransition(ctx, w, q, tol, opt)
		if err != nil {
			t.Fatal(err)
		}
		if errs[i] != bound {
			t.Fatalf("q=%d: multi bound %g != single bound %g", q, errs[i], bound)
		}
		for j := range single {
			if multi[i][j] != single[j] {
				t.Fatalf("q=%d j=%d: multi %g != single %g", q, j, multi[i][j], single[j])
			}
		}
	}
}

func TestApproxHonoursCancellation(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(2)), 20, 60)
	w := sparse.ForwardTransition(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ApproxSingleSourceFromTransition(ctx, w, 0, 1e-4, Options{}); err == nil {
		t.Fatal("want cancellation error")
	}
}
