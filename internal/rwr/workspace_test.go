package rwr

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sparse"
)

// The workspace kernel promises bitwise equality with the allocating
// kernel, and one reused workspace/dst pair must not leak state across
// queries.
func TestSingleSourceWSBitwise(t *testing.T) {
	g := dataset.RMATDefault(7, 4, 77)
	w := sparse.ForwardTransition(g)
	ctx := context.Background()
	ws := sparse.NewWorkspace(w.R)
	dst := make([]float64, w.R)
	for _, opt := range []Options{{C: 0.6, K: 5}, {C: 0.9, K: 1}, {C: 0.6, K: 4, Sieve: 1e-3}} {
		for q := 0; q < w.R; q += 13 {
			want, err := SingleSourceFromTransition(ctx, w, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := SingleSourceWS(ctx, w, q, opt, ws, dst); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("opt=%+v q=%d: [%d] = %g, want %g", opt, q, i, dst[i], want[i])
				}
			}
		}
	}
}

// The fused top-k form must select exactly what core.TopK selects from the
// materialized vector, for every dst shape on the pooled path.
func TestSingleSourceTopKWSMatchesMaterialized(t *testing.T) {
	g := dataset.RMATDefault(7, 4, 79)
	w := sparse.ForwardTransition(g)
	ctx := context.Background()
	ws := sparse.NewWorkspace(w.R)
	scores := make([]float64, w.R)
	dst := make([]core.Ranked, 0, 8)
	opt := Options{C: 0.6, K: 5}
	for q := 0; q < w.R; q += 17 {
		full, err := SingleSourceFromTransition(ctx, w, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := core.TopK(full, 8, q)
		got, err := SingleSourceTopKWS(ctx, w, q, 8, opt, ws, scores, dst, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q=%d: %d results, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q=%d: [%d] = %+v, want %+v", q, i, got[i], want[i])
			}
		}
	}
}

func TestSingleSourceTopKWSCancellation(t *testing.T) {
	g := dataset.RMATDefault(6, 4, 80)
	w := sparse.ForwardTransition(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scores := make([]float64, w.R)
	if _, err := SingleSourceTopKWS(ctx, w, 0, 5, Options{}, nil, scores, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSingleSourceWSCancellation(t *testing.T) {
	g := dataset.RMATDefault(6, 4, 78)
	w := sparse.ForwardTransition(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]float64, w.R)
	if err := SingleSourceWS(ctx, w, 0, Options{}, nil, dst); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
