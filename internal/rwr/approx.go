package rwr

import (
	"context"

	"repro/internal/sparse"
)

// Threshold-sieved approximate single-source RWR. The walk mass spreads
// from the query node through Wᵀ sweeps; entries below an adaptive
// threshold are dropped each sweep and charged against an error budget, so
// the result carries a certified element-wise bound:
//
//	|approx[i] − exact[i]| <= MaxError <= tol   for every node i,
//
// where "exact" is SingleSourceFromTransition at the same Options. Mass
// dropped before step k can only reach the output through the series tail
// Σ_{l>=k} (1−C)·Cˡ, the geometric decay that lets late sweeps drop
// proportionally more. Tolerances below sparse.MinCertTolerance disable
// dropping; callers wanting bitwise equality with the exact kernel should
// dispatch to it directly.

// ApproxSingleSourceFromTransition answers one sieved RWR single-source
// query against a pre-built forward transition matrix, returning the scores
// and the certified MaxError bound.
func ApproxSingleSourceFromTransition(ctx context.Context, w *sparse.CSR, q int, tol float64, opt Options) ([]float64, float64, error) {
	ws := newApproxRWRWS(w.R, opt)
	return ws.run(ctx, w, q, tol)
}

// ApproxMultiSourceFromTransition answers one sieved RWR single-source
// query per entry of nodes, sharing the kernel workspace — frontiers and
// the dense accumulator — across queries. Result i and MaxError i
// correspond to nodes[i].
func ApproxMultiSourceFromTransition(ctx context.Context, w *sparse.CSR, nodes []int, tol float64, opt Options) ([][]float64, []float64, error) {
	ws := newApproxRWRWS(w.R, opt)
	out := make([][]float64, len(nodes))
	errs := make([]float64, len(nodes))
	for i, q := range nodes {
		scores, bound, err := ws.run(ctx, w, q, tol)
		if err != nil {
			return nil, nil, err
		}
		// run hands back the shared accumulator; each query keeps its own
		// copy.
		out[i] = append([]float64(nil), scores...)
		errs[i] = bound
	}
	return out, errs, nil
}

// approxRWRWS is the sieved RWR workspace: two ping-pong frontiers, the
// dense output accumulator shared across runs, and the series-tail weights
// tail[k] = Σ_{l=k}^{K} (1−C)·Cˡ.
type approxRWRWS struct {
	opt  Options
	a, b *sparse.Frontier
	out  []float64
	tail []float64
}

func newApproxRWRWS(n int, opt Options) *approxRWRWS {
	opt = opt.withDefaults()
	ws := &approxRWRWS{
		opt:  opt,
		a:    sparse.NewFrontier(n),
		b:    sparse.NewFrontier(n),
		out:  make([]float64, n),
		tail: make([]float64, opt.K+2),
	}
	coef := 1 - opt.C
	for k := 0; k <= opt.K; k++ {
		ws.tail[k] = coef
		coef *= opt.C
	}
	// Suffix-sum the per-term weights into the series tails.
	for k := opt.K - 1; k >= 0; k-- {
		ws.tail[k] += ws.tail[k+1]
	}
	return ws
}

// run answers one query. The returned slice is ws.out — valid until the
// next run on the same workspace; callers retaining it across runs must
// copy.
func (ws *approxRWRWS) run(ctx context.Context, w *sparse.CSR, q int, tol float64) ([]float64, float64, error) {
	ws.a.Reset()
	ws.b.Reset()
	opt := ws.opt
	out := ws.out
	for i := range out {
		out[i] = 0
	}
	tr := opt.Trace
	sw := opt.Parallel
	budget := sparse.NewCertBudget(tol, opt.K)
	budget.Trace = tr

	cur, next := ws.a, ws.b
	cur.Add(int32(q), 1)
	coef := 1 - opt.C
	for k := 0; ; k++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		cur.AddScaledInto(out, coef)
		if k == opt.K {
			break
		}
		next.Reset()
		if sw != nil {
			sw.ScatterMulT(w, next, cur) // next = Wᵀ·cur
		} else {
			w.ScatterMulT(next, cur) // next = Wᵀ·cur
		}
		cur, next = next, cur
		budget.SieveMass(cur, ws.tail[k+1])
		if tr != nil {
			tr.AddSweeps(1)
			tr.ObserveFrontier(cur.Len())
		}
		coef *= opt.C
	}
	cert := budget.Certificate()
	if tr != nil {
		tr.Certificate = cert
		if sw != nil {
			tr.AddParSweeps(sw.TakeParSweeps(), sw.Workers())
		}
	}
	return out, cert, nil
}
