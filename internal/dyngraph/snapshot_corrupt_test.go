package dyngraph

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/graph"
)

// validSnapshotBytes serialises a small store snapshot for the corruption
// tests to mutate.
func validSnapshotBytes(t *testing.T) []byte {
	t.Helper()
	s := New(baseGraph())
	if _, err := s.Apply([]Edit{Insert(4, 0)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A warm restart must reject every corrupted snapshot — truncations, bad
// magic, flipped structure bytes, trailing garbage — rather than serve a
// graph that happens to parse from the wreckage.
func TestReadSnapshotRejectsCorruption(t *testing.T) {
	valid := validSnapshotBytes(t)
	if _, err := ReadSnapshot(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	// Offsets of structural regions: the dyngraph header (magic + epoch),
	// then the graph payload (its own magic + flags/n/m header + arrays).
	graphStart := len(snapshotMagic) + 8
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(b []byte) []byte { return nil }, "snapshot header"},
		{"truncated header", func(b []byte) []byte { return b[:graphStart-3] }, "snapshot header"},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, "bad snapshot magic"},
		{"truncated graph header", func(b []byte) []byte { return b[:graphStart+4] }, "binary header"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, "binary snapshot"},
		{"unknown flags", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[graphStart+len("SIMGRB1\n")] |= 0x80
			return c
		}, "unknown binary snapshot flags"},
		{"corrupt offsets", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// First outOff entry must be 0; stamping it breaks the span check.
			copy(c[graphStart+len("SIMGRB1\n")+20:], []byte{0xFF, 0xFF, 0xFF, 0x7F})
			return c
		}, "offsets"},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xAB) }, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSnapshot(bytes.NewReader(tc.mutate(valid)))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// flakyReader fails with a transport error partway through the payload —
// the short-read shape a fault-injected or overloaded filesystem produces.
type flakyReader struct {
	data []byte
	pos  int
	fail int // byte offset at which reads start failing
}

func (r *flakyReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	if r.pos >= r.fail {
		return 0, errors.New("disk: injected short read")
	}
	n := copy(p, r.data[r.pos:min(len(r.data), r.fail)])
	r.pos += n
	return n, nil
}

func TestReadSnapshotShortRead(t *testing.T) {
	valid := validSnapshotBytes(t)
	for _, fail := range []int{3, len(snapshotMagic) + 4, len(valid) / 2, len(valid) - 1} {
		if _, err := ReadSnapshot(&flakyReader{data: valid, fail: fail}); err == nil {
			t.Fatalf("short read at byte %d accepted", fail)
		}
	}
	// The same reader with the failure point past the payload succeeds: the
	// retry path re-opens and gets a clean stream.
	if _, err := ReadSnapshot(&flakyReader{data: valid, fail: len(valid)}); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// FuzzReadSnapshot hammers the warm-restart loader: no input may panic, and
// accepted snapshots must re-serialise bit-for-bit — the format is strictly
// framed (no trailing data, no unknown flags), so acceptance implies
// canonical form.
func FuzzReadSnapshot(f *testing.F) {
	s := New(baseGraph())
	if _, err := s.Apply([]Edit{Insert(4, 0)}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s.Snapshot()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte(nil), valid...), 0x00))
	f.Add([]byte("SIMSNP1\n"))
	f.Add([]byte("SIMSNP1\n\x01\x00\x00\x00\x00\x00\x00\x00SIMGRB1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected input
		}
		var out bytes.Buffer
		if err := WriteSnapshot(&out, snap); err != nil {
			t.Fatalf("re-serialising accepted snapshot: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted snapshot is not canonical: %d bytes in, %d out", len(data), out.Len())
		}
		// And the graph inside honours the package contract.
		var gbuf bytes.Buffer
		if _, err := snap.Graph.WriteTo(&gbuf); err != nil {
			t.Fatal(err)
		}
		if _, err := graph.ReadFrom(bytes.NewReader(gbuf.Bytes())); err != nil {
			t.Fatalf("embedded graph does not round-trip: %v", err)
		}
	})
}
