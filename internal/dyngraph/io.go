package dyngraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// The mutation-stream text format mirrors the SNAP edge-list convention:
// one edit per line, "+ u v" for an insertion and "- u v" for a removal,
// '#' comments and blank lines ignored. cmd/gengraph -edits emits it and
// benchmarks replay it.

// ReadEdits parses a mutation stream from r.
func ReadEdits(r io.Reader) ([]Edit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edits []Edit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || (fields[0] != "+" && fields[0] != "-") {
			return nil, fmt.Errorf("dyngraph: line %d: want \"+|- u v\", got %q", lineNo, line)
		}
		u, errU := strconv.Atoi(fields[1])
		v, errV := strconv.Atoi(fields[2])
		if errU != nil || errV != nil || u < 0 || v < 0 {
			return nil, fmt.Errorf("dyngraph: line %d: bad node ids in %q", lineNo, line)
		}
		e := Insert(u, v)
		if fields[0] == "-" {
			e = Delete(u, v)
		}
		edits = append(edits, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dyngraph: reading mutation stream: %w", err)
	}
	return edits, nil
}

// WriteEdits serialises a mutation stream in the format ReadEdits parses.
func WriteEdits(w io.Writer, edits []Edit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# edits: %d\n", len(edits))
	for _, e := range edits {
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", e.Op, e.U, e.V); err != nil {
			return fmt.Errorf("dyngraph: writing mutation stream: %w", err)
		}
	}
	return bw.Flush()
}

// snapshotMagic heads an epoch-tagged binary snapshot: the epoch (so a
// warm-restarted store resumes the version sequence) followed by the graph
// in the graph package's binary form.
const snapshotMagic = "SIMSNP1\n"

// WriteSnapshot persists snap — epoch plus graph — in binary form, so a
// server can warm-restart at the current epoch without replaying the delta
// log.
func WriteSnapshot(w io.Writer, snap Snapshot) error {
	var hdr [len(snapshotMagic) + 8]byte
	copy(hdr[:], snapshotMagic)
	binary.LittleEndian.PutUint64(hdr[len(snapshotMagic):], snap.Epoch)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dyngraph: writing snapshot header: %w", err)
	}
	if _, err := snap.Graph.WriteTo(w); err != nil {
		return err
	}
	return nil
}

// ReadSnapshot parses a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var hdr [len(snapshotMagic) + 8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Snapshot{}, fmt.Errorf("dyngraph: reading snapshot header: %w", err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return Snapshot{}, fmt.Errorf("dyngraph: bad snapshot magic %q", hdr[:len(snapshotMagic)])
	}
	epoch := binary.LittleEndian.Uint64(hdr[len(snapshotMagic):])
	g, err := graph.ReadFrom(r)
	if err != nil {
		return Snapshot{}, err
	}
	return Snapshot{Graph: g, Epoch: epoch}, nil
}
