// Package dyngraph is the dynamic-graph subsystem: a versioned store over
// the immutable CSR graphs the rest of the repository computes on. It
// accepts streamed edge insertions and removals into an append-only delta
// log and materialises copy-on-write CSR snapshots at configurable epochs,
// so readers always query an immutable snapshot while writers never block on
// queries — the HTAP separation of the update path from the analytical path.
//
// The store is the write side; the read side is whatever holds a Snapshot.
// Snapshots are plain immutable graphs tagged with an epoch number, fetched
// with one atomic load, so a query engine can keep serving an old epoch
// while the next one is being spliced, and swap over between requests.
package dyngraph

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Op is the kind of one edge mutation.
type Op uint8

const (
	// OpInsert adds the directed edge U→V (a no-op if present).
	OpInsert Op = iota
	// OpDelete removes the directed edge U→V (a no-op if absent).
	OpDelete
)

// String returns the delta-log text form of the op ("+" or "-").
func (o Op) String() string {
	if o == OpDelete {
		return "-"
	}
	return "+"
}

// Edit is one edge mutation in the stream.
type Edit struct {
	Op   Op
	U, V int
}

// Insert returns an insertion edit for the edge u→v.
func Insert(u, v int) Edit { return Edit{Op: OpInsert, U: u, V: v} }

// Delete returns a removal edit for the edge u→v.
func Delete(u, v int) Edit { return Edit{Op: OpDelete, U: u, V: v} }

func (e Edit) op() graph.EdgeOp {
	return graph.EdgeOp{U: e.U, V: e.V, Delete: e.Op == OpDelete}
}

// Snapshot is one immutable materialised version of the graph. Epoch starts
// at the store's base epoch and advances by one per materialisation that
// changed the graph; edits still pending in the log are not visible in it.
type Snapshot struct {
	Graph *graph.Graph
	Epoch uint64
}

// LogEntry is one accepted edit in the append-only delta log.
type LogEntry struct {
	// Seq is the 1-based position of the edit in the log.
	Seq uint64
	// Base is the snapshot epoch the edit was accepted on top of: replaying
	// every entry with Base >= E onto the epoch-E snapshot reproduces the
	// current graph plus pending edits.
	Base uint64
	Edit Edit
}

// Result reports what one Apply or Flush call did.
type Result struct {
	// Snapshot is the store's current snapshot after the call.
	Snapshot Snapshot
	// Applied is the number of edits this call accepted into the log.
	Applied int
	// Pending is the number of logged edits not yet materialised.
	Pending int
	// Materialized reports whether this call spliced a new snapshot. False
	// when the edits are still pending, and also when materialisation found
	// the batch to be a structural no-op (the epoch does not advance then).
	Materialized bool
	// Delta describes the splice when Materialized; nil otherwise.
	Delta *graph.EditDelta
}

// Option configures a Store.
type Option func(*Store)

// WithInterval sets the materialisation epoch interval: a new snapshot is
// spliced once at least n edits are pending. n <= 1 (the default)
// materialises on every Apply call, so edits are immediately visible.
// Larger intervals amortise the splice over bursts of writes at the price
// of queries reading an up-to-(n-1)-edits-stale epoch until the next
// materialisation or Flush.
func WithInterval(n int) Option {
	return func(s *Store) {
		if n > 1 {
			s.interval = n
		}
	}
}

// WithBaseEpoch numbers the store's initial snapshot, so a store warm-started
// from a persisted epoch continues the sequence instead of restarting at 0.
func WithBaseEpoch(epoch uint64) Option {
	return func(s *Store) { s.base = epoch }
}

// Store is the versioned graph store. One mutex serialises writers; readers
// take the current snapshot with a single atomic load and are never blocked
// by a write or a materialisation in progress.
type Store struct {
	mu       sync.Mutex
	snap     atomic.Pointer[Snapshot]
	pending  []Edit
	log      []LogEntry
	seq      uint64
	base     uint64
	interval int
}

// New returns a store whose initial snapshot is base at the configured base
// epoch (0 by default).
func New(base *graph.Graph, opts ...Option) *Store {
	s := &Store{interval: 1}
	for _, o := range opts {
		o(s)
	}
	s.snap.Store(&Snapshot{Graph: base, Epoch: s.base})
	return s
}

// Snapshot returns the current materialised snapshot: one atomic load, safe
// from any goroutine, never blocked by writers.
func (s *Store) Snapshot() Snapshot { return *s.snap.Load() }

// Pending returns the number of logged edits not yet materialised.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Apply validates the batch, appends it to the delta log, and materialises a
// new snapshot if the pending count reaches the epoch interval. The batch is
// atomic: any invalid edit (negative or overflowing node id) rejects the
// whole batch without logging anything.
func (s *Store) Apply(edits []Edit) (Result, error) {
	for _, e := range edits {
		if e.U < 0 || e.V < 0 {
			return Result{}, fmt.Errorf("dyngraph: negative node id in edit (%d, %d)", e.U, e.V)
		}
		if e.Op != OpInsert && e.Op != OpDelete {
			return Result{}, fmt.Errorf("dyngraph: unknown op %d", e.Op)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.snap.Load().Epoch
	for _, e := range edits {
		s.seq++
		s.log = append(s.log, LogEntry{Seq: s.seq, Base: epoch, Edit: e})
	}
	s.pending = append(s.pending, edits...)
	res := Result{Applied: len(edits)}
	if len(s.pending) >= s.interval && len(s.pending) > 0 {
		if err := s.materializeLocked(&res); err != nil {
			return Result{}, err
		}
	}
	res.Snapshot = *s.snap.Load()
	res.Pending = len(s.pending)
	return res, nil
}

// Flush materialises any pending edits regardless of the epoch interval.
func (s *Store) Flush() (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res Result
	if len(s.pending) > 0 {
		if err := s.materializeLocked(&res); err != nil {
			return Result{}, err
		}
	}
	res.Snapshot = *s.snap.Load()
	res.Pending = len(s.pending)
	return res, nil
}

// materializeLocked splices the pending edits into a new snapshot. Requires
// s.mu. The epoch advances only if the graph actually changed; either way
// the pending buffer drains.
func (s *Store) materializeLocked(res *Result) error {
	cur := s.snap.Load()
	ops := make([]graph.EdgeOp, len(s.pending))
	for i, e := range s.pending {
		ops[i] = e.op()
	}
	ng, delta, err := cur.Graph.ApplyEdits(ops)
	if err != nil {
		// Validation in Apply makes this unreachable; surface it rather than
		// silently dropping the pending edits if it ever happens.
		return fmt.Errorf("dyngraph: materialise: %w", err)
	}
	s.pending = s.pending[:0]
	if delta.Empty() {
		// A structural no-op batch has no replay value: the current snapshot
		// already reflects it, and since the epoch is not advancing, its log
		// entries (Base == current epoch) would survive every Compact(current)
		// forever — one leaked entry per idempotent edit in a long-running
		// server. Drop them with the pending buffer; they are always the log
		// tail, because Apply appends to both in lockstep and nothing else
		// appends to the log.
		if n := len(s.log); n >= len(ops) {
			s.log = s.log[:n-len(ops)]
		}
		return nil
	}
	s.snap.Store(&Snapshot{Graph: ng, Epoch: cur.Epoch + 1})
	res.Materialized = true
	res.Delta = delta
	return nil
}

// LogLen returns the number of entries currently held in the delta log
// (accepted edits not yet discarded by Compact).
func (s *Store) LogLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// Log returns a copy of the delta log entries currently held.
func (s *Store) Log() []LogEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]LogEntry(nil), s.log...)
}

// Compact discards log entries already materialised into epochs <= epoch,
// returning how many were dropped. A server that persists a binary snapshot
// of epoch E can compact through E: warm restart then needs no replay at
// all, and anything newer is still replayable from the remaining tail.
func (s *Store) Compact(epoch uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := s.log[:0]
	for _, le := range s.log {
		if le.Base >= epoch {
			keep = append(keep, le)
		}
	}
	n := len(s.log) - len(keep)
	s.log = keep
	return n
}
