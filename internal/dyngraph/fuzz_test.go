package dyngraph

import (
	"bytes"
	"testing"
)

// FuzzReadEdits hammers the "+/- u v" mutation-stream parser (fed by
// cmd/gengraph -editsout replay files and any operator tooling): no input
// may panic, and accepted streams must round-trip through WriteEdits
// unchanged — the edit list is a log, so order and duplicates are
// significant and must survive serialisation exactly.
func FuzzReadEdits(f *testing.F) {
	f.Add([]byte("+ 0 1\n- 1 2\n"))
	f.Add([]byte("# edits: 2\n+ 3 4\n+ 3 4\n"))
	f.Add([]byte("\n# only comments\n"))
	f.Add([]byte("- 0 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		edits, err := ReadEdits(bytes.NewReader(data))
		if err != nil {
			return // rejected input
		}
		for i, e := range edits {
			if e.U < 0 || e.V < 0 {
				t.Fatalf("edit %d accepted negative node id: %+v", i, e)
			}
			if e.Op != OpInsert && e.Op != OpDelete {
				t.Fatalf("edit %d has op %q", i, e.Op)
			}
		}
		var buf bytes.Buffer
		if err := WriteEdits(&buf, edits); err != nil {
			t.Fatalf("WriteEdits: %v", err)
		}
		back, err := ReadEdits(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written stream: %v", err)
		}
		if len(back) != len(edits) {
			t.Fatalf("round trip changed length: %d → %d", len(edits), len(back))
		}
		for i := range edits {
			if back[i] != edits[i] {
				t.Fatalf("round trip changed edit %d: %+v → %+v", i, edits[i], back[i])
			}
		}
	})
}
