package dyngraph

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
)

func baseGraph() *graph.Graph {
	return graph.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}})
}

func TestStoreApplyMaterializesEveryCallByDefault(t *testing.T) {
	s := New(baseGraph())
	if snap := s.Snapshot(); snap.Epoch != 0 || snap.Graph.M() != 5 {
		t.Fatalf("initial snapshot = epoch %d, m %d", snap.Epoch, snap.Graph.M())
	}
	res, err := s.Apply([]Edit{Insert(4, 0), Delete(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Materialized || res.Snapshot.Epoch != 1 || res.Pending != 0 {
		t.Fatalf("result = %+v, want materialized epoch 1, no pending", res)
	}
	if m := res.Snapshot.Graph.M(); m != 5 {
		t.Fatalf("edges = %d, want 5 (one in, one out)", m)
	}
	if res.Delta.Inserted != 1 || res.Delta.Removed != 1 {
		t.Fatalf("delta = %+v", res.Delta)
	}
	if s.Snapshot().Graph.HasEdge(0, 1) {
		t.Fatal("deleted edge survived")
	}
	if !s.Snapshot().Graph.HasEdge(4, 0) {
		t.Fatal("inserted edge missing")
	}
}

func TestStoreIntervalDefersMaterialization(t *testing.T) {
	s := New(baseGraph(), WithInterval(3))
	r1, err := s.Apply([]Edit{Insert(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Materialized || r1.Pending != 1 || r1.Snapshot.Epoch != 0 {
		t.Fatalf("r1 = %+v, want pending, epoch 0", r1)
	}
	// The snapshot must not see the pending edit.
	if s.Snapshot().Graph.HasEdge(4, 1) {
		t.Fatal("pending edit leaked into the snapshot")
	}
	r2, err := s.Apply([]Edit{Insert(4, 2), Insert(4, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Materialized || r2.Snapshot.Epoch != 1 || r2.Pending != 0 {
		t.Fatalf("r2 = %+v, want materialized epoch 1", r2)
	}
	for _, v := range []int{1, 2, 3} {
		if !s.Snapshot().Graph.HasEdge(4, v) {
			t.Fatalf("edge 4→%d missing after materialization", v)
		}
	}
}

func TestStoreFlush(t *testing.T) {
	s := New(baseGraph(), WithInterval(100))
	if _, err := s.Apply([]Edit{Insert(4, 1)}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Materialized || res.Snapshot.Epoch != 1 || res.Pending != 0 {
		t.Fatalf("flush result = %+v", res)
	}
	// Flushing with nothing pending is a no-op.
	res, err = s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Materialized || res.Snapshot.Epoch != 1 {
		t.Fatalf("second flush = %+v", res)
	}
}

func TestStoreNoOpBatchKeepsEpoch(t *testing.T) {
	s := New(baseGraph())
	res, err := s.Apply([]Edit{Insert(0, 1), Delete(3, 4)}) // both no-ops
	if err != nil {
		t.Fatal(err)
	}
	if res.Materialized || res.Snapshot.Epoch != 0 || res.Pending != 0 {
		t.Fatalf("no-op apply = %+v, want epoch 0, drained pending", res)
	}
}

// Materialised no-op batches must not leave log entries behind: their Base
// equals the (unadvanced) current epoch, so Compact(current) would keep
// them forever — one leaked entry per idempotent edit in a long-running
// server.
func TestStoreNoOpBatchLeavesNoLogResidue(t *testing.T) {
	s := New(baseGraph())
	for i := 0; i < 100; i++ {
		if _, err := s.Apply([]Edit{Insert(0, 1)}); err != nil { // already present
			t.Fatal(err)
		}
		s.Compact(s.Snapshot().Epoch)
	}
	if n := s.LogLen(); n != 0 {
		t.Fatalf("log holds %d entries after 100 compacted no-op applies, want 0", n)
	}
	// An effective batch after the no-ops still logs and replays normally.
	res, err := s.Apply([]Edit{Insert(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Materialized || res.Snapshot.Epoch != 1 {
		t.Fatalf("effective apply after no-ops = %+v, want epoch 1", res)
	}
	if got := s.Log(); len(got) != 1 || got[0].Base != 0 || got[0].Edit != Insert(4, 0) {
		t.Fatalf("log after effective apply = %+v", got)
	}
}

func TestStoreRejectsInvalidBatchAtomically(t *testing.T) {
	s := New(baseGraph())
	if _, err := s.Apply([]Edit{Insert(4, 4), {Op: OpInsert, U: -1, V: 0}}); err == nil {
		t.Fatal("want error")
	}
	if s.LogLen() != 0 || s.Pending() != 0 {
		t.Fatal("rejected batch left state behind")
	}
	if s.Snapshot().Graph.HasEdge(4, 4) {
		t.Fatal("rejected batch partially applied")
	}
}

func TestStoreLogAndCompact(t *testing.T) {
	s := New(baseGraph())
	if _, err := s.Apply([]Edit{Insert(4, 0)}); err != nil { // epoch 0→1
		t.Fatal(err)
	}
	if _, err := s.Apply([]Edit{Delete(4, 0), Insert(4, 1)}); err != nil { // 1→2
		t.Fatal(err)
	}
	log := s.Log()
	if len(log) != 3 {
		t.Fatalf("log length = %d, want 3", len(log))
	}
	if log[0].Seq != 1 || log[0].Base != 0 || log[1].Base != 1 || log[2].Base != 1 {
		t.Fatalf("log = %+v", log)
	}
	// Compact through epoch 1: the first entry (materialised into epoch 1)
	// goes, the ones on top of epoch 1 stay.
	if n := s.Compact(1); n != 1 {
		t.Fatalf("compact dropped %d, want 1", n)
	}
	if s.LogLen() != 2 {
		t.Fatalf("log length after compact = %d, want 2", s.LogLen())
	}
}

func TestStoreBaseEpoch(t *testing.T) {
	s := New(baseGraph(), WithBaseEpoch(41))
	if s.Snapshot().Epoch != 41 {
		t.Fatalf("base epoch = %d, want 41", s.Snapshot().Epoch)
	}
	res, err := s.Apply([]Edit{Insert(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Epoch != 42 {
		t.Fatalf("epoch after edit = %d, want 42", res.Snapshot.Epoch)
	}
}

// Writers stream edits while readers hammer Snapshot: the snapshot must
// always be a coherent graph (self-consistent CSR), never a torn state.
// Run under -race in CI.
func TestStoreConcurrentReadersAndWriter(t *testing.T) {
	s := New(baseGraph())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				// Walk the snapshot: a torn graph would panic or disagree.
				edges := 0
				snap.Graph.Edges(func(u, v int) { edges++ })
				if edges != snap.Graph.M() {
					t.Errorf("snapshot walk saw %d edges, M() = %d", edges, snap.Graph.M())
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if _, err := s.Apply([]Edit{Insert(i%7, (i+3)%7), Delete((i+1)%7, i%7)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestEditsRoundTrip(t *testing.T) {
	edits := []Edit{Insert(0, 1), Delete(2, 3), Insert(100, 7)}
	var buf bytes.Buffer
	if err := WriteEdits(&buf, edits); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdits(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edits) {
		t.Fatalf("len = %d, want %d", len(got), len(edits))
	}
	for i := range edits {
		if got[i] != edits[i] {
			t.Fatalf("edit %d = %+v, want %+v", i, got[i], edits[i])
		}
	}
}

func TestReadEditsRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"x 1 2\n", "+ 1\n", "+ a b\n", "+ -1 2\n"} {
		if _, err := ReadEdits(strings.NewReader(bad)); err == nil {
			t.Fatalf("want error for %q", bad)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(baseGraph())
	if _, err := s.Apply([]Edit{Insert(4, 0)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", snap.Epoch)
	}
	if snap.Graph.N() != 5 || snap.Graph.M() != 6 || !snap.Graph.HasEdge(4, 0) {
		t.Fatalf("graph N=%d M=%d", snap.Graph.N(), snap.Graph.M())
	}
	// A store warm-started from the snapshot resumes the epoch sequence.
	s2 := New(snap.Graph, WithBaseEpoch(snap.Epoch))
	res, err := s2.Apply([]Edit{Insert(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Epoch != 2 {
		t.Fatalf("resumed epoch = %d, want 2", res.Snapshot.Epoch)
	}
}
