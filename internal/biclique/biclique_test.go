package biclique

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// figure1 builds the paper's Figure-1 citation graph (18 edges, 11 nodes
// a..k mapped to 0..10). Its induced bigraph is the paper's Figure 4, with
// two bicliques: ({b,d},{c,g,i}) and ({e,j,k},{h,i}).
func figure1() *graph.Graph {
	b := graph.NewBuilder()
	for _, e := range [][2]string{
		{"a", "b"}, {"a", "d"}, {"a", "e"},
		{"b", "c"}, {"b", "f"}, {"b", "g"}, {"b", "i"},
		{"d", "c"}, {"d", "g"}, {"d", "i"},
		{"e", "h"}, {"e", "i"},
		{"f", "d"},
		{"h", "i"},
		{"j", "h"}, {"j", "i"},
		{"k", "h"}, {"k", "i"},
	} {
		b.AddEdgeLabeled(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestFigure4Compression(t *testing.T) {
	g := figure1()
	c := Compress(g, Options{})
	if err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 4 reduces 18 edges by 2 via two concentration
	// nodes; our miner must find at least that much structure.
	if c.MCompressed > c.MOriginal-2 {
		t.Fatalf("m̃ = %d, want <= %d (paper saves 2 edges)", c.MCompressed, c.MOriginal-2)
	}
	if len(c.Bicliques) < 2 {
		t.Fatalf("found %d bicliques, want >= 2 (paper's v1, v2)", len(c.Bicliques))
	}
	// The biclique ({e,j,k},{h,i}) from the paper must be discoverable:
	// h's in-set {e,j,k} is shared with i.
	e, _ := g.NodeByLabel("e")
	j, _ := g.NodeByLabel("j")
	k, _ := g.NodeByLabel("k")
	h, _ := g.NodeByLabel("h")
	i, _ := g.NodeByLabel("i")
	found := false
	for _, b := range c.Bicliques {
		if containsInt32(b.X, int32(e)) && containsInt32(b.X, int32(j)) && containsInt32(b.X, int32(k)) &&
			containsInt32(b.Y, int32(h)) && containsInt32(b.Y, int32(i)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("biclique ({e,j,k},{h,i}) not found; got %+v", c.Bicliques)
	}
}

func TestSavings(t *testing.T) {
	b := Biclique{X: []int32{0, 1}, Y: []int32{2, 3, 4}}
	if b.Savings() != 6-5 {
		t.Fatalf("Savings = %d, want 1", b.Savings())
	}
}

func TestCompleteBipartite(t *testing.T) {
	// K_{5,10}: one biclique covering everything; m̃ = 15 vs m = 50.
	b := graph.NewBuilder()
	for u := 0; u < 5; u++ {
		for v := 5; v < 15; v++ {
			b.AddEdge(u, v)
		}
	}
	g, _ := b.Build()
	c := Compress(g, Options{})
	if err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	if c.MCompressed != 15 {
		t.Fatalf("m̃ = %d, want 15", c.MCompressed)
	}
	if got := c.CompressionRatio(); got < 69 || got > 71 {
		t.Fatalf("ratio = %g%%, want 70%%", got)
	}
}

func TestNoStructure(t *testing.T) {
	// A path has no shared in-neighbours: nothing to mine, m̃ = m.
	b := graph.NewBuilder()
	for i := 0; i < 9; i++ {
		b.AddEdge(i, i+1)
	}
	g, _ := b.Build()
	c := Compress(g, Options{})
	if err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	if len(c.Bicliques) != 0 {
		t.Fatalf("path graph yielded %d bicliques", len(c.Bicliques))
	}
	if c.MCompressed != c.MOriginal {
		t.Fatalf("m̃ = %d, want %d", c.MCompressed, c.MOriginal)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	c := Compress(g, Options{})
	if err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	if c.CompressionRatio() != 0 {
		t.Fatal("empty graph ratio should be 0")
	}
}

func TestIdenticalSetOnlyAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 60, 500)
	full := Compress(g, Options{})
	identOnly := Compress(g, Options{DisablePairMining: true})
	if err := identOnly.Verify(g); err != nil {
		t.Fatal(err)
	}
	if full.MCompressed > identOnly.MCompressed {
		t.Fatalf("pair mining made compression worse: %d > %d", full.MCompressed, identOnly.MCompressed)
	}
}

// Property: compression never increases the edge count and always verifies.
func TestQuickCompressInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(6*n))
		c := Compress(g, Options{})
		if err := c.Verify(g); err != nil {
			t.Log(err)
			return false
		}
		return c.MCompressed <= c.MOriginal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the compressed operator computes exactly Q·X.
func TestQuickOperatorMatchesCSR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(6*n))
		c := Compress(g, Options{})
		op := c.Operator()
		q := sparse.BackwardTransition(g)
		src := dense.New(n, n)
		for i := range src.Data {
			src.Data[i] = rng.NormFloat64()
		}
		got := dense.New(n, n)
		op.Apply(got, src)
		want := q.MulDense(src)
		return got.MaxAbsDiff(want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOperatorVec(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 35, 180)
	c := Compress(g, Options{})
	op := c.Operator()
	q := sparse.BackwardTransition(g)
	x := make([]float64, 35)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, 35)
	op.ApplyVec(got, x)
	want := q.MulVec(x)
	for i := range got {
		if d := got[i] - want[i]; d > 1e-10 || d < -1e-10 {
			t.Fatalf("ApplyVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestOperatorReuseAcrossApplies(t *testing.T) {
	// Repeated Apply calls must not corrupt state (pool reuse).
	rng := rand.New(rand.NewSource(22))
	g := randomGraph(rng, 20, 100)
	c := Compress(g, Options{})
	op := c.Operator()
	q := sparse.BackwardTransition(g)
	src := dense.New(20, 20)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	dst := dense.New(20, 20)
	for iter := 0; iter < 3; iter++ {
		op.Apply(dst, src)
		want := q.MulDense(src)
		if dst.MaxAbsDiff(want) > 1e-10 {
			t.Fatalf("iter %d: operator drifted by %g", iter, dst.MaxAbsDiff(want))
		}
		src.CopyFrom(dst)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g := figure1()
	c := Compress(g, Options{})
	// Corrupt: drop a direct edge from some node that has one.
	for x := range c.Direct {
		if len(c.Direct[x]) > 0 {
			c.Direct[x] = c.Direct[x][1:]
			break
		}
	}
	if err := c.Verify(g); err == nil {
		t.Fatal("Verify accepted a corrupted cover")
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 500, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(g, Options{})
	}
}

func BenchmarkOperatorApply(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 500, 5000)
	c := Compress(g, Options{})
	op := c.Operator()
	src := dense.New(500, 500)
	for i := range src.Data {
		src.Data[i] = rng.Float64()
	}
	dst := dense.New(500, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(dst, src)
	}
}
