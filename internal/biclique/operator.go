package biclique

import (
	"repro/internal/dense"
	"repro/internal/par"
)

// Operator applies the backward transition matrix Q through the compressed
// graph Ĝ: dst = Q·src in O(n·m̃) instead of O(n·m). Row x of the result is
//
//	(Σ_{y ∈ Direct[x]} src[y] + Σ_{v ∈ ConcOf[x]} P_v) / |I(x)|
//
// where P_v = Σ_{y ∈ Δ(v)} src[y] is computed once per concentration node
// and shared — exactly lines 5–10 of the paper's Algorithm 1 (up to the
// C/(2|I(x)|) scaling, which the callers apply).
type Operator struct {
	c *Compressed
	// pool holds one row-buffer per concentration node, reused across
	// Apply calls to avoid re-allocating nConc×cols floats per iteration.
	pool *dense.Matrix
}

// Operator builds an applier for the compressed graph.
func (c *Compressed) Operator() *Operator { return &Operator{c: c} }

// NumConcentration returns |V̂|.
func (c *Compressed) NumConcentration() int { return len(c.Bicliques) }

// Apply computes dst = Q·src. dst and src must be N×k matrices with equal k
// and must not alias.
func (op *Operator) Apply(dst, src *dense.Matrix) {
	c := op.c
	if dst.Rows != c.N || src.Rows != c.N || dst.Cols != src.Cols {
		panic("biclique: Apply shape mismatch")
	}
	nc := len(c.Bicliques)
	if op.pool == nil || op.pool.Cols != src.Cols {
		op.pool = dense.New(nc, src.Cols)
	}
	p := op.pool
	// Phase 1: memoize P_v = Σ_{y∈Δ(v)} src[y] (Algorithm 1 lines 5–7).
	// The first source is copied rather than added onto a zeroed row,
	// saving one full pass per concentration node.
	par.For(nc, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			row := p.Row(v)
			x := c.Bicliques[v].X
			copy(row, src.Row(int(x[0])))
			for _, y := range x[1:] {
				dense.AddTo(row, src.Row(int(y)))
			}
		}
	})
	// Phase 2: assemble rows from direct edges plus shared sums
	// (Algorithm 1 lines 8–10) and scale by 1/|I(x)|.
	par.For(c.N, 0, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			row := dst.Row(x)
			if c.InDeg[x] == 0 {
				dense.ZeroVec(row)
				continue
			}
			first := true
			for _, y := range c.Direct[x] {
				if first {
					copy(row, src.Row(int(y)))
					first = false
					continue
				}
				dense.AddTo(row, src.Row(int(y)))
			}
			for _, v := range c.ConcOf[x] {
				if first {
					copy(row, p.Row(int(v)))
					first = false
					continue
				}
				dense.AddTo(row, p.Row(int(v)))
			}
			dense.ScaleVec(row, 1/float64(c.InDeg[x]))
		}
	})
}

// ApplyVec computes dst = Q·src for vectors, sharing the same memoization.
func (op *Operator) ApplyVec(dst, src []float64) {
	c := op.c
	if len(dst) != c.N || len(src) != c.N {
		panic("biclique: ApplyVec dimension mismatch")
	}
	pv := make([]float64, len(c.Bicliques))
	for v, b := range c.Bicliques {
		var s float64
		for _, y := range b.X {
			s += src[y]
		}
		pv[v] = s
	}
	for x := 0; x < c.N; x++ {
		if c.InDeg[x] == 0 {
			dst[x] = 0
			continue
		}
		var s float64
		for _, y := range c.Direct[x] {
			s += src[y]
		}
		for _, v := range c.ConcOf[x] {
			s += pv[v]
		}
		dst[x] = s / float64(c.InDeg[x])
	}
}
