// Package biclique implements the paper's Section 4.3: compression of the
// induced bigraph via edge concentration, and the resulting fine-grained
// memoization operator used by memo-gSR* and memo-eSR*.
//
// The induced bigraph G̃ = (T ∪ B, Ẽ) (Definition 2) has one T-node per
// graph node with out-links and one B-node per graph node with in-links; the
// in-neighbour set I(x) of a node x is exactly the T-neighbourhood of x in
// G̃. A biclique (X, Y) (Definition 3) certifies that all nodes in Y share
// the in-neighbour subset X; replacing its |X|·|Y| edges with a
// concentration node of |X|+|Y| edges lets the partial sum over X be
// computed once and shared by every member of Y — the paper's fine-grained
// partial sums memoization.
//
// Edge concentration is NP-hard (Lin, 2000), so mining is heuristic, in the
// spirit of Buehrer & Chellapilla's frequent-itemset approach: identical
// in-neighbour sets are grouped first, then frequent source-pairs seed
// greedily extended bicliques. Each original in-edge is covered exactly once
// (either directly or through exactly one concentration node), which keeps
// the memoized sums exact rather than approximate.
package biclique

import (
	"fmt"
	"hash/maphash"
	"sort"

	"repro/internal/graph"
)

// Biclique is a complete bipartite subgraph (X ⊆ T, Y ⊆ B) of the induced
// bigraph: every y ∈ Y has every x ∈ X among its in-neighbours.
type Biclique struct {
	X []int32 // fan-in sources, ascending
	Y []int32 // fan-out targets, ascending
}

// Savings returns |X|·|Y| − (|X|+|Y|), the number of edges removed from the
// bigraph by concentrating this biclique.
func (b *Biclique) Savings() int {
	return len(b.X)*len(b.Y) - (len(b.X) + len(b.Y))
}

// Options controls the miner.
type Options struct {
	// MinSources and MinTargets bound biclique dimensions (paper: both >= 2,
	// since smaller bicliques never save edges).
	MinSources, MinTargets int
	// Passes is the number of pair-seeded greedy sweeps after the
	// identical-set pass. 0 means the default.
	Passes int
	// MaxPairsPerNode caps the number of source pairs enumerated per B-node
	// to keep mining near-linear on dense rows. 0 means the default.
	MaxPairsPerNode int
	// DisablePairMining keeps only the identical-set pass (used by the
	// miner-strategy ablation).
	DisablePairMining bool
}

func (o Options) withDefaults() Options {
	if o.MinSources < 2 {
		o.MinSources = 2
	}
	if o.MinTargets < 2 {
		o.MinTargets = 2
	}
	if o.Passes == 0 {
		o.Passes = 3
	}
	if o.MaxPairsPerNode == 0 {
		o.MaxPairsPerNode = 256
	}
	return o
}

// Compressed is the compressed graph Ĝ = (T ∪ B ∪ V̂, Ê): for every node x,
// I(x) is partitioned into Direct[x] plus the fan-in sets Δ(v) of the
// concentration nodes v ∈ ConcOf[x].
type Compressed struct {
	N         int
	Bicliques []Biclique
	Direct    [][]int32 // per node: in-neighbours not covered by any biclique
	ConcOf    [][]int32 // per node: indices into Bicliques whose Y contains it
	InDeg     []int     // original |I(x)|

	MOriginal   int // |Ẽ| = edges of G
	MCompressed int // |Ê| = Σ|Direct| + Σ_v (|X_v| + |Y_v|)
}

// CompressionRatio returns (1 − m̃/m)·100%, the paper's Fig. 6(g) metric.
func (c *Compressed) CompressionRatio() float64 {
	if c.MOriginal == 0 {
		return 0
	}
	return (1 - float64(c.MCompressed)/float64(c.MOriginal)) * 100
}

// Compress builds the induced bigraph of g, mines bicliques and returns the
// compressed structure. It always yields a valid cover; with no minable
// structure the result degenerates to Direct = I(·) and m̃ = m.
func Compress(g *graph.Graph, opt Options) *Compressed {
	opt = opt.withDefaults()
	n := g.N()
	c := &Compressed{
		N:         n,
		Direct:    make([][]int32, n),
		ConcOf:    make([][]int32, n),
		InDeg:     make([]int, n),
		MOriginal: g.M(),
	}
	// remaining[x] = in-neighbours of x not yet covered by a biclique.
	remaining := make([]map[int32]struct{}, n)
	for x := 0; x < n; x++ {
		in := g.In(x)
		c.InDeg[x] = len(in)
		if len(in) == 0 {
			continue
		}
		set := make(map[int32]struct{}, len(in))
		for _, s := range in {
			set[s] = struct{}{}
		}
		remaining[x] = set
	}

	commit := func(b Biclique) {
		idx := int32(len(c.Bicliques))
		c.Bicliques = append(c.Bicliques, b)
		for _, y := range b.Y {
			c.ConcOf[y] = append(c.ConcOf[y], idx)
			for _, x := range b.X {
				delete(remaining[y], x)
			}
		}
	}

	mineIdenticalSets(g, remaining, opt, commit)
	if !opt.DisablePairMining {
		for pass := 0; pass < opt.Passes; pass++ {
			if !minePairSeeded(n, remaining, opt, commit) {
				break
			}
		}
	}

	// Whatever is left stays as direct edges.
	for x := 0; x < n; x++ {
		if len(remaining[x]) == 0 {
			continue
		}
		d := make([]int32, 0, len(remaining[x]))
		for s := range remaining[x] {
			d = append(d, s)
		}
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		c.Direct[x] = d
	}
	for x := 0; x < n; x++ {
		c.MCompressed += len(c.Direct[x])
	}
	for _, b := range c.Bicliques {
		c.MCompressed += len(b.X) + len(b.Y)
	}
	return c
}

// mineIdenticalSets groups B-nodes whose *entire remaining* in-neighbour set
// is identical; each group of >= MinTargets nodes with >= MinSources shared
// sources and positive savings becomes one biclique.
func mineIdenticalSets(g *graph.Graph, remaining []map[int32]struct{}, opt Options, commit func(Biclique)) {
	n := g.N()
	var seed maphash.Seed = maphash.MakeSeed()
	groups := make(map[uint64][]int32)
	for x := 0; x < n; x++ {
		if len(remaining[x]) < opt.MinSources {
			continue
		}
		// Hash the sorted remaining set (at this point remaining == I(x)).
		in := g.In(x)
		var h maphash.Hash
		h.SetSeed(seed)
		for _, s := range in {
			var buf [4]byte
			buf[0] = byte(s)
			buf[1] = byte(s >> 8)
			buf[2] = byte(s >> 16)
			buf[3] = byte(s >> 24)
			h.Write(buf[:])
		}
		groups[h.Sum64()] = append(groups[h.Sum64()], int32(x))
	}
	keys := make([]uint64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		members := groups[k]
		if len(members) < opt.MinTargets {
			continue
		}
		// Split hash-collision groups by comparing actual sets against the
		// first member; stragglers are simply skipped in this pass.
		ref := g.In(int(members[0]))
		ys := members[:0:0]
		for _, y := range members {
			if equalInt32(g.In(int(y)), ref) {
				ys = append(ys, y)
			}
		}
		if len(ys) < opt.MinTargets {
			continue
		}
		b := Biclique{X: append([]int32(nil), ref...), Y: append([]int32(nil), ys...)}
		if b.Savings() > 0 {
			commit(b)
		}
	}
}

// minePairSeeded counts co-occurring source pairs across remaining sets,
// seeds a biclique from each frequent pair and greedily widens X while the
// savings improve. Returns whether any biclique was committed.
func minePairSeeded(n int, remaining []map[int32]struct{}, opt Options, commit func(Biclique)) bool {
	type pair struct{ a, b int32 }
	counts := make(map[pair]int)
	for x := 0; x < n; x++ {
		set := remaining[x]
		if len(set) < 2 {
			continue
		}
		srcs := make([]int32, 0, len(set))
		for s := range set {
			srcs = append(srcs, s)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		budget := opt.MaxPairsPerNode
		for i := 0; i < len(srcs) && budget > 0; i++ {
			for j := i + 1; j < len(srcs) && budget > 0; j++ {
				counts[pair{srcs[i], srcs[j]}]++
				budget--
			}
		}
	}
	pairs := make([]pair, 0, len(counts))
	for p, c := range counts {
		if c >= opt.MinTargets {
			pairs = append(pairs, p)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if counts[pairs[i]] != counts[pairs[j]] {
			return counts[pairs[i]] > counts[pairs[j]]
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})

	// occ[s] = B-nodes whose remaining set contained source s when the pass
	// started. Commits only shrink `remaining`, so occ is a superset that is
	// re-validated against `remaining` at every use — no rebuild needed,
	// which keeps a pass near-linear in the edge count.
	occ := make(map[int32][]int32)
	for x := 0; x < n; x++ {
		for s := range remaining[x] {
			occ[s] = append(occ[s], int32(x))
		}
	}

	committed := false
	for _, p := range pairs {
		// Current Y for the seed pair.
		var ys []int32
		for _, y := range occ[p.a] {
			if _, ok := remaining[y][p.b]; ok {
				if _, ok := remaining[y][p.a]; ok { // occ may be stale
					ys = append(ys, y)
				}
			}
		}
		if len(ys) < opt.MinTargets {
			continue
		}
		x := []int32{p.a, p.b}
		// Greedy widening: add the source that keeps the most of Y, while
		// the savings improve.
		for {
			counts := make(map[int32]int)
			for _, y := range ys {
				for s := range remaining[y] {
					counts[s]++
				}
			}
			var bestS int32 = -1
			bestC := 0
			for s, c := range counts {
				if containsInt32(x, s) {
					continue
				}
				if c > bestC || (c == bestC && bestS >= 0 && s < bestS) {
					bestS, bestC = s, c
				}
			}
			if bestS < 0 || bestC < opt.MinTargets {
				break
			}
			curSave := len(x)*len(ys) - (len(x) + len(ys))
			newSave := (len(x)+1)*bestC - (len(x) + 1 + bestC)
			if newSave <= curSave {
				break
			}
			x = append(x, bestS)
			kept := ys[:0:0]
			for _, y := range ys {
				if _, ok := remaining[y][bestS]; ok {
					kept = append(kept, y)
				}
			}
			ys = kept
		}
		b := Biclique{X: append([]int32(nil), x...), Y: append([]int32(nil), ys...)}
		sort.Slice(b.X, func(i, j int) bool { return b.X[i] < b.X[j] })
		sort.Slice(b.Y, func(i, j int) bool { return b.Y[i] < b.Y[j] })
		if len(b.X) >= opt.MinSources && len(b.Y) >= opt.MinTargets && b.Savings() > 0 {
			commit(b)
			committed = true
		}
	}
	return committed
}

// Verify checks the exact-cover invariant against the original graph: for
// every node x, Direct[x] plus the fan-ins of its concentration nodes equals
// I(x) with no duplicates. It returns a descriptive error on violation.
func (c *Compressed) Verify(g *graph.Graph) error {
	if g.N() != c.N {
		return fmt.Errorf("biclique: node count mismatch %d != %d", g.N(), c.N)
	}
	for x := 0; x < c.N; x++ {
		got := make(map[int32]int)
		for _, s := range c.Direct[x] {
			got[s]++
		}
		for _, vi := range c.ConcOf[x] {
			for _, s := range c.Bicliques[vi].X {
				got[s]++
			}
		}
		in := g.In(x)
		if len(got) != len(in) {
			return fmt.Errorf("biclique: node %d covers %d sources, want %d", x, len(got), len(in))
		}
		for _, s := range in {
			if got[s] != 1 {
				return fmt.Errorf("biclique: node %d covers source %d %d times", x, s, got[s])
			}
		}
	}
	m := 0
	for x := 0; x < c.N; x++ {
		m += len(c.Direct[x])
	}
	for _, b := range c.Bicliques {
		m += len(b.X) + len(b.Y)
	}
	if m != c.MCompressed {
		return fmt.Errorf("biclique: MCompressed = %d, recomputed %d", c.MCompressed, m)
	}
	return nil
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt32(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
