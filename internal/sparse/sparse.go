// Package sparse provides the CSR sparse-matrix substrate for all
// similarity computations. The paper's algorithms are driven by two
// row-stochastic operators derived from a digraph G:
//
//   - Q, the backward transition matrix (Sec. 2): [Q]_{i,j} = 1/|I(i)| if
//     there is an edge j→i, else 0 — i.e. the row-normalised transpose of the
//     adjacency matrix. SimRank and SimRank* iterate with Q.
//   - W, the forward walk matrix (Sec. 3.1): the row-normalised adjacency
//     matrix itself. RWR/PPR iterate with W.
//
// Go has no sparse linear-algebra standard library, so the package is built
// from scratch: CSR storage, sparse×dense products (parallel over rows),
// matvec, transpose-matvec and transpose materialisation.
package sparse

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/par"
)

// CSR is a compressed-sparse-row matrix of float64.
type CSR struct {
	R, C   int
	RowOff []int32   // len R+1
	ColIdx []int32   // len nnz, ascending within each row
	Val    []float64 // len nnz
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowView returns the column indices and values of row i.
func (m *CSR) RowView(i int) ([]int32, []float64) {
	lo, hi := m.RowOff[i], m.RowOff[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns element (i, j) by binary search over row i, whose column
// indices are stored in ascending order. Use RowView for bulk access.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.RowView(i)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(cols[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && int(cols[lo]) == j {
		return vals[lo]
	}
	return 0
}

// BackwardTransition builds Q from g: row i holds 1/|I(i)| at each column
// j ∈ I(i). Rows of nodes with no in-links are empty (the SimRank base case
// s(a,b)=0 when I(a)=∅).
func BackwardTransition(g *graph.Graph) *CSR {
	n := g.N()
	m := &CSR{R: n, C: n, RowOff: make([]int32, n+1)}
	m.ColIdx = make([]int32, 0, g.M())
	m.Val = make([]float64, 0, g.M())
	for i := 0; i < n; i++ {
		in := g.In(i)
		if len(in) > 0 {
			w := 1 / float64(len(in))
			for _, j := range in {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, w)
			}
		}
		m.RowOff[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// ForwardTransition builds W from g: row i holds 1/|O(i)| at each column
// j ∈ O(i). Rows of sink nodes are empty (the walk stops, matching the
// series form Eq. (6)).
func ForwardTransition(g *graph.Graph) *CSR {
	n := g.N()
	m := &CSR{R: n, C: n, RowOff: make([]int32, n+1)}
	m.ColIdx = make([]int32, 0, g.M())
	m.Val = make([]float64, 0, g.M())
	for i := 0; i < n; i++ {
		out := g.Out(i)
		if len(out) > 0 {
			w := 1 / float64(len(out))
			for _, j := range out {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, w)
			}
		}
		m.RowOff[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// Adjacency builds the 0/1 adjacency matrix A of g ([A]_{i,j}=1 iff edge
// i→j), used by tests that validate the Lemma-1 walk-counting machinery.
func Adjacency(g *graph.Graph) *CSR {
	n := g.N()
	m := &CSR{R: n, C: n, RowOff: make([]int32, n+1)}
	m.ColIdx = make([]int32, 0, g.M())
	m.Val = make([]float64, 0, g.M())
	for i := 0; i < n; i++ {
		for _, j := range g.Out(i) {
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, 1)
		}
		m.RowOff[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// Transpose materialises mᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	t := &CSR{R: m.C, C: m.R, RowOff: make([]int32, m.C+1)}
	t.ColIdx = make([]int32, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	for _, c := range m.ColIdx {
		t.RowOff[c+1]++
	}
	for i := 0; i < t.R; i++ {
		t.RowOff[i+1] += t.RowOff[i]
	}
	pos := make([]int32, t.R)
	for i := 0; i < m.R; i++ {
		cols, vals := m.RowView(i)
		for k, c := range cols {
			at := t.RowOff[c] + pos[c]
			t.ColIdx[at] = int32(i)
			t.Val[at] = vals[k]
			pos[c]++
		}
	}
	return t
}

// MulVec returns m·x.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.C {
		panic("sparse: MulVec dimension mismatch")
	}
	y := make([]float64, m.R)
	m.MulVecInto(y, x)
	return y
}

// MulVecInto computes y = m·x, overwriting y.
//
//simstar:noalloc
func (m *CSR) MulVecInto(y, x []float64) {
	m.mulVecRange(y, x, 0, m.R)
}

// mulVecRange computes y[i] = (m·x)[i] for i in [lo, hi). The per-row dot
// products are independent, so any row partition of [0, R) reproduces
// MulVecInto bitwise.
//
//simstar:noalloc
func (m *CSR) mulVecRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		cols, vals := m.RowView(i)
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
	}
}

// MulVecT returns mᵀ·x without materialising the transpose (scatter form).
func (m *CSR) MulVecT(x []float64) []float64 {
	if len(x) != m.R {
		panic("sparse: MulVecT dimension mismatch")
	}
	y := make([]float64, m.C)
	m.MulVecTInto(y, x)
	return y
}

// MulVecTInto computes y = mᵀ·x in scatter form, overwriting y. Rows whose
// x entry is zero are skipped, and the scatter over each contributing row is
// 4-way unrolled: within a row the column indices are distinct, so the four
// updates are independent and the accumulation order per target element is
// unchanged — results are bitwise-identical to the rolled loop.
//
//simstar:noalloc
func (m *CSR) MulVecTInto(y, x []float64) {
	if len(x) != m.R || len(y) != m.C {
		panic("sparse: MulVecTInto dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < m.R; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		cols, vals := m.RowView(i)
		k := 0
		for ; k+4 <= len(cols); k += 4 {
			c0, c1, c2, c3 := cols[k], cols[k+1], cols[k+2], cols[k+3]
			y[c0] += vals[k] * xi
			y[c1] += vals[k+1] * xi
			y[c2] += vals[k+2] * xi
			y[c3] += vals[k+3] * xi
		}
		for ; k < len(cols); k++ {
			y[cols[k]] += vals[k] * xi
		}
	}
}

// MulVecAddInto computes y = m·x + add, fusing the Horner-step addition into
// the sweep so the iteration makes one pass over y instead of two. y must
// alias neither x nor add. Element-wise the operations match MulVecInto
// followed by AddTo, so results are bitwise-identical.
//
//simstar:noalloc
func (m *CSR) MulVecAddInto(y, x, add []float64) {
	if len(x) != m.C || len(y) != m.R || len(add) != m.R {
		panic("sparse: MulVecAddInto dimension mismatch")
	}
	m.mulVecAddRange(y, x, add, 0, m.R)
}

// mulVecAddRange is the row-range body of MulVecAddInto (see mulVecRange).
//
//simstar:noalloc
func (m *CSR) mulVecAddRange(y, x, add []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		cols, vals := m.RowView(i)
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s + add[i]
	}
}

// MulVecAddScaleInto computes y = (m·x + add)·scale, folding the final
// normalisation of a series kernel into its last sweep. Bitwise-identical to
// MulVecAddInto followed by an element-wise multiply.
//
//simstar:noalloc
func (m *CSR) MulVecAddScaleInto(y, x, add []float64, scale float64) {
	if len(x) != m.C || len(y) != m.R || len(add) != m.R {
		panic("sparse: MulVecAddScaleInto dimension mismatch")
	}
	m.mulVecAddScaleRange(y, x, add, scale, 0, m.R)
}

// mulVecAddScaleRange is the row-range body of MulVecAddScaleInto (see
// mulVecRange).
//
//simstar:noalloc
func (m *CSR) mulVecAddScaleRange(y, x, add []float64, scale float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		cols, vals := m.RowView(i)
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = (s + add[i]) * scale
	}
}

// MulDense returns m·b for a dense b, parallelised over rows of m. This is
// the O(n·m_edges) kernel behind every iterative algorithm in the
// repository (Q·S_k per Eq. (14), W·S_k for RWR, Q·R_k per Eq. (19)).
func (m *CSR) MulDense(b *dense.Matrix) *dense.Matrix {
	c := dense.New(m.R, b.Cols)
	m.MulDenseInto(c, b)
	return c
}

// PanelMaxCols is the widest right-hand side the register-blocked panel SpMM
// handles; wider blocks stream better through the axpy form. The crossover
// was measured with BenchmarkMulDenseWidth (panel wins up to ~1.8× at width
// 4–16, loses ~25% at 32+), so small query batches ride the panel kernel and
// full 64-wide blocks keep the streaming form. Exported because the batch
// planner uses the same crossover to choose its block width.
const PanelMaxCols = 16

// MulDenseInto computes c = m·b, overwriting c. c must not alias b. Narrow
// right-hand sides (≤ PanelMaxCols columns — the blocked multi-source path)
// go through a register-blocked kernel that accumulates 4-column panels in
// registers, reading each sparse row once per panel instead of re-streaming
// the B-wide accumulator row per nonzero; wide ones use the scaled-copy +
// axpy form. Both accumulate each output element over the row's nonzeros in
// the same order, so the results are bitwise-identical to each other and to
// the single-source gather kernels.
func (m *CSR) MulDenseInto(c, b *dense.Matrix) {
	if m.C != b.Rows || c.Rows != m.R || c.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: MulDense shape mismatch (%dx%d)·(%dx%d)→(%dx%d)",
			m.R, m.C, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if b.Cols <= PanelMaxCols {
		m.mulDensePanelsInto(c, b)
		return
	}
	m.mulDenseAxpyInto(c, b)
}

// mulDenseAxpyInto is the wide-block SpMM: each sparse entry streams a full
// contiguous row of b into the accumulator row.
func (m *CSR) mulDenseAxpyInto(c, b *dense.Matrix) {
	par.For(m.R, 0, func(lo, hi int) {
		m.mulDenseAxpyRange(c, b, lo, hi)
	})
}

// mulDenseAxpyRange computes rows [lo, hi) of the axpy-form SpMM. Split out
// of mulDenseAxpyInto so the Sweeper can drive the same body from its
// persistent workers.
func (m *CSR) mulDenseAxpyRange(c, b *dense.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ci := c.Row(i)
		cols, vals := m.RowView(i)
		if len(cols) == 0 {
			dense.ZeroVec(ci)
			continue
		}
		// First source: scaled copy instead of zero-then-axpy, saving a
		// full pass over the row.
		dense.ScaledCopy(ci, vals[0], b.Row(int(cols[0])))
		for k := 1; k < len(cols); k++ {
			dense.Axpy(ci, vals[k], b.Row(int(cols[k])))
		}
	}
}

// mulDensePanelsInto is the narrow-block SpMM: 4-column panels held in
// registers while sweeping the sparse row, plus a scalar tail for the
// remaining columns.
func (m *CSR) mulDensePanelsInto(c, b *dense.Matrix) {
	par.For(m.R, 0, func(lo, hi int) {
		m.mulDensePanelsRange(c, b, lo, hi)
	})
}

// mulDensePanelsRange computes rows [lo, hi) of the panel-form SpMM (see
// mulDenseAxpyRange for why the body is range-shaped).
func (m *CSR) mulDensePanelsRange(c, b *dense.Matrix, lo, hi int) {
	w := b.Cols
	for i := lo; i < hi; i++ {
		ci := c.Row(i)
		cols, vals := m.RowView(i)
		if len(cols) == 0 {
			dense.ZeroVec(ci)
			continue
		}
		j := 0
		for ; j+4 <= w; j += 4 {
			var s0, s1, s2, s3 float64
			for k, cc := range cols {
				br := b.Row(int(cc))
				v := vals[k]
				s0 += v * br[j]
				s1 += v * br[j+1]
				s2 += v * br[j+2]
				s3 += v * br[j+3]
			}
			ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
		}
		for ; j < w; j++ {
			var s float64
			for k, cc := range cols {
				s += vals[k] * b.Row(int(cc))[j]
			}
			ci[j] = s
		}
	}
}

// ToDense materialises the matrix densely (test/diagnostic use).
func (m *CSR) ToDense() *dense.Matrix {
	d := dense.New(m.R, m.C)
	for i := 0; i < m.R; i++ {
		cols, vals := m.RowView(i)
		row := d.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return d
}

// RowSums returns the vector of row sums; for Q and W every non-empty row
// sums to 1 (row-stochasticity), which tests assert.
func (m *CSR) RowSums() []float64 {
	s := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		_, vals := m.RowView(i)
		s[i] = dense.SumVec(vals)
	}
	return s
}
