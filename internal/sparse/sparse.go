// Package sparse provides the CSR sparse-matrix substrate for all
// similarity computations. The paper's algorithms are driven by two
// row-stochastic operators derived from a digraph G:
//
//   - Q, the backward transition matrix (Sec. 2): [Q]_{i,j} = 1/|I(i)| if
//     there is an edge j→i, else 0 — i.e. the row-normalised transpose of the
//     adjacency matrix. SimRank and SimRank* iterate with Q.
//   - W, the forward walk matrix (Sec. 3.1): the row-normalised adjacency
//     matrix itself. RWR/PPR iterate with W.
//
// Go has no sparse linear-algebra standard library, so the package is built
// from scratch: CSR storage, sparse×dense products (parallel over rows),
// matvec, transpose-matvec and transpose materialisation.
package sparse

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/par"
)

// CSR is a compressed-sparse-row matrix of float64.
type CSR struct {
	R, C   int
	RowOff []int32   // len R+1
	ColIdx []int32   // len nnz, ascending within each row
	Val    []float64 // len nnz
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowView returns the column indices and values of row i.
func (m *CSR) RowView(i int) ([]int32, []float64) {
	lo, hi := m.RowOff[i], m.RowOff[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns element (i, j) with a linear scan of row i (rows are short in
// the graphs this repository handles; use RowView for bulk access).
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.RowView(i)
	for k, c := range cols {
		if int(c) == j {
			return vals[k]
		}
	}
	return 0
}

// BackwardTransition builds Q from g: row i holds 1/|I(i)| at each column
// j ∈ I(i). Rows of nodes with no in-links are empty (the SimRank base case
// s(a,b)=0 when I(a)=∅).
func BackwardTransition(g *graph.Graph) *CSR {
	n := g.N()
	m := &CSR{R: n, C: n, RowOff: make([]int32, n+1)}
	m.ColIdx = make([]int32, 0, g.M())
	m.Val = make([]float64, 0, g.M())
	for i := 0; i < n; i++ {
		in := g.In(i)
		if len(in) > 0 {
			w := 1 / float64(len(in))
			for _, j := range in {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, w)
			}
		}
		m.RowOff[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// ForwardTransition builds W from g: row i holds 1/|O(i)| at each column
// j ∈ O(i). Rows of sink nodes are empty (the walk stops, matching the
// series form Eq. (6)).
func ForwardTransition(g *graph.Graph) *CSR {
	n := g.N()
	m := &CSR{R: n, C: n, RowOff: make([]int32, n+1)}
	m.ColIdx = make([]int32, 0, g.M())
	m.Val = make([]float64, 0, g.M())
	for i := 0; i < n; i++ {
		out := g.Out(i)
		if len(out) > 0 {
			w := 1 / float64(len(out))
			for _, j := range out {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, w)
			}
		}
		m.RowOff[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// Adjacency builds the 0/1 adjacency matrix A of g ([A]_{i,j}=1 iff edge
// i→j), used by tests that validate the Lemma-1 walk-counting machinery.
func Adjacency(g *graph.Graph) *CSR {
	n := g.N()
	m := &CSR{R: n, C: n, RowOff: make([]int32, n+1)}
	m.ColIdx = make([]int32, 0, g.M())
	m.Val = make([]float64, 0, g.M())
	for i := 0; i < n; i++ {
		for _, j := range g.Out(i) {
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, 1)
		}
		m.RowOff[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// Transpose materialises mᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	t := &CSR{R: m.C, C: m.R, RowOff: make([]int32, m.C+1)}
	t.ColIdx = make([]int32, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	for _, c := range m.ColIdx {
		t.RowOff[c+1]++
	}
	for i := 0; i < t.R; i++ {
		t.RowOff[i+1] += t.RowOff[i]
	}
	pos := make([]int32, t.R)
	for i := 0; i < m.R; i++ {
		cols, vals := m.RowView(i)
		for k, c := range cols {
			at := t.RowOff[c] + pos[c]
			t.ColIdx[at] = int32(i)
			t.Val[at] = vals[k]
			pos[c]++
		}
	}
	return t
}

// MulVec returns m·x.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.C {
		panic("sparse: MulVec dimension mismatch")
	}
	y := make([]float64, m.R)
	m.MulVecInto(y, x)
	return y
}

// MulVecInto computes y = m·x, overwriting y.
func (m *CSR) MulVecInto(y, x []float64) {
	for i := 0; i < m.R; i++ {
		cols, vals := m.RowView(i)
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
	}
}

// MulVecT returns mᵀ·x without materialising the transpose (scatter form).
func (m *CSR) MulVecT(x []float64) []float64 {
	if len(x) != m.R {
		panic("sparse: MulVecT dimension mismatch")
	}
	y := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		cols, vals := m.RowView(i)
		for k, c := range cols {
			y[c] += vals[k] * xi
		}
	}
	return y
}

// MulDense returns m·b for a dense b, parallelised over rows of m. This is
// the O(n·m_edges) kernel behind every iterative algorithm in the
// repository (Q·S_k per Eq. (14), W·S_k for RWR, Q·R_k per Eq. (19)).
func (m *CSR) MulDense(b *dense.Matrix) *dense.Matrix {
	c := dense.New(m.R, b.Cols)
	m.MulDenseInto(c, b)
	return c
}

// MulDenseInto computes c = m·b, overwriting c. c must not alias b.
func (m *CSR) MulDenseInto(c, b *dense.Matrix) {
	if m.C != b.Rows || c.Rows != m.R || c.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: MulDense shape mismatch (%dx%d)·(%dx%d)→(%dx%d)",
			m.R, m.C, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	par.For(m.R, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			cols, vals := m.RowView(i)
			if len(cols) == 0 {
				dense.ZeroVec(ci)
				continue
			}
			// First source: scaled copy instead of zero-then-axpy, saving a
			// full pass over the row.
			dense.ScaledCopy(ci, vals[0], b.Row(int(cols[0])))
			for k := 1; k < len(cols); k++ {
				dense.Axpy(ci, vals[k], b.Row(int(cols[k])))
			}
		}
	})
}

// ToDense materialises the matrix densely (test/diagnostic use).
func (m *CSR) ToDense() *dense.Matrix {
	d := dense.New(m.R, m.C)
	for i := 0; i < m.R; i++ {
		cols, vals := m.RowView(i)
		row := d.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return d
}

// RowSums returns the vector of row sums; for Q and W every non-empty row
// sums to 1 (row-stochasticity), which tests assert.
func (m *CSR) RowSums() []float64 {
	s := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		_, vals := m.RowView(i)
		s[i] = dense.SumVec(vals)
	}
	return s
}
