package sparse

import "slices"

// Frontier is a sparse non-negative vector accumulator over a fixed
// dimension: a dense scratch array plus the list of touched indices. It is
// the substrate of the threshold-sieved approximate kernels — a propagation
// frontier that stays proportional to the mass actually in flight instead of
// the full node count, so a sweep costs O(Σ deg(frontier)) rather than O(m).
//
// The accumulator relies on every added value being strictly positive (all
// sieved kernels propagate non-negative mass): an index is considered
// touched exactly when its scratch entry is non-zero, so zero or negative
// contributions that could cancel an entry back to zero would corrupt the
// touched list. Add enforces this by ignoring v <= 0.
//
// A Frontier is not safe for concurrent use; kernels own their frontiers.
type Frontier struct {
	val []float64
	idx []int32
}

// NewFrontier returns an empty frontier of dimension n.
func NewFrontier(n int) *Frontier {
	return &Frontier{val: make([]float64, n)}
}

// Dim returns the dimension the frontier accumulates over.
func (f *Frontier) Dim() int { return len(f.val) }

// Len returns the number of non-zero entries.
func (f *Frontier) Len() int { return len(f.idx) }

// Reset clears the frontier in O(Len) — only touched entries are zeroed.
func (f *Frontier) Reset() {
	for _, i := range f.idx {
		f.val[i] = 0
	}
	f.idx = f.idx[:0]
}

// Add accumulates v into entry i. Non-positive v is ignored (see the type
// comment: the touched list tracks non-zero entries, which only stays
// correct under strictly positive contributions).
func (f *Frontier) Add(i int32, v float64) {
	if v <= 0 {
		return
	}
	if f.val[i] == 0 {
		f.idx = append(f.idx, i)
	}
	f.val[i] += v
}

// At returns entry i.
func (f *Frontier) At(i int32) float64 { return f.val[i] }

// Entries returns the touched indices and the dense scratch (views; the
// scratch is only valid at touched indices — do not modify either).
func (f *Frontier) Entries() ([]int32, []float64) { return f.idx, f.val }

// Sum returns the 1-norm of the frontier (entries are non-negative).
func (f *Frontier) Sum() float64 {
	var s float64
	for _, i := range f.idx {
		s += f.val[i]
	}
	return s
}

// AddScaled accumulates coef·src into f. coef must be positive.
func (f *Frontier) AddScaled(coef float64, src *Frontier) {
	for _, i := range src.idx {
		f.Add(i, coef*src.val[i])
	}
}

// AddScaledInto accumulates coef·f into the dense vector dst.
func (f *Frontier) AddScaledInto(dst []float64, coef float64) {
	for _, i := range f.idx {
		dst[i] += coef * f.val[i]
	}
}

// Dense scatters the frontier into a fresh dense vector, scaled by coef.
func (f *Frontier) Dense(coef float64) []float64 {
	out := make([]float64, len(f.val))
	for _, i := range f.idx {
		out[i] = coef * f.val[i]
	}
	return out
}

// Sieve removes every entry strictly below tau, compacting the touched list
// in place. It returns the total removed mass (the 1-norm of what was
// dropped) and the largest single removed entry — the two quantities the
// certified error bounds are built from: transpose-direction sweeps account
// dropped mass in the 1-norm, forward sweeps in the ∞-norm. tau <= 0 is a
// no-op.
func (f *Frontier) Sieve(tau float64) (dropped, maxDropped float64) {
	if tau <= 0 {
		return 0, 0
	}
	keep := f.idx[:0]
	for _, i := range f.idx {
		v := f.val[i]
		if v < tau {
			dropped += v
			if v > maxDropped {
				maxDropped = v
			}
			f.val[i] = 0
			continue
		}
		keep = append(keep, i)
	}
	f.idx = keep
	return dropped, maxDropped
}

// ScatterMulT accumulates mᵀ·src into dst, traversing only the rows of m in
// src's support: dst[c] += m[i,c]·src[i] for every touched i. With m = Q
// (the backward transition matrix) this is one sparse backward sweep; with
// m = Qᵀ materialised it computes Q·src, one sparse forward sweep. dst and
// src must be distinct frontiers of matching dimensions.
//
// The touched list of dst comes back sorted ascending. First-touch order is
// an artefact of src's traversal order, and everything downstream of a sweep
// (later sweeps, sieve compaction, dropped-mass summation) iterates the
// touched list — canonicalising it here is what makes the parallel sweep
// form (Sweeper.ScatterMulT), which discovers first touches per output
// range, bitwise-identical to this serial form, certificates included.
func (m *CSR) ScatterMulT(dst, src *Frontier) {
	if src.Dim() != m.R || dst.Dim() != m.C {
		panic("sparse: ScatterMulT dimension mismatch")
	}
	for _, i := range src.idx {
		xi := src.val[i]
		cols, vals := m.RowView(int(i))
		for k, c := range cols {
			dst.Add(c, vals[k]*xi)
		}
	}
	slices.Sort(dst.idx)
}
