package sparse

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dense"
)

// Crossover study for the panel dispatch threshold: the register-blocked
// panel form wins on narrow right-hand sides, the streaming axpy form on
// wide ones. Run with
//
//	go test ./internal/sparse -bench MulDenseWidth -benchtime 20x
func BenchmarkMulDenseWidth(b *testing.B) {
	g := dataset.RMATDefault(14, 8, 5) // 16k nodes
	m := BackwardTransition(g)
	for _, w := range []int{2, 4, 8, 16, 32, 64} {
		x := dense.New(m.C, w)
		for i := range x.Data {
			x.Data[i] = float64(i%97) / 97
		}
		c := dense.New(m.R, w)
		b.Run(fmt.Sprintf("panel-w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.mulDensePanelsInto(c, x)
			}
		})
		b.Run(fmt.Sprintf("axpy-w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.mulDenseAxpyInto(c, x)
			}
		})
	}
}
