package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dense"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		// Leave some exact zeros so MulVecTInto's skip path is exercised.
		if rng.Intn(4) == 0 {
			continue
		}
		x[i] = rng.Float64()
	}
	return x
}

// The unrolled scatter must be bitwise-identical to a rolled reference: the
// four targets inside one unrolled step are distinct columns of one row, so
// no accumulation reorders.
func TestMulVecTIntoMatchesReference(t *testing.T) {
	g := dataset.RMATDefault(8, 6, 21) // heavy-tailed rows: long and short
	m := BackwardTransition(g)
	x := randVec(m.R, 5)

	want := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		cols, vals := m.RowView(i)
		for k, c := range cols {
			want[c] += vals[k] * xi
		}
	}
	got := make([]float64, m.C)
	got[0] = 123 // MulVecTInto must overwrite stale contents
	m.MulVecTInto(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %g != %g", i, got[i], want[i])
		}
	}
	if out := m.MulVecT(x); len(out) != m.C {
		t.Fatalf("MulVecT length %d", len(out))
	} else {
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("MulVecT entry %d: %g != %g", i, out[i], want[i])
			}
		}
	}
}

// The fused Horner kernels must match the unfused sequence bitwise.
func TestFusedMulVecKernels(t *testing.T) {
	g := dataset.RMATDefault(7, 5, 8)
	m := ForwardTransition(g)
	x := randVec(m.C, 11)
	add := randVec(m.R, 12)

	plain := m.MulVec(x)
	wantAdd := make([]float64, m.R)
	wantScale := make([]float64, m.R)
	const scale = 0.4
	for i := range plain {
		wantAdd[i] = plain[i] + add[i]
		wantScale[i] = (plain[i] + add[i]) * scale
	}

	got := make([]float64, m.R)
	m.MulVecAddInto(got, x, add)
	for i := range wantAdd {
		if got[i] != wantAdd[i] {
			t.Fatalf("MulVecAddInto entry %d: %g != %g", i, got[i], wantAdd[i])
		}
	}
	m.MulVecAddScaleInto(got, x, add, scale)
	for i := range wantScale {
		if got[i] != wantScale[i] {
			t.Fatalf("MulVecAddScaleInto entry %d: %g != %g", i, got[i], wantScale[i])
		}
	}
}

// The panel SpMM must agree bitwise with the wide axpy form for every block
// width around the 4-column panel boundary and the dispatch threshold.
func TestMulDensePanelsMatchesAxpyForm(t *testing.T) {
	g := dataset.RMATDefault(7, 5, 33)
	m := BackwardTransition(g)
	rng := rand.New(rand.NewSource(2))
	for _, w := range []int{1, 2, 3, 4, 5, 7, 8, 63, 64} {
		b := dense.New(m.C, w)
		for i := range b.Data {
			b.Data[i] = rng.Float64()
		}
		got := dense.New(m.R, w)
		m.mulDensePanelsInto(got, b)

		want := dense.New(m.R, w)
		for i := 0; i < m.R; i++ {
			wi := want.Row(i)
			cols, vals := m.RowView(i)
			for k, c := range cols {
				dense.Axpy(wi, vals[k], b.Row(int(c)))
			}
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("w=%d: element %d: %g != %g", w, i, got.Data[i], want.Data[i])
			}
		}
		// And through the public dispatcher.
		got2 := dense.New(m.R, w)
		m.MulDenseInto(got2, b)
		for i := range want.Data {
			if got2.Data[i] != want.Data[i] {
				t.Fatalf("w=%d (dispatch): element %d: %g != %g", w, i, got2.Data[i], want.Data[i])
			}
		}
	}
}
