package sparse

import "repro/internal/obs"

// Certified sieving: the approximate kernels drop frontier entries below an
// adaptive threshold and account every drop against a caller-supplied error
// budget, so the final result carries a machine-checkable bound on how far
// it can be from the exact (truncated-series) answer.
//
// The accounting rests on two facts about the transition operators (rows of
// Q and W sum to at most 1, entries are non-negative):
//
//   - A transpose sweep (Qᵀ·x) never grows the 1-norm of non-negative mass,
//     and any single entry of a non-negative vector is at most its 1-norm.
//     Dropping mass δ (1-norm) before a chain of sweeps with total
//     downstream coefficient weight w therefore perturbs every output entry
//     by at most w·δ — SieveMass.
//   - A forward sweep (Q·x) never grows the ∞-norm: row sums <= 1 bound
//     (Q^a d)_i <= ‖d‖_∞ for the whole dropped vector at once. Dropping
//     entries each below τ before downstream weight w perturbs every output
//     entry by at most w·max(dropped) — SievePeak.
//
// Each sieve point receives an equal share of the remaining budget and
// spends only what it actually drops; unspent budget rolls forward, so the
// threshold adapts: early sweeps on tiny frontiers drop little and leave
// later, denser sweeps more room.

// CertSlack is the floating-point headroom every certificate includes: the
// sieved kernels accumulate in a different order than the dense exact
// kernels, and the dropped-mass bound is exact only in real arithmetic.
// Scores are bounded by 1 and per-entry accumulation chains are far below
// 10⁴ flops, so 10⁻¹² covers reordering noise with orders of magnitude to
// spare while remaining negligible against any useful tolerance.
const CertSlack = 1e-12

// MinCertTolerance is the smallest tolerance the sieved kernels accept:
// below it the budget cannot fund a single drop past CertSlack, so callers
// serve the exact kernels (with a zero certificate) instead.
const MinCertTolerance = 1e-9

// CertBudget tracks an adaptive sieve budget across a fixed number of sieve
// points and accumulates the certified error bound actually incurred.
type CertBudget struct {
	remaining float64
	points    int
	bound     float64

	// Trace, when non-nil, receives the certified spend of every sieve
	// point (obs.KernelTrace.AddSieveSpend) so query traces can show where
	// the error budget went. Nil costs one branch per sieve point.
	Trace *obs.KernelTrace
}

// NewCertBudget returns a budget that keeps the final certificate within
// tol across points sieve points: CertSlack is reserved up front and every
// drop is charged at its downstream weight.
func NewCertBudget(tol float64, points int) *CertBudget {
	b := tol - CertSlack
	if b < 0 {
		b = 0
	}
	return &CertBudget{remaining: b, points: points}
}

// allowance is this sieve point's share of the remaining budget.
func (cb *CertBudget) allowance() float64 {
	if cb.points <= 0 {
		return 0
	}
	return cb.remaining / float64(cb.points)
}

// SieveMass sieves f at a transpose-direction point with downstream weight
// w, charging the dropped 1-norm mass times w against the budget.
func (cb *CertBudget) SieveMass(f *Frontier, w float64) {
	allowed := cb.allowance()
	cb.points--
	if allowed <= 0 || w <= 0 || f.Len() == 0 {
		return
	}
	dropped, _ := f.Sieve(allowed / (w * float64(f.Len())))
	spent := w * dropped
	cb.bound += spent
	cb.remaining -= spent
	if cb.Trace != nil {
		cb.Trace.AddSieveSpend(spent)
	}
}

// SievePeak sieves f at a forward-direction point with downstream weight w,
// charging the largest dropped entry times w against the budget (row sums
// <= 1 bound the whole dropped vector's downstream effect by its peak).
func (cb *CertBudget) SievePeak(f *Frontier, w float64) {
	allowed := cb.allowance()
	cb.points--
	if allowed <= 0 || w <= 0 || f.Len() == 0 {
		return
	}
	_, maxDropped := f.Sieve(allowed / w)
	spent := w * maxDropped
	cb.bound += spent
	cb.remaining -= spent
	if cb.Trace != nil {
		cb.Trace.AddSieveSpend(spent)
	}
}

// Certificate returns the certified element-wise error bound: everything
// charged so far plus the floating-point slack.
func (cb *CertBudget) Certificate() float64 { return cb.bound + CertSlack }
