package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func randomPerm(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := make([]int32, n)
	for i, p := range rng.Perm(n) {
		perm[i] = int32(p)
	}
	return perm
}

func TestInversePerm(t *testing.T) {
	perm := randomPerm(257, 7)
	inv := InversePerm(perm)
	for i, p := range perm {
		if inv[p] != int32(i) {
			t.Fatalf("inv[perm[%d]] = %d, want %d", i, inv[p], i)
		}
	}
	for _, bad := range [][]int32{{0, 0}, {1, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("InversePerm(%v) did not panic", bad)
				}
			}()
			InversePerm(bad)
		}()
	}
}

func TestPermuteMatchesElementwise(t *testing.T) {
	g := dataset.RMATDefault(7, 4, 99) // 128 nodes, heavy-tailed
	m := BackwardTransition(g)
	perm := randomPerm(m.R, 13)
	p := Permute(m, perm)

	if p.R != m.R || p.C != m.C || p.NNZ() != m.NNZ() {
		t.Fatalf("shape/nnz changed: %dx%d nnz %d vs %dx%d nnz %d",
			p.R, p.C, p.NNZ(), m.R, m.C, m.NNZ())
	}
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if got, want := p.At(int(perm[i]), int(perm[j])), m.At(i, j); got != want {
				t.Fatalf("p[perm[%d],perm[%d]] = %g, want %g", i, j, got, want)
			}
		}
	}
	// CSR invariant: ascending columns within each row.
	for i := 0; i < p.R; i++ {
		cols, _ := p.RowView(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("row %d columns not ascending: %v", i, cols)
			}
		}
	}
}

// A permuted operator must commute with vector permutation: P·(M·x) equals
// (P·M·Pᵀ)·(P·x) up to float reassociation — with one entry per row pair the
// sums reorder, so compare within a tight tolerance.
func TestPermuteCommutesWithMatVec(t *testing.T) {
	g := dataset.RMATDefault(7, 4, 100)
	m := ForwardTransition(g)
	perm := randomPerm(m.R, 17)
	p := Permute(m, perm)

	rng := rand.New(rand.NewSource(4))
	x := make([]float64, m.C)
	for i := range x {
		x[i] = rng.Float64()
	}
	want := PermuteVec(m.MulVec(x), perm)
	got := p.MulVec(PermuteVec(x, perm))
	for i := range want {
		if d := got[i] - want[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("entry %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestAtBinarySearch(t *testing.T) {
	g := dataset.RMATDefault(6, 5, 3) // 64 nodes
	m := Adjacency(g)
	d := m.ToDense()
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if got, want := m.At(i, j), d.At(i, j); got != want {
				t.Fatalf("At(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
	// Boundary probes around a long row's first and last entries.
	for i := 0; i < m.R; i++ {
		cols, _ := m.RowView(i)
		if len(cols) == 0 {
			continue
		}
		if m.At(i, int(cols[0])) != 1 || m.At(i, int(cols[len(cols)-1])) != 1 {
			t.Fatalf("row %d: endpoint lookup failed", i)
		}
	}
}

func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace(8)
	a := ws.Take()
	a[3] = 42
	b := ws.Raw()
	b[0] = 7
	if ws.Dim() != 8 || len(a) != 8 || len(b) != 8 {
		t.Fatalf("bad dimensions")
	}
	ws.Reset()
	a2 := ws.Take()
	if &a2[0] != &a[0] {
		t.Fatalf("Take after Reset did not reuse the first buffer")
	}
	if a2[3] != 0 {
		t.Fatalf("Take returned a dirty buffer: %v", a2)
	}
	vecs := ws.TakeVecs(3)
	if len(vecs) != 3 {
		t.Fatalf("TakeVecs returned %d buffers", len(vecs))
	}
	for _, v := range vecs {
		for _, x := range v {
			if x != 0 {
				t.Fatalf("TakeVecs returned a dirty buffer")
			}
		}
	}
}
