package sparse

// Intra-query sweep parallelism. A Sweeper fans one sparse sweep out across
// a persistent pool of worker goroutines, row-range partitioned so every
// output element keeps its serial accumulation order — results are
// bitwise-identical to the serial kernels for any worker count (the
// conformance tests in parallel_test.go and simstar/parallel_test.go pin
// this for every measure).
//
// Why a persistent pool instead of par.For: the zero-alloc serving discipline.
// par.For closes over kernel state, and a closure that captures locals
// allocates — several times per sweep, dozens of sweeps per query. A Sweeper
// instead sends a flat task struct (a value: no boxing) over per-worker
// channels that live as long as the Sweeper, reuses one WaitGroup, and keeps
// per-worker scratch (frontier segments) across calls, so a warmed Sweeper
// adds zero allocations to a query.
//
// Ownership: a Sweeper is single-borrower — one query (goroutine) drives it
// at a time; the engine pools Sweepers the same way it pools Workspaces.
// Worker goroutines are parked on a channel receive between tasks and hold
// a reference only to their own channel, never to the Sweeper, so a pooled
// Sweeper that becomes garbage is collected normally: a runtime cleanup
// closes the channels and the workers exit.

import (
	"runtime"
	"slices"
	"sync"

	"repro/internal/dense"
	"repro/internal/par"
)

// sweepKind selects the kernel body a sweepTask runs.
type sweepKind uint8

const (
	sweepMulVec sweepKind = iota
	sweepMulVecAdd
	sweepMulVecAddScale
	sweepGather
	sweepDensePanels
	sweepDenseAxpy
)

// sweepTask is one row-range slice of a sweep. It is deliberately a flat
// struct of slice headers and pointers: sending it over a channel copies the
// value and allocates nothing.
type sweepTask struct {
	kind     sweepKind
	m        *CSR
	y, x, ad []float64
	scale    float64
	c, b     *dense.Matrix
	dst, src *Frontier
	seg      *[]int32
	lo, hi   int
	wg       *sync.WaitGroup
	pan      *par.PanicBox
}

// run executes the task's range. Every branch writes only to the task's own
// output rows (vector/dense kinds) or output columns (gather), so concurrent
// tasks of one sweep never touch the same element.
func (t *sweepTask) run() {
	switch t.kind {
	case sweepMulVec:
		t.m.mulVecRange(t.y, t.x, t.lo, t.hi)
	case sweepMulVecAdd:
		t.m.mulVecAddRange(t.y, t.x, t.ad, t.lo, t.hi)
	case sweepMulVecAddScale:
		t.m.mulVecAddScaleRange(t.y, t.x, t.ad, t.scale, t.lo, t.hi)
	case sweepGather:
		t.m.gatherMulTRange(t.dst, t.src, t.lo, t.hi, t.seg)
	case sweepDensePanels:
		t.m.mulDensePanelsRange(t.c, t.b, t.lo, t.hi)
	case sweepDenseAxpy:
		t.m.mulDenseAxpyRange(t.c, t.b, t.lo, t.hi)
	}
}

// sweepWorker parks on its channel between tasks. It exits when the channel
// closes (the owning Sweeper was collected).
func sweepWorker(ch chan sweepTask) {
	for t := range ch {
		runSweepTask(t)
	}
}

// runSweepTask runs one task with panic isolation: a panicking kernel range
// (a bug, or an injected fault) is recorded in the dispatching Sweeper's
// panic box and re-raised on the borrowing query's goroutine — a raw panic
// here would kill the process, since pool workers have no caller to unwind
// into. The WaitGroup is released on every path so the barrier never hangs.
func runSweepTask(t sweepTask) {
	defer func() {
		if r := recover(); r != nil {
			if t.pan == nil {
				panic(r)
			}
			t.pan.Record(r)
		}
		t.wg.Done()
	}()
	t.run()
}

// sweeperChans holds the worker channels behind a pointer shared between the
// Sweeper and its runtime cleanup. The cleanup must not reference the
// Sweeper itself (that would keep it reachable forever), so it closes the
// channels through this box; Configure grows the box in place and the
// cleanup sees whatever workers exist at collection time.
type sweeperChans struct {
	chs []chan sweepTask
}

// Sweeper drives row-range parallel sweeps over a persistent worker pool.
// Not safe for concurrent use: one borrower at a time (pool Sweepers like
// Workspaces). The zero value is not usable; call NewSweeper.
type Sweeper struct {
	box       *sweeperChans
	segs      [][]int32 // per-worker first-touch scratch for gather sweeps
	wg        sync.WaitGroup
	pan       par.PanicBox
	workers   int
	parSweeps int
}

// NewSweeper returns a Sweeper configured for the given worker count
// (clamped to ≥ 1; 1 means every call runs serially on the caller).
func NewSweeper(workers int) *Sweeper {
	s := &Sweeper{box: &sweeperChans{}}
	runtime.AddCleanup(s, func(b *sweeperChans) {
		for _, ch := range b.chs {
			close(ch)
		}
	}, s.box)
	s.Configure(workers)
	return s
}

// Configure sets the worker count, spawning any missing pool goroutines
// (workers already parked are kept across reconfigurations — shrinking is
// just not dispatching to them), and resets the parallel-sweep counter for
// the next borrower.
func (s *Sweeper) Configure(workers int) {
	if workers < 1 {
		workers = 1
	}
	s.workers = workers
	s.parSweeps = 0
	for len(s.box.chs) < workers-1 {
		ch := make(chan sweepTask, 1)
		s.box.chs = append(s.box.chs, ch)
		go sweepWorker(ch)
	}
	for len(s.segs) < workers {
		s.segs = append(s.segs, nil)
	}
}

// Workers returns the configured worker count.
func (s *Sweeper) Workers() int { return s.workers }

// TakeParSweeps returns the number of sweeps that actually fanned out since
// the last Configure/TakeParSweeps, and resets the counter. The engine folds
// it into the query's KernelTrace.
func (s *Sweeper) TakeParSweeps() int {
	n := s.parSweeps
	s.parSweeps = 0
	return n
}

// dispatch partitions [0, n) across the configured workers and runs t's
// kernel on each range: workers-1 ranges go to parked pool goroutines, the
// first range runs on the caller (mirroring par.For's final-chunk-inline
// shape). With one worker (or n too small to split) the whole range runs
// inline.
func (s *Sweeper) dispatch(t sweepTask, n int) {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			t.lo, t.hi = 0, n
			t.run()
		}
		return
	}
	t.wg = &s.wg
	t.pan = &s.pan
	chunk := (n + workers - 1) / workers
	s.wg.Add(workers - 1)
	lo := chunk
	for i := 0; i < workers-1; i++ {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		t2 := t
		t2.lo, t2.hi = lo, hi
		s.box.chs[i] <- t2
		lo = hi
	}
	t.lo, t.hi = 0, chunk
	s.runCallerChunk(t)
	s.parSweeps++
}

// runCallerChunk runs the caller's inline range of a fanned-out sweep. The
// deferred barrier runs even when the inline range panics — the workers are
// still writing into the sweep's buffers and must finish before the caller
// unwinds and recycles them — and a panic recorded by a worker is re-raised
// here, on the borrowing goroutine, where the serving layers recover it.
func (s *Sweeper) runCallerChunk(t sweepTask) {
	defer func() {
		s.wg.Wait()
		s.pan.Rethrow()
	}()
	t.run()
}

// MulVecInto is the parallel form of m.MulVecInto: y = m·x, row-range
// partitioned, bitwise-identical to the serial kernel.
func (s *Sweeper) MulVecInto(m *CSR, y, x []float64) {
	if len(x) != m.C || len(y) != m.R {
		panic("sparse: MulVecInto dimension mismatch")
	}
	s.dispatch(sweepTask{kind: sweepMulVec, m: m, y: y, x: x}, m.R)
}

// MulVecAddInto is the parallel form of m.MulVecAddInto: y = m·x + add.
func (s *Sweeper) MulVecAddInto(m *CSR, y, x, add []float64) {
	if len(x) != m.C || len(y) != m.R || len(add) != m.R {
		panic("sparse: MulVecAddInto dimension mismatch")
	}
	s.dispatch(sweepTask{kind: sweepMulVecAdd, m: m, y: y, x: x, ad: add}, m.R)
}

// MulVecAddScaleInto is the parallel form of m.MulVecAddScaleInto:
// y = (m·x + add)·scale.
func (s *Sweeper) MulVecAddScaleInto(m *CSR, y, x, add []float64, scale float64) {
	if len(x) != m.C || len(y) != m.R || len(add) != m.R {
		panic("sparse: MulVecAddScaleInto dimension mismatch")
	}
	s.dispatch(sweepTask{kind: sweepMulVecAddScale, m: m, y: y, x: x, ad: add, scale: scale}, m.R)
}

// MulDenseInto is the parallel form of m.MulDenseInto: c = m·b with the
// sweeper's worker count instead of par.For's default GOMAXPROCS fan-out.
// The panel/axpy crossover is the same as the serial dispatch, so the
// numbers are bitwise-identical for any width and worker count.
func (s *Sweeper) MulDenseInto(m *CSR, c, b *dense.Matrix) {
	if m.C != b.Rows || c.Rows != m.R || c.Cols != b.Cols {
		panic("sparse: MulDense shape mismatch")
	}
	kind := sweepDenseAxpy
	if b.Cols <= PanelMaxCols {
		kind = sweepDensePanels
	}
	s.dispatch(sweepTask{kind: kind, m: m, c: c, b: b}, m.R)
}

// parallelGatherMin is the src support size below which Sweeper.ScatterMulT
// falls back to the serial scatter: each worker of the parallel form scans
// the full support, so a tiny frontier costs more to fan out than to sweep.
const parallelGatherMin = 32

// ScatterMulT is the parallel form of m.ScatterMulT: dst += mᵀ·src over
// src's support, partitioned by output column range. Each worker scans the
// whole support in order and keeps only the products landing in its range,
// located by binary search over each row's ascending column indices — so per
// output element the accumulation order is exactly the serial order, and
// the positive-mass skip matches Frontier.Add. First touches are recorded
// per worker and concatenated after the barrier; both forms sort the
// touched list (see the serial kernel), so the result is bitwise-identical,
// idx included.
//
// dst must be empty (just Reset, as every kernel call site does): first-touch
// detection reads dst's scratch zeros. A non-empty dst falls back to serial.
func (s *Sweeper) ScatterMulT(m *CSR, dst, src *Frontier) {
	workers := s.workers
	if workers > m.C {
		workers = m.C
	}
	if workers <= 1 || src.Len() < parallelGatherMin || dst.Len() != 0 {
		m.ScatterMulT(dst, src)
		return
	}
	if src.Dim() != m.R || dst.Dim() != m.C {
		panic("sparse: ScatterMulT dimension mismatch")
	}
	t := sweepTask{kind: sweepGather, m: m, dst: dst, src: src, wg: &s.wg, pan: &s.pan}
	chunk := (m.C + workers - 1) / workers
	s.wg.Add(workers - 1)
	lo := chunk
	for i := 0; i < workers-1; i++ {
		hi := lo + chunk
		if hi > m.C {
			hi = m.C
		}
		t2 := t
		t2.lo, t2.hi = lo, hi
		t2.seg = &s.segs[i+1]
		s.box.chs[i] <- t2
		lo = hi
	}
	t.lo, t.hi = 0, chunk
	t.seg = &s.segs[0]
	s.runCallerChunk(t)
	s.parSweeps++
	for i := 0; i < workers; i++ {
		dst.idx = append(dst.idx, s.segs[i]...)
	}
	slices.Sort(dst.idx)
}

// gatherMulTRange accumulates the output-column range [lo, hi) of mᵀ·src
// into dst's scratch, recording first-touched columns into seg (reused
// across calls; reset here). It scans src's support in order — the serial
// accumulation order per output element — and binary-searches each row for
// the start of its slice of the range.
func (m *CSR) gatherMulTRange(dst, src *Frontier, lo, hi int, seg *[]int32) {
	sg := (*seg)[:0]
	val := dst.val
	for _, i := range src.idx {
		xi := src.val[i]
		cols, vals := m.RowView(int(i))
		a, b := 0, len(cols)
		for a < b {
			mid := int(uint(a+b) >> 1)
			if int(cols[mid]) < lo {
				a = mid + 1
			} else {
				b = mid
			}
		}
		for k := a; k < len(cols) && int(cols[k]) < hi; k++ {
			v := vals[k] * xi
			if v <= 0 {
				continue
			}
			c := cols[k]
			if val[c] == 0 {
				sg = append(sg, c)
			}
			val[c] += v
		}
	}
	*seg = sg
}
