package sparse

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// mutate applies a small random edit batch and returns the new graph plus
// its delta.
func mutate(t *testing.T, g *graph.Graph, rng *rand.Rand, edits int) (*graph.Graph, *graph.EditDelta) {
	t.Helper()
	ops := make([]graph.EdgeOp, 0, edits)
	for i := 0; i < edits; i++ {
		ops = append(ops, graph.EdgeOp{
			U:      rng.Intn(g.N() + 2),
			V:      rng.Intn(g.N() + 2),
			Delete: rng.Intn(2) == 0,
		})
	}
	ng, delta, err := g.ApplyEdits(ops)
	if err != nil {
		t.Fatal(err)
	}
	return ng, delta
}

// assertCSRBitwiseEqual requires exact equality, values included — the
// contract that lets the engine serve incremental epochs with scores
// indistinguishable from a from-scratch build.
func assertCSRBitwiseEqual(t *testing.T, got, want *CSR) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("shape %dx%d, want %dx%d", got.R, got.C, want.R, want.C)
	}
	if !reflect.DeepEqual(got.RowOff, want.RowOff) {
		t.Fatalf("RowOff = %v, want %v", got.RowOff, want.RowOff)
	}
	if !reflect.DeepEqual(got.ColIdx, want.ColIdx) {
		t.Fatalf("ColIdx = %v, want %v", got.ColIdx, want.ColIdx)
	}
	if !reflect.DeepEqual(got.Val, want.Val) {
		t.Fatalf("Val = %v, want %v", got.Val, want.Val)
	}
}

func TestUpdateTransitionsMatchFullBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		g := randomGraph(rng, 20+rng.Intn(40), 150)
		q, w := BackwardTransition(g), ForwardTransition(g)
		ng, delta := mutate(t, g, rng, 1+rng.Intn(12))
		assertCSRBitwiseEqual(t, UpdateBackwardTransition(q, ng, delta.DirtyIn), BackwardTransition(ng))
		assertCSRBitwiseEqual(t, UpdateForwardTransition(w, ng, delta.DirtyOut), ForwardTransition(ng))
	}
}

func TestUpdateTransitionEmptyDelta(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), 30, 100)
	q := BackwardTransition(g)
	got := UpdateBackwardTransition(q, g, nil)
	assertCSRBitwiseEqual(t, got, q)
}

func TestUpdateTransitionGrowth(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	q, w := BackwardTransition(g), ForwardTransition(g)
	// Edge to a brand-new node 5 grows the matrix; node 4 stays edgeless.
	ng, delta, err := g.ApplyEdits([]graph.EdgeOp{{U: 2, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	nq := UpdateBackwardTransition(q, ng, delta.DirtyIn)
	nw := UpdateForwardTransition(w, ng, delta.DirtyOut)
	assertCSRBitwiseEqual(t, nq, BackwardTransition(ng))
	assertCSRBitwiseEqual(t, nw, ForwardTransition(ng))
	if nq.R != 6 || nw.R != 6 {
		t.Fatalf("grown shape %d/%d, want 6", nq.R, nw.R)
	}
}

// The incremental update must beat the from-scratch build on a low-churn
// batch — the CI bench smoke runs this with -benchtime=1x so a regression in
// the splice path fails loudly.
func BenchmarkTransitionRefresh(b *testing.B) {
	g := randomGraph(rand.New(rand.NewSource(42)), 20000, 160000)
	rng := rand.New(rand.NewSource(43))
	ops := make([]graph.EdgeOp, 0, 1600) // ~1% of edges
	for i := 0; i < 1600; i++ {
		ops = append(ops, graph.EdgeOp{U: rng.Intn(g.N()), V: rng.Intn(g.N()), Delete: i%2 == 0})
	}
	ng, delta, err := g.ApplyEdits(ops)
	if err != nil {
		b.Fatal(err)
	}
	q := BackwardTransition(g)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			UpdateBackwardTransition(q, ng, delta.DirtyIn)
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BackwardTransition(ng)
		}
	})
}
