package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/graph"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestBackwardTransition(t *testing.T) {
	// 0→2, 1→2, 2→0: I(2) = {0,1} so Q row 2 = [1/2, 1/2, 0].
	g := graph.FromEdges(3, [][2]int{{0, 2}, {1, 2}, {2, 0}})
	q := BackwardTransition(g)
	if q.At(2, 0) != 0.5 || q.At(2, 1) != 0.5 || q.At(2, 2) != 0 {
		t.Fatalf("Q row 2 wrong: %v %v %v", q.At(2, 0), q.At(2, 1), q.At(2, 2))
	}
	if q.At(0, 2) != 1 { // I(0) = {2}
		t.Fatal("Q row 0 wrong")
	}
	if got := q.At(1, 0); got != 0 { // I(1) = ∅ → empty row
		t.Fatalf("Q row 1 should be empty, got %v", got)
	}
}

func TestForwardTransition(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	w := ForwardTransition(g)
	if w.At(0, 1) != 0.5 || w.At(0, 2) != 0.5 {
		t.Fatal("W row 0 wrong")
	}
	if w.At(1, 2) != 1 {
		t.Fatal("W row 1 wrong")
	}
	if sums := w.RowSums(); sums[2] != 0 { // sink
		t.Fatal("sink row should sum to 0")
	}
}

func TestRowStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 200)
	for _, m := range []*CSR{BackwardTransition(g), ForwardTransition(g)} {
		for i, s := range m.RowSums() {
			empty := m.RowOff[i] == m.RowOff[i+1]
			if empty && s != 0 {
				t.Fatalf("empty row %d sums to %g", i, s)
			}
			if !empty && math.Abs(s-1) > 1e-12 {
				t.Fatalf("row %d sums to %g, want 1", i, s)
			}
		}
	}
}

func TestAdjacencyMatchesGraph(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {3, 0}})
	a := Adjacency(g)
	if a.NNZ() != g.M() {
		t.Fatalf("NNZ = %d, want %d", a.NNZ(), g.M())
	}
	g.Edges(func(u, v int) {
		if a.At(u, v) != 1 {
			t.Fatalf("A[%d,%d] != 1", u, v)
		}
	})
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 25, 120)
	m := BackwardTransition(g)
	mt := m.Transpose()
	if mt.Transpose().ToDense().MaxAbsDiff(m.ToDense()) != 0 {
		t.Fatal("(Mᵀ)ᵀ != M")
	}
	md, mtd := m.ToDense(), mt.ToDense()
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if md.At(i, j) != mtd.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulDenseAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 30, 150)
	q := BackwardTransition(g)
	b := dense.New(30, 17)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := q.MulDense(b)
	want := dense.Mul(q.ToDense(), b)
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("MulDense differs by %g", got.MaxAbsDiff(want))
	}
}

func TestMulVecVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 20, 80)
	q := BackwardTransition(g)
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := q.MulVec(x)
	want := q.ToDense().MulVec(x)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	yt := q.MulVecT(x)
	wantT := q.ToDense().Transpose().MulVec(x)
	for i := range yt {
		if math.Abs(yt[i]-wantT[i]) > 1e-12 {
			t.Fatalf("MulVecT[%d] = %g, want %g", i, yt[i], wantT[i])
		}
	}
}

// Property: MulVecT(x) == Transpose().MulVec(x) on random graphs.
func TestQuickTransposeMulVec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(4*n))
		m := ForwardTransition(g)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a := m.MulVecT(x)
		bv := m.Transpose().MulVec(x)
		for i := range a {
			if math.Abs(a[i]-bv[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Q has exactly one entry per in-edge and NNZ = M.
func TestQuickNNZ(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(5*n))
		return BackwardTransition(g).NNZ() == g.M() && ForwardTransition(g).NNZ() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 1000, 8000)
	q := BackwardTransition(g)
	x := dense.New(1000, 1000)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MulDense(x)
	}
}
