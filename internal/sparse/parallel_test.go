package sparse

import (
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"repro/internal/dense"
)

// workerCounts are the fan-outs every parallel-vs-serial test sweeps,
// including a count above GOMAXPROCS and a prime that never divides the
// dimensions evenly.
func workerCounts() []int {
	return []int{1, 2, 3, 7, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)}
}

func densityVec(rng *rand.Rand, n int, density float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		if rng.Float64() < density {
			x[i] = rng.Float64()
		}
	}
	return x
}

// TestSweeperVectorKernelsBitwise pins that the Sweeper's row-range forms of
// the three fused vector kernels reproduce the serial kernels bitwise for
// every worker count.
func TestSweeperVectorKernelsBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 301, 2400)
	for _, m := range []*CSR{BackwardTransition(g), ForwardTransition(g)} {
		x := densityVec(rng, m.C, 0.7)
		add := densityVec(rng, m.R, 0.9)
		wantMul := make([]float64, m.R)
		m.MulVecInto(wantMul, x)
		wantAdd := make([]float64, m.R)
		m.MulVecAddInto(wantAdd, x, add)
		wantAddScale := make([]float64, m.R)
		m.MulVecAddScaleInto(wantAddScale, x, add, 0.4)
		for _, w := range workerCounts() {
			sw := NewSweeper(w)
			got := make([]float64, m.R)
			sw.MulVecInto(m, got, x)
			if !slices.Equal(got, wantMul) {
				t.Fatalf("workers=%d: MulVecInto differs from serial", w)
			}
			sw.MulVecAddInto(m, got, x, add)
			if !slices.Equal(got, wantAdd) {
				t.Fatalf("workers=%d: MulVecAddInto differs from serial", w)
			}
			sw.MulVecAddScaleInto(m, got, x, add, 0.4)
			if !slices.Equal(got, wantAddScale) {
				t.Fatalf("workers=%d: MulVecAddScaleInto differs from serial", w)
			}
			if w > 1 && sw.TakeParSweeps() == 0 {
				t.Fatalf("workers=%d: no sweep fanned out", w)
			}
		}
	}
}

// TestSweeperMulVecMatchesTransposeScatter pins the substitution the exact
// kernels rely on: a (parallel) gather over the materialised transpose is
// bitwise-identical to the serial scatter MulVecTInto, zero-skip and all.
func TestSweeperMulVecMatchesTransposeScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 257, 2100)
	for _, m := range []*CSR{BackwardTransition(g), ForwardTransition(g)} {
		mt := m.Transpose()
		x := densityVec(rng, m.R, 0.5) // sparse x exercises the scatter's zero-skip
		want := make([]float64, m.C)
		m.MulVecTInto(want, x)
		for _, w := range workerCounts() {
			sw := NewSweeper(w)
			got := make([]float64, m.C)
			sw.MulVecInto(mt, got, x)
			if !slices.Equal(got, want) {
				t.Fatalf("workers=%d: gather over transpose differs from serial scatter", w)
			}
		}
	}
}

// TestSweeperMulDenseBitwise pins the dense SpMM on both sides of the
// panel/axpy crossover.
func TestSweeperMulDenseBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 211, 1700)
	m := BackwardTransition(g)
	for _, cols := range []int{1, 4, PanelMaxCols, PanelMaxCols + 1, 64} {
		b := dense.New(m.C, cols)
		for i := 0; i < m.C; i++ {
			row := b.Row(i)
			for j := range row {
				row[j] = rng.Float64()
			}
		}
		want := dense.New(m.R, cols)
		m.MulDenseInto(want, b)
		for _, w := range workerCounts() {
			sw := NewSweeper(w)
			got := dense.New(m.R, cols)
			sw.MulDenseInto(m, got, b)
			if !slices.Equal(got.Data, want.Data) {
				t.Fatalf("cols=%d workers=%d: MulDenseInto differs from serial", cols, w)
			}
		}
	}
}

// TestSweeperScatterMulTBitwise pins the parallel frontier sweep: values,
// touched list (sorted by both forms) and the positive-mass skip must match
// the serial scatter bitwise for every worker count, on supports both above
// and below the parallel gate.
func TestSweeperScatterMulTBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 400, 3600)
	m := BackwardTransition(g)
	for _, support := range []int{parallelGatherMin / 2, 3 * parallelGatherMin} {
		src := NewFrontier(m.R)
		for len(src.idx) < support {
			src.Add(int32(rng.Intn(m.R)), rng.Float64()+0.01)
		}
		want := NewFrontier(m.C)
		m.ScatterMulT(want, src)
		for _, w := range workerCounts() {
			sw := NewSweeper(w)
			got := NewFrontier(m.C)
			sw.ScatterMulT(m, got, src)
			if !slices.Equal(got.idx, want.idx) {
				t.Fatalf("support=%d workers=%d: touched lists differ (%d vs %d entries)",
					support, w, len(got.idx), len(want.idx))
			}
			for _, i := range want.idx {
				if got.val[i] != want.val[i] {
					t.Fatalf("support=%d workers=%d: value at %d differs: %g vs %g",
						support, w, i, got.val[i], want.val[i])
				}
			}
			// Repeated sweeps through the same sweeper must reuse the
			// per-worker segments, not accumulate stale first touches.
			got.Reset()
			sw.ScatterMulT(m, got, src)
			if !slices.Equal(got.idx, want.idx) {
				t.Fatalf("support=%d workers=%d: second sweep differs", support, w)
			}
		}
	}
}

// TestScatterMulTSortsTouched pins the canonical ordering contract the
// parallel form depends on.
func TestScatterMulTSortsTouched(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomGraph(rng, 100, 700)
	m := BackwardTransition(g)
	src := NewFrontier(m.R)
	// Touch in descending order so first-touch order alone would come out
	// unsorted.
	for i := m.R - 1; i >= 0; i -= 3 {
		src.Add(int32(i), 0.5)
	}
	dst := NewFrontier(m.C)
	m.ScatterMulT(dst, src)
	if !slices.IsSorted(dst.idx) {
		t.Fatal("serial ScatterMulT left the touched list unsorted")
	}
}

// TestSweeperConfigureReuse pins pool-borrow semantics: growing the worker
// count spawns workers, shrinking keeps them parked, and the ParSweeps
// counter resets per Configure.
func TestSweeperConfigureReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 128, 900)
	m := BackwardTransition(g)
	x := densityVec(rng, m.C, 1)
	y := make([]float64, m.R)
	want := make([]float64, m.R)
	m.MulVecInto(want, x)
	sw := NewSweeper(1)
	for _, w := range []int{4, 2, 8, 1, 3} {
		sw.Configure(w)
		if sw.Workers() != max(w, 1) {
			t.Fatalf("Workers() = %d after Configure(%d)", sw.Workers(), w)
		}
		sw.MulVecInto(m, y, x)
		if !slices.Equal(y, want) {
			t.Fatalf("Configure(%d): result differs", w)
		}
		ps := sw.TakeParSweeps()
		if w > 1 && ps != 1 {
			t.Fatalf("Configure(%d): ParSweeps = %d, want 1", w, ps)
		}
		if sw.TakeParSweeps() != 0 {
			t.Fatal("TakeParSweeps did not reset")
		}
	}
}
