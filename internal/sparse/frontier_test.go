package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestFrontierAddResetSum(t *testing.T) {
	f := NewFrontier(10)
	f.Add(3, 0.5)
	f.Add(3, 0.25)
	f.Add(7, 1)
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	if got := f.At(3); got != 0.75 {
		t.Fatalf("At(3) = %g, want 0.75", got)
	}
	if got := f.Sum(); got != 1.75 {
		t.Fatalf("Sum = %g, want 1.75", got)
	}
	// Non-positive contributions are ignored, keeping the touched list honest.
	f.Add(5, 0)
	f.Add(5, -1)
	if f.Len() != 2 || f.At(5) != 0 {
		t.Fatalf("non-positive Add leaked: Len=%d At(5)=%g", f.Len(), f.At(5))
	}
	f.Reset()
	if f.Len() != 0 || f.At(3) != 0 || f.At(7) != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestFrontierSieve(t *testing.T) {
	f := NewFrontier(6)
	f.Add(0, 0.5)
	f.Add(1, 1e-5)
	f.Add(2, 2e-5)
	f.Add(3, 0.1)
	dropped, maxDropped := f.Sieve(1e-4)
	if want := 3e-5; math.Abs(dropped-want) > 1e-18 {
		t.Fatalf("dropped = %g, want %g", dropped, want)
	}
	if want := 2e-5; maxDropped != want {
		t.Fatalf("maxDropped = %g, want %g", maxDropped, want)
	}
	if f.Len() != 2 || f.At(1) != 0 || f.At(2) != 0 {
		t.Fatalf("sieved entries not removed: Len=%d", f.Len())
	}
	if f.At(0) != 0.5 || f.At(3) != 0.1 {
		t.Fatal("surviving entries perturbed")
	}
	// tau <= 0 is a no-op.
	if d, m := f.Sieve(0); d != 0 || m != 0 {
		t.Fatalf("Sieve(0) dropped %g/%g", d, m)
	}
}

// ScatterMulT over a frontier must agree with the dense MulVecT on the
// scattered vector.
func TestScatterMulTMatchesMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 3*n)
		q := BackwardTransition(g)
		src := NewFrontier(n)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v := rng.Float64()
				if v > 0 {
					src.Add(int32(i), v)
					x[i] = src.At(int32(i))
				}
			}
		}
		dst := NewFrontier(n)
		q.ScatterMulT(dst, src)
		want := q.MulVecT(x)
		for i := 0; i < n; i++ {
			if got := dst.At(int32(i)); math.Abs(got-want[i]) > 1e-12 {
				t.Fatalf("trial %d: entry %d = %g, want %g", trial, i, got, want[i])
			}
		}
		// The touched list must be exact: no phantom entries.
		idx, vals := dst.Entries()
		for _, i := range idx {
			if vals[i] == 0 {
				t.Fatalf("trial %d: phantom touched index %d", trial, i)
			}
		}
	}
}

func TestScatterMulTDimensionMismatchPanics(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 4, 6)
	q := BackwardTransition(g)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on dimension mismatch")
		}
	}()
	q.ScatterMulT(NewFrontier(4), NewFrontier(5))
}
