package sparse

// Node relabeling. CSR sweep cost is dominated by the x[col] gathers and
// y[col] scatters, whose cache behaviour depends entirely on how far column
// indices stray from the current row — a property of the node *numbering*,
// not the graph. Permute applies a relabeling perm (computed once, at
// preprocessing time, e.g. by graph.RCMOrder or graph.DegreeOrder) to a
// square operator so that every subsequent sweep enjoys the improved
// locality for free.

// InversePerm returns the inverse of a permutation: inv[perm[i]] = i. It
// panics if perm is not a bijection on [0, len(perm)).
func InversePerm(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for i := range inv {
		inv[i] = -1
	}
	for i, p := range perm {
		if p < 0 || int(p) >= len(perm) || inv[p] != -1 {
			panic("sparse: InversePerm of a non-bijective mapping")
		}
		inv[p] = int32(i)
	}
	return inv
}

// Permute returns the symmetric relabeling of a square matrix m under perm
// (perm[old] = new): out[perm[i], perm[j]] = m[i, j], i.e. P·M·Pᵀ. Row
// columns stay in ascending order. The build is two counting passes — a
// relabelled transpose followed by a plain transpose — so no per-row sorting
// is needed.
func Permute(m *CSR, perm []int32) *CSR {
	if m.R != m.C {
		panic("sparse: Permute requires a square matrix")
	}
	if len(perm) != m.R {
		panic("sparse: Permute dimension mismatch")
	}
	return transposeRelabel(m, perm).Transpose()
}

// transposeRelabel returns t with t[perm[j], perm[i]] = m[i, j] — the
// relabelled transpose (P·M·Pᵀ)ᵀ. Iterating source rows in new-id order
// makes every output row's columns ascend, keeping the CSR invariant without
// sorting.
func transposeRelabel(m *CSR, perm []int32) *CSR {
	inv := InversePerm(perm)
	n := m.R
	t := &CSR{R: n, C: n, RowOff: make([]int32, n+1)}
	t.ColIdx = make([]int32, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	for _, c := range m.ColIdx {
		t.RowOff[perm[c]+1]++
	}
	for i := 0; i < n; i++ {
		t.RowOff[i+1] += t.RowOff[i]
	}
	pos := make([]int32, n)
	for ni := int32(0); int(ni) < n; ni++ {
		oi := inv[ni]
		cols, vals := m.RowView(int(oi))
		for k, c := range cols {
			r := perm[c]
			at := t.RowOff[r] + pos[r]
			t.ColIdx[at] = ni
			t.Val[at] = vals[k]
			pos[r]++
		}
	}
	return t
}

// PermuteVec gathers a vector from old-id order into new-id order:
// out[perm[i]] = x[i].
func PermuteVec(x []float64, perm []int32) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[perm[i]] = v
	}
	return out
}
