package sparse

import (
	"repro/internal/graph"
)

// Incremental transition refresh. A batch of edge edits dirties only the
// rows of nodes whose neighbourhoods changed — for Q the in-rows, for W the
// out-rows — so the new transition matrix can reuse every clean row of the
// old one with bulk copies and recompute only the dirty rows from the new
// graph. The output is bitwise-identical to a from-scratch build on g: a
// recomputed row derives its 1/deg weights by the same division, and a
// copied row carries the exact bits it already had.

// UpdateBackwardTransition returns BackwardTransition(g) built incrementally
// from old, the backward transition of the pre-edit graph. dirtyIn must list
// (sorted ascending) every node whose in-neighbourhood differs between the
// two graphs; nodes at or past old's row count are implicitly new and must
// appear in dirtyIn only if they have in-links.
func UpdateBackwardTransition(old *CSR, g *graph.Graph, dirtyIn []int32) *CSR {
	return updateTransition(old, g.N(), dirtyIn, g.In)
}

// UpdateForwardTransition returns ForwardTransition(g) built incrementally
// from old, the forward transition of the pre-edit graph. dirtyOut must list
// (sorted ascending) every node whose out-neighbourhood differs between the
// two graphs.
func UpdateForwardTransition(old *CSR, g *graph.Graph, dirtyOut []int32) *CSR {
	return updateTransition(old, g.N(), dirtyOut, g.Out)
}

// updateTransition splices a row-normalised transition matrix: dirty rows are
// recomputed from row(i) with weight 1/len, maximal runs of clean rows are
// copied wholesale from old. Rows in [old.R, n) that are not dirty are empty
// (new nodes without edges in this direction).
func updateTransition(old *CSR, n int, dirty []int32, row func(int) []int32) *CSR {
	m := &CSR{R: n, C: n, RowOff: make([]int32, n+1)}
	// Pass 1: row lengths → offsets.
	total := 0
	d := 0
	for i := 0; i < n; i++ {
		if d < len(dirty) && int(dirty[d]) == i {
			total += len(row(i))
			d++
		} else if i < old.R {
			total += int(old.RowOff[i+1] - old.RowOff[i])
		}
		m.RowOff[i+1] = int32(total)
	}
	m.ColIdx = make([]int32, total)
	m.Val = make([]float64, total)
	// Pass 2: fill. Clean runs between consecutive dirty rows are contiguous
	// in both the old and new arrays, so each run is two bulk copies.
	prev := 0
	flushClean := func(hi int) {
		if prev >= hi || prev >= old.R {
			return
		}
		top := hi
		if top > old.R {
			top = old.R
		}
		copy(m.ColIdx[m.RowOff[prev]:m.RowOff[top]], old.ColIdx[old.RowOff[prev]:old.RowOff[top]])
		copy(m.Val[m.RowOff[prev]:m.RowOff[top]], old.Val[old.RowOff[prev]:old.RowOff[top]])
	}
	for _, di := range dirty {
		i := int(di)
		flushClean(i)
		nbrs := row(i)
		if len(nbrs) > 0 {
			w := 1 / float64(len(nbrs))
			at := m.RowOff[i]
			for k, j := range nbrs {
				m.ColIdx[at+int32(k)] = j
				m.Val[at+int32(k)] = w
			}
		}
		prev = i + 1
	}
	flushClean(n)
	return m
}
