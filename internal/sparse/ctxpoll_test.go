package sparse

import (
	"context"
	"testing"
)

// countingCtx counts Err() consultations.
type countingCtx struct {
	context.Context
	calls int
}

func (c *countingCtx) Err() error {
	c.calls++
	return c.Context.Err()
}

func TestCtxPollAmortises(t *testing.T) {
	cc := &countingCtx{Context: context.Background()}
	p := PollEvery(cc, 8)
	for i := 0; i < 64; i++ {
		if err := p.Check(); err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
	}
	if cc.calls != 8 {
		t.Fatalf("64 checks at stride 8 consulted ctx %d times, want 8", cc.calls)
	}
}

func TestCtxPollStickyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := PollEvery(ctx, 4)
	if err := p.Check(); err != nil {
		t.Fatalf("pre-cancel check: %v", err)
	}
	cancel()
	// The cancellation lands within one stride...
	sawErr := false
	for i := 0; i < 4; i++ {
		if p.Check() != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("cancellation not observed within one stride")
	}
	// ...and is sticky from then on, without re-consulting ctx.
	for i := 0; i < 16; i++ {
		if p.Check() == nil {
			t.Fatal("sticky error was dropped")
		}
	}
}

func TestCtxPollDefaultStride(t *testing.T) {
	cc := &countingCtx{Context: context.Background()}
	p := PollEvery(cc, 0)
	for i := 0; i < DefaultPollStride*3; i++ {
		p.Check()
	}
	if cc.calls != 3 {
		t.Fatalf("default stride consulted ctx %d times over 3 strides, want 3", cc.calls)
	}
}
