package sparse

import "context"

// DefaultPollStride is the Check interval PollEvery uses when the caller
// passes a non-positive stride: frequent enough to bound cancellation
// latency to a handful of loop iterations, sparse enough that the poll is
// one counter increment on the iterations in between.
const DefaultPollStride = 32

// CtxPoll amortises context-cancellation checks across tight kernel loops.
// ctx.Err() behind a deadline is an atomic load plus a clock read — cheap,
// but not free at per-iteration kernel frequencies — so the fold and walk
// loops consult it through a poller: Check reads ctx.Err() on the first call
// and every stride-th call after that, and answers from a sticky cached
// error otherwise. Once cancellation is observed every later Check reports
// it, so a kernel's early-return stays monotone.
//
// The poller is a plain value holding the loop's context: deriving it from
// ctx is what carries the cancellation contract into loops that reference
// only the poller (the ctxflow analyzer tracks exactly this shape). Not safe
// for concurrent use; each goroutine's loop builds its own.
type CtxPoll struct {
	ctx    context.Context
	err    error
	stride uint32
	n      uint32
}

// PollEvery returns a poller over ctx that consults ctx.Err() on the first
// Check and every stride-th Check after that. A non-positive stride selects
// DefaultPollStride.
func PollEvery(ctx context.Context, stride int) CtxPoll {
	if stride <= 0 {
		stride = DefaultPollStride
	}
	return CtxPoll{ctx: ctx, stride: uint32(stride)}
}

// Check reports the context's cancellation state, consulting ctx.Err() only
// on the amortisation schedule. The returned error is sticky: after the
// first non-nil observation every call returns it without touching ctx.
func (p *CtxPoll) Check() error {
	if p.err != nil {
		return p.err
	}
	if p.n == 0 {
		p.err = p.ctx.Err()
	}
	p.n++
	if p.n == p.stride {
		p.n = 0
	}
	return p.err
}
