package sparse

import (
	"strings"
	"testing"
)

// TestSweeperWorkerPanicReachesBorrower pins the recover-and-quarantine
// contract of the persistent pool: a panic inside a pool worker's row range
// must re-raise on the goroutine that borrowed the Sweeper — before this
// fix it was an unrecovered goroutine panic, i.e. process death — and the
// Sweeper must stay usable afterwards (its WaitGroup and panic box fully
// drained), since the engine pools Sweepers across queries.
func TestSweeperWorkerPanicReachesBorrower(t *testing.T) {
	s := NewSweeper(4)
	const n = 256
	// A task with a nil CSR panics in every chunk that runs it — spawned
	// worker chunks and the caller's inline chunk alike.
	bad := sweepTask{kind: sweepMulVec, m: nil, y: make([]float64, n), x: make([]float64, n)}

	for round := 0; round < 3; round++ {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("round %d: dispatch returned normally, want a re-raised panic", round)
				}
			}()
			s.dispatch(bad, n)
		}()
	}

	// The pool survives: a clean sweep after the panics is bitwise-correct.
	m := &CSR{R: n, C: n, RowOff: make([]int32, n+1), ColIdx: make([]int32, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.RowOff[i+1] = int32(i + 1)
		m.ColIdx[i] = int32(i)
		m.Val[i] = 1
	}
	y, x := make([]float64, n), make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	s.MulVecInto(m, y, x)
	for i := range y {
		if y[i] != x[i] {
			t.Fatalf("post-panic sweep wrong at %d: got %g want %g", i, y[i], x[i])
		}
	}
}

// TestSweepTaskWithoutBoxReRaises covers the defensive branch: a task
// dispatched with no panic box (never the case for Sweeper-driven sweeps)
// must not swallow a panic silently.
func TestSweepTaskWithoutBoxReRaises(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		if s, ok := r.(string); ok && strings.Contains(s, "swallowed") {
			t.Fatal("panic was swallowed")
		}
	}()
	var wgHolder Sweeper
	task := sweepTask{kind: sweepMulVec, m: nil, y: []float64{0}, x: []float64{0}, wg: &wgHolder.wg, lo: 0, hi: 1}
	wgHolder.wg.Add(1)
	runSweepTask(task)
	panic("swallowed")
}
