package sparse

import "repro/internal/obs"

// Workspace is a reusable arena of fixed-dimension dense vectors for the
// iterative single-source kernels. The exact kernels used to allocate (and
// the runtime to zero) O(K) length-n vectors per query — ~10MB per request
// at n=100k, K=5 — which dominated steady-state serving cost with GC
// pressure. A Workspace keeps those buffers alive between queries: Reset
// returns every buffer to the arena, Take/Raw hand them out again, and after
// the first few queries the arena stops growing, making the kernels
// allocation-free.
//
// A Workspace is not safe for concurrent use; serving layers pool them (one
// per in-flight query) rather than share them.
type Workspace struct {
	n    int
	bufs [][]float64
	next int
	hdr  [][]float64 // reusable header slice for TakeVecs

	// Trace is a per-query kernel-trace scratch the workspace carries so
	// observed zero-alloc paths have a KernelTrace without allocating one:
	// the serving layer takes &ws.Trace for the duration of its loan.
	// Reset leaves it untouched — its lifecycle belongs to the borrower.
	Trace obs.KernelTrace
}

// NewWorkspace returns an empty arena of dimension n.
func NewWorkspace(n int) *Workspace { return &Workspace{n: n} }

// Dim returns the length of the buffers the arena hands out.
func (w *Workspace) Dim() int { return w.n }

// Reset returns every buffer to the arena. Buffers handed out earlier must
// not be used afterwards.
func (w *Workspace) Reset() { w.next = 0 }

// Take returns a zeroed length-n buffer from the arena, growing it on first
// use.
func (w *Workspace) Take() []float64 {
	b := w.Raw()
	for i := range b {
		b[i] = 0
	}
	return b
}

// Raw returns a length-n buffer with arbitrary contents — for targets a
// kernel overwrites entirely (MulVecInto, MulVecTInto), where Take's zeroing
// pass would be wasted.
func (w *Workspace) Raw() []float64 {
	if w.next == len(w.bufs) {
		w.bufs = append(w.bufs, make([]float64, w.n))
	}
	b := w.bufs[w.next]
	w.next++
	return b
}

// Grows reports how many arena buffers have ever been allocated — the
// trace-visible distinction between a warm pooled workspace (stable) and a
// fresh one paying its first-use growth.
func (w *Workspace) Grows() int { return len(w.bufs) }

// TakeVecs returns count zeroed buffers in a reusable header slice. The
// returned slice is only valid until the next TakeVecs or Reset call; a
// kernel takes its accumulator family in one call.
func (w *Workspace) TakeVecs(count int) [][]float64 {
	w.hdr = w.hdr[:0]
	for i := 0; i < count; i++ {
		w.hdr = append(w.hdr, w.Take())
	}
	return w.hdr
}
