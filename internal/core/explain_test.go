package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// The explanation must reconstruct the series partial sum exactly: the sum
// of path-pair contributions equals Ŝ_K(a, b) from the brute-force oracle.
func TestQuickExplainReconstructsScore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randomGraph(rng, n, rng.Intn(3*n))
		const c, k = 0.6, 4
		s := SeriesGeometric(g, Options{C: c, K: k})
		for trial := 0; trial < 3; trial++ {
			a, b := rng.Intn(n), rng.Intn(n)
			exps := ExplainGeometric(g, a, b, c, k, 0)
			if math.Abs(ExplainedScore(exps)-s.At(a, b)) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The paper's worked example: the top contribution for (h, d) on the
// Figure-1 graph is the path h ← e ← a → d with rate 0.0384 at C = 0.8,
// followed by h ← e ← a → b → f → d with 0.0205.
func TestExplainFigure1WorkedExample(t *testing.T) {
	g := dataset.Figure1()
	h, _ := g.NodeByLabel("h")
	d, _ := g.NodeByLabel("d")
	a, _ := g.NodeByLabel("a")
	exps := ExplainGeometric(g, h, d, 0.8, 6, 0)
	if len(exps) == 0 {
		t.Fatal("no explanations for (h, d)")
	}
	top := exps[0]
	if top.Source != a {
		t.Fatalf("top source = %s, want a", g.Label(top.Source))
	}
	// Path weights include the transition probabilities 1/|I(·)|, so the
	// raw rate 0.0384 = (1−C)·C³·binom(3,2)/2³ is the unit-weight bound;
	// the top path must be the α=2/β=1 pair through a and e.
	if len(top.WalkToA) != 3 || len(top.WalkToB) != 2 {
		t.Fatalf("top path shape = %d/%d nodes, want walks of lengths 2 and 1",
			len(top.WalkToA), len(top.WalkToB))
	}
	if top.Symmetric() {
		t.Fatal("the (h,d) evidence is dissymmetric")
	}
	// The unit-weight rate of the top pair's (l, α) class.
	if rate := PathContribution(0.8, 3, 2); math.Abs(rate-0.0384) > 1e-10 {
		t.Fatalf("class rate = %g", rate)
	}
	// A longer pair through a → b → f → d must appear with positive
	// contribution as well.
	foundLong := false
	for _, e := range exps {
		if e.Source == a && len(e.WalkToA) == 3 && len(e.WalkToB) == 4 {
			foundLong = true
		}
	}
	if !foundLong {
		t.Fatal("the length-5 path pair h←e←a→b→f→d is missing")
	}
}

// Symmetric in-link paths are exactly what SimRank counts: on a pair with
// only symmetric evidence, every explanation is symmetric.
func TestExplainStarLeaves(t *testing.T) {
	g := dataset.Star(4)
	exps := ExplainGeometric(g, 1, 2, 0.8, 5, 0)
	if len(exps) == 0 {
		t.Fatal("leaf pair must have evidence")
	}
	for _, e := range exps {
		if e.Source != 0 {
			t.Fatalf("source = %d, want the hub", e.Source)
		}
		if !e.Symmetric() {
			t.Fatal("star leaves have only symmetric paths")
		}
	}
}

// A pair with no in-link path explains to nothing.
func TestExplainNoPath(t *testing.T) {
	g := dataset.Path(4) // 0→1→2→3
	exps := ExplainGeometric(g, 0, 3, 0.8, 6, 0)
	// Source 0 reaches 3 (walk of length 3) and 0 itself (length 0): that
	// IS an in-link path (unidirectional). So use two parallel paths with
	// distinct roots instead.
	if len(exps) == 0 {
		t.Fatal("path endpoints do have unidirectional evidence")
	}
	b := dataset.CompleteBipartite(2, 2)
	// Nodes 0 and 1 are the two sources of K_{2,2}: nothing points at them
	// and neither reaches the other.
	exps = ExplainGeometric(b, 0, 1, 0.8, 6, 0)
	if len(exps) != 0 {
		t.Fatalf("sources of K_{2,2} share no in-link path, got %d explanations", len(exps))
	}
}

// Contributions are ordered and individually positive.
func TestExplainOrdering(t *testing.T) {
	g := dataset.Figure1()
	i, _ := g.NodeByLabel("i")
	h, _ := g.NodeByLabel("h")
	exps := ExplainGeometric(g, i, h, 0.8, 5, 0)
	for k, e := range exps {
		if e.Contribution <= 0 {
			t.Fatalf("non-positive contribution %g", e.Contribution)
		}
		if k > 0 && e.Contribution > exps[k-1].Contribution+1e-15 {
			t.Fatal("explanations not sorted")
		}
	}
}
