package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dense"
	"repro/internal/graph"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Geometric recursion must equal the brute-force Eq. (9) partial sum
// (Lemma 4 states they coincide exactly, iteration by iteration).
func TestGeometricMatchesSeriesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := []*graph.Graph{
		dataset.Figure1(),
		dataset.Path(6),
		dataset.Cycle(5),
		randomGraph(rng, 15, 40),
		randomGraph(rng, 20, 90),
	}
	for gi, g := range graphs {
		for _, opt := range []Options{{C: 0.6, K: 4}, {C: 0.8, K: 6}} {
			got := Geometric(g, opt)
			want := SeriesGeometric(g, opt)
			if d := got.MaxAbsDiff(want); d > 1e-10 {
				t.Fatalf("graph %d, C=%.1f K=%d: recursion vs series differ by %g", gi, opt.C, opt.K, d)
			}
		}
	}
}

// Exponential closed form must equal the brute-force factored oracle
// exactly, and the literal Eq. (18) partial sum within the Eq. (12) tail
// bound (the closed form carries extra cross terms of length K < l <= 2K).
func TestExponentialMatchesSeriesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	graphs := []*graph.Graph{
		dataset.Figure1(),
		dataset.Star(7),
		randomGraph(rng, 12, 50),
	}
	for gi, g := range graphs {
		for _, opt := range []Options{{C: 0.6, K: 5}, {C: 0.8, K: 7}} {
			got := Exponential(g, opt)
			exact := SeriesExponentialFactored(g, opt)
			if d := got.MaxAbsDiff(exact); d > 1e-10 {
				t.Fatalf("graph %d, C=%.1f K=%d: closed form vs factored oracle differ by %g", gi, opt.C, opt.K, d)
			}
			literal := SeriesExponential(g, opt)
			bound := 3 * math.Pow(opt.C, float64(opt.K+1)) / factorial(opt.K+1)
			if d := got.MaxAbsDiff(literal); d > bound {
				t.Fatalf("graph %d: closed form vs Eq.(18) partial sum differ by %g > tail bound %g", gi, d, bound)
			}
		}
	}
}

// memo-gSR* must compute exactly what iter-gSR* computes (the compression
// is a reformulation, not an approximation).
func TestQuickMemoMatchesIter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(6*n))
		opt := Options{C: 0.6, K: 5}
		return GeometricMemo(g, opt).MaxAbsDiff(Geometric(g, opt)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExponentialMemoMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(5*n))
		opt := Options{C: 0.6, K: 6}
		return ExponentialMemo(g, opt).MaxAbsDiff(Exponential(g, opt)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Single-source solvers must reproduce the matching all-pairs row exactly.
func TestSingleSourceGeometricMatchesRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 25, 100)
	opt := Options{C: 0.7, K: 6}
	all := Geometric(g, opt)
	for _, q := range []int{0, 7, 24} {
		row := SingleSourceGeometric(g, q, opt)
		for j, v := range row {
			if math.Abs(v-all.At(q, j)) > 1e-10 {
				t.Fatalf("q=%d j=%d: single-source %g vs row %g", q, j, v, all.At(q, j))
			}
		}
	}
}

func TestSingleSourceExponentialMatchesRow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 22, 90)
	opt := Options{C: 0.6, K: 7}
	all := Exponential(g, opt)
	for _, q := range []int{0, 11, 21} {
		row := SingleSourceExponential(g, q, opt)
		for j, v := range row {
			if math.Abs(v-all.At(q, j)) > 1e-10 {
				t.Fatalf("q=%d j=%d: single-source %g vs row %g", q, j, v, all.At(q, j))
			}
		}
	}
}

// Property: SimRank* scores are symmetric, lie in [0, 1], and diagonals lie
// in [1−C, 1] (the Sec. 3.2 normalisation claims).
func TestQuickScoreInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(5*n))
		c := 0.3 + 0.6*rng.Float64()
		s := Geometric(g, Options{C: c, K: 6})
		if !s.IsSymmetric(1e-12) {
			return false
		}
		for i := 0; i < n; i++ {
			d := s.At(i, i)
			if d < 1-c-1e-12 || d > 1+1e-12 {
				return false
			}
			for j := 0; j < n; j++ {
				if v := s.At(i, j); v < -1e-15 || v > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 3: ‖Ŝ − Ŝ_k‖max <= Cᵏ⁺¹. Using a deep iterate as "exact" gives the
// testable bound ‖Ŝ_K − Ŝ_k‖ <= Cᵏ⁺¹ + Cᴷ⁺¹.
func TestGeometricConvergenceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 20, 80)
	const c, bigK = 0.8, 40
	exact := Geometric(g, Options{C: c, K: bigK})
	for k := 0; k <= 8; k++ {
		diff := Geometric(g, Options{C: c, K: k}).MaxAbsDiff(exact)
		bound := math.Pow(c, float64(k+1)) + math.Pow(c, float64(bigK+1))
		if diff > bound+1e-12 {
			t.Fatalf("k=%d: gap %g exceeds Lemma-3 bound %g", k, diff, bound)
		}
	}
}

// Eq. (12): ‖Ŝ′ − Ŝ′_k‖max <= Cᵏ⁺¹/(k+1)! — factorially faster.
func TestExponentialConvergenceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 18, 70)
	const c = 0.8
	exact := Exponential(g, Options{C: c, K: 30})
	for k := 0; k <= 6; k++ {
		diff := Exponential(g, Options{C: c, K: k}).MaxAbsDiff(exact)
		bound := math.Pow(c, float64(k+1))/factorial(k+1) + 1e-12
		if diff > bound {
			t.Fatalf("k=%d: gap %g exceeds Eq.(12) bound %g", k, diff, bound)
		}
	}
}

func TestIterationsFromEps(t *testing.T) {
	opt := Options{C: 0.6, Eps: 0.001}
	if got := opt.IterationsGeometric(); got != 13 { // 0.6^14 ≈ 7.8e-4
		t.Fatalf("IterationsGeometric = %d, want 13", got)
	}
	if got := opt.IterationsExponential(); got != 4 { // 0.6^5/5! ≈ 6.5e-4
		t.Fatalf("IterationsExponential = %d, want 4", got)
	}
	// The paper's Exp-2 point: exponential needs far fewer iterations.
	if opt.IterationsExponential() >= opt.IterationsGeometric() {
		t.Fatal("exponential should converge in fewer iterations")
	}
	fixed := Options{C: 0.6, K: 7}
	if fixed.IterationsGeometric() != 7 || fixed.IterationsExponential() != 7 {
		t.Fatal("explicit K must be honoured")
	}
}

// The Figure-1 table: every pair the paper lists as zero-SimRank must be
// positive under SimRank* (Column SR*).
func TestFigure1PairsPositive(t *testing.T) {
	g := dataset.Figure1()
	opt := Options{C: 0.8, K: 15}
	s := Geometric(g, opt)
	id := func(l string) int {
		i, ok := g.NodeByLabel(l)
		if !ok {
			t.Fatalf("missing node %q", l)
		}
		return i
	}
	pairs := [][2]string{{"h", "d"}, {"a", "f"}, {"a", "c"}, {"g", "a"}, {"g", "b"}, {"i", "a"}, {"i", "h"}}
	for _, p := range pairs {
		if v := s.At(id(p[0]), id(p[1])); v <= 0 {
			t.Errorf("SimRank*(%s,%s) = %g, want > 0", p[0], p[1], v)
		}
	}
	// Relative order the paper's table implies: (g,b)=.075 is the largest of
	// the seven; (h,d)=.010 the smallest.
	gb := s.At(id("g"), id("b"))
	for _, p := range pairs {
		if v := s.At(id(p[0]), id(p[1])); v > gb+1e-12 {
			t.Errorf("SimRank*(%s,%s) = %g exceeds (g,b) = %g", p[0], p[1], v, gb)
		}
	}
}

// The Sec. 1 path-graph counterexample: on a_{−n} ← … ← a_0 → … → a_n,
// SimRank is zero whenever |i| != |j|, but a_0 is a common root, so
// SimRank* must be positive for every pair within horizon.
func TestBiPathZeroSimilarityResolved(t *testing.T) {
	g := dataset.BiPath(3) // nodes 0..6, centre 3
	s := Geometric(g, Options{C: 0.8, K: 12})
	// a_1 = node 4, a_{−2} = node 1: |1| != |−2|, zero under SimRank.
	if v := s.At(4, 1); v <= 0 {
		t.Fatalf("SimRank*(a_1, a_{−2}) = %g, want > 0", v)
	}
	// Symmetric pair a_2, a_{−2} (nodes 5 and 1) must score higher than the
	// dissymmetric pair a_1, a_{−2}: symmetry weight favours centred sources
	// at equal length... (lengths differ; just require positivity ordering
	// against the fully-unbalanced pair a_3, a_{−1}.)
	if s.At(5, 1) <= 0 || s.At(6, 2) <= 0 {
		t.Fatal("symmetric pairs must be positive")
	}
}

// Worked contribution rates from Sec. 3.2 at C = 0.8:
// len-3 path with α=2: (1−C)·C³·binom(3,2)/2³ = 0.0384,
// len-5 path with α=2: (1−C)·C⁵·binom(5,2)/2⁵ = 0.0205.
func TestPathContribution(t *testing.T) {
	if v := PathContribution(0.8, 3, 2); math.Abs(v-0.0384) > 1e-10 {
		t.Fatalf("len-3 contribution = %g, want 0.0384", v)
	}
	if v := PathContribution(0.8, 5, 2); math.Abs(v-0.0205) > 5e-5 {
		t.Fatalf("len-5 contribution = %g, want ≈0.0205", v)
	}
	if PathContribution(0.8, 3, 7) != 0 {
		t.Fatal("out-of-range α must contribute 0")
	}
}

// SeriesWeighted with the geometric weight must reproduce Geometric.
func TestSeriesWeightedGeometricAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 15, 60)
	const c, k = 0.6, 6
	got := SeriesWeighted(g, GeometricWeight(c), k)
	// SeriesWeighted normalises by 1/(1−C) exactly; Geometric multiplies by
	// (1−C): identical partial sums.
	want := Geometric(g, Options{C: c, K: k})
	if d := got.MaxAbsDiff(want); d > 1e-10 {
		t.Fatalf("weighted series differs from recursion by %g", d)
	}
}

// SeriesWeighted with the exponential weight must reproduce the literal
// Eq. (18) partial sum (both truncate at total path length K).
func TestSeriesWeightedExponentialAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 14, 55)
	const c, k = 0.6, 6
	got := SeriesWeighted(g, ExponentialWeight(c), k)
	want := SeriesExponential(g, Options{C: c, K: k})
	if d := got.MaxAbsDiff(want); d > 1e-10 {
		t.Fatalf("weighted series differs from Eq.(18) partial sum by %g", d)
	}
}

// The harmonic candidate weight stays a valid similarity: symmetric scores
// in [0, 1] (the ablation only questions its computability, not validity).
func TestHarmonicWeightValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 15, 60)
	s := SeriesWeighted(g, HarmonicWeight(0.6), 8)
	if !s.IsSymmetric(1e-12) {
		t.Fatal("harmonic-weight scores not symmetric")
	}
	if s.MaxAbs() > 1+1e-10 {
		t.Fatalf("harmonic-weight scores exceed 1: %g", s.MaxAbs())
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopK(scores, 3, 1)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Node != 3 || top[1].Node != 2 || top[2].Node != 4 {
		t.Fatalf("TopK = %+v", top)
	}
	all := TopK(scores, 100)
	if len(all) != 5 || all[0].Node != 1 { // tie 0.9: node 1 before 3
		t.Fatalf("TopK full = %+v", all)
	}
}

func TestSieve(t *testing.T) {
	g := dataset.Figure1()
	s := Geometric(g, Options{C: 0.6, K: 5, Sieve: 0.05})
	for _, v := range s.Data {
		if v != 0 && v < 0.05 {
			t.Fatalf("sieved matrix contains %g < threshold", v)
		}
	}
	vec := SingleSourceGeometric(g, 0, Options{C: 0.6, K: 5, Sieve: 0.05})
	for _, v := range vec {
		if v != 0 && v < 0.05 {
			t.Fatalf("sieved vector contains %g", v)
		}
	}
}

func TestBinomAndFactorial(t *testing.T) {
	cases := []struct {
		l, a int
		want float64
	}{{0, 0, 1}, {4, 2, 6}, {5, 0, 1}, {5, 5, 1}, {10, 3, 120}, {3, -1, 0}, {3, 4, 0}}
	for _, c := range cases {
		if got := binom(c.l, c.a); got != c.want {
			t.Errorf("binom(%d,%d) = %g, want %g", c.l, c.a, got, c.want)
		}
	}
	if factorial(0) != 1 || factorial(5) != 120 {
		t.Fatal("factorial wrong")
	}
	// Row sums: Σ_α binom(l,α) = 2ˡ (the normalisation Sec. 3.2 relies on).
	for l := 0; l <= 12; l++ {
		var sum float64
		for a := 0; a <= l; a++ {
			sum += binom(l, a)
		}
		if math.Abs(sum-math.Pow(2, float64(l))) > 1e-9 {
			t.Fatalf("Σ binom(%d,·) = %g != 2^%d", l, sum, l)
		}
	}
}

// Empty and in-link-free graphs: S = (1−C)·I (only the l=0 term survives).
func TestDegenerateGraphs(t *testing.T) {
	g := graph.FromEdges(4, nil)
	s := Geometric(g, Options{C: 0.6, K: 5})
	want := dense.New(4, 4)
	want.AddDiag(0.4)
	if s.MaxAbsDiff(want) > 1e-14 {
		t.Fatalf("edgeless graph: %v", s.Data)
	}
	se := Exponential(g, Options{C: 0.6, K: 5})
	// With Q = 0 only the l = 0 term of Eq. (11) survives: S′ = e^{−C}·I.
	for i := 0; i < 4; i++ {
		if math.Abs(se.At(i, i)-math.Exp(-0.6)) > 1e-12 {
			t.Fatalf("exponential diag = %g, want e^{−C} = %g", se.At(i, i), math.Exp(-0.6))
		}
	}
}

// Deeper iterations only add path contributions: scores grow monotonically.
func TestMonotoneInK(t *testing.T) {
	g := dataset.Figure1()
	prev := Geometric(g, Options{C: 0.8, K: 1})
	for k := 2; k <= 8; k++ {
		cur := Geometric(g, Options{C: 0.8, K: k})
		for i, v := range cur.Data {
			if v < prev.Data[i]-1e-12 {
				t.Fatalf("K=%d: score decreased from %g to %g", k, prev.Data[i], v)
			}
		}
		prev = cur
	}
}
