package core

import (
	"context"
	"math"

	"repro/internal/sparse"
)

// Threshold-sieved approximate single-source SimRank*. The exact
// single-source kernels sweep dense length-n vectors even when almost all
// of the propagating mass is negligible; these variants keep the walk in a
// sparse frontier, drop entries below an adaptive threshold each sweep, and
// charge every drop against an error budget, so the result comes back with
// a certified element-wise bound:
//
//	|approx[i] − exact[i]| <= MaxError <= tol   for every node i,
//
// where "exact" is the corresponding dense kernel at the same Options
// (i.e. the certificate bounds the sieving error, not the series
// truncation both paths share). The sieve thresholds derive from the
// geometric tail of the series: dropping mass from the β-th backward walk
// vector can only reach the output through coefficients whose total weight
// decays like C^β, so late sweeps tolerate proportionally larger drops.
//
// tol below sparse.MinCertTolerance disables dropping entirely; callers
// that need bitwise equality with the exact kernels should dispatch to
// those instead (the sparse accumulation order differs in the last few
// ulps, which is what the certificate's sparse.CertSlack term covers).
//
// Both kernels take the backward transition matrix qm and its materialised
// transpose qt: backward sweeps scatter through qm's rows, forward sweeps
// through qt's (a forward product against a sparse frontier needs column
// access to qm, i.e. rows of qt).

// ApproxSingleSourceGeometricFromTransition answers one geometric
// single-source query with threshold sieving. It returns the scores and the
// certified MaxError bound against SingleSourceGeometricFromTransition.
func ApproxSingleSourceGeometricFromTransition(ctx context.Context, qm, qt *sparse.CSR, q int, tol float64, opt Options) ([]float64, float64, error) {
	ws := newApproxGeoWS(qm.R, opt)
	return ws.run(ctx, qm, qt, q, tol)
}

// ApproxMultiSourceGeometricFromTransition answers one sieved geometric
// single-source query per entry of nodes, sharing the kernel workspace
// across queries (each query gets the full tolerance; certificates are
// per-query). Result i and MaxError i correspond to nodes[i].
func ApproxMultiSourceGeometricFromTransition(ctx context.Context, qm, qt *sparse.CSR, nodes []int, tol float64, opt Options) ([][]float64, []float64, error) {
	ws := newApproxGeoWS(qm.R, opt)
	out := make([][]float64, len(nodes))
	errs := make([]float64, len(nodes))
	for i, q := range nodes {
		scores, bound, err := ws.run(ctx, qm, qt, q, tol)
		if err != nil {
			return nil, nil, err
		}
		out[i], errs[i] = scores, bound
	}
	return out, errs, nil
}

// approxGeoWS is the reusable workspace of the sieved geometric kernel: the
// ping-pong frontiers and the per-α accumulators, all of dimension n, plus
// the precomputed downstream tail weights.
type approxGeoWS struct {
	opt     Options
	k       int
	cur     *sparse.Frontier
	spare   *sparse.Frontier
	y       []*sparse.Frontier
	weights []float64
}

func newApproxGeoWS(n int, opt Options) *approxGeoWS {
	opt = opt.withDefaults()
	k := opt.IterationsGeometric()
	ws := &approxGeoWS{
		opt:     opt,
		k:       k,
		cur:     sparse.NewFrontier(n),
		spare:   sparse.NewFrontier(n),
		y:       make([]*sparse.Frontier, k+1),
		weights: geoTailWeights(k, opt.C),
	}
	for alpha := range ws.y {
		ws.y[alpha] = sparse.NewFrontier(n)
	}
	return ws
}

// geoTailWeights[β] bounds, element-wise on the final scores, the effect of
// dropping unit mass from the β-th backward walk vector w_β: the drop
// propagates to every w_{β'} with β' >= β and from there into the output
// through the series coefficients, so the weight is
//
//	(1−C) · Σ_{β'=β}^{K} Σ_{α=0}^{K−β'} (C/2)^{α+β'} · binom(α+β', α),
//
// which is at most C^β (the geometric tail: the α-sum at level l = α+β'
// telescopes to 2^l, and (1−C)·Σ_{l>=β} C^l <= C^β).
func geoTailWeights(k int, c float64) []float64 {
	half := c / 2
	w := make([]float64, k+1)
	for beta := 0; beta <= k; beta++ {
		var sum float64
		for bp := beta; bp <= k; bp++ {
			for alpha := 0; alpha+bp <= k; alpha++ {
				sum += math.Pow(half, float64(alpha+bp)) * binom(alpha+bp, alpha)
			}
		}
		w[beta] = (1 - c) * sum
	}
	return w
}

func (ws *approxGeoWS) reset() {
	ws.cur.Reset()
	ws.spare.Reset()
	for _, f := range ws.y {
		f.Reset()
	}
}

// scatterSweep runs one frontier sweep dst = mᵀ·src, fanned out across sw's
// workers when a Sweeper is set (bitwise-identical to the serial scatter —
// see Sweeper.ScatterMulT) and serially otherwise.
func scatterSweep(sw *sparse.Sweeper, m *sparse.CSR, dst, src *sparse.Frontier) {
	if sw != nil {
		sw.ScatterMulT(m, dst, src)
		return
	}
	m.ScatterMulT(dst, src)
}

func (ws *approxGeoWS) run(ctx context.Context, qm, qt *sparse.CSR, q int, tol float64) ([]float64, float64, error) {
	ws.reset()
	k, opt := ws.k, ws.opt
	half := opt.C / 2
	tr := opt.Trace
	sw := opt.Parallel
	// K backward sieve points plus K Horner sieve points.
	budget := sparse.NewCertBudget(tol, 2*k)
	budget.Trace = tr

	// Backward: w_β = (Qᵀ)^β e_q, folded into every y_α it contributes to as
	// soon as it exists — the same coefficient schedule as the exact kernel.
	cur, next := ws.cur, ws.spare
	cur.Add(int32(q), 1)
	for beta := 0; beta <= k; beta++ {
		if beta > 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			next.Reset()
			scatterSweep(sw, qm, next, cur) // next = Qᵀ·cur
			cur, next = next, cur
			budget.SieveMass(cur, ws.weights[beta])
			if tr != nil {
				tr.AddSweeps(1)
				tr.ObserveFrontier(cur.Len())
			}
		}
		for alpha := 0; alpha+beta <= k; alpha++ {
			coef := math.Pow(half, float64(alpha+beta)) * binom(alpha+beta, alpha)
			ws.y[alpha].AddScaled(coef, cur)
		}
	}

	// Horner: z = y_K; z = Q·z + y_α for α = K−1 .. 0, sieving z after each
	// step. A drop at stage α still passes through Q^α (row sums <= 1) and
	// the final (1−C) scale, so it is charged at weight (1−C) on its peak.
	z, zbuf := ws.y[k], next
	for alpha := k - 1; alpha >= 0; alpha-- {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		zbuf.Reset()
		scatterSweep(sw, qt, zbuf, z) // zbuf = Q·z
		z, zbuf = zbuf, z
		z.AddScaled(1, ws.y[alpha])
		budget.SievePeak(z, 1-opt.C)
		if tr != nil {
			tr.AddSweeps(1)
			tr.ObserveFrontier(z.Len())
		}
	}
	cert := budget.Certificate()
	if tr != nil {
		tr.Certificate = cert
		if sw != nil {
			tr.AddParSweeps(sw.TakeParSweeps(), sw.Workers())
		}
	}
	return z.Dense(1 - opt.C), cert, nil
}

// ApproxSingleSourceExponentialFromTransition answers one exponential
// single-source query with threshold sieving. It returns the scores and the
// certified MaxError bound against SingleSourceExponentialFromTransition.
func ApproxSingleSourceExponentialFromTransition(ctx context.Context, qm, qt *sparse.CSR, q int, tol float64, opt Options) ([]float64, float64, error) {
	ws := newApproxExpWS(qm.R, opt)
	return ws.run(ctx, qm, qt, q, tol)
}

// ApproxMultiSourceExponentialFromTransition answers one sieved exponential
// single-source query per entry of nodes, sharing the kernel workspace
// across queries. Result i and MaxError i correspond to nodes[i].
func ApproxMultiSourceExponentialFromTransition(ctx context.Context, qm, qt *sparse.CSR, nodes []int, tol float64, opt Options) ([][]float64, []float64, error) {
	ws := newApproxExpWS(qm.R, opt)
	out := make([][]float64, len(nodes))
	errs := make([]float64, len(nodes))
	for i, q := range nodes {
		scores, bound, err := ws.run(ctx, qm, qt, q, tol)
		if err != nil {
			return nil, nil, err
		}
		out[i], errs[i] = scores, bound
	}
	return out, errs, nil
}

// approxExpWS is the sieved exponential kernel's workspace: two ping-pong
// frontiers, the backward accumulator v and the output accumulator s, plus
// the series coefficients (C/2)ʲ/j! and their suffix sums.
type approxExpWS struct {
	opt    Options
	k      int
	a, b   *sparse.Frontier
	v, s   *sparse.Frontier
	coef   []float64
	suffix []float64
}

func newApproxExpWS(n int, opt Options) *approxExpWS {
	opt = opt.withDefaults()
	k := opt.IterationsExponential()
	ws := &approxExpWS{
		opt:    opt,
		k:      k,
		a:      sparse.NewFrontier(n),
		b:      sparse.NewFrontier(n),
		v:      sparse.NewFrontier(n),
		s:      sparse.NewFrontier(n),
		coef:   make([]float64, k+1),
		suffix: make([]float64, k+2),
	}
	c := 1.0
	for j := 0; j <= k; j++ {
		ws.coef[j] = c
		c *= opt.C / (2 * float64(j+1))
	}
	for j := k; j >= 0; j-- {
		ws.suffix[j] = ws.suffix[j+1] + ws.coef[j]
	}
	return ws
}

func (ws *approxExpWS) run(ctx context.Context, qm, qt *sparse.CSR, q int, tol float64) ([]float64, float64, error) {
	ws.a.Reset()
	ws.b.Reset()
	ws.v.Reset()
	ws.s.Reset()
	k := ws.k
	scale := math.Exp(-ws.opt.C)
	tr := ws.opt.Trace
	sw := ws.opt.Parallel
	budget := sparse.NewCertBudget(tol, 2*k)
	budget.Trace = tr

	// Backward: v = T_Kᵀ e_q = Σ_j coef_j·(Qᵀ)ʲ e_q. A drop of mass δ from
	// the walk at state j reaches v with 1-norm weight suffix[j] and the
	// output through e^{−C}·T_K, whose coefficient sum is suffix[0].
	cur, next := ws.a, ws.b
	cur.Add(int32(q), 1)
	for j := 0; ; j++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		ws.v.AddScaled(ws.coef[j], cur)
		if j == k {
			break
		}
		next.Reset()
		scatterSweep(sw, qm, next, cur)
		cur, next = next, cur
		budget.SieveMass(cur, scale*ws.suffix[0]*ws.suffix[j+1])
		if tr != nil {
			tr.AddSweeps(1)
			tr.ObserveFrontier(cur.Len())
		}
	}

	// Forward: s = T_K·v = Σ_i coef_i·Qⁱ v. A drop at state i passes only
	// through forward powers (peak-bounded) with coefficient tail suffix[i].
	fcur, fnext := ws.v, cur
	for i := 0; ; i++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		ws.s.AddScaled(ws.coef[i], fcur)
		if i == k {
			break
		}
		fnext.Reset()
		scatterSweep(sw, qt, fnext, fcur) // fnext = Q·fcur
		fcur, fnext = fnext, fcur
		budget.SievePeak(fcur, scale*ws.suffix[i+1])
		if tr != nil {
			tr.AddSweeps(1)
			tr.ObserveFrontier(fcur.Len())
		}
	}
	cert := budget.Certificate()
	if tr != nil {
		tr.Certificate = cert
		if sw != nil {
			tr.AddParSweeps(sw.TakeParSweeps(), sw.Workers())
		}
	}
	return ws.s.Dense(scale), cert, nil
}
