package core

import (
	"context"
	"math"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// SeriesGeometric evaluates the K-th partial sum of the geometric SimRank*
// series (Eq. 9) by brute force:
//
//	Ŝ_K = (1−C) Σ_{l=0}^{K} (Cˡ/2ˡ) Σ_{α=0}^{l} binom(l,α) Q^α (Qᵀ)^{l−α}
//
// materialising dense powers of Q and Qᵀ and multiplying them pairwise. It
// costs O(K²·n³) (the "brute-force way" the paper dismisses in Sec. 4) and
// exists purely as an independent oracle: the recursive, memoized,
// closed-form and single-source implementations are all tested against it.
func SeriesGeometric(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := SeriesGeometricCtx(context.Background(), g, opt)
	return s
}

// SeriesGeometricCtx is SeriesGeometric with cancellation checked between
// series terms — even an oracle sweep of dense O(n³) products should die
// with its caller's deadline.
func SeriesGeometricCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	k := opt.IterationsGeometric()
	n := g.N()
	q := sparse.BackwardTransition(g).ToDense()
	qt := q.Transpose()

	// qPow[α] = Q^α, qtPow[β] = (Qᵀ)^β.
	qPow := densePowers(q, k)
	qtPow := densePowers(qt, k)

	s := dense.New(n, n)
	for l := 0; l <= k; l++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lw := math.Pow(opt.C, float64(l)) / math.Pow(2, float64(l))
		for alpha := 0; alpha <= l; alpha++ {
			term := dense.Mul(qPow[alpha], qtPow[l-alpha])
			s.Axpy(lw*binom(l, alpha), term)
		}
	}
	s.Scale(1 - opt.C)
	sieve(s, opt.Sieve)
	return s, nil
}

// SeriesExponential evaluates the K-th partial sum of the exponential series
// (Eq. 18) by brute force: all in-link paths of total length l <= K. Note
// the truncation-order subtlety: the closed form e^{−C}·T_K·T_Kᵀ
// (Theorem 3) truncates each exponential *factor* at K, so it additionally
// contains cross terms of length K < l <= 2K; the two agree within the
// Eq. (12) tail bound and converge to the same S′. Use
// SeriesExponentialFactored for an exact oracle of the closed form.
func SeriesExponential(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := SeriesExponentialCtx(context.Background(), g, opt)
	return s
}

// SeriesExponentialCtx is SeriesExponential with cancellation checked
// between series terms.
func SeriesExponentialCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	k := opt.IterationsExponential()
	n := g.N()
	q := sparse.BackwardTransition(g).ToDense()
	qt := q.Transpose()
	qPow := densePowers(q, k)
	qtPow := densePowers(qt, k)

	s := dense.New(n, n)
	for l := 0; l <= k; l++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lw := math.Pow(opt.C, float64(l)) / (factorial(l) * math.Pow(2, float64(l)))
		for alpha := 0; alpha <= l; alpha++ {
			term := dense.Mul(qPow[alpha], qtPow[l-alpha])
			s.Axpy(lw*binom(l, alpha), term)
		}
	}
	s.Scale(math.Exp(-opt.C))
	sieve(s, opt.Sieve)
	return s, nil
}

// SeriesExponentialFactored brute-forces the factored form of Theorem 3
// truncated at K terms per factor:
//
//	S = e^{−C} (Σ_{α<=K} (C/2)^α/α!·Q^α)(Σ_{β<=K} (C/2)^β/β!·(Qᵀ)^β)
//
// by expanding the double sum over dense powers. It is the exact oracle for
// the Exponential/ExponentialMemo implementations.
func SeriesExponentialFactored(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := SeriesExponentialFactoredCtx(context.Background(), g, opt)
	return s
}

// SeriesExponentialFactoredCtx is SeriesExponentialFactored with
// cancellation checked between outer terms.
func SeriesExponentialFactoredCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	k := opt.IterationsExponential()
	n := g.N()
	q := sparse.BackwardTransition(g).ToDense()
	qt := q.Transpose()
	qPow := densePowers(q, k)
	qtPow := densePowers(qt, k)
	coef := func(i int) float64 {
		return math.Pow(opt.C/2, float64(i)) / factorial(i)
	}
	s := dense.New(n, n)
	for alpha := 0; alpha <= k; alpha++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for beta := 0; beta <= k; beta++ {
			term := dense.Mul(qPow[alpha], qtPow[beta])
			s.Axpy(coef(alpha)*coef(beta), term)
		}
	}
	s.Scale(math.Exp(-opt.C))
	sieve(s, opt.Sieve)
	return s, nil
}

// LengthWeight is a pluggable length-weight sequence {w_l} for the Sec. 3.2
// ablation: the paper motivates Cˡ (geometric) and Cˡ/l! (exponential) and
// mentions Cˡ/l as a candidate it rejects because the series does not
// simplify. SeriesWeighted evaluates any of them.
type LengthWeight struct {
	Name string
	// Coef returns w_l.
	Coef func(l int) float64
	// Norm is Σ_{l=0}^∞ w_l, used to normalise scores into [0, 1].
	Norm float64
}

// GeometricWeight returns w_l = Cˡ with norm 1/(1−C).
func GeometricWeight(c float64) LengthWeight {
	return LengthWeight{
		Name: "geometric",
		Coef: func(l int) float64 { return math.Pow(c, float64(l)) },
		Norm: 1 / (1 - c),
	}
}

// ExponentialWeight returns w_l = Cˡ/l! with norm e^C.
func ExponentialWeight(c float64) LengthWeight {
	return LengthWeight{
		Name: "exponential",
		Coef: func(l int) float64 { return math.Pow(c, float64(l)) / factorial(l) },
		Norm: math.Exp(c),
	}
}

// HarmonicWeight returns w_0 = 1, w_l = Cˡ/l (l >= 1) with norm
// 1 + ln(1/(1−C)) — the candidate the paper discusses and rejects.
func HarmonicWeight(c float64) LengthWeight {
	return LengthWeight{
		Name: "harmonic",
		Coef: func(l int) float64 {
			if l == 0 {
				return 1
			}
			return math.Pow(c, float64(l)) / float64(l)
		},
		Norm: 1 + math.Log(1/(1-c)),
	}
}

// SeriesWeighted evaluates the K-th partial sum of the generalised SimRank*
// series with an arbitrary length weight,
//
//	S_K = (1/Norm) Σ_{l=0}^{K} (w_l/2ˡ) Σ_{α} binom(l,α) Q^α (Qᵀ)^{l−α},
//
// using the Pascal-triangle recurrence T̂_{l+1} = (Q·T̂_l + T̂_l·Qᵀ)/2 from
// Lemma 4, so it runs in O(K·n·m) rather than brute force. The binomial
// symmetry weight is fixed — it is what makes the recurrence exist at all
// (the paper's argument (b) for choosing binomials).
func SeriesWeighted(g *graph.Graph, w LengthWeight, k int) *dense.Matrix {
	s, _ := SeriesWeightedCtx(context.Background(), g, w, k)
	return s
}

// SeriesWeightedCtx is SeriesWeighted with cancellation checked between
// recurrence steps.
func SeriesWeightedCtx(ctx context.Context, g *graph.Graph, w LengthWeight, k int) (*dense.Matrix, error) {
	n := g.N()
	q := sparse.BackwardTransition(g)
	that := dense.Identity(n) // T̂_0 = I
	next := dense.New(n, n)
	s := dense.New(n, n)
	for l := 0; ; l++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.Axpy(w.Coef(l)/w.Norm, that)
		if l == k {
			break
		}
		// T̂_{l+1} = (Q·T̂_l + T̂_lQᵀ)/2 = (M + Mᵀ)/2 with M = Q·T̂_l.
		q.MulDenseInto(next, that)
		for i := 0; i < n; i++ {
			row := that.Row(i)
			ni := next.Row(i)
			for j := 0; j < n; j++ {
				row[j] = (ni[j] + next.At(j, i)) / 2
			}
		}
	}
	return s, nil
}

// densePowers returns [I, A, A², …, A^k].
func densePowers(a *dense.Matrix, k int) []*dense.Matrix {
	out := make([]*dense.Matrix, k+1)
	out[0] = dense.Identity(a.Rows)
	for i := 1; i <= k; i++ {
		out[i] = dense.Mul(out[i-1], a)
	}
	return out
}

// binom returns the binomial coefficient l-choose-a as a float64.
func binom(l, a int) float64 {
	if a < 0 || a > l {
		return 0
	}
	if a > l-a {
		a = l - a
	}
	r := 1.0
	for i := 0; i < a; i++ {
		r = r * float64(l-i) / float64(i+1)
	}
	return r
}

// factorial returns l! as a float64.
func factorial(l int) float64 {
	r := 1.0
	for i := 2; i <= l; i++ {
		r *= float64(i)
	}
	return r
}

// PathContribution returns the contribution rate a single in-link path of
// length l with α edges from the source towards one endpoint adds to the
// geometric SimRank* score, assuming unit transition weights:
// (1−C)·Cˡ·binom(l,α)/2ˡ. It reproduces the paper's worked examples
// (0.0384 for h←e←a→d, 0.0205 for h←e←a→b→f→d at C = 0.8) and is
// exposed for explanation tooling.
func PathContribution(c float64, l, alpha int) float64 {
	return (1 - c) * math.Pow(c, float64(l)) * binom(l, alpha) / math.Pow(2, float64(l))
}
