package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/sparse"
)

func multiTestGraph() *graph.Graph {
	// A small digraph with co-citations, a chain, a sink and a source.
	return graph.FromEdges(8, [][2]int{
		{0, 1}, {0, 2}, {3, 0}, {4, 0}, {5, 3}, {5, 4}, {6, 3}, {6, 1}, {2, 1}, {7, 5},
	})
}

// The blocked kernels promise bitwise equality with the single-source
// kernels: same coefficients, same accumulation order.
func TestMultiSourceMatchesSingleSourceBitwise(t *testing.T) {
	g := multiTestGraph()
	qm := sparse.BackwardTransition(g)
	qt := qm.Transpose()
	ctx := context.Background()
	opt := Options{C: 0.6, K: 6}
	nodes := []int{0, 3, 5, 7, 3} // includes a duplicate column

	geo, err := MultiSourceGeometricFromTransition(ctx, qm, qt, nodes, opt)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := MultiSourceExponentialFromTransition(ctx, qm, qt, nodes, opt)
	if err != nil {
		t.Fatal(err)
	}
	for t_, q := range nodes {
		wantG, err := SingleSourceGeometricFromTransition(ctx, qm, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		wantE, err := SingleSourceExponentialFromTransition(ctx, qm, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantG {
			if geo[t_][i] != wantG[i] {
				t.Fatalf("geometric col %d (node %d): [%d] = %g, want %g", t_, q, i, geo[t_][i], wantG[i])
			}
			if exp[t_][i] != wantE[i] {
				t.Fatalf("exponential col %d (node %d): [%d] = %g, want %g", t_, q, i, exp[t_][i], wantE[i])
			}
		}
	}
}

func TestMultiSourceEmptyAndCancelled(t *testing.T) {
	g := multiTestGraph()
	qm := sparse.BackwardTransition(g)
	qt := qm.Transpose()
	opt := Options{C: 0.6, K: 4}
	if out, err := MultiSourceGeometricFromTransition(context.Background(), qm, qt, nil, opt); err != nil || out != nil {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MultiSourceGeometricFromTransition(ctx, qm, qt, []int{0, 1}, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("geometric: err = %v, want context.Canceled", err)
	}
	if _, err := MultiSourceExponentialFromTransition(ctx, qm, qt, []int{0, 1}, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("exponential: err = %v, want context.Canceled", err)
	}
}
