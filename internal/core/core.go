// Package core implements SimRank*, the paper's primary contribution: a
// revision of SimRank that scores node pairs by aggregating *all* in-link
// paths — weighted by a geometric (or exponential) length weight Cˡ and a
// binomial symmetry weight binom(l, α) — instead of only the symmetric
// in-link paths SimRank counts. This resolves the "zero-similarity" issue of
// Theorem 1 while keeping an O(Knm)-per-run iterative paradigm, improved to
// O(Kn·m̃) with fine-grained memoization over a biclique-compressed bigraph.
//
// Four all-pairs solvers mirror the paper's algorithm suite:
//
//	Geometric        iter-gSR*  — Eq. (14) fixed-point iterations
//	GeometricMemo    memo-gSR*  — Algorithm 1 (edge concentration)
//	Exponential      eSR*       — Eq. (19) R/T recurrence, S = e^{-C}·T·Tᵀ
//	ExponentialMemo  memo-eSR*  — Eq. (19) through the compressed operator
//
// plus O(Km)-per-query single-source variants, a brute-force series
// evaluator used as a test oracle, and pluggable length weights for the
// Section 3.2 ablation.
package core

import (
	"context"
	"math"

	"repro/internal/biclique"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sparse"
)

// Options configures a SimRank* computation.
type Options struct {
	// C is the damping factor in (0, 1); the paper uses 0.6 in experiments
	// and 0.8 in the Figure-1 walk-through. Defaults to 0.6.
	C float64
	// K is the number of iterations (equivalently, the series truncation
	// length). Defaults to 5, the paper's time-accuracy trade-off. If Eps is
	// set, K is derived from the error bounds instead.
	K int
	// Eps, when positive, selects K from the convergence bounds: Cᵏ⁺¹ <= Eps
	// for the geometric form (Lemma 3) and Cᵏ⁺¹/(k+1)! <= Eps for the
	// exponential form (Eq. 12).
	Eps float64
	// Sieve, when positive, zeroes result entries below the threshold after
	// the final iteration (the paper clips at 1e-4 to save space).
	Sieve float64
	// Mine configures the biclique miner for the memo variants.
	Mine biclique.Options
	// Trace, when non-nil, receives kernel-level detail (sweep counts,
	// frontier widths, sieve spend) from the single-source kernels. Nil —
	// the default — costs one branch per kernel run and zero allocations;
	// call sites on noalloc paths guard it explicitly (simlint obsnoop).
	Trace *obs.KernelTrace
	// Parallel, when non-nil, fans each sparse sweep out across the
	// Sweeper's workers, row-range partitioned so results stay
	// bitwise-identical to the serial kernels. The caller owns the Sweeper
	// for the duration of the call (single borrower). Nil — the default —
	// runs every sweep on the calling goroutine.
	Parallel *sparse.Sweeper
	// Transposed is the materialised transpose of the sweep operator
	// (Qᵀ for the SimRank* kernels). Backward sweeps parallelise as
	// row-range gathers over the transpose; when Parallel is set but
	// Transposed is nil, backward sweeps stay serial and only the
	// gather-direction sweeps fan out.
	Transposed *sparse.CSR
}

func (o Options) withDefaults() Options {
	if o.C <= 0 || o.C >= 1 {
		o.C = 0.6
	}
	if o.K <= 0 {
		o.K = 5
	}
	return o
}

// IterationsGeometric returns the iteration count the geometric solvers will
// run: K, or the smallest k with Cᵏ⁺¹ <= Eps when Eps is set.
func (o Options) IterationsGeometric() int {
	o = o.withDefaults()
	if o.Eps <= 0 {
		return o.K
	}
	k := 0
	for bound := o.C; bound > o.Eps && k < 10_000; k++ {
		bound *= o.C
	}
	return k
}

// IterationsExponential returns the iteration count the exponential solvers
// will run: K, or the smallest k with Cᵏ⁺¹/(k+1)! <= Eps when Eps is set.
// The factorial decay is why memo-eSR* converges in far fewer iterations
// than memo-gSR* at equal accuracy (paper Exp-2).
func (o Options) IterationsExponential() int {
	o = o.withDefaults()
	if o.Eps <= 0 {
		return o.K
	}
	k := 0
	bound := o.C // k=0: C^1/1!
	for bound > o.Eps && k < 10_000 {
		k++
		bound *= o.C / float64(k+1)
	}
	return k
}

// applyFn computes dst = Q·src; the iterative kernels are written against
// this so that the CSR and compressed-operator backends share all code.
type applyFn func(dst, src *dense.Matrix)

// geometricIterate runs the Eq. (14) fixed point:
//
//	S_0     = (1−C)·I
//	S_{k+1} = (C/2)·(Q·S_k + S_k·Qᵀ) + (1−C)·I
//
// exploiting S_k symmetry: S_k·Qᵀ = (Q·S_k)ᵀ, so each iteration costs one
// sparse×dense product (the "single summation" the paper contrasts with
// SimRank's double one). The context is checked between iterations, so
// cancellation and deadlines abort a long run at iteration granularity.
func geometricIterate(ctx context.Context, n int, apply applyFn, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	iters := opt.IterationsGeometric()
	s := dense.New(n, n)
	s.AddDiag(1 - opt.C)
	m := dense.New(n, n)
	for k := 0; k < iters; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		apply(m, s) // m = Q·S_k
		assembleSymmetric(s, m, opt.C)
	}
	sieve(s, opt.Sieve)
	return s, nil
}

// assembleSymmetric computes s = (C/2)·(m + mᵀ) + (1−C)·I with tiled
// transpose reads, keeping the mᵀ accesses cache-resident.
func assembleSymmetric(s, m *dense.Matrix, c float64) {
	n := s.Rows
	halfC := c / 2
	const tile = 64
	nTiles := (n + tile - 1) / tile
	par.For(nTiles, 0, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			ilo, ihi := t*tile, (t+1)*tile
			if ihi > n {
				ihi = n
			}
			for jlo := 0; jlo < n; jlo += tile {
				jhi := jlo + tile
				if jhi > n {
					jhi = n
				}
				for i := ilo; i < ihi; i++ {
					row := s.Row(i)
					mi := m.Row(i)
					for j := jlo; j < jhi; j++ {
						row[j] = halfC * (mi[j] + m.Data[j*n+i])
					}
				}
			}
			for i := ilo; i < ihi; i++ {
				s.Data[i*n+i] += 1 - c
			}
		}
	})
}

// Geometric computes all-pairs geometric SimRank* with plain CSR iterations
// (the paper's iter-gSR*, O(Knm) time).
func Geometric(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := GeometricCtx(context.Background(), g, opt)
	return s
}

// GeometricCtx is Geometric with cancellation: the context is checked
// between iterations and the only possible error is ctx.Err().
func GeometricCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	return GeometricFromTransition(ctx, sparse.BackwardTransition(g), opt)
}

// GeometricFromTransition runs the geometric iterations against a pre-built
// backward transition matrix Q, the per-query amortisation a serving engine
// needs: build Q once, answer many queries.
func GeometricFromTransition(ctx context.Context, q *sparse.CSR, opt Options) (*dense.Matrix, error) {
	return geometricIterate(ctx, q.R, q.MulDenseInto, opt)
}

// GeometricMemo computes all-pairs geometric SimRank* through the
// biclique-compressed bigraph (the paper's memo-gSR*, Algorithm 1,
// O(Kn·m̃) time with m̃ <= m).
func GeometricMemo(g *graph.Graph, opt Options) *dense.Matrix {
	c := biclique.Compress(g, opt.Mine)
	return GeometricWithCompressed(g, c, opt)
}

// GeometricWithCompressed is GeometricMemo with a pre-built compression,
// letting callers amortise mining across runs (and letting the harness time
// the two phases separately, as the paper's Fig. 6(f) does).
func GeometricWithCompressed(g *graph.Graph, c *biclique.Compressed, opt Options) *dense.Matrix {
	s, _ := GeometricFromCompressed(context.Background(), c, opt)
	return s
}

// GeometricFromCompressed is GeometricWithCompressed with cancellation. A
// fresh operator is built per call, so concurrent calls may share c.
func GeometricFromCompressed(ctx context.Context, c *biclique.Compressed, opt Options) (*dense.Matrix, error) {
	op := c.Operator()
	return geometricIterate(ctx, c.N, op.Apply, opt)
}

// exponentialIterate runs the Eq. (19) recurrence
//
//	R_0 = I, T_0 = 0;  T_{k+1} = T_k + (C/2)ᵏ/k!·R_k,  R_{k+1} = Q·R_k
//
// and returns S = e^{−C}·T·Tᵀ (Theorem 3's closed form, truncated).
func exponentialIterate(ctx context.Context, n int, apply applyFn, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	iters := opt.IterationsExponential()
	r := dense.Identity(n)
	next := dense.New(n, n)
	t := dense.New(n, n)
	coef := 1.0 // (C/2)^k / k! at k = 0
	for k := 0; ; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t.Axpy(coef, r)
		if k == iters {
			break
		}
		apply(next, r)
		r, next = next, r
		coef *= opt.C / (2 * float64(k+1))
	}
	s := dense.MulABT(t, t)
	s.Scale(math.Exp(-opt.C))
	sieve(s, opt.Sieve)
	return s, nil
}

// Exponential computes all-pairs exponential SimRank* (the paper's eSR*)
// with plain CSR iterations.
func Exponential(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := ExponentialCtx(context.Background(), g, opt)
	return s
}

// ExponentialCtx is Exponential with cancellation checked between
// iterations.
func ExponentialCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	return ExponentialFromTransition(ctx, sparse.BackwardTransition(g), opt)
}

// ExponentialFromTransition runs the exponential recurrence against a
// pre-built backward transition matrix.
func ExponentialFromTransition(ctx context.Context, q *sparse.CSR, opt Options) (*dense.Matrix, error) {
	return exponentialIterate(ctx, q.R, q.MulDenseInto, opt)
}

// ExponentialMemo computes all-pairs exponential SimRank* through the
// compressed operator (the paper's memo-eSR*).
func ExponentialMemo(g *graph.Graph, opt Options) *dense.Matrix {
	c := biclique.Compress(g, opt.Mine)
	return ExponentialWithCompressed(g, c, opt)
}

// ExponentialWithCompressed is ExponentialMemo with a pre-built compression.
func ExponentialWithCompressed(g *graph.Graph, c *biclique.Compressed, opt Options) *dense.Matrix {
	s, _ := ExponentialFromCompressed(context.Background(), c, opt)
	return s
}

// ExponentialFromCompressed is ExponentialWithCompressed with cancellation.
// A fresh operator is built per call, so concurrent calls may share c.
func ExponentialFromCompressed(ctx context.Context, c *biclique.Compressed, opt Options) (*dense.Matrix, error) {
	op := c.Operator()
	return exponentialIterate(ctx, c.N, op.Apply, opt)
}

// sieve zeroes entries below eps in place (threshold-sieved similarities —
// the one Lizorkin optimisation that ports to SimRank*, Sec. 4.3).
func sieve(m *dense.Matrix, eps float64) {
	if eps <= 0 {
		return
	}
	for i, v := range m.Data {
		if v < eps {
			m.Data[i] = 0
		}
	}
}

// Sieve exposes threshold sieving for externally produced score matrices.
func Sieve(m *dense.Matrix, eps float64) { sieve(m, eps) }
