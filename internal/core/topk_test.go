package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sparse"
)

// topKRef is the obviously-correct reference: full selection by repeated
// maximum under the same total order TopK documents.
func topKRef(scores []float64, k int, exclude ...int) []Ranked {
	if k <= 0 {
		return nil
	}
	skip := make(map[int]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	var cand []Ranked
	for i, s := range scores {
		if !skip[i] {
			cand = append(cand, Ranked{Node: i, Score: s})
		}
	}
	var out []Ranked
	for len(out) < k && len(cand) > 0 {
		best := 0
		for i := 1; i < len(cand); i++ {
			if rankedBelow(cand[best], cand[i]) {
				best = i
			}
		}
		out = append(out, cand[best])
		cand = append(cand[:best], cand[best+1:]...)
	}
	return out
}

func rankedEqual(a, b []Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTopKMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		scores := make([]float64, n)
		for i := range scores {
			// Coarse quantisation forces plenty of exact ties.
			scores[i] = float64(rng.Intn(5)) / 4
		}
		k := rng.Intn(n + 3)
		var exclude []int
		for rng.Intn(3) == 0 {
			exclude = append(exclude, rng.Intn(n+2)-1)
		}
		want := topKRef(scores, k, exclude...)
		got := TopK(scores, k, exclude...)
		if !rankedEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d exclude=%v): TopK=%v want %v", trial, n, k, exclude, got, want)
		}
	}
}

func TestTopKIntoMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(7)) / 6
		}
		k := rng.Intn(n + 3)
		var exclude []int
		for len(exclude) < rng.Intn(4) {
			exclude = append(exclude, rng.Intn(n))
		}
		want := TopK(scores, k, exclude...)

		// Every dst shape must produce identical entries and order: nil,
		// exact capacity, oversized, and a dirty reused buffer.
		dsts := [][]Ranked{
			nil,
			make([]Ranked, 0, k),
			make([]Ranked, 0, n+5),
			{{Node: -1, Score: 99}, {Node: -2, Score: 98}},
		}
		for di, dst := range dsts {
			got := TopKInto(scores, k, dst, exclude...)
			if !rankedEqual(got, want) {
				t.Fatalf("trial %d dst %d: TopKInto=%v want %v", trial, di, got, want)
			}
		}
	}
}

func TestTopKIntoLargeExcludeList(t *testing.T) {
	// More than excludeScanMax exclusions takes the map path; the result
	// must not change.
	n := 100
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(i%10) / 10
	}
	var exclude []int
	for i := 0; i < excludeScanMax+5; i++ {
		exclude = append(exclude, i*3)
	}
	want := topKRef(scores, 12, exclude...)
	got := TopKInto(scores, 12, nil, exclude...)
	if !rankedEqual(got, want) {
		t.Fatalf("map-path TopKInto=%v want %v", got, want)
	}
}

func TestTopKIntoBoundaries(t *testing.T) {
	scores := []float64{0.3, 0.1, 0.2}
	if got := TopKInto(scores, 0, nil); got != nil {
		t.Fatalf("k=0 with nil dst: got %v, want nil", got)
	}
	if got := TopK(scores, -1); got != nil {
		t.Fatalf("k<0: got %v, want nil", got)
	}
	dst := make([]Ranked, 3)
	if got := TopKInto(scores, 0, dst); len(got) != 0 {
		t.Fatalf("k=0 with dst: got %v, want empty", got)
	}
	// k > n returns every candidate, fully ordered.
	got := TopKInto(scores, 10, nil, 1)
	want := []Ranked{{Node: 0, Score: 0.3}, {Node: 2, Score: 0.2}}
	if !rankedEqual(got, want) {
		t.Fatalf("k>n: got %v, want %v", got, want)
	}
	// All nodes excluded.
	if got := TopKInto(scores, 2, nil, 0, 1, 2); len(got) != 0 {
		t.Fatalf("all excluded: got %v, want empty", got)
	}
}

func TestTopKIntoTieBreakAscendingNode(t *testing.T) {
	// Equal scores must rank by ascending node id, best-first.
	scores := []float64{0.5, 0.5, 0.5, 0.5, 0.9}
	got := TopKInto(scores, 3, nil)
	want := []Ranked{{Node: 4, Score: 0.9}, {Node: 0, Score: 0.5}, {Node: 1, Score: 0.5}}
	if !rankedEqual(got, want) {
		t.Fatalf("tie-break: got %v, want %v", got, want)
	}
}

func TestTopKIntoZeroAllocs(t *testing.T) {
	n := 4096
	scores := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range scores {
		scores[i] = rng.Float64()
	}
	dst := make([]Ranked, 0, 10)
	allocs := testing.AllocsPerRun(50, func() {
		dst = TopKInto(scores, 10, dst, 17, 42)
	})
	if allocs != 0 {
		t.Fatalf("TopKInto with preallocated dst: %v allocs/op, want 0", allocs)
	}
}

func TestSingleSourceTopKWSMatchesMaterialized(t *testing.T) {
	g := ringWithChords(t, 64)
	qm := sparse.BackwardTransition(g)
	opt := Options{C: 0.6, K: 6}
	n := g.N()
	ws := sparse.NewWorkspace(n)
	scores := make([]float64, n)
	dst := make([]Ranked, 0, 8)
	ctx := context.Background()

	for q := 0; q < n; q += 7 {
		full, err := SingleSourceGeometricFromTransition(ctx, qm, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := TopK(full, 8, q)
		got, err := SingleSourceGeometricTopKWS(ctx, qm, q, 8, opt, ws, scores, dst, q)
		if err != nil {
			t.Fatal(err)
		}
		if !rankedEqual(got, want) {
			t.Fatalf("geometric q=%d: fused=%v want %v", q, got, want)
		}

		fullExp, err := SingleSourceExponentialFromTransition(ctx, qm, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		wantExp := TopK(fullExp, 8, q)
		gotExp, err := SingleSourceExponentialTopKWS(ctx, qm, q, 8, opt, ws, scores, dst, q)
		if err != nil {
			t.Fatal(err)
		}
		if !rankedEqual(gotExp, wantExp) {
			t.Fatalf("exponential q=%d: fused=%v want %v", q, gotExp, wantExp)
		}
	}
}

func TestSingleSourceTopKWSCancellation(t *testing.T) {
	g := ringWithChords(t, 32)
	qm := sparse.BackwardTransition(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scores := make([]float64, g.N())
	if _, err := SingleSourceGeometricTopKWS(ctx, qm, 0, 5, Options{}, nil, scores, nil); err == nil {
		t.Fatal("geometric fused top-k ignored cancelled context")
	}
	if _, err := SingleSourceExponentialTopKWS(ctx, qm, 0, 5, Options{}, nil, scores, nil); err == nil {
		t.Fatal("exponential fused top-k ignored cancelled context")
	}
}

// ringWithChords builds a small deterministic digraph: a directed ring with
// chord edges so walk vectors mix quickly.
func ringWithChords(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		if i%3 == 0 {
			b.AddEdge(i, (i+n/2)%n)
		}
		if i%5 == 0 {
			b.AddEdge((i+2)%n, i)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
