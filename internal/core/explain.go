package core

import (
	"context"
	"math"
	"sort"

	"repro/internal/graph"
)

// Explanation decomposes a geometric SimRank* score into individual in-link
// path contributions — the Figure-2/Section-3.2 view of the measure made
// executable. Each entry is one pair of walks from a common source to the
// two query nodes; its weight is
//
//	(1−C) · (C/2)^{α+β} · binom(α+β, α) · Π 1/|I(·)| (along both walks)
//
// and the weights of all pairs with α+β <= K sum exactly to the K-th
// partial sum Ŝ_K(i, j) (tested against the series oracle).
type Explanation struct {
	// Source is the common "source" node of the in-link path.
	Source int
	// WalkToA and WalkToB run from the source to each query node; the first
	// element is the source, the last is the query node. A length-0 walk
	// means the source *is* the query node.
	WalkToA, WalkToB []int
	// Contribution is this path pair's share of the similarity score.
	Contribution float64
}

// Symmetric reports whether the in-link path is symmetric (equal walk
// lengths, Definition 1) — the only kind SimRank itself counts.
func (e Explanation) Symmetric() bool { return len(e.WalkToA) == len(e.WalkToB) }

// walk is an in-link walk ending at a fixed node, stored source-first.
type walk struct {
	nodes  []int
	weight float64 // Π 1/|I(v)| over each step v (walk arrives at v via an in-edge)
}

// walksInto enumerates all walks of length <= maxLen that end at node t,
// following in-edges backwards, grouped by length. walks[l] holds walks of
// length l; each is capped at maxWalks entries to bound the blowup.
func walksInto(g *graph.Graph, t, maxLen, maxWalks int) [][]walk {
	out := make([][]walk, maxLen+1)
	out[0] = []walk{{nodes: []int{t}, weight: 1}}
	for l := 1; l <= maxLen; l++ {
		for _, w := range out[l-1] {
			head := w.nodes[0] // current start; extend by an in-edge of head
			in := g.In(head)
			if len(in) == 0 {
				continue
			}
			step := 1 / float64(len(in))
			for _, s := range in {
				if len(out[l]) >= maxWalks {
					break
				}
				nodes := make([]int, 0, len(w.nodes)+1)
				nodes = append(nodes, int(s))
				nodes = append(nodes, w.nodes...)
				out[l] = append(out[l], walk{nodes: nodes, weight: w.weight * step})
			}
		}
	}
	return out
}

// ExplainGeometric enumerates the in-link path pairs of (a, b) with total
// length <= maxLen and returns them sorted by descending contribution.
// maxWalks caps the enumeration per (node, length); 0 means 10000. With the
// cap unhit, contributions sum to the exact partial sum Ŝ_{maxLen}(a, b).
func ExplainGeometric(g *graph.Graph, a, b int, c float64, maxLen, maxWalks int) []Explanation {
	out, _ := ExplainGeometricCtx(context.Background(), g, a, b, c, maxLen, maxWalks)
	return out
}

// ExplainGeometricCtx is ExplainGeometric with cancellation checked between
// length classes — the pair enumeration is combinatorial, so a deadline
// must be able to abort it.
func ExplainGeometricCtx(ctx context.Context, g *graph.Graph, a, b int, c float64, maxLen, maxWalks int) ([]Explanation, error) {
	if maxWalks <= 0 {
		maxWalks = 10000
	}
	wa := walksInto(g, a, maxLen, maxWalks)
	wb := walksInto(g, b, maxLen, maxWalks)
	var out []Explanation
	for alpha := 0; alpha <= maxLen; alpha++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for beta := 0; alpha+beta <= maxLen; beta++ {
			coef := (1 - c) * math.Pow(c/2, float64(alpha+beta)) * binom(alpha+beta, alpha)
			for _, w1 := range wa[alpha] {
				for _, w2 := range wb[beta] {
					if w1.nodes[0] != w2.nodes[0] {
						continue // different sources: not an in-link path
					}
					out = append(out, Explanation{
						Source:       w1.nodes[0],
						WalkToA:      w1.nodes,
						WalkToB:      w2.nodes,
						Contribution: coef * w1.weight * w2.weight,
					})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Contribution > out[j].Contribution })
	return out, nil
}

// ExplainedScore sums the contributions — the reconstructed Ŝ_K(a, b).
func ExplainedScore(exps []Explanation) float64 {
	var s float64
	for _, e := range exps {
		s += e.Contribution
	}
	return s
}
