package core

import (
	"context"
	"math"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// Single-source SimRank* answers one query node in O(K·m + K²·n) time
// without materialising the n×n matrix — the regime the paper's Exp-1
// evaluates (500 single-node queries per graph). Both forms factor through
// the walk vectors w_j = (Qᵀ)ʲ·e_q:
//
// Geometric: row q of Eq. (9) is
//
//	ŝ_q = (1−C) Σ_{α+β<=K} (C/2)^{α+β} binom(α+β, α) Q^α w_β
//	    = (1−C) Σ_α Q^α y_α,   y_α = Σ_β (C/2)^{α+β} binom(α+β,α) w_β,
//
// evaluated by Horner's rule in Q. Exponential: Theorem 3 gives
//
//	ŝ_q = e^{−C} · T_K · (T_Kᵀ e_q),  T_K = Σ_i (C/2)ⁱ/i!·Qⁱ,
//
// so one backward sweep builds v = T_Kᵀ e_q and one forward sweep applies
// T_K. Both match the corresponding all-pairs rows exactly (tested).
//
// The *FromTransition variants take a pre-built Q so a serving engine can
// amortise the CSR construction across queries; the context is checked
// between sweeps so deadlines and cancellation abort long runs.

// foldPollStride is how many fold-loop Axpys run between amortised context
// checks (see sparse.CtxPoll): small enough that a per-query deadline lands
// within a few O(n) vector ops, large enough that the poll stays off the
// fold's critical path.
const foldPollStride = 8

// SingleSourceGeometric returns the geometric SimRank* scores between q and
// every node, identical to row q of Geometric(g, opt).
func SingleSourceGeometric(g *graph.Graph, q int, opt Options) []float64 {
	s, _ := SingleSourceGeometricFromTransition(context.Background(), sparse.BackwardTransition(g), q, opt)
	return s
}

// SingleSourceGeometricCtx is SingleSourceGeometric with cancellation.
func SingleSourceGeometricCtx(ctx context.Context, g *graph.Graph, q int, opt Options) ([]float64, error) {
	return SingleSourceGeometricFromTransition(ctx, sparse.BackwardTransition(g), q, opt)
}

// SingleSourceGeometricFromTransition answers a geometric single-source
// query against a pre-built backward transition matrix.
func SingleSourceGeometricFromTransition(ctx context.Context, qm *sparse.CSR, q int, opt Options) ([]float64, error) {
	dst := make([]float64, qm.R)
	if err := SingleSourceGeometricWS(ctx, qm, q, opt, nil, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// SingleSourceGeometricWS is the workspace form of the geometric
// single-source kernel: it writes the scores into dst (length n) and draws
// every intermediate vector from ws, so a serving layer that pools
// workspaces and reuses result buffers pays zero allocations per query. A
// nil ws uses a private one. The arithmetic — coefficients and per-element
// accumulation order — is identical to the allocating kernel, so the scores
// are bitwise-equal.
//
//simstar:noalloc
func SingleSourceGeometricWS(ctx context.Context, qm *sparse.CSR, q int, opt Options, ws *sparse.Workspace, dst []float64) error {
	opt = opt.withDefaults()
	k := opt.IterationsGeometric()
	n := qm.R
	if len(dst) != n {
		panic("core: SingleSourceGeometricWS dst length mismatch")
	}
	if ws == nil {
		//simstar:lint-ignore noalloc nil-ws convenience fallback, off the pooled serving path
		ws = sparse.NewWorkspace(n)
	} else if ws.Dim() != n {
		panic("core: SingleSourceGeometricWS workspace dimension mismatch")
	}
	ws.Reset()
	// Backward sweeps parallelise as gathers over the materialised
	// transpose; without it only the forward (Horner) sweeps fan out.
	sw := opt.Parallel
	qt := opt.Transposed

	// y_α accumulates Σ_β (C/2)^{α+β} binom(α+β, α) w_β; each walk vector
	// w_β = (Qᵀ)^β e_q folds into every y_α it contributes to as soon as it
	// exists, so only two walk buffers are ever live.
	y := ws.TakeVecs(k + 1)
	cur := ws.Take()
	cur[q] = 1
	next := ws.Raw()
	half := opt.C / 2
	sweeps := 0
	// The fold runs O(K²) dense Axpys between backward sweeps; the amortised
	// poller bounds cancellation latency there to foldPollStride Axpys, so a
	// deadline firing mid-fold aborts the query without waiting for the next
	// sweep boundary.
	poll := sparse.PollEvery(ctx, foldPollStride)
	for beta := 0; beta <= k; beta++ {
		if beta > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			if sw != nil && qt != nil {
				sw.MulVecInto(qt, next, cur)
			} else {
				qm.MulVecTInto(next, cur)
			}
			sweeps++
			cur, next = next, cur
		}
		for alpha := 0; alpha+beta <= k; alpha++ {
			if err := poll.Check(); err != nil {
				return err
			}
			coef := math.Pow(half, float64(alpha+beta)) * binom(alpha+beta, alpha)
			dense.Axpy(y[alpha], coef, cur)
		}
	}

	// Horner: z = y_K; z = Q·z + y_α for α = K−1 .. 0, the addition fused
	// into the sweep and the final (1−C) normalisation folded into the last
	// step.
	z := y[k]
	for alpha := k - 1; alpha >= 1; alpha-- {
		if err := ctx.Err(); err != nil {
			return err
		}
		if sw != nil {
			sw.MulVecAddInto(qm, next, z, y[alpha])
		} else {
			qm.MulVecAddInto(next, z, y[alpha])
		}
		sweeps++
		z, next = next, z
	}
	if k == 0 {
		dense.ScaledCopy(dst, 1-opt.C, y[0])
	} else {
		if err := ctx.Err(); err != nil {
			return err
		}
		if sw != nil {
			sw.MulVecAddScaleInto(qm, dst, z, y[0], 1-opt.C)
		} else {
			qm.MulVecAddScaleInto(dst, z, y[0], 1-opt.C)
		}
		sweeps++
	}
	applySieveVec(dst, opt.Sieve)
	if tr := opt.Trace; tr != nil {
		tr.AddSweeps(sweeps)
		if sw != nil {
			tr.AddParSweeps(sw.TakeParSweeps(), sw.Workers())
		}
	}
	return nil
}

// SingleSourceExponential returns the exponential SimRank* scores between q
// and every node, identical to row q of Exponential(g, opt).
func SingleSourceExponential(g *graph.Graph, q int, opt Options) []float64 {
	s, _ := SingleSourceExponentialFromTransition(context.Background(), sparse.BackwardTransition(g), q, opt)
	return s
}

// SingleSourceExponentialCtx is SingleSourceExponential with cancellation.
func SingleSourceExponentialCtx(ctx context.Context, g *graph.Graph, q int, opt Options) ([]float64, error) {
	return SingleSourceExponentialFromTransition(ctx, sparse.BackwardTransition(g), q, opt)
}

// SingleSourceExponentialFromTransition answers an exponential single-source
// query against a pre-built backward transition matrix.
func SingleSourceExponentialFromTransition(ctx context.Context, qm *sparse.CSR, q int, opt Options) ([]float64, error) {
	dst := make([]float64, qm.R)
	if err := SingleSourceExponentialWS(ctx, qm, q, opt, nil, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// SingleSourceExponentialWS is the workspace form of the exponential
// single-source kernel: scores go into dst (length n), intermediates come
// from ws (nil for a private one), and the arithmetic is bitwise-identical
// to the allocating kernel.
//
//simstar:noalloc
func SingleSourceExponentialWS(ctx context.Context, qm *sparse.CSR, q int, opt Options, ws *sparse.Workspace, dst []float64) error {
	opt = opt.withDefaults()
	k := opt.IterationsExponential()
	n := qm.R
	if len(dst) != n {
		panic("core: SingleSourceExponentialWS dst length mismatch")
	}
	if ws == nil {
		//simstar:lint-ignore noalloc nil-ws convenience fallback, off the pooled serving path
		ws = sparse.NewWorkspace(n)
	} else if ws.Dim() != n {
		panic("core: SingleSourceExponentialWS workspace dimension mismatch")
	}
	ws.Reset()
	sw := opt.Parallel
	qt := opt.Transposed

	// v = T_Kᵀ e_q = Σ_j (C/2)ʲ/j!·(Qᵀ)ʲ e_q.
	v := ws.Take()
	cur := ws.Take()
	cur[q] = 1
	next := ws.Raw()
	coef := 1.0
	sweeps := 0
	for j := 0; ; j++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		dense.Axpy(v, coef, cur)
		if j == k {
			break
		}
		if sw != nil && qt != nil {
			sw.MulVecInto(qt, next, cur)
		} else {
			qm.MulVecTInto(next, cur)
		}
		sweeps++
		cur, next = next, cur
		coef *= opt.C / (2 * float64(j+1))
	}

	// s = e^{−C}·T_K·v = e^{−C} Σ_i (C/2)ⁱ/i!·Qⁱ v, accumulated in dst.
	dense.ZeroVec(dst)
	fcur, fnext := v, cur // cur's walk buffer is dead after the last fold
	coef = 1.0
	for i := 0; ; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		dense.Axpy(dst, coef, fcur)
		if i == k {
			break
		}
		if sw != nil {
			sw.MulVecInto(qm, fnext, fcur)
		} else {
			qm.MulVecInto(fnext, fcur)
		}
		sweeps++
		fcur, fnext = fnext, fcur
		coef *= opt.C / (2 * float64(i+1))
	}
	dense.ScaleVec(dst, math.Exp(-opt.C))
	applySieveVec(dst, opt.Sieve)
	if tr := opt.Trace; tr != nil {
		tr.AddSweeps(sweeps)
		if sw != nil {
			tr.AddParSweeps(sw.TakeParSweeps(), sw.Workers())
		}
	}
	return nil
}

func applySieveVec(x []float64, eps float64) {
	if eps <= 0 {
		return
	}
	for i, v := range x {
		if v < eps {
			x[i] = 0
		}
	}
}

// Ranked is one entry of a top-k result.
type Ranked struct {
	Node  int
	Score float64
}

// rankedBelow is the total order of top-k selection: a ranks below b when
// its score is lower, or at equal score when its node id is larger — the
// deterministic tie-break by node id.
func rankedBelow(a, b Ranked) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Node > b.Node
}

// TopK returns the k highest-scoring nodes from a score vector, excluding
// the nodes in `exclude` (typically the query itself). Ties break by node id
// for determinism. Selection uses a bounded min-heap over the candidates —
// O(n log k) instead of a full O(n log n) sort, the difference between a
// per-query sort of millions of nodes and a cheap scan when k is small.
//
// The boundaries are defined, not incidental: k <= 0 returns an empty
// result, and k greater than the number of candidates (len(scores) minus
// the excluded nodes) returns every candidate, fully ordered.
func TopK(scores []float64, k int, exclude ...int) []Ranked {
	return TopKInto(scores, k, nil, exclude...)
}

// excludeScanMax is the exclusion-list length up to which TopKInto skips
// excluded nodes by linear scan. Past it a lookup map is cheaper — and worth
// its allocation, since a caller excluding hundreds of nodes is not on the
// zero-alloc streaming path.
const excludeScanMax = 16

// excludedNode reports whether node is in exclude.
func excludedNode(exclude []int, node int) bool {
	for _, e := range exclude {
		if e == node {
			return true
		}
	}
	return false
}

// rankedSiftUp restores the min-heap order of h (under rankedBelow) after an
// append at index i.
func rankedSiftUp(h []Ranked, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !rankedBelow(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// rankedSiftDown restores the min-heap order of h after the root changed.
func rankedSiftDown(h []Ranked) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && rankedBelow(h[l], h[min]) {
			min = l
		}
		if r < len(h) && rankedBelow(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// TopKInto is TopK writing into caller-provided storage — the
// bounded-materialization selection behind the streaming top-k paths. The
// result is built in dst's backing array (grown only when cap(dst) < the
// clamped k) and returned; entries and order are identical to TopK. With
// cap(dst) >= min(k, len(scores)) and at most excludeScanMax excluded nodes
// the call performs zero heap allocations, so a pooling caller selects the
// top k of an n-vector without materialising anything but the k results.
func TopKInto(scores []float64, k int, dst []Ranked, exclude ...int) []Ranked {
	if k <= 0 {
		return dst[:0]
	}
	// Clamp before sizing the heap: it can never hold more than one entry
	// per score, so an oversized k must not grow the backing array.
	if k > len(scores) {
		k = len(scores)
	}
	var skip map[int]bool
	if len(exclude) > excludeScanMax {
		skip = make(map[int]bool, len(exclude))
		for _, e := range exclude {
			skip[e] = true
		}
	}
	// h is a min-heap under rankedBelow: h[0] is the weakest kept entry.
	h := dst[:0]
	if cap(h) < k {
		h = make([]Ranked, 0, k)
	}
	for i, s := range scores {
		if skip != nil {
			if skip[i] {
				continue
			}
		} else if excludedNode(exclude, i) {
			continue
		}
		r := Ranked{Node: i, Score: s}
		if len(h) < k {
			h = append(h, r)
			rankedSiftUp(h, len(h)-1)
		} else if rankedBelow(h[0], r) {
			h[0] = r
			rankedSiftDown(h)
		}
	}
	// Order the survivors best-first (score descending, node id ascending)
	// by in-place heapsort: popping the weakest to the back repeatedly
	// leaves the strongest at the front. rankedBelow is a strict total
	// order, so this is the exact sequence a comparison sort produces.
	for i := len(h) - 1; i > 0; i-- {
		h[0], h[i] = h[i], h[0]
		rankedSiftDown(h[:i])
	}
	return h
}

// SingleSourceGeometricTopKWS fuses the geometric single-source kernel with
// bounded top-k selection: the full score vector lands in scores (length n,
// scratch — kernels reset ws, so it must not come from the same workspace)
// and only the selected entries are built, in dst's backing array. With a
// pooled scores buffer and cap(dst) >= k the query materialises nothing of
// size O(n) beyond its reused scratch: the result is k entries, not a
// per-query n-vector. Entries and order are exactly
// TopK(SingleSourceGeometric..., k, exclude...).
func SingleSourceGeometricTopKWS(ctx context.Context, qm *sparse.CSR, q, k int, opt Options, ws *sparse.Workspace, scores []float64, dst []Ranked, exclude ...int) ([]Ranked, error) {
	if err := SingleSourceGeometricWS(ctx, qm, q, opt, ws, scores); err != nil {
		return nil, err
	}
	return TopKInto(scores, k, dst, exclude...), nil
}

// SingleSourceExponentialTopKWS is the exponential-form counterpart of
// SingleSourceGeometricTopKWS: kernel into the scores scratch, bounded
// selection into dst, zero per-query allocations on the pooled path.
func SingleSourceExponentialTopKWS(ctx context.Context, qm *sparse.CSR, q, k int, opt Options, ws *sparse.Workspace, scores []float64, dst []Ranked, exclude ...int) ([]Ranked, error) {
	if err := SingleSourceExponentialWS(ctx, qm, q, opt, ws, scores); err != nil {
		return nil, err
	}
	return TopKInto(scores, k, dst, exclude...), nil
}
