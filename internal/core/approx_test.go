package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sparse"
)

// The sieved kernels' whole contract is the certificate: on any graph, for
// any tolerance, the element-wise deviation from the exact kernel must stay
// within the returned MaxError, which must stay within the tolerance.
func TestApproxGeometricCertificate(t *testing.T) {
	ctx := context.Background()
	for _, tol := range []float64{1e-2, 1e-3, 1e-5, 1e-7} {
		for seed := int64(1); seed <= 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 20 + rng.Intn(60)
			g := randomApproxGraph(rng, n, 3*n)
			qm := sparse.BackwardTransition(g)
			qt := qm.Transpose()
			opt := Options{C: 0.6, K: 5}
			for q := 0; q < n; q += 7 {
				exact, err := SingleSourceGeometricFromTransition(ctx, qm, q, opt)
				if err != nil {
					t.Fatal(err)
				}
				approx, bound, err := ApproxSingleSourceGeometricFromTransition(ctx, qm, qt, q, tol, opt)
				if err != nil {
					t.Fatal(err)
				}
				checkCertificate(t, exact, approx, bound, tol)
			}
		}
	}
}

func TestApproxExponentialCertificate(t *testing.T) {
	ctx := context.Background()
	for _, tol := range []float64{1e-2, 1e-3, 1e-5, 1e-7} {
		for seed := int64(11); seed <= 14; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 20 + rng.Intn(60)
			g := randomApproxGraph(rng, n, 3*n)
			qm := sparse.BackwardTransition(g)
			qt := qm.Transpose()
			opt := Options{C: 0.6, K: 7}
			for q := 0; q < n; q += 7 {
				exact, err := SingleSourceExponentialFromTransition(ctx, qm, q, opt)
				if err != nil {
					t.Fatal(err)
				}
				approx, bound, err := ApproxSingleSourceExponentialFromTransition(ctx, qm, qt, q, tol, opt)
				if err != nil {
					t.Fatal(err)
				}
				checkCertificate(t, exact, approx, bound, tol)
			}
		}
	}
}

// The multi-source wrappers reuse one workspace across queries; residue from
// an earlier query leaking into a later one would break the certificate, so
// every result must match its standalone single-source run exactly.
func TestApproxMultiSourceMatchesSingleSource(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	g := randomApproxGraph(rng, 50, 150)
	qm := sparse.BackwardTransition(g)
	qt := qm.Transpose()
	opt := Options{C: 0.6, K: 5}
	nodes := []int{0, 7, 7, 13, 49}
	const tol = 1e-4

	multi, errsG, err := ApproxMultiSourceGeometricFromTransition(ctx, qm, qt, nodes, tol, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range nodes {
		single, bound, err := ApproxSingleSourceGeometricFromTransition(ctx, qm, qt, q, tol, opt)
		if err != nil {
			t.Fatal(err)
		}
		if errsG[i] != bound {
			t.Fatalf("geometric q=%d: multi bound %g != single bound %g", q, errsG[i], bound)
		}
		for j := range single {
			if multi[i][j] != single[j] {
				t.Fatalf("geometric q=%d j=%d: multi %g != single %g", q, j, multi[i][j], single[j])
			}
		}
	}

	multiE, errsE, err := ApproxMultiSourceExponentialFromTransition(ctx, qm, qt, nodes, tol, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range nodes {
		single, bound, err := ApproxSingleSourceExponentialFromTransition(ctx, qm, qt, q, tol, opt)
		if err != nil {
			t.Fatal(err)
		}
		if errsE[i] != bound {
			t.Fatalf("exponential q=%d: multi bound %g != single bound %g", q, errsE[i], bound)
		}
		for j := range single {
			if multiE[i][j] != single[j] {
				t.Fatalf("exponential q=%d j=%d: multi %g != single %g", q, j, multiE[i][j], single[j])
			}
		}
	}
}

func TestApproxKernelsHonourCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomApproxGraph(rng, 30, 90)
	qm := sparse.BackwardTransition(g)
	qt := qm.Transpose()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ApproxSingleSourceGeometricFromTransition(ctx, qm, qt, 0, 1e-4, Options{}); err == nil {
		t.Fatal("geometric: want cancellation error")
	}
	if _, _, err := ApproxSingleSourceExponentialFromTransition(ctx, qm, qt, 0, 1e-4, Options{}); err == nil {
		t.Fatal("exponential: want cancellation error")
	}
}

// checkCertificate asserts the two-sided contract |approx−exact| <= bound
// <= tol element-wise.
func checkCertificate(t *testing.T, exact, approx []float64, bound, tol float64) {
	t.Helper()
	if bound > tol {
		t.Fatalf("MaxError %g exceeds tolerance %g", bound, tol)
	}
	for i := range exact {
		if diff := math.Abs(approx[i] - exact[i]); diff > bound {
			t.Fatalf("entry %d: |approx−exact| = %g exceeds certificate %g (tol %g)", i, diff, bound, tol)
		}
	}
}

func randomApproxGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]int, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return graph.FromEdges(n, edges)
}

// lowDegreeGraph builds the benchmark's 100k-node sparse graph: every node
// links to a handful of mostly-local neighbours, the regime (social and
// citation graphs) where a query's K-hop in-neighbourhood stays far below n
// and the sieved frontier path should win big.
func lowDegreeGraph(n, deg int) *graph.Graph {
	rng := rand.New(rand.NewSource(1729))
	edges := make([][2]int, 0, n*deg)
	for u := 0; u < n; u++ {
		for d := 0; d < deg; d++ {
			v := u + 1 + rng.Intn(64)
			if v >= n {
				v -= n
			}
			edges = append(edges, [2]int{u, v})
		}
	}
	return graph.FromEdges(n, edges)
}

// BenchmarkApproxSingleSource100k records the tentpole speedup: sieved
// single-source geometric SimRank* at eps=1e-4 against the exact dense
// kernel on a 100k-node low-degree graph. Compare the exact and approx
// sub-benchmark times for the multiplier.
func BenchmarkApproxSingleSource100k(b *testing.B) {
	g := lowDegreeGraph(100_000, 3)
	qm := sparse.BackwardTransition(g)
	qt := qm.Transpose()
	opt := Options{C: 0.6, K: 5}
	ctx := context.Background()
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SingleSourceGeometricFromTransition(ctx, qm, i%g.N(), opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("approx-1e-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ApproxSingleSourceGeometricFromTransition(ctx, qm, qt, i%g.N(), 1e-4, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("approx-exponential-1e-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ApproxSingleSourceExponentialFromTransition(ctx, qm, qt, i%g.N(), 1e-4, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
