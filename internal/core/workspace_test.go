package core

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sparse"
)

// The workspace kernels promise bitwise equality with the allocating
// kernels: same coefficients, same accumulation order, only the buffers'
// lifetimes differ. Reusing one workspace (and one dst) across many queries
// must not leak state between runs.
func TestSingleSourceWorkspaceKernelsBitwise(t *testing.T) {
	g := dataset.RMATDefault(7, 4, 41)
	qm := sparse.BackwardTransition(g)
	ctx := context.Background()
	ws := sparse.NewWorkspace(qm.R)
	dst := make([]float64, qm.R)
	for _, opt := range []Options{{C: 0.6, K: 5}, {C: 0.8, K: 1}, {C: 0.3, K: 0}, {C: 0.6, K: 4, Sieve: 1e-3}} {
		for q := 0; q < qm.R; q += 17 {
			want, err := SingleSourceGeometricFromTransition(ctx, qm, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := SingleSourceGeometricWS(ctx, qm, q, opt, ws, dst); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("geometric opt=%+v q=%d: [%d] = %g, want %g", opt, q, i, dst[i], want[i])
				}
			}
			want, err = SingleSourceExponentialFromTransition(ctx, qm, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := SingleSourceExponentialWS(ctx, qm, q, opt, ws, dst); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("exponential opt=%+v q=%d: [%d] = %g, want %g", opt, q, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestSingleSourceWorkspaceCancellation(t *testing.T) {
	g := dataset.RMATDefault(6, 4, 42)
	qm := sparse.BackwardTransition(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]float64, qm.R)
	if err := SingleSourceGeometricWS(ctx, qm, 0, Options{}, nil, dst); err != context.Canceled {
		t.Fatalf("geometric: err = %v, want context.Canceled", err)
	}
	if err := SingleSourceExponentialWS(ctx, qm, 0, Options{}, nil, dst); err != context.Canceled {
		t.Fatalf("exponential: err = %v, want context.Canceled", err)
	}
}
