package core

import (
	"context"
	"math"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Blocked multi-source SimRank*: B single-source queries answered by one
// run of the iteration with an n×B dense block in place of the length-n
// vector. The arithmetic is identical to B independent single-source runs —
// same coefficients, same accumulation order, so the results match the
// single-source kernels bitwise — but every sparse sweep traverses Q's CSR
// structure once for all B right-hand sides instead of once per query, and
// the inner update becomes a contiguous B-wide axpy instead of a scalar
// gather. That is the batching win a serving system sees even on one core;
// on many cores the row-parallel SpMM stacks on top of it.
//
// Both kernels take the backward transition matrix qm and its materialised
// transpose qt: the scatter-form MulVecT of the single-source path would
// serialise the block, whereas qt lets the backward sweeps use the same
// row-parallel gather SpMM as the forward sweeps.

// denseSweep runs one block sweep c = m·b. With a Sweeper the fan-out width
// is the sweeper's configured worker count; without one the serial kernel's
// own par.For fans out across all cores — the default the engine preserves
// when no explicit parallelism was requested. Both forms are
// bitwise-identical for any worker count.
func denseSweep(sw *sparse.Sweeper, m *sparse.CSR, c, b *dense.Matrix) {
	if sw != nil {
		sw.MulDenseInto(m, c, b)
		return
	}
	m.MulDenseInto(c, b)
}

// MultiSourceGeometricFromTransition answers one geometric SimRank*
// single-source query per entry of nodes, against a pre-built backward
// transition matrix qm and its transpose qt. Result i is exactly
// SingleSourceGeometricFromTransition(ctx, qm, nodes[i], opt).
func MultiSourceGeometricFromTransition(ctx context.Context, qm, qt *sparse.CSR, nodes []int, opt Options) ([][]float64, error) {
	opt = opt.withDefaults()
	k := opt.IterationsGeometric()
	n := qm.R
	b := len(nodes)
	if b == 0 {
		return nil, nil
	}

	// cur starts as E, one basis column per query node, and walks through
	// w_β = (Qᵀ)^β·E. Each w_β is folded into every y_α it contributes to
	// as soon as it exists, so only one walk block is live at a time.
	cur := dense.New(n, b)
	for t, q := range nodes {
		cur.Row(q)[t] = 1
	}
	half := opt.C / 2
	y := make([]*dense.Matrix, k+1)
	for alpha := range y {
		y[alpha] = dense.New(n, b)
	}
	tmp := dense.New(n, b)
	for beta := 0; beta <= k; beta++ {
		if beta > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			denseSweep(opt.Parallel, qt, tmp, cur)
			cur, tmp = tmp, cur
		}
		for alpha := 0; alpha+beta <= k; alpha++ {
			coef := math.Pow(half, float64(alpha+beta)) * binom(alpha+beta, alpha)
			dense.Axpy(y[alpha].Data, coef, cur.Data)
		}
	}

	// Horner: Z = Y_K; Z = Q·Z + Y_α for α = K−1 .. 0. The two spare blocks
	// (cur's and Y_K's backing arrays, dead after their last read) serve as
	// the ping-pong buffers.
	z := y[k]
	zbuf := cur
	for alpha := k - 1; alpha >= 0; alpha-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		denseSweep(opt.Parallel, qm, zbuf, z)
		z, zbuf = zbuf, z
		dense.Axpy(z.Data, 1, y[alpha].Data)
	}
	for i := range z.Data {
		z.Data[i] *= 1 - opt.C
	}
	applySieveVec(z.Data, opt.Sieve)
	return z.SplitColumns(), nil
}

// MultiSourceExponentialFromTransition answers one exponential SimRank*
// single-source query per entry of nodes, against a pre-built backward
// transition matrix qm and its transpose qt. Result i is exactly
// SingleSourceExponentialFromTransition(ctx, qm, nodes[i], opt).
func MultiSourceExponentialFromTransition(ctx context.Context, qm, qt *sparse.CSR, nodes []int, opt Options) ([][]float64, error) {
	opt = opt.withDefaults()
	k := opt.IterationsExponential()
	n := qm.R
	b := len(nodes)
	if b == 0 {
		return nil, nil
	}

	// V = T_Kᵀ·E = Σ_j (C/2)ʲ/j!·(Qᵀ)ʲ·E.
	v := dense.New(n, b)
	cur := dense.New(n, b)
	for t, q := range nodes {
		cur.Row(q)[t] = 1
	}
	tmp := dense.New(n, b)
	coef := 1.0
	for j := 0; ; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dense.Axpy(v.Data, coef, cur.Data)
		if j == k {
			break
		}
		denseSweep(opt.Parallel, qt, tmp, cur)
		cur, tmp = tmp, cur
		coef *= opt.C / (2 * float64(j+1))
	}

	// S = e^{−C}·T_K·V, accumulated the same way forward.
	s := dense.New(n, b)
	coef = 1.0
	for i := 0; ; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dense.Axpy(s.Data, coef, v.Data)
		if i == k {
			break
		}
		denseSweep(opt.Parallel, qm, tmp, v)
		v, tmp = tmp, v
		coef *= opt.C / (2 * float64(i+1))
	}
	scale := math.Exp(-opt.C)
	for i := range s.Data {
		s.Data[i] *= scale
	}
	applySieveVec(s.Data, opt.Sieve)
	return s.SplitColumns(), nil
}
