package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeFloatCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	var f FloatCounter
	f.Add(0.25)
	f.Add(1.5)
	if got := f.Value(); got != 1.75 {
		t.Errorf("float counter = %g, want 1.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 106.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// Non-cumulative internal buckets: <=1: two (0.5, 1), <=2: one (1.5),
	// <=4: one (3), +Inf: one (100).
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestRegistryIdempotentAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Label{Name: "route", Value: "a"})
	b := r.Counter("x_total", "help", Label{Name: "route", Value: "a"})
	if a != b {
		t.Error("re-registering the same (name, labels) returned a different counter")
	}
	if c := r.Counter("x_total", "help", Label{Name: "route", Value: "b"}); c == a {
		t.Error("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestWritePrometheusRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", Label{Name: "route", Value: "single"}).Add(3)
	r.Counter("req_total", "requests", Label{Name: "route", Value: `we"ird\`}).Add(1)
	r.FloatCounter("spend_total", "sieve spend").Add(0.125)
	r.Gauge("in_flight", "in flight").Set(2)
	r.GaugeFunc("epoch", "epoch", func() float64 { return 42 })
	h := r.Histogram("latency_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v\n%s", err, text)
	}
	want := map[string]float64{
		`req_total{route="single"}`:          3,
		`req_total{route="we\"ird\\"}`:       1,
		"spend_total":                        0.125,
		"in_flight":                          2,
		"epoch":                              42,
		`latency_seconds_bucket{le="0.001"}`: 1,
		`latency_seconds_bucket{le="0.01"}`:  1,
		`latency_seconds_bucket{le="+Inf"}`:  2,
		"latency_seconds_sum":                0.5005,
		"latency_seconds_count":              2,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Errorf("sample %q missing from exposition:\n%s", k, text)
			continue
		}
		if math.Abs(got-v) > 1e-9 {
			t.Errorf("sample %q = %g, want %g", k, got, v)
		}
	}
	// Snapshot agrees with the scalar samples it covers.
	snap := r.Snapshot()
	if snap[`req_total{route="single"}`] != 3 {
		t.Errorf("snapshot counter = %g, want 3", snap[`req_total{route="single"}`])
	}
	if snap["latency_seconds_count"] != 2 {
		t.Errorf("snapshot histogram count = %g, want 2", snap["latency_seconds_count"])
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"0bad_name 1\n",
		"name{route=\"a\" 1\n",
		"name 1.2.3\n",
		"# TYPE name sideways\n",
		"# TYPE name\n",
	}
	for _, text := range bad {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("ParseText accepted malformed input %q", text)
		}
	}
	ok := "# HELP a b\n# TYPE a counter\na 1\nb{x=\"y\",z=\"w\"} 2 1700000000\nc{} 3\n"
	samples, err := ParseText(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ParseText rejected valid input: %v", err)
	}
	if samples["a"] != 1 || samples[`b{x="y",z="w"}`] != 2 {
		t.Errorf("unexpected samples: %v", samples)
	}
}

func TestConcurrentUpdatesWhileRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", LatencyBuckets)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.001)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if _, err := ParseText(&buf); err != nil {
			t.Fatalf("scrape %d failed to parse: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestKernelTraceNilSafe(t *testing.T) {
	var kt *KernelTrace
	kt.AddSweeps(3)       // must not panic
	kt.ObserveFrontier(5) // must not panic
	kt.AddSieveSpend(0.1) // must not panic
	kt.Reset()            // must not panic

	var real KernelTrace
	real.AddSweeps(2)
	real.ObserveFrontier(10)
	real.ObserveFrontier(4)
	real.AddSieveSpend(0.5)
	real.AddSieveSpend(0.25)
	if real.Sweeps != 2 || real.FrontierMax != 10 || real.FrontierLast != 4 {
		t.Errorf("kernel trace fields wrong: %+v", real)
	}
	if real.SievePoints != 2 || real.SieveSpend != 0.75 {
		t.Errorf("sieve accounting wrong: %+v", real)
	}
	real.Reset()
	if real != (KernelTrace{}) {
		t.Errorf("Reset left state: %+v", real)
	}
}

func TestTraceSpans(t *testing.T) {
	var tr Trace
	start := time.Now()
	tr.AddSpan("cache", 1500*time.Nanosecond)
	tr.AddSpan("kernel", 2*time.Millisecond)
	tr.Finish(start)
	if len(tr.Spans) != 2 || tr.Spans[0].Stage != "cache" || tr.Spans[1].Stage != "kernel" {
		t.Fatalf("spans wrong: %+v", tr.Spans)
	}
	if tr.Spans[0].DurationUs != 1.5 {
		t.Errorf("span duration = %g, want 1.5", tr.Spans[0].DurationUs)
	}
	if tr.TotalUs <= 0 {
		t.Errorf("TotalUs = %g, want > 0", tr.TotalUs)
	}
}

func TestHotPathUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", LatencyBuckets)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.004)
	}); n != 0 {
		t.Errorf("hot-path updates allocate %v times per run, want 0", n)
	}
}
