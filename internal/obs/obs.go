// Package obs is the engine's dependency-free observability core:
// monotonic counters, gauges and fixed-bucket histograms with atomic
// hot-path updates, a Registry that renders the Prometheus text exposition
// format, and the per-query Trace / KernelTrace structures the kernels and
// the serving layer fill in.
//
// The package has two design constraints, both imposed by the serving hot
// path (see ARCHITECTURE.md "Observability"):
//
//   - Updates are lock-free. Counter.Inc, Gauge.Set and Histogram.Observe
//     are single atomic operations (plus a short bucket scan for
//     histograms) and never allocate, so they are safe inside the
//     //simstar:noalloc serving paths.
//   - Absence is free. Every hook threads through the stack as a nilable
//     pointer; call sites on noalloc paths guard with an explicit nil
//     check (machine-enforced by simlint's obsnoop analyzer), so an
//     engine without an Observer pays one predictable branch per hook.
//
// Rendering (Registry.WritePrometheus) takes the registry lock but only
// snapshots atomics — scrapes never block updates for more than an atomic
// load.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically-increasing integer metric. The zero value is
// ready to use; updates are single atomic adds.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotonic: n is unsigned by construction.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically-increasing float metric — for accumulated
// quantities that are not event counts, like sieved error-budget spend or
// histogram sums. Updates are a compare-and-swap loop on the float's bits.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds v, which must be non-negative to keep the counter monotonic.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an integer metric that can go up and down — in-flight requests,
// graph epoch, cache size. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric in the Prometheus
// cumulative-bucket model: Observe finds the first bucket whose upper bound
// holds the value and increments it, plus a total count and sum. Bounds are
// fixed at registration — there is no re-bucketing — so Observe is one
// short scan plus three atomic updates, with no allocation and no lock.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets, strictly
	// increasing; an implicit +Inf bucket follows.
	bounds []float64
	// buckets[i] counts observations <= bounds[i]; buckets[len(bounds)]
	// counts the rest. Counts here are NOT cumulative — rendering
	// accumulates them into the le-form Prometheus requires.
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     FloatCounter
}

// newHistogram builds a histogram over a copy of bounds.
func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Uint64, len(h.bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// LatencyBuckets is the default request/kernel latency bucket layout, in
// seconds: 100µs to 10s in a coarse log scale. It spans the tiny-profile
// cache hits and the 100k-node exact sweeps alike.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// CancelLatencyBuckets is the bucket layout for cancellation-overrun
// histograms: how far past its deadline a query kept running before the
// kernels' amortised cancellation polls observed the cancellation. Much
// finer at the low end than LatencyBuckets, because a healthy engine
// overruns by microseconds-to-milliseconds — one poll stride of kernel work
// — and the histogram exists to catch regressions in that bound.
var CancelLatencyBuckets = []float64{
	0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005,
	0.01, 0.05, 0.1, 0.5, 1,
}
