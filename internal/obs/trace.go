package obs

import "time"

// Span is one timed stage of a query trace.
type Span struct {
	// Stage names the lifecycle stage: "plan", "cache", "kernel",
	// "select", "assemble" or "stream".
	Stage string `json:"stage"`
	// DurationUs is the stage's wall time in microseconds.
	DurationUs float64 `json:"duration_us"`
}

// KernelTrace is the kernel-reported detail of one query: what the sweep
// loops, the sieve and the workspace arena actually did. It is the sink
// the WS/Into kernel paths fill when tracing is on — threaded as a nilable
// pointer (core.Options.Trace, rwr.Options.Trace, sparse.CertBudget.Trace)
// whose call sites guard with an explicit nil check so the disabled path
// costs one branch and zero allocations (enforced by simlint's obsnoop).
//
// Methods on a non-nil receiver are plain field updates; a KernelTrace is
// per-query and never written concurrently.
type KernelTrace struct {
	// Sweeps counts matrix-sweep iterations the kernels ran.
	Sweeps int `json:"sweeps"`
	// FrontierMax is the widest sparse frontier a sieved kernel carried
	// (0 for exact dense kernels, whose frontier is implicitly n).
	FrontierMax int `json:"frontier_max,omitempty"`
	// FrontierLast is the frontier width at the final sweep.
	FrontierLast int `json:"frontier_last,omitempty"`
	// SievePoints counts sieve invocations that charged the error budget.
	SievePoints int `json:"sieve_points,omitempty"`
	// SieveSpend is the total certified error mass the sieves dropped —
	// the CertBudget spend backing the query's MaxError.
	SieveSpend float64 `json:"sieve_spend,omitempty"`
	// Certificate is the kernel's certified |approx-exact| bound
	// (0 for exact kernels).
	Certificate float64 `json:"certificate,omitempty"`
	// WorkspaceGrew counts arena buffers the workspace allocated during the
	// query — non-zero only on a pool miss or first use, the pooled
	// steady state reuses every buffer.
	WorkspaceGrew int `json:"workspace_grew,omitempty"`
	// ParSweeps counts the sweeps that actually fanned out across Sweeper
	// workers (a sweep below the fan-out gate runs serially and is not
	// counted). 0 for serial queries.
	ParSweeps int `json:"par_sweeps,omitempty"`
	// SweepWorkers is the Sweeper worker count the query ran with;
	// 0 for serial queries.
	SweepWorkers int `json:"sweep_workers,omitempty"`
}

// Reset zeroes the trace for reuse.
func (t *KernelTrace) Reset() {
	if t == nil {
		return
	}
	*t = KernelTrace{}
}

// AddSweeps records n completed sweep iterations.
func (t *KernelTrace) AddSweeps(n int) {
	if t == nil {
		return
	}
	t.Sweeps += n
}

// ObserveFrontier records one sweep's sparse-frontier width.
func (t *KernelTrace) ObserveFrontier(n int) {
	if t == nil {
		return
	}
	if n > t.FrontierMax {
		t.FrontierMax = n
	}
	t.FrontierLast = n
}

// AddParSweeps records n parallel sweep fan-outs at the given worker count.
// n == 0 (no sweep cleared the fan-out gate) leaves the trace untouched.
func (t *KernelTrace) AddParSweeps(n, workers int) {
	if t == nil || n == 0 {
		return
	}
	t.ParSweeps += n
	t.SweepWorkers = workers
}

// AddSieveSpend records one sieve's certified dropped mass.
func (t *KernelTrace) AddSieveSpend(spent float64) {
	if t == nil {
		return
	}
	t.SievePoints++
	t.SieveSpend += spent
}

// Trace is the structured record of one query's path through the engine:
// which stages ran, how long each took, whether the result cache answered,
// and what the kernels reported. Engine.TraceSingleSource/TraceTopK return
// it; cmd/simserve embeds it in JSON responses under ?trace=1.
type Trace struct {
	// Measure is the canonical measure name the query resolved to.
	Measure string `json:"measure"`
	// Node is the query node (external id); -1 for request-level traces
	// that cover many nodes (batch).
	Node int `json:"node"`
	// K is the ranking size for top-k queries, 0 otherwise.
	K int `json:"k,omitempty"`
	// Queries is the slot count for batch-level traces, 0 otherwise.
	Queries int `json:"queries,omitempty"`
	// Epoch is the graph version the query was answered against.
	Epoch uint64 `json:"epoch"`
	// Layout names the relabeling layout in effect ("degree", "rcm");
	// empty in natural order.
	Layout string `json:"layout,omitempty"`
	// Cached reports whether the result came from the result cache.
	Cached bool `json:"cached"`
	// Plan records the execution route the planner chose — "cache",
	// "exact", "sieved" for single queries; for batches, one note per
	// query group describing the chosen kernel and block width.
	Plan string `json:"plan,omitempty"`
	// MaxError is the certified error bound of the answer (0 = exact).
	MaxError float64 `json:"max_error"`
	// Spans are the timed stages in execution order.
	Spans []Span `json:"spans"`
	// Kernel is the kernel-reported detail; zero-valued when the cache
	// answered and no kernel ran.
	Kernel KernelTrace `json:"kernel"`
	// TotalUs is the end-to-end time in microseconds, covering the spans
	// and everything between them.
	TotalUs float64 `json:"total_us"`
}

// AddSpan appends one timed stage.
func (t *Trace) AddSpan(stage string, d time.Duration) {
	t.Spans = append(t.Spans, Span{Stage: stage, DurationUs: us(d)})
}

// Finish stamps the trace's end-to-end time from its start instant.
func (t *Trace) Finish(start time.Time) {
	t.TotalUs = us(time.Since(start))
}

// us converts a duration to fractional microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
