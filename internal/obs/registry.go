package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	// Name is the label name; it must match the Prometheus label grammar
	// ([a-zA-Z_][a-zA-Z0-9_]*).
	Name string
	// Value is the label value; rendering escapes it.
	Value string
}

// metricKind discriminates a family's exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instance of a family. Exactly one collector field
// is set, matching the family's kind.
type series struct {
	labels  string // rendered {a="b"} form, "" when unlabelled
	counter *Counter
	fcount  *FloatCounter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
	order  []string // registration-independent render order (sorted keys)
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration methods are idempotent: asking twice for
// the same (name, labels) returns the same collector, so layers can share
// counters without coordinating; re-registering a name with a different
// kind panics, since that is a programming error no scrape should mask.
// The zero value is NOT ready — use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates the (family, series) slot, panicking on a kind
// mismatch. Caller holds r.mu.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) (*family, *series, bool) {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	key := renderLabels(labels)
	if s := f.series[key]; s != nil {
		return f, s, false
	}
	s := &series{labels: key}
	f.series[key] = s
	f.order = append(f.order, key)
	sort.Strings(f.order)
	return f, s, true
}

// Counter returns the counter registered under name and labels, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, fresh := r.lookup(name, help, kindCounter, labels)
	if fresh {
		s.counter = &Counter{}
	}
	if s.counter == nil {
		panic(fmt.Sprintf("obs: counter %q%s already registered as a float counter", name, s.labels))
	}
	return s.counter
}

// FloatCounter returns the float counter registered under name and labels,
// creating it on first use. It renders as a counter family.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, fresh := r.lookup(name, help, kindCounter, labels)
	if fresh {
		s.fcount = &FloatCounter{}
	}
	if s.fcount == nil {
		panic(fmt.Sprintf("obs: float counter %q%s already registered as an integer counter", name, s.labels))
	}
	return s.fcount
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, fresh := r.lookup(name, help, kindGauge, labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: gauge %q%s already registered as a gauge func", name, s.labels))
	}
	return s.gauge
}

// GaugeFunc registers fn as the value source of a gauge series: each render
// calls fn once. Use it for values owned elsewhere (epoch, cache size)
// instead of mirroring them into a Gauge on every change. Re-registering
// the same (name, labels) replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, _ := r.lookup(name, help, kindGauge, labels)
	if s.gauge != nil {
		panic(fmt.Sprintf("obs: gauge %q%s already registered as a plain gauge", name, s.labels))
	}
	s.gaugeFn = fn
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket upper bounds on first use (later calls
// ignore bounds). Bounds must be strictly increasing; an implicit +Inf
// bucket is appended.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, fresh := r.lookup(name, help, kindHistogram, labels)
	if fresh {
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series by
// label set, so successive scrapes of an unchanged registry are
// byte-identical apart from the values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.order {
			writeSeries(bw, f, f.series[key])
		}
	}
	return bw.Flush()
}

// Snapshot returns every sample the exposition would render, keyed
// "name{labels}" (histograms as their _count and _sum samples). It is the
// programmatic view behind metrics-delta reporting in cmd/simbench.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range r.families {
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				out[f.name+s.labels] = float64(s.counter.Value())
			case s.fcount != nil:
				out[f.name+s.labels] = s.fcount.Value()
			case s.gauge != nil:
				out[f.name+s.labels] = float64(s.gauge.Value())
			case s.gaugeFn != nil:
				out[f.name+s.labels] = s.gaugeFn()
			case s.hist != nil:
				out[f.name+"_count"+s.labels] = float64(s.hist.Count())
				out[f.name+"_sum"+s.labels] = s.hist.Sum()
			}
		}
	}
	return out
}

// writeSeries renders one series' sample lines.
func writeSeries(w io.Writer, f *family, s *series) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(float64(s.counter.Value())))
	case s.fcount != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.fcount.Value()))
	case s.gauge != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(float64(s.gauge.Value())))
	case s.gaugeFn != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.gaugeFn()))
	case s.hist != nil:
		var cum uint64
		for i := range s.hist.bounds {
			cum += s.hist.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				addLabel(s.labels, "le", formatValue(s.hist.bounds[i])), cum)
		}
		cum += s.hist.buckets[len(s.hist.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, addLabel(s.labels, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatValue(s.hist.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, cum)
	}
}

// renderLabels renders a label set in {a="b",c="d"} form, names sorted, or
// "" for an empty set.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// addLabel splices one more label pair into an already-rendered label set —
// how histogram buckets gain their le label.
func addLabel(rendered, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// escapeLabel escapes a label value per the exposition grammar.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition grammar.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseText parses and validates Prometheus text exposition format,
// returning the samples keyed exactly as Snapshot renders them
// ("name{labels}"). It enforces the structural rules a scrape must hold:
// TYPE lines name a known kind, metric names and label syntax match the
// grammar, and every sample value parses as a float. It exists so tests and
// cmd/simbench can assert a /metrics body is well-formed without a
// Prometheus dependency.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// checkComment validates a # HELP / # TYPE line (other comments pass).
func checkComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		if !validMetricName(fields[2]) {
			return fmt.Errorf("TYPE line names invalid metric %q", fields[2])
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE line declares unknown kind %q", fields[3])
		}
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !validMetricName(fields[2]) {
			return fmt.Errorf("HELP line names invalid metric %q", fields[2])
		}
	}
	return nil
}

// parseSample splits one sample line into its Snapshot key and value.
func parseSample(line string) (string, float64, error) {
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ \t"); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels := ""
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return "", 0, err
		}
		labels, rest = rest[:end], rest[end:]
	}
	valStr := strings.TrimSpace(rest)
	// A trailing timestamp is legal exposition; split it off.
	if i := strings.IndexAny(valStr, " \t"); i >= 0 {
		valStr = valStr[:i]
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", 0, fmt.Errorf("invalid sample value %q: %v", valStr, err)
	}
	return name + labels, val, nil
}

// scanLabels validates a {a="b",...} label block starting at s[0] == '{'
// and returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		// Label name.
		start := i
		for i < len(s) && isLabelChar(s[i], i > start) {
			i++
		}
		if i == start {
			if i < len(s) && s[i] == '}' && start == 1 {
				return i + 1, nil // empty label set {}
			}
			return 0, fmt.Errorf("invalid label block %q", s)
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("invalid label block %q: missing '='", s)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("invalid label block %q: missing opening quote", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("invalid label block %q: unterminated value", s)
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		return 0, fmt.Errorf("invalid label block %q: missing '}'", s)
	}
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// isLabelChar reports whether c may appear in a label name at a
// non-initial (rest) or initial position.
func isLabelChar(c byte, rest bool) bool {
	return c == '_' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(rest && c >= '0' && c <= '9')
}
