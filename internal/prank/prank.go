// Package prank implements P-Rank (Zhao, Han & Sun, CIKM'09), the SimRank
// extension that blends in-link and out-link evidence:
//
//	s(a,b) = λ·C/(|I(a)||I(b)|)·ΣΣ s(i,j)  +  (1−λ)·C/(|O(a)||O(b)|)·ΣΣ s(o,o′)
//
// with s(a,a) = 1. The paper uses P-Rank (psum-PR, computed with partial
// sums memoization on both neighbourhoods) as an effectiveness baseline and
// shows in Sec. 1 that it reduces but does not resolve the zero-similarity
// issue — the h→l→i counterexample.
package prank

import (
	"context"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/par"
)

// Options configures P-Rank.
type Options struct {
	// C is the damping factor, default 0.6.
	C float64
	// K is the number of iterations, default 5.
	K int
	// Lambda balances in-link (λ) versus out-link (1−λ) evidence;
	// default 0.5, the value Zhao et al. recommend.
	Lambda float64
	// Sieve, when positive, zeroes entries below the threshold at the end.
	Sieve float64
}

func (o Options) withDefaults() Options {
	if o.C <= 0 || o.C >= 1 {
		o.C = 0.6
	}
	if o.K <= 0 {
		o.K = 5
	}
	if o.Lambda <= 0 || o.Lambda > 1 {
		o.Lambda = 0.5
	}
	return o
}

// AllPairs computes all-pairs P-Rank with partial sums memoization over both
// in- and out-neighbour sets (psum-PR), O(K·n·m) time.
func AllPairs(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := AllPairsCtx(context.Background(), g, opt)
	return s
}

// AllPairsCtx is AllPairs with cancellation checked between iterations.
func AllPairsCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	n := g.N()
	s := dense.Identity(n)
	next := dense.New(n, n)
	for k := 0; k < opt.K; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		par.For(n, 0, func(lo, hi int) {
			pin := make([]float64, n)
			pout := make([]float64, n)
			for b := lo; b < hi; b++ {
				ib, ob := g.In(b), g.Out(b)
				// pin[x] = Σ_{y∈I(b)} s_k(x,y), pout[x] = Σ_{y∈O(b)} s_k(x,y);
				// S_k is symmetric so column gathers are row gathers.
				dense.ZeroVec(pin)
				for _, y := range ib {
					dense.AddTo(pin, s.Row(int(y)))
				}
				dense.ZeroVec(pout)
				for _, y := range ob {
					dense.AddTo(pout, s.Row(int(y)))
				}
				for a := 0; a < n; a++ {
					if a == b {
						next.Set(a, b, 1)
						continue
					}
					ia, oa := g.In(a), g.Out(a)
					var inTerm, outTerm float64
					if len(ia) > 0 && len(ib) > 0 {
						var sum float64
						for _, i := range ia {
							sum += pin[i]
						}
						inTerm = opt.Lambda * opt.C * sum / float64(len(ia)*len(ib))
					}
					if len(oa) > 0 && len(ob) > 0 {
						var sum float64
						for _, o := range oa {
							sum += pout[o]
						}
						outTerm = (1 - opt.Lambda) * opt.C * sum / float64(len(oa)*len(ob))
					}
					next.Set(a, b, inTerm+outTerm)
				}
			}
		})
		s, next = next, s
	}
	if opt.Sieve > 0 {
		for i, v := range s.Data {
			if v < opt.Sieve {
				s.Data[i] = 0
			}
		}
	}
	return s, nil
}

// MatrixForm computes P-Rank under the (1−C)-normalised convention that
// parallels SimRank's Eq. (3): diagonals receive (1−C) per iteration instead
// of being pinned to 1, so scores are directly comparable with SimRank* and
// the matrix-form SimRank — the convention of the paper's Figure-1 table.
func MatrixForm(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := MatrixFormCtx(context.Background(), g, opt)
	return s
}

// MatrixFormCtx is MatrixForm with cancellation checked between iterations.
func MatrixFormCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	n := g.N()
	s := dense.New(n, n)
	s.AddDiag(1 - opt.C)
	next := dense.New(n, n)
	for k := 0; k < opt.K; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		par.For(n, 0, func(lo, hi int) {
			pin := make([]float64, n)
			pout := make([]float64, n)
			for b := lo; b < hi; b++ {
				ib, ob := g.In(b), g.Out(b)
				dense.ZeroVec(pin)
				for _, y := range ib {
					dense.AddTo(pin, s.Row(int(y)))
				}
				dense.ZeroVec(pout)
				for _, y := range ob {
					dense.AddTo(pout, s.Row(int(y)))
				}
				for a := 0; a < n; a++ {
					ia, oa := g.In(a), g.Out(a)
					var inTerm, outTerm float64
					if len(ia) > 0 && len(ib) > 0 {
						var sum float64
						for _, i := range ia {
							sum += pin[i]
						}
						inTerm = opt.Lambda * opt.C * sum / float64(len(ia)*len(ib))
					}
					if len(oa) > 0 && len(ob) > 0 {
						var sum float64
						for _, o := range oa {
							sum += pout[o]
						}
						outTerm = (1 - opt.Lambda) * opt.C * sum / float64(len(oa)*len(ob))
					}
					v := inTerm + outTerm
					if a == b {
						v += 1 - opt.C
					}
					next.Set(a, b, v)
				}
			}
		})
		s, next = next, s
	}
	if opt.Sieve > 0 {
		for i, v := range s.Data {
			if v < opt.Sieve {
				s.Data[i] = 0
			}
		}
	}
	return s, nil
}

// Naive computes P-Rank with the direct double summation; test oracle.
func Naive(g *graph.Graph, opt Options) *dense.Matrix {
	s, _ := NaiveCtx(context.Background(), g, opt)
	return s
}

// NaiveCtx is Naive with cancellation checked between iterations — even an
// O(K·n²·d²) oracle must die with its caller's deadline.
func NaiveCtx(ctx context.Context, g *graph.Graph, opt Options) (*dense.Matrix, error) {
	opt = opt.withDefaults()
	n := g.N()
	s := dense.Identity(n)
	next := dense.New(n, n)
	for k := 0; k < opt.K; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					next.Set(a, b, 1)
					continue
				}
				ia, ib := g.In(a), g.In(b)
				oa, ob := g.Out(a), g.Out(b)
				var inTerm, outTerm float64
				if len(ia) > 0 && len(ib) > 0 {
					var sum float64
					for _, i := range ia {
						for _, j := range ib {
							sum += s.At(int(i), int(j))
						}
					}
					inTerm = opt.Lambda * opt.C * sum / float64(len(ia)*len(ib))
				}
				if len(oa) > 0 && len(ob) > 0 {
					var sum float64
					for _, i := range oa {
						for _, j := range ob {
							sum += s.At(int(i), int(j))
						}
					}
					outTerm = (1 - opt.Lambda) * opt.C * sum / float64(len(oa)*len(ob))
				}
				next.Set(a, b, inTerm+outTerm)
			}
		}
		s, next = next, s
	}
	return s, nil
}
