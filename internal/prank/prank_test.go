package prank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/simrank"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	b.EnsureN(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// psum-PR is an exact reformulation of the naive double summation.
func TestQuickAllPairsMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n))
		opt := Options{C: 0.6, K: 4, Lambda: 0.5}
		return AllPairs(g, opt).MaxAbsDiff(Naive(g, opt)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// With λ = 1 (in-links only), P-Rank degenerates to classic SimRank.
func TestLambdaOneIsSimRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 18, 70)
	pr := AllPairs(g, Options{C: 0.6, K: 5, Lambda: 1})
	sr := simrank.PSum(g, simrank.Options{C: 0.6, K: 5})
	if d := pr.MaxAbsDiff(sr); d > 1e-10 {
		t.Fatalf("λ=1 P-Rank differs from SimRank by %g", d)
	}
}

// The Figure-1 table, column PR: out-link evidence rescues (h,d) and (a,f),
// but (a,c), (g,a), (g,b), (i,a) stay zero.
func TestFigure1Pattern(t *testing.T) {
	g := dataset.Figure1()
	s := AllPairs(g, Options{C: 0.8, K: 15, Lambda: 0.5})
	id := func(l string) int {
		i, ok := g.NodeByLabel(l)
		if !ok {
			t.Fatalf("missing %q", l)
		}
		return i
	}
	positive := [][2]string{{"h", "d"}, {"a", "f"}, {"i", "h"}}
	for _, p := range positive {
		if v := s.At(id(p[0]), id(p[1])); v <= 0 {
			t.Errorf("P-Rank(%s,%s) = %g, want > 0", p[0], p[1], v)
		}
	}
	zeros := [][2]string{{"a", "c"}, {"g", "a"}, {"i", "a"}}
	for _, p := range zeros {
		if v := s.At(id(p[0]), id(p[1])); v != 0 {
			t.Errorf("P-Rank(%s,%s) = %g, want 0", p[0], p[1], v)
		}
	}
	// (g,b) is 0 at the paper's 3-decimal display precision; in our edge
	// reconstruction a long out-link chain leaves a sub-millesimal residue.
	if v := s.At(id("g"), id("b")); v > 5e-3 {
		t.Errorf("P-Rank(g,b) = %g, want ≈0", v)
	}
}

// The Sec. 1 counterexample: replace h→i with h→l→i. P-Rank(h,d) collapses
// back to zero — no in- or out-link source is centred on any path — while
// SimRank* stays positive. This is the paper's core argument that P-Rank
// does not fix the zero-similarity issue and SimRank* does.
func TestInsertedNodeCounterexample(t *testing.T) {
	b := graph.NewBuilder()
	for _, e := range [][2]string{
		{"a", "b"}, {"a", "d"}, {"a", "e"},
		{"b", "c"}, {"b", "f"}, {"b", "g"}, {"b", "i"},
		{"d", "c"}, {"d", "g"}, {"d", "i"},
		{"e", "h"}, {"e", "i"},
		{"f", "d"},
		{"h", "l"}, {"l", "i"}, // h→i replaced by h→l→i
		{"j", "h"}, {"j", "i"},
		{"k", "h"}, {"k", "i"},
	} {
		b.AddEdgeLabeled(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h, _ := g.NodeByLabel("h")
	d, _ := g.NodeByLabel("d")
	pr := AllPairs(g, Options{C: 0.8, K: 15, Lambda: 0.5})
	if v := pr.At(h, d); v != 0 {
		t.Fatalf("P-Rank(h,d) = %g after inserting l, want 0", v)
	}
	sr := core.Geometric(g, core.Options{C: 0.8, K: 15})
	if v := sr.At(h, d); v <= 0 {
		t.Fatalf("SimRank*(h,d) = %g after inserting l, want > 0", v)
	}
}

// The matrix-form convention reproduces the paper's Figure-1 PR column to
// three decimals: (h,d)=.049, (a,f)=.075, (i,h)=.041.
func TestMatrixFormFigure1Values(t *testing.T) {
	g := dataset.Figure1()
	s := MatrixForm(g, Options{C: 0.8, K: 25, Lambda: 0.5})
	id := func(l string) int { i, _ := g.NodeByLabel(l); return i }
	cases := []struct {
		a, b string
		want float64
	}{
		{"h", "d", 0.049}, {"a", "f", 0.075}, {"i", "h", 0.041},
	}
	for _, c := range cases {
		if got := s.At(id(c.a), id(c.b)); got < c.want-0.002 || got > c.want+0.002 {
			t.Errorf("matrix-form PR(%s,%s) = %.4f, want ≈%.3f", c.a, c.b, got, c.want)
		}
	}
	// Diagonals no longer pinned: in [1−C, 1].
	for i := 0; i < g.N(); i++ {
		if d := s.At(i, i); d < 0.2-1e-12 || d > 1+1e-12 {
			t.Fatalf("matrix-form diag = %g", d)
		}
	}
}

// Property: P-Rank is symmetric with unit diagonal and scores in [0, 1].
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(18)
		g := randomGraph(rng, n, rng.Intn(4*n))
		s := AllPairs(g, Options{C: 0.7, K: 4})
		if !s.IsSymmetric(1e-12) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.At(i, i) != 1 {
				return false
			}
		}
		for _, v := range s.Data {
			if v < 0 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSieve(t *testing.T) {
	s := AllPairs(dataset.Figure1(), Options{C: 0.6, K: 5, Sieve: 1e-2})
	for _, v := range s.Data {
		if v != 0 && v < 1e-2 {
			t.Fatalf("sieved score %g", v)
		}
	}
}
