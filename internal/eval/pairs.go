package eval

import "sort"

// Pair analysis helpers behind Fig. 6(b) (role difference of the top-x%
// most-similar pairs) and Fig. 6(c) (average similarity within and across
// role deciles).

// ScoredPair is a node pair with a similarity score.
type ScoredPair struct {
	A, B  int
	Score float64
}

// TopPairs extracts all unordered pairs (i < j) from a symmetric score
// matrix accessor, sorted by descending score (ties by (A, B)), and returns
// the top `count`. `n` is the node count and `at(i, j)` the score accessor.
func TopPairs(n int, at func(i, j int) float64, count int) []ScoredPair {
	all := make([]ScoredPair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, ScoredPair{A: i, B: j, Score: at(i, j)})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score > all[b].Score
		}
		if all[a].A != all[b].A {
			return all[a].A < all[b].A
		}
		return all[a].B < all[b].B
	})
	if count > len(all) {
		count = len(all)
	}
	return all[:count]
}

// AvgRoleDiff returns the mean |role(A) − role(B)| over the pairs — the
// Fig. 6(b) metric with role = #-citations or H-index.
func AvgRoleDiff(pairs []ScoredPair, role []int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pairs {
		d := role[p.A] - role[p.B]
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return sum / float64(len(pairs))
}

// Deciles assigns each node a decile 1..10 by descending role value: decile
// 1 holds the top 10%. Ties are broken by node id for determinism.
func Deciles(role []int) []int {
	n := len(role)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return role[idx[a]] > role[idx[b]] })
	out := make([]int, n)
	for pos, node := range idx {
		d := pos * 10 / n
		if d > 9 {
			d = 9
		}
		out[node] = d + 1
	}
	return out
}

// DecileSimilarity computes, for each key k, the average similarity of node
// pairs whose decile difference is k when within == false (the "cross"
// series of Fig. 6(c)), or of pairs within the same decile k when within ==
// true (the "within" series). Keys with no pairs are absent.
func DecileSimilarity(n int, at func(i, j int) float64, deciles []int, within bool) map[int]float64 {
	sums := map[int]float64{}
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var key int
			if within {
				if deciles[i] != deciles[j] {
					continue
				}
				key = deciles[i]
			} else {
				key = deciles[i] - deciles[j]
				if key < 0 {
					key = -key
				}
				if key == 0 {
					continue
				}
			}
			sums[key] += at(i, j)
			counts[key]++
		}
	}
	out := make(map[int]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// PooledCandidates returns the union of the top-`depth` items by `truth`
// and by `scores` (excluding `exclude`), the standard IR pooling protocol:
// rank correlations are then computed over items at least one side deems
// relevant, instead of being washed out by the mass of irrelevant ties.
// This mirrors the paper's human-judged evaluation, where assessors scored
// retrieved results rather than all n² pairs.
func PooledCandidates(truth, scores []float64, depth, exclude int) []int {
	type ranked struct {
		idx int
		val float64
	}
	pool := map[int]bool{}
	addTop := func(vals []float64) {
		items := make([]ranked, 0, len(vals))
		for i, v := range vals {
			if i != exclude {
				items = append(items, ranked{i, v})
			}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].val != items[b].val {
				return items[a].val > items[b].val
			}
			return items[a].idx < items[b].idx
		})
		for i := 0; i < depth && i < len(items); i++ {
			pool[items[i].idx] = true
		}
	}
	addTop(truth)
	addTop(scores)
	out := make([]int, 0, len(pool))
	for i := range pool {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// StratifiedQueries reproduces the paper's query-selection protocol: sort
// nodes by in-degree into `groups` buckets and draw `perGroup` evenly spaced
// nodes from each, covering the full query spectrum deterministically.
func StratifiedQueries(inDeg []int, groups, perGroup int) []int {
	n := len(inDeg)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return inDeg[idx[a]] > inDeg[idx[b]] })
	var out []int
	for g := 0; g < groups; g++ {
		lo := g * n / groups
		hi := (g + 1) * n / groups
		size := hi - lo
		if size <= 0 {
			continue
		}
		take := perGroup
		if take > size {
			take = size
		}
		for i := 0; i < take; i++ {
			out = append(out, idx[lo+i*size/take])
		}
	}
	return out
}
