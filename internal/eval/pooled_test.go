package eval

import "testing"

func TestPooledCandidates(t *testing.T) {
	truth := []float64{0.9, 0.1, 0.8, 0.0, 0.2}
	scores := []float64{0.0, 0.9, 0.0, 0.8, 0.1}
	pool := PooledCandidates(truth, scores, 2, 4)
	// top-2 truth: {0, 2}; top-2 scores: {1, 3}; node 4 excluded everywhere.
	want := []int{0, 1, 2, 3}
	if len(pool) != len(want) {
		t.Fatalf("pool = %v, want %v", pool, want)
	}
	for i := range want {
		if pool[i] != want[i] {
			t.Fatalf("pool = %v, want %v", pool, want)
		}
	}
}

func TestPooledCandidatesExcludesQuery(t *testing.T) {
	truth := []float64{1, 0, 0}
	scores := []float64{1, 0, 0}
	pool := PooledCandidates(truth, scores, 3, 0)
	for _, p := range pool {
		if p == 0 {
			t.Fatal("excluded node present in pool")
		}
	}
}
