package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKendallTauKnownCases(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := KendallTau(x, []float64{1, 2, 3, 4}); got != 1 {
		t.Fatalf("identical ranking τ = %g, want 1", got)
	}
	if got := KendallTau(x, []float64{4, 3, 2, 1}); got != -1 {
		t.Fatalf("reversed ranking τ = %g, want −1", got)
	}
	// One swap among 4 items: 5 concordant, 1 discordant → 4/6.
	if got := KendallTau(x, []float64{2, 1, 3, 4}); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("τ = %g, want 2/3", got)
	}
	if got := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("all-ties τ = %g, want 0", got)
	}
}

// Property: fast Kendall equals the O(N²) version on tie-free inputs.
func TestQuickKendallFastMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		x := rng.Perm(n)
		y := rng.Perm(n)
		xf := make([]float64, n)
		yf := make([]float64, n)
		for i := range x {
			xf[i] = float64(x[i])
			yf[i] = float64(y[i])
		}
		return math.Abs(KendallTau(xf, yf)-KendallTauFast(xf, yf)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanKnownCases(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := SpearmanRho(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ρ = %g, want 1", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := SpearmanRho(x, rev); math.Abs(got+1) > 1e-12 {
		t.Fatalf("ρ = %g, want −1", got)
	}
	// Classic textbook case.
	a := []float64{106, 86, 100, 101, 99, 103, 97, 113, 112, 110}
	b := []float64{7, 0, 27, 50, 28, 29, 20, 12, 6, 17}
	if got := SpearmanRho(a, b); math.Abs(got+0.17575757575) > 1e-6 {
		t.Fatalf("ρ = %g, want −0.1758", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{3, 1, 3, 2})
	// Descending: the two 3s share ranks (1+2)/2 = 1.5; 2 gets 3; 1 gets 4.
	want := []float64{1.5, 4, 1.5, 3}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestNDCG(t *testing.T) {
	rel := []float64{3, 2, 1, 0}
	perfect := []int{0, 1, 2, 3}
	if got := NDCG(perfect, rel, 4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %g, want 1", got)
	}
	worst := []int{3, 2, 1, 0}
	if got := NDCG(worst, rel, 4); got >= 1 || got <= 0 {
		t.Fatalf("worst NDCG = %g, want in (0,1)", got)
	}
	// Zero relevance everywhere → 0 by convention.
	if got := NDCG(perfect, []float64{0, 0, 0, 0}, 4); got != 0 {
		t.Fatalf("all-zero NDCG = %g", got)
	}
}

func TestNDCGOfScores(t *testing.T) {
	rel := []float64{0, 1, 2}
	// Scores that rank items 2, 1, 0 — the ideal order.
	if got := NDCGOfScores([]float64{0.1, 0.5, 0.9}, rel, 3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NDCGOfScores = %g, want 1", got)
	}
	// Anti-ideal order scores strictly less.
	anti := NDCGOfScores([]float64{0.9, 0.5, 0.1}, rel, 3)
	if anti >= 1 {
		t.Fatalf("anti-ideal NDCG = %g", anti)
	}
}

// Property: τ and ρ are symmetric in their arguments and bounded by 1.
func TestQuickCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		tau := KendallTau(x, y)
		rho := SpearmanRho(x, y)
		return math.Abs(tau) <= 1+1e-12 && math.Abs(rho) <= 1+1e-12 &&
			tau == KendallTau(y, x) && math.Abs(rho-SpearmanRho(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTopPairs(t *testing.T) {
	scores := [][]float64{
		{0, 0.9, 0.1},
		{0.9, 0, 0.5},
		{0.1, 0.5, 0},
	}
	at := func(i, j int) float64 { return scores[i][j] }
	top := TopPairs(3, at, 2)
	if len(top) != 2 || top[0].A != 0 || top[0].B != 1 || top[1].A != 1 || top[1].B != 2 {
		t.Fatalf("TopPairs = %+v", top)
	}
	all := TopPairs(3, at, 100)
	if len(all) != 3 {
		t.Fatalf("want all 3 pairs, got %d", len(all))
	}
}

func TestAvgRoleDiff(t *testing.T) {
	pairs := []ScoredPair{{A: 0, B: 1}, {A: 1, B: 2}}
	role := []int{10, 4, 8}
	if got := AvgRoleDiff(pairs, role); got != 5 { // (6+4)/2
		t.Fatalf("AvgRoleDiff = %g, want 5", got)
	}
	if AvgRoleDiff(nil, role) != 0 {
		t.Fatal("empty pairs should give 0")
	}
}

func TestDeciles(t *testing.T) {
	role := make([]int, 100)
	for i := range role {
		role[i] = 100 - i // descending: node 0 highest
	}
	d := Deciles(role)
	if d[0] != 1 || d[5] != 1 || d[10] != 2 || d[99] != 10 {
		t.Fatalf("Deciles = %v %v %v %v", d[0], d[5], d[10], d[99])
	}
}

func TestDecileSimilarity(t *testing.T) {
	// 4 nodes, deciles 1,1,2,2; similarity 1 within deciles, 0 across.
	dec := []int{1, 1, 2, 2}
	at := func(i, j int) float64 {
		if dec[i] == dec[j] {
			return 1
		}
		return 0
	}
	within := DecileSimilarity(4, at, dec, true)
	if within[1] != 1 || within[2] != 1 {
		t.Fatalf("within = %v", within)
	}
	cross := DecileSimilarity(4, at, dec, false)
	if cross[1] != 0 {
		t.Fatalf("cross = %v", cross)
	}
	if _, ok := cross[0]; ok {
		t.Fatal("cross must not contain key 0")
	}
}

func TestStratifiedQueries(t *testing.T) {
	inDeg := make([]int, 100)
	for i := range inDeg {
		inDeg[i] = i
	}
	qs := StratifiedQueries(inDeg, 5, 4)
	if len(qs) != 20 {
		t.Fatalf("got %d queries, want 20", len(qs))
	}
	// Each in-degree quintile must contribute 4 queries.
	buckets := map[int]int{}
	for _, q := range qs {
		buckets[(99-inDeg[q])*5/100]++ // descending sort → top degrees first
	}
	for b := 0; b < 5; b++ {
		if buckets[b] != 4 {
			t.Fatalf("bucket %d has %d queries: %v", b, buckets[b], buckets)
		}
	}
	// Deterministic.
	qs2 := StratifiedQueries(inDeg, 5, 4)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("StratifiedQueries not deterministic")
		}
	}
}

func TestKendallMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KendallTau([]float64{1}, []float64{1, 2})
}
