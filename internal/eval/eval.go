// Package eval implements the effectiveness metrics of the paper's Exp-1:
// Kendall's τ, Spearman's ρ and NDCG@p over rankings induced by similarity
// scores, plus the grouping helpers behind the role-difference (Fig. 6(b))
// and decile (Fig. 6(c)) analyses.
package eval

import (
	"math"
	"sort"
)

// KendallTau returns the rank correlation of two score vectors over the same
// item set, in [−1, 1]. It is τ-b style: pairs tied in either vector are
// skipped; concordant pairs add +1, discordant −1, normalised by the number
// of comparable pairs. O(N²), exact; used for the modest ranking lists
// (hundreds of items) of the experiments.
func KendallTau(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("eval: KendallTau length mismatch")
	}
	n := len(x)
	conc, disc := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 || dy == 0:
			case (dx > 0) == (dy > 0):
				conc++
			default:
				disc++
			}
		}
	}
	if conc+disc == 0 {
		return 0
	}
	return float64(conc-disc) / float64(conc+disc)
}

// KendallTauFast returns the τ-a correlation (no tie correction beyond
// skipping exact ties in x after sorting) in O(N log N) using merge-sort
// inversion counting. For tie-free inputs it matches KendallTau exactly;
// tests assert that. Use it when ranking lists grow large.
func KendallTauFast(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("eval: KendallTauFast length mismatch")
	}
	n := len(x)
	if n < 2 {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if x[idx[a]] != x[idx[b]] {
			return x[idx[a]] > x[idx[b]]
		}
		return y[idx[a]] > y[idx[b]]
	})
	ys := make([]float64, n)
	for i, id := range idx {
		ys[i] = y[id]
	}
	// Count inversions in ys (descending expected): an inversion is a
	// discordant pair.
	total := n * (n - 1) / 2
	inv := countInversions(ys)
	return float64(total-2*inv) / float64(total)
}

// countInversions counts pairs (i < j) with ys[i] < ys[j] (violations of
// descending order) by merge sort.
func countInversions(ys []float64) int {
	buf := make([]float64, len(ys))
	a := append([]float64(nil), ys...)
	return mergeCount(a, buf)
}

func mergeCount(a, buf []float64) int {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(a[:mid], buf[:mid]) + mergeCount(a[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] >= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			j++
			inv += mid - i
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i++
		k++
	}
	for j < n {
		buf[k] = a[j]
		j++
		k++
	}
	copy(a, buf[:n])
	return inv
}

// SpearmanRho returns the Spearman rank correlation of two score vectors,
// with ties receiving average (fractional) ranks — the ρ = 1 − 6Σd²/(N(N²−1))
// formula the paper quotes, generalised to ties via Pearson on ranks.
func SpearmanRho(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("eval: SpearmanRho length mismatch")
	}
	rx := Ranks(x)
	ry := Ranks(y)
	return pearson(rx, ry)
}

// Ranks returns average ranks (1-based) of the values in descending order:
// the largest value gets rank 1; ties share the mean of their positions.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] > x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// NDCG returns the normalised discounted cumulative gain at position p of a
// ranking against graded relevance, using the paper's formula
// NDCG_p = (1/IDCG_p)·Σ_{i<=p} (2^{rel_i} − 1)/log₂(1+i).
// `order` lists item indices in the ranked order under evaluation; `rel`
// maps item index to its true relevance grade.
func NDCG(order []int, rel []float64, p int) float64 {
	if p > len(order) {
		p = len(order)
	}
	dcg := 0.0
	for i := 0; i < p; i++ {
		dcg += (math.Exp2(rel[order[i]]) - 1) / math.Log2(float64(i+2))
	}
	ideal := append([]float64(nil), rel...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := 0.0
	for i := 0; i < p && i < len(ideal); i++ {
		idcg += (math.Exp2(ideal[i]) - 1) / math.Log2(float64(i+2))
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// NDCGOfScores ranks items by `scores` descending (ties by index) and
// evaluates NDCG@p against `rel`.
func NDCGOfScores(scores, rel []float64, p int) float64 {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	return NDCG(order, rel, p)
}
