package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is the SNAP-style edge list used by the paper's datasets:
// one "u<TAB>v" (or space-separated) pair per line, '#' comments, blank lines
// ignored. If any endpoint is non-numeric the whole file is treated as
// labelled.

// ReadEdgeList parses an edge list from r.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	labelled := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", lineNo, line)
		}
		u, errU := strconv.Atoi(fields[0])
		v, errV := strconv.Atoi(fields[1])
		if labelled || errU != nil || errV != nil {
			labelled = true
			b.AddEdgeLabeled(fields[0], fields[1])
			continue
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build()
}

// WriteEdgeList serialises g to w in the format read by ReadEdgeList,
// prefixed with a comment header carrying the node and edge counts.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes: %d edges: %d\n", g.N(), g.M())
	var err error
	g.Edges(func(u, v int) {
		if err != nil {
			return
		}
		if g.Labeled() {
			_, err = fmt.Fprintf(bw, "%s\t%s\n", g.Label(u), g.Label(v))
		} else {
			_, err = fmt.Fprintf(bw, "%d\t%d\n", u, v)
		}
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	return bw.Flush()
}

// Binary snapshot format. Unlike the text edge list, the binary form
// serialises the CSR arrays directly, so a server can persist the graph of
// the current epoch and warm-restart without re-parsing text or replaying a
// delta log. Only the out-direction and labels are written; the in-direction
// CSR is rebuilt on read by a counting pass that reproduces the builder's
// layout exactly, so a round-trip yields a structurally identical graph.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte "SIMGRB1\n"
//	flags   uint32 (bit 0: labelled)
//	n, m    uint64, uint64
//	outOff  (n+1)×uint32
//	outDst  m×uint32
//	labels  n × (uint32 length + bytes), present iff labelled
const binaryMagic = "SIMGRB1\n"

// WriteTo serialises g in the binary snapshot format, implementing
// io.WriterTo. The returned count is the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := cw.Write([]byte(binaryMagic)); err != nil {
		return cw.n, err
	}
	var flags uint32
	if g.labels != nil {
		flags |= 1
	}
	var hdr [4 + 8 + 8]byte
	binary.LittleEndian.PutUint32(hdr[0:], flags)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.M()))
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	if err := writeInt32s(cw, g.outOff); err != nil {
		return cw.n, err
	}
	if err := writeInt32s(cw, g.outDst); err != nil {
		return cw.n, err
	}
	if g.labels != nil {
		var lbuf [4]byte
		for _, l := range g.labels {
			binary.LittleEndian.PutUint32(lbuf[:], uint32(len(l)))
			if _, err := cw.Write(lbuf[:]); err != nil {
				return cw.n, err
			}
			if _, err := cw.Write([]byte(l)); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadFrom parses the binary snapshot format written by WriteTo and rebuilds
// the in-direction CSR, validating offsets and node ids on the way in.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary magic %q", magic)
	}
	var hdr [4 + 8 + 8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	flags := binary.LittleEndian.Uint32(hdr[0:])
	if flags&^1 != 0 {
		// Unknown flag bits are a version or corruption signal, not something
		// to ignore: a snapshot written by a future format revision must fail
		// loudly here rather than load as a subtly wrong graph.
		return nil, fmt.Errorf("graph: unknown binary snapshot flags %#x", flags)
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	m := binary.LittleEndian.Uint64(hdr[12:])
	const maxBinaryNodes = 1 << 31
	if n > maxBinaryNodes || m > maxBinaryNodes {
		return nil, fmt.Errorf("graph: binary snapshot dimensions %d×%d out of range", n, m)
	}
	g := &Graph{n: int(n)}
	var err error
	if g.outOff, err = readInt32s(br, int(n)+1); err != nil {
		return nil, err
	}
	if g.outDst, err = readInt32s(br, int(m)); err != nil {
		return nil, err
	}
	if g.outOff[0] != 0 || g.outOff[n] != int32(m) {
		return nil, fmt.Errorf("graph: binary snapshot offsets do not span %d edges", m)
	}
	for i := 0; i < int(n); i++ {
		if g.outOff[i+1] < g.outOff[i] {
			return nil, fmt.Errorf("graph: binary snapshot offset not monotone at node %d", i)
		}
	}
	for _, v := range g.outDst {
		if v < 0 || uint64(v) >= n {
			return nil, fmt.Errorf("graph: binary snapshot edge target %d out of range [0, %d)", v, n)
		}
	}
	// Rows must be strictly ascending — sorted and deduplicated is the Graph
	// contract (HasEdge binary-searches rows) and what WriteTo produces; a
	// corrupt snapshot must not smuggle in a graph that violates it.
	for u := 0; u < int(n); u++ {
		row := g.outDst[g.outOff[u]:g.outOff[u+1]]
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				return nil, fmt.Errorf("graph: binary snapshot out-row of node %d not strictly sorted", u)
			}
		}
	}
	// Rebuild the in-direction by counting sort over the out arrays. Rows
	// come out sorted because sources are visited in ascending order.
	g.inOff = make([]int32, n+1)
	g.inSrc = make([]int32, m)
	for _, v := range g.outDst {
		g.inOff[v+1]++
	}
	for i := 0; i < int(n); i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	pos := make([]int32, n)
	for u := 0; u < int(n); u++ {
		for _, v := range g.outDst[g.outOff[u]:g.outOff[u+1]] {
			g.inSrc[g.inOff[v]+pos[v]] = int32(u)
			pos[v]++
		}
	}
	if flags&1 != 0 {
		g.labels = make([]string, n)
		g.byLabel = make(map[string]int, n)
		var lbuf [4]byte
		for i := 0; i < int(n); i++ {
			if _, err := io.ReadFull(br, lbuf[:]); err != nil {
				return nil, fmt.Errorf("graph: reading label %d: %w", i, err)
			}
			ln := binary.LittleEndian.Uint32(lbuf[:])
			if ln > 1<<20 {
				return nil, fmt.Errorf("graph: label %d length %d out of range", i, ln)
			}
			b := make([]byte, ln)
			if _, err := io.ReadFull(br, b); err != nil {
				return nil, fmt.Errorf("graph: reading label %d: %w", i, err)
			}
			g.labels[i] = string(b)
			if _, taken := g.byLabel[g.labels[i]]; !taken {
				g.byLabel[g.labels[i]] = i
			}
		}
	}
	// Strict framing: the payload must end exactly where the format says it
	// does. Trailing bytes mean a corrupt snapshot (a torn write, a
	// concatenation accident) masquerading as a valid graph — a warm restart
	// must reject it, not silently serve whatever prefix happened to parse.
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("graph: probing for trailing data: %w", err)
		}
		return nil, fmt.Errorf("graph: trailing data after binary snapshot payload")
	}
	return g, nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// writeInt32s encodes vals little-endian in fixed-size chunks, avoiding
// binary.Write's per-call reflection on the hot bulk arrays.
func writeInt32s(w io.Writer, vals []int32) error {
	var buf [4096]byte
	for len(vals) > 0 {
		k := len(buf) / 4
		if k > len(vals) {
			k = len(vals)
		}
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[i]))
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return fmt.Errorf("graph: writing binary snapshot: %w", err)
		}
		vals = vals[k:]
	}
	return nil
}

// readInt32s decodes count little-endian int32 values. The slice grows as
// data actually arrives rather than being sized from count up front, so a
// corrupt or hostile header claiming billions of entries fails with a read
// error after a bounded allocation instead of attempting a giant make.
func readInt32s(r io.Reader, count int) ([]int32, error) {
	initial := count
	if initial > 1<<16 {
		initial = 1 << 16
	}
	out := make([]int32, 0, initial)
	var buf [4096]byte
	for len(out) < count {
		k := len(buf) / 4
		if k > count-len(out) {
			k = count - len(out)
		}
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return nil, fmt.Errorf("graph: reading binary snapshot: %w", err)
		}
		for j := 0; j < k; j++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[4*j:])))
		}
	}
	return out, nil
}
