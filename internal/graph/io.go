package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is the SNAP-style edge list used by the paper's datasets:
// one "u<TAB>v" (or space-separated) pair per line, '#' comments, blank lines
// ignored. If any endpoint is non-numeric the whole file is treated as
// labelled.

// ReadEdgeList parses an edge list from r.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	labelled := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", lineNo, line)
		}
		u, errU := strconv.Atoi(fields[0])
		v, errV := strconv.Atoi(fields[1])
		if labelled || errU != nil || errV != nil {
			labelled = true
			b.AddEdgeLabeled(fields[0], fields[1])
			continue
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build()
}

// WriteEdgeList serialises g to w in the format read by ReadEdgeList,
// prefixed with a comment header carrying the node and edge counts.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes: %d edges: %d\n", g.N(), g.M())
	var err error
	g.Edges(func(u, v int) {
		if err != nil {
			return
		}
		if g.Labeled() {
			_, err = fmt.Fprintf(bw, "%s\t%s\n", g.Label(u), g.Label(v))
		} else {
			_, err = fmt.Fprintf(bw, "%d\t%d\n", u, v)
		}
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	return bw.Flush()
}
