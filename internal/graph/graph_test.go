package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustBuild(t, NewBuilder())
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has N=%d M=%d", g.N(), g.M())
	}
	if g.Density() != 0 {
		t.Fatal("empty graph density should be 0")
	}
}

func TestBasicAdjacency(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {2, 1}, {3, 3}})
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if got := g.Out(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Out(0) = %v", got)
	}
	if got := g.In(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("In(1) = %v", got)
	}
	if g.InDeg(0) != 0 || g.OutDeg(0) != 2 || g.InDeg(3) != 1 {
		t.Fatal("degree mismatch")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || !g.HasEdge(3, 3) {
		t.Fatal("HasEdge mismatch")
	}
}

func TestDeduplication(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {0, 1}, {0, 1}, {1, 2}})
	if g.M() != 2 {
		t.Fatalf("M = %d after dedup, want 2", g.M())
	}
}

func TestLabels(t *testing.T) {
	b := NewBuilder()
	b.AddEdgeLabeled("alice", "bob")
	b.AddEdgeLabeled("bob", "carol")
	b.AddEdgeLabeled("alice", "carol")
	g := mustBuild(t, b)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.Labeled() {
		t.Fatal("graph should be labelled")
	}
	id, ok := g.NodeByLabel("bob")
	if !ok {
		t.Fatal("bob not found")
	}
	if g.Label(id) != "bob" {
		t.Fatalf("Label(%d) = %q", id, g.Label(id))
	}
	if _, ok := g.NodeByLabel("dave"); ok {
		t.Fatal("dave should not exist")
	}
}

func TestLabelBackfill(t *testing.T) {
	b := NewBuilder()
	b.AddEdge(0, 1) // anonymous nodes first
	b.AddEdgeLabeled("x", "y")
	g := mustBuild(t, b)
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.Label(0) != "0" || g.Label(1) != "1" {
		t.Fatalf("backfilled labels = %q, %q", g.Label(0), g.Label(1))
	}
	if id, ok := g.NodeByLabel("x"); !ok || id != 2 {
		t.Fatalf("NodeByLabel(x) = %d, %v", id, ok)
	}
}

func TestUnlabelledLabelFallback(t *testing.T) {
	g := FromEdges(2, [][2]int{{0, 1}})
	if g.Label(1) != "1" {
		t.Fatalf("Label(1) = %q, want \"1\"", g.Label(1))
	}
}

func TestReverse(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatal("Reverse edges wrong")
	}
	if r.M() != g.M() || r.N() != g.N() {
		t.Fatal("Reverse changed size")
	}
}

func TestAsUndirectedAndSymmetry(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 2}})
	if g.IsSymmetric() {
		t.Fatal("directed graph reported symmetric")
	}
	u := g.AsUndirected()
	if !u.IsSymmetric() {
		t.Fatal("AsUndirected not symmetric")
	}
	if u.M() != 5 { // 0↔1, 1↔2, self-loop 2→2
		t.Fatalf("undirected M = %d, want 5", u.M())
	}
}

func TestStats(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 2}})
	st := g.ComputeStats()
	if st.N != 5 || st.M != 4 {
		t.Fatalf("stats N=%d M=%d", st.N, st.M)
	}
	if st.MaxInDeg != 3 { // node 2: in from 0, 1, 2
		t.Fatalf("MaxInDeg = %d, want 3", st.MaxInDeg)
	}
	if st.SelfLoops != 1 {
		t.Fatalf("SelfLoops = %d, want 1", st.SelfLoops)
	}
	if st.Sources != 3 { // nodes 0, 3, 4 have no in-edges
		t.Fatalf("Sources = %d, want 3", st.Sources)
	}
	if st.Sinks != 2 { // nodes 3, 4 have no out-edges
		t.Fatalf("Sinks = %d, want 2", st.Sinks)
	}
}

func TestEdgesOrder(t *testing.T) {
	g := FromEdges(3, [][2]int{{2, 0}, {0, 2}, {0, 1}})
	var got [][2]int
	g.Edges(func(u, v int) { got = append(got, [2]int{u, v}) })
	want := [][2]int{{0, 1}, {0, 2}, {2, 0}}
	if len(got) != len(want) {
		t.Fatalf("Edges = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", got, want)
		}
	}
}

// Property: sum of in-degrees = sum of out-degrees = M for random graphs.
func TestQuickDegreeSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		b := NewBuilder()
		b.EnsureN(n)
		for i := 0; i < rng.Intn(200); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		inSum, outSum := 0, 0
		for v := 0; v < g.N(); v++ {
			inSum += g.InDeg(v)
			outSum += g.OutDeg(v)
		}
		return inSum == g.M() && outSum == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: In/Out are mutually consistent — v ∈ Out(u) ⟺ u ∈ In(v).
func TestQuickAdjacencyConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		b := NewBuilder()
		b.EnsureN(n)
		for i := 0; i < rng.Intn(150); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g, _ := b.Build()
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				found := false
				for _, w := range g.In(int(v)) {
					if int(w) == u {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIORoundTrip(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip N=%d M=%d, want N=%d M=%d", g2.N(), g2.M(), g.N(), g.M())
	}
	g.Edges(func(u, v int) {
		if !g2.HasEdge(u, v) {
			t.Fatalf("round trip lost edge %d→%d", u, v)
		}
	})
}

func TestIOLabelledRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.AddEdgeLabeled("paperA", "paperB")
	b.AddEdgeLabeled("paperB", "paperC")
	g := mustBuild(t, b)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g2.NodeByLabel("paperA")
	bb, _ := g2.NodeByLabel("paperB")
	if !g2.HasEdge(a, bb) {
		t.Fatal("labelled round trip lost edge")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("want error for single-field line")
	}
	if _, err := ReadEdgeList(strings.NewReader("-1 2\n")); err == nil {
		t.Fatal("want error for negative id")
	}
	g, err := ReadEdgeList(strings.NewReader("# comment\n\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

func TestBuilderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative id")
		}
	}()
	NewBuilder().AddEdge(-1, 0)
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder()
	b.AddUndirected(0, 1)
	b.AddUndirected(2, 2)
	g := mustBuild(t, b)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("AddUndirected missing reverse edge")
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (self-loop single)", g.M())
	}
}
