package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// Parallel edges are deduplicated at Build time (the similarity measures in
// this repository are defined on simple digraphs; the paper's datasets are
// citation and collaboration graphs without multi-edges).
type Builder struct {
	n       int
	edges   [][2]int32
	labels  []string
	byLabel map[string]int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// EnsureN grows the node count to at least n. Nodes are identified by dense
// ints in [0, n).
func (b *Builder) EnsureN(n int) {
	if n > b.n {
		b.n = n
		if b.labels != nil {
			for len(b.labels) < n {
				b.labels = append(b.labels, fmt.Sprintf("%d", len(b.labels)))
			}
		}
	}
}

// Node interns a labelled node, returning its id. Repeated calls with the
// same label return the same id.
func (b *Builder) Node(label string) int {
	if b.byLabel == nil {
		b.byLabel = make(map[string]int)
		// Backfill numeric labels for any anonymous nodes created earlier.
		for i := 0; i < b.n; i++ {
			l := fmt.Sprintf("%d", i)
			b.labels = append(b.labels, l)
			b.byLabel[l] = i
		}
	}
	if id, ok := b.byLabel[label]; ok {
		return id
	}
	id := b.n
	b.n++
	b.labels = append(b.labels, label)
	b.byLabel[label] = id
	return id
}

// AddEdge records the directed edge u→v, growing the node count as needed.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative node id (%d, %d)", u, v))
	}
	if u >= b.n || v >= b.n {
		b.EnsureN(max(u, v) + 1)
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// AddEdgeLabeled records an edge between two labelled nodes, interning them.
func (b *Builder) AddEdgeLabeled(u, v string) {
	b.AddEdge(b.Node(u), b.Node(v))
}

// AddUndirected records both u→v and v→u.
func (b *Builder) AddUndirected(u, v int) {
	b.AddEdge(u, v)
	if u != v {
		b.AddEdge(v, u)
	}
}

// N returns the current node count.
func (b *Builder) N() int { return b.n }

// Build finalises the graph: edges are sorted, deduplicated, and packed into
// CSR arrays for both directions.
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	if n == 0 && len(b.edges) > 0 {
		return nil, fmt.Errorf("graph: edges without nodes")
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	dedup := b.edges[:0]
	var prev [2]int32
	for i, e := range b.edges {
		if i > 0 && e == prev {
			continue
		}
		dedup = append(dedup, e)
		prev = e
	}
	b.edges = dedup

	g := &Graph{
		n:      n,
		outOff: make([]int32, n+1),
		outDst: make([]int32, len(b.edges)),
		inOff:  make([]int32, n+1),
		inSrc:  make([]int32, len(b.edges)),
		labels: b.labels,
	}
	if b.labels != nil {
		g.byLabel = b.byLabel
	}
	for _, e := range b.edges {
		g.outOff[e[0]+1]++
		g.inOff[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	outPos := make([]int32, n)
	inPos := make([]int32, n)
	for _, e := range b.edges {
		u, v := e[0], e[1]
		g.outDst[g.outOff[u]+outPos[u]] = v
		outPos[u]++
		g.inSrc[g.inOff[v]+inPos[v]] = u
		inPos[v]++
	}
	// In-rows are filled in edge-sorted order, which sorts each out-row but
	// only groups in-rows by target; sort each in-row for binary search and
	// deterministic iteration.
	for v := 0; v < n; v++ {
		row := g.inSrc[g.inOff[v]:g.inOff[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	return g, nil
}

func (b *Builder) mustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
