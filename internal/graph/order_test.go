package graph

import (
	"math/rand"
	"testing"
)

func checkBijection(t *testing.T, perm []int32, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			t.Fatalf("perm[%d] = %d is not a bijection", i, p)
		}
		seen[p] = true
	}
}

// shuffledPath builds a path graph 0→1→…→n-1 and hides it behind a random
// relabeling, the worst case a bandwidth-minimising order must undo.
func shuffledPath(n int, seed int64) (*Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	shuf := rng.Perm(n)
	b := NewBuilder()
	b.EnsureN(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(shuf[i], shuf[i+1])
	}
	return b.mustBuild(), shuf
}

func bandwidth(g *Graph, perm []int32) int {
	max := 0
	g.Edges(func(u, v int) {
		d := int(perm[u]) - int(perm[v])
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	})
	return max
}

func identityPerm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

func TestDegreeOrder(t *testing.T) {
	g, _ := shuffledPath(64, 3)
	perm := DegreeOrder(g)
	checkBijection(t, perm, g.N())

	// Descending degree along the new numbering.
	inv := make([]int32, g.N())
	for old, new_ := range perm {
		inv[new_] = int32(old)
	}
	prev := int(^uint(0) >> 1)
	for ni := 0; ni < g.N(); ni++ {
		old := int(inv[ni])
		d := g.InDeg(old) + g.OutDeg(old)
		if d > prev {
			t.Fatalf("degree rises along new order at %d: %d > %d", ni, d, prev)
		}
		prev = d
	}
}

func TestRCMOrderRecoversPathBandwidth(t *testing.T) {
	g, _ := shuffledPath(512, 7)
	perm := RCMOrder(g)
	checkBijection(t, perm, g.N())

	before := bandwidth(g, identityPerm(g.N()))
	after := bandwidth(g, perm)
	// A path has optimal bandwidth 1; RCM must recover it exactly, and the
	// shuffled labels must start far from it.
	if after != 1 {
		t.Fatalf("RCM bandwidth on a path = %d, want 1 (before: %d)", after, before)
	}
	if before < 16 {
		t.Fatalf("shuffled path already near-banded (%d); test is vacuous", before)
	}
}

func TestRCMOrderCoversAllComponentsAndIsolates(t *testing.T) {
	b := NewBuilder()
	b.EnsureN(10)
	// Two components plus isolated nodes 8, 9.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 3}, {6, 7}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.mustBuild()
	checkBijection(t, RCMOrder(g), g.N())
	checkBijection(t, DegreeOrder(g), g.N())
}
