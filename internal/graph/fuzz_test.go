package graph

import (
	"bufio"
	"bytes"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Fuzz targets for the two parser entry points that consume untrusted
// bytes: the SNAP-style text edge list (fed by simserve's POST /v1/graph
// and every CLI -graph flag) and the binary snapshot ReadFrom path (fed by
// warm restarts from disk). Seed corpora live under
// testdata/fuzz/<FuzzName>/ in the standard encoding, so `go test` replays
// them on every run and `go test -fuzz` mutates from them.

// maxFuzzNodeID caps the node-id space a fuzz input may name: ReadEdgeList
// allocates O(max id) state by design (callers like simserve pre-scan ids
// against their own cap), so the harness filters absurd ids the same way
// rather than letting the fuzzer trivially OOM the process.
const maxFuzzNodeID = 1 << 20

// edgeListIDsBounded mirrors simserve's pre-scan: it reports whether every
// numeric id in the input stays under maxFuzzNodeID (non-numeric lines make
// the input a labelled graph, where ids are dense by construction).
func edgeListIDsBounded(data []byte) bool {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		for _, f := range fields {
			if id, err := strconv.Atoi(f); err == nil && id >= maxFuzzNodeID {
				return false
			}
		}
	}
	return sc.Err() == nil
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# comment\n3\t4\n\n4\t3\n"))
	f.Add([]byte("a b\nb c\nc a\n"))
	f.Add([]byte("5 5\n"))
	f.Add([]byte("survey\tclassicA\nsurvey\tclassicB\n1 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if !edgeListIDsBounded(data) {
			t.Skip("node id past harness cap")
		}
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return // rejected input; no invariants to hold
		}
		checkGraphInvariants(t, g)
		// Round-trip: writing and re-reading must preserve the edge multiset
		// (up to relabelling for labelled graphs — re-reading assigns ids by
		// first appearance in the rewritten order) and never invent nodes.
		// The node count itself is only guaranteed for unlabelled graphs: a
		// mixed numeric-then-labelled input backfills labels for isolated
		// numeric nodes, and the edge-list format has no way to write a node
		// that appears in no edge.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("WriteEdgeList: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written edge list: %v", err)
		}
		if g2.M() != g.M() || g2.N() > g.N() || (!g.Labeled() && g2.N() != g.N()) {
			t.Fatalf("round trip changed size: %d/%d → %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
		if canon, canon2 := canonicalEdges(g), canonicalEdges(g2); canon != canon2 {
			t.Fatalf("round trip changed edges:\n%s\nvs\n%s", canon, canon2)
		}
	})
}

func FuzzGraphReadFrom(f *testing.F) {
	for _, g := range []*Graph{
		FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}}),
		FromEdges(1, nil),
		FromEdges(5, [][2]int{{4, 4}, {0, 4}}),
		mustLabelled(f),
	} {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("SIMGRB1\n garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkGraphInvariants(t, g)
		// Accepted snapshots must round-trip bit-for-bit: serialising the
		// parsed graph reproduces a snapshot that parses to the same graph.
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo after accept: %v", err)
		}
		g2, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written snapshot: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed size: %d/%d → %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
		if canon, canon2 := canonicalEdges(g), canonicalEdges(g2); canon != canon2 {
			t.Fatal("round trip changed edges")
		}
	})
}

// checkGraphInvariants asserts the structural contract every parsed graph
// must satisfy: both CSR directions consistent, rows sorted, ids in range.
func checkGraphInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n := g.N()
	inCount := 0
	for v := 0; v < n; v++ {
		inCount += g.InDeg(v)
		row := g.In(v)
		for i, u := range row {
			if int(u) < 0 || int(u) >= n {
				t.Fatalf("in-neighbour %d of %d out of range", u, v)
			}
			if i > 0 && row[i-1] >= u {
				t.Fatalf("in-row of %d not strictly sorted", v)
			}
			if !g.HasEdge(int(u), v) {
				t.Fatalf("in-edge %d→%d missing from out-direction", u, v)
			}
		}
		out := g.Out(v)
		for i, w := range out {
			if int(w) < 0 || int(w) >= n {
				t.Fatalf("out-neighbour %d of %d out of range", w, v)
			}
			if i > 0 && out[i-1] >= w {
				t.Fatalf("out-row of %d not strictly sorted", v)
			}
		}
	}
	if inCount != g.M() {
		t.Fatalf("in-direction has %d edges, out-direction %d", inCount, g.M())
	}
	if g.Labeled() {
		for i := 0; i < n; i++ {
			if id, ok := g.NodeByLabel(g.Label(i)); !ok || g.Label(id) != g.Label(i) {
				t.Fatalf("label table inconsistent at node %d", i)
			}
		}
	}
}

// canonicalEdges renders the edge multiset in a label-stable form, so
// graphs that differ only by id assignment compare equal.
func canonicalEdges(g *Graph) string {
	lines := make([]string, 0, g.M())
	g.Edges(func(u, v int) {
		lines = append(lines, g.Label(u)+"\t"+g.Label(v))
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func mustLabelled(f *testing.F) *Graph {
	b := NewBuilder()
	b.AddEdgeLabeled("alpha", "beta")
	b.AddEdgeLabeled("beta", "gamma")
	b.AddEdgeLabeled("gamma", "alpha")
	g, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	return g
}
