// Package graph provides the directed-graph substrate used by every
// similarity measure in this repository: a compact CSR representation with
// both out- and in-adjacency (SimRank-family measures are driven by
// in-neighbour sets I(·), RWR by out-neighbour sets O(·)), an incremental
// builder, label support, and text serialisation.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable directed graph in CSR form. Node ids are dense ints
// in [0, N()). Both adjacency directions are materialised because the
// algorithms in this repository traverse in-links (SimRank, SimRank*,
// P-Rank) as well as out-links (RWR, P-Rank).
type Graph struct {
	n      int
	outOff []int32 // len n+1; out-neighbours of u are outDst[outOff[u]:outOff[u+1]]
	outDst []int32 // sorted within each row
	inOff  []int32 // len n+1; in-neighbours of v are inSrc[inOff[v]:inOff[v+1]]
	inSrc  []int32 // sorted within each row

	labels  []string       // optional, len n or nil
	byLabel map[string]int // nil iff labels is nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.outDst) }

// Out returns the out-neighbours of u in ascending order. The slice is a
// view into the graph and must not be modified.
func (g *Graph) Out(u int) []int32 { return g.outDst[g.outOff[u]:g.outOff[u+1]] }

// In returns the in-neighbours of v in ascending order. The slice is a view
// into the graph and must not be modified.
func (g *Graph) In(v int) []int32 { return g.inSrc[g.inOff[v]:g.inOff[v+1]] }

// OutDeg returns |O(u)|.
func (g *Graph) OutDeg(u int) int { return int(g.outOff[u+1] - g.outOff[u]) }

// InDeg returns |I(v)|.
func (g *Graph) InDeg(v int) int { return int(g.inOff[v+1] - g.inOff[v]) }

// HasEdge reports whether the edge u→v exists.
func (g *Graph) HasEdge(u, v int) bool {
	row := g.Out(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// Label returns the label of node i, or its decimal id if the graph is
// unlabelled.
func (g *Graph) Label(i int) string {
	if g.labels == nil {
		return fmt.Sprintf("%d", i)
	}
	return g.labels[i]
}

// Labeled reports whether the graph carries node labels.
func (g *Graph) Labeled() bool { return g.labels != nil }

// NodeByLabel returns the id of the node with the given label.
func (g *Graph) NodeByLabel(label string) (int, bool) {
	if g.byLabel == nil {
		return 0, false
	}
	id, ok := g.byLabel[label]
	return id, ok
}

// Edges calls fn for every edge u→v in (u, v) order.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(u) {
			fn(u, int(v))
		}
	}
}

// Density returns M/N, the average degree the paper reports in Figure 5.
func (g *Graph) Density() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.M()) / float64(g.n)
}

// Reverse returns a new graph with every edge direction flipped. Labels are
// shared with the receiver.
func (g *Graph) Reverse() *Graph {
	b := NewBuilder()
	b.EnsureN(g.n)
	g.Edges(func(u, v int) { b.AddEdge(v, u) })
	r := b.mustBuild()
	r.labels, r.byLabel = g.labels, g.byLabel
	return r
}

// AsUndirected returns the symmetric closure of g: for every edge u→v the
// result has both u→v and v→u (self-loops stay single). Labels are shared.
func (g *Graph) AsUndirected() *Graph {
	b := NewBuilder()
	b.EnsureN(g.n)
	g.Edges(func(u, v int) {
		b.AddEdge(u, v)
		if u != v {
			b.AddEdge(v, u)
		}
	})
	u := b.mustBuild()
	u.labels, u.byLabel = g.labels, g.byLabel
	return u
}

// IsSymmetric reports whether for every edge u→v the reverse edge v→u is
// present (i.e. the graph is undirected in the representation used here).
func (g *Graph) IsSymmetric() bool {
	sym := true
	g.Edges(func(u, v int) {
		if sym && !g.HasEdge(v, u) {
			sym = false
		}
	})
	return sym
}

// Stats summarises a graph for dataset tables (paper Figure 5).
type Stats struct {
	N, M            int
	Density         float64
	MaxInDeg        int
	MaxOutDeg       int
	Sources         int // nodes with I(v) = ∅
	Sinks           int // nodes with O(u) = ∅
	SelfLoops       int
	SymmetricShape  bool
	AvgInNeighbours float64
}

// ComputeStats walks the graph once and returns summary statistics.
func (g *Graph) ComputeStats() Stats {
	st := Stats{N: g.n, M: g.M(), Density: g.Density(), SymmetricShape: g.IsSymmetric()}
	for v := 0; v < g.n; v++ {
		if d := g.InDeg(v); d > st.MaxInDeg {
			st.MaxInDeg = d
		}
		if d := g.OutDeg(v); d > st.MaxOutDeg {
			st.MaxOutDeg = d
		}
		if g.InDeg(v) == 0 {
			st.Sources++
		}
		if g.OutDeg(v) == 0 {
			st.Sinks++
		}
		if g.HasEdge(v, v) {
			st.SelfLoops++
		}
	}
	if g.n > 0 {
		st.AvgInNeighbours = float64(g.M()) / float64(g.n)
	}
	return st
}

// FromEdges builds an unlabelled graph on n nodes from an edge list,
// deduplicating parallel edges. It panics on out-of-range endpoints; use a
// Builder for error handling.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder()
	b.EnsureN(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.mustBuild()
}
