package graph

import "sort"

// Node relabeling orders. The similarity kernels sweep CSR operators whose
// gather/scatter locality is set entirely by the node numbering, so a
// one-time relabeling at preprocessing time buys cache hits on every later
// sweep. Both orders return a permutation perm with perm[old] = new;
// sparse.Permute applies it to an operator and sparse.InversePerm maps
// results back.

// DegreeOrder returns the relabeling that numbers nodes by descending total
// degree (in + out), ties broken by ascending old id. Hubs — the rows and
// columns almost every query touches — cluster at the front of the operator
// and of every dense iteration vector, so the hot working set stays within a
// few cache lines instead of being sprayed across O(n) memory.
func DegreeOrder(g *Graph) []int32 {
	n := g.N()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	deg := func(v int32) int { return g.InDeg(int(v)) + g.OutDeg(int(v)) }
	sort.SliceStable(order, func(a, b int) bool { return deg(order[a]) > deg(order[b]) })
	perm := make([]int32, n)
	for newID, oldID := range order {
		perm[oldID] = int32(newID)
	}
	return perm
}

// RCMOrder returns a reverse Cuthill–McKee relabeling over the undirected
// closure of g: each connected component is breadth-first traversed from a
// minimum-degree seed with neighbours visited in ascending degree, and the
// final visit order is reversed. RCM minimises (heuristically) the operator
// bandwidth — how far column indices stray from the diagonal — which is what
// keeps the x[col] gathers of a sweep inside the cache lines the sweep just
// touched.
func RCMOrder(g *Graph) []int32 {
	n := g.N()
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.InDeg(v) + g.OutDeg(v))
	}

	// Seeds in ascending degree: the head of this list that is still
	// unvisited seeds the next component, giving every component a
	// pseudo-peripheral-ish start without a separate search pass.
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.SliceStable(seeds, func(a, b int) bool { return deg[seeds[a]] < deg[seeds[b]] })

	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	nbrs := make([]int32, 0, 64)
	for _, seed := range seeds {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			// Neighbours over the undirected closure: merge the two sorted
			// adjacency views, then visit in ascending degree.
			nbrs = nbrs[:0]
			out, in := g.Out(int(v)), g.In(int(v))
			i, j := 0, 0
			for i < len(out) || j < len(in) {
				switch {
				case j == len(in) || (i < len(out) && out[i] < in[j]):
					nbrs = append(nbrs, out[i])
					i++
				case i == len(out) || in[j] < out[i]:
					nbrs = append(nbrs, in[j])
					j++
				default: // equal: one undirected neighbour
					nbrs = append(nbrs, out[i])
					i, j = i+1, j+1
				}
			}
			sort.SliceStable(nbrs, func(a, b int) bool { return deg[nbrs[a]] < deg[nbrs[b]] })
			for _, w := range nbrs {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}

	perm := make([]int32, n)
	for i, oldID := range order {
		perm[oldID] = int32(n - 1 - i) // reverse of the visit order
	}
	return perm
}
