package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// rebuildWithEdits applies ops to g the slow way: collect the surviving edge
// set and run it through the Builder — the from-scratch oracle ApplyEdits
// must match structurally.
func rebuildWithEdits(t *testing.T, g *Graph, ops []EdgeOp) *Graph {
	t.Helper()
	set := make(map[[2]int]bool)
	g.Edges(func(u, v int) { set[[2]int{u, v}] = true })
	// Same contract as ApplyEdits: collapse to last-op-wins verdicts first,
	// so a transient insert cancelled later in the batch grows nothing.
	set, n := oracleApply(set, g.N(), ops)
	return oracleBuild(t, set, n)
}

// assertStructurallyEqual compares the CSR arrays directly: bitwise-identical
// structure is the contract the incremental engine path builds on.
func assertStructurallyEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("n = %d, want %d", got.n, want.n)
	}
	if !reflect.DeepEqual(got.outOff, want.outOff) || !reflect.DeepEqual(got.outDst, want.outDst) {
		t.Fatalf("out CSR differs:\n got %v / %v\nwant %v / %v", got.outOff, got.outDst, want.outOff, want.outDst)
	}
	if !reflect.DeepEqual(got.inOff, want.inOff) || !reflect.DeepEqual(got.inSrc, want.inSrc) {
		t.Fatalf("in CSR differs:\n got %v / %v\nwant %v / %v", got.inOff, got.inSrc, want.inOff, want.inSrc)
	}
}

func TestApplyEditsMatchesRebuild(t *testing.T) {
	g := FromEdges(6, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}, {4, 2}})
	ops := []EdgeOp{
		{U: 5, V: 0},               // insert touching an isolated node
		{U: 0, V: 2, Delete: true}, // delete an existing edge
		{U: 1, V: 3},               // plain insert
		{U: 4, V: 2, Delete: true},
		{U: 7, V: 1}, // grows the graph to 8 nodes
	}
	ng, delta, err := g.ApplyEdits(ops)
	if err != nil {
		t.Fatal(err)
	}
	assertStructurallyEqual(t, ng, rebuildWithEdits(t, g, ops))
	if delta.Inserted != 3 || delta.Removed != 2 {
		t.Fatalf("delta = %+v, want 3 inserted / 2 removed", delta)
	}
	if delta.OldN != 6 || delta.NewN != 8 {
		t.Fatalf("delta N %d→%d, want 6→8", delta.OldN, delta.NewN)
	}
	// The original graph is untouched (copy-on-write).
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("receiver mutated: N=%d M=%d", g.N(), g.M())
	}
}

func TestApplyEditsNoOps(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}})
	for name, ops := range map[string][]EdgeOp{
		"empty":            nil,
		"insert-existing":  {{U: 0, V: 1}},
		"delete-absent":    {{U: 2, V: 0, Delete: true}},
		"delete-oob":       {{U: 9, V: 9, Delete: true}},
		"insert-then-undo": {{U: 0, V: 3}, {U: 0, V: 3, Delete: true}},
	} {
		t.Run(name, func(t *testing.T) {
			ng, delta, err := g.ApplyEdits(ops)
			if err != nil {
				t.Fatal(err)
			}
			if ng != g {
				t.Fatal("no-op batch should return the receiver")
			}
			if !delta.Empty() {
				t.Fatalf("delta = %+v, want empty", delta)
			}
		})
	}
}

func TestApplyEditsLastOpWins(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}})
	// delete then re-insert the same edge: net effect nothing…
	ng, delta, err := g.ApplyEdits([]EdgeOp{{U: 0, V: 1, Delete: true}, {U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() || ng != g {
		t.Fatalf("delete+reinsert should be a no-op, delta = %+v", delta)
	}
	// …and insert-then-delete of a new edge likewise.
	ng, delta, err = g.ApplyEdits([]EdgeOp{{U: 2, V: 0}, {U: 2, V: 0, Delete: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() || ng != g {
		t.Fatalf("insert+delete should be a no-op, delta = %+v", delta)
	}
}

func TestApplyEditsRejectsBadIDs(t *testing.T) {
	g := FromEdges(2, [][2]int{{0, 1}})
	if _, _, err := g.ApplyEdits([]EdgeOp{{U: -1, V: 0}}); err == nil {
		t.Fatal("want error for negative id")
	}
	if _, _, err := g.ApplyEdits([]EdgeOp{{U: 0, V: 1 << 40}}); err == nil {
		t.Fatal("want error for id past int32")
	}
}

func TestApplyEditsDirtySets(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {0, 2}, {3, 1}})
	_, delta, err := g.ApplyEdits([]EdgeOp{
		{U: 0, V: 2, Delete: true},
		{U: 4, V: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{0, 4}; !reflect.DeepEqual(delta.DirtyOut, want) {
		t.Fatalf("DirtyOut = %v, want %v", delta.DirtyOut, want)
	}
	if want := []int32{1, 2}; !reflect.DeepEqual(delta.DirtyIn, want) {
		t.Fatalf("DirtyIn = %v, want %v", delta.DirtyIn, want)
	}
}

func TestApplyEditsLabelledGrowth(t *testing.T) {
	b := NewBuilder()
	b.AddEdgeLabeled("a", "b")
	b.AddEdgeLabeled("b", "c")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := g.ApplyEdits([]EdgeOp{{U: 0, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if ng.N() != 5 || !ng.Labeled() {
		t.Fatalf("N=%d labelled=%v, want 5/true", ng.N(), ng.Labeled())
	}
	if got := ng.Label(4); got != "4" {
		t.Fatalf("backfilled label = %q, want \"4\"", got)
	}
	if id, ok := ng.NodeByLabel("b"); !ok || id != 1 {
		t.Fatalf("NodeByLabel(b) = %d,%v", id, ok)
	}
	// The old graph's label state must be untouched.
	if g.N() != 3 || len(g.labels) != 3 {
		t.Fatalf("receiver label state mutated: N=%d labels=%d", g.N(), len(g.labels))
	}
}

// Randomised cross-check against the Builder oracle: many rounds of mixed
// edits over a random base graph must splice to exactly the from-scratch CSR.
func TestApplyEditsRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 25; round++ {
		n := 10 + rng.Intn(30)
		var edges [][2]int
		for i := 0; i < 3*n; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		g := FromEdges(n, edges)
		var ops []EdgeOp
		for i := 0; i < 1+rng.Intn(2*n); i++ {
			op := EdgeOp{U: rng.Intn(n + 3), V: rng.Intn(n + 3), Delete: rng.Intn(2) == 0}
			ops = append(ops, op)
		}
		ng, _, err := g.ApplyEdits(ops)
		if err != nil {
			t.Fatal(err)
		}
		assertStructurallyEqual(t, ng, rebuildWithEdits(t, g, ops))
	}
}

func TestBinaryRoundTripUnlabelled(t *testing.T) {
	g := FromEdges(7, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}, {5, 6}, {6, 5}})
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertStructurallyEqual(t, got, g)
	if got.Labeled() {
		t.Fatal("round-trip invented labels")
	}
}

func TestBinaryRoundTripLabelled(t *testing.T) {
	b := NewBuilder()
	for _, e := range [][2]string{{"alpha", "beta"}, {"beta", "gamma"}, {"gamma", "alpha"}, {"alpha", "gamma"}} {
		b.AddEdgeLabeled(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertStructurallyEqual(t, got, g)
	if !reflect.DeepEqual(got.labels, g.labels) {
		t.Fatalf("labels = %v, want %v", got.labels, g.labels)
	}
	if id, ok := got.NodeByLabel("gamma"); !ok || id != 2 {
		t.Fatalf("NodeByLabel(gamma) = %d,%v", id, ok)
	}
}

func TestBinaryReadRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad-magic": []byte("NOTAGRPH...."),
		"truncated": append([]byte(binaryMagic), 0, 0, 0, 0),
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
				t.Fatal("want error")
			}
		})
	}
	// Structurally invalid: edge target out of range.
	g := FromEdges(2, [][2]int{{0, 1}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-4] = 0x7f // corrupt the single outDst entry
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("want error for out-of-range edge target")
	}
}
