package graph

import (
	"fmt"
	"math"
	"sort"
)

// EdgeOp is one edge mutation: the insertion (Delete false) or removal
// (Delete true) of the directed edge U→V. A batch of EdgeOps is a sequence;
// when the same edge appears more than once in a batch the last operation
// wins, matching the edge-wise effect of applying the ops one at a time.
// The batch is collapsed to its final verdicts before anything is applied,
// so a node named only by inserts that a later delete in the same batch
// cancels is never materialised — the node count grows exactly as far as
// the resulting edge set requires.
type EdgeOp struct {
	U, V   int
	Delete bool
}

// EditDelta reports what ApplyEdits changed, in the terms an incremental
// consumer needs: which adjacency rows are no longer what they were. A node
// appears in DirtyOut (resp. DirtyIn) exactly when its out-row (resp.
// in-row) in the new graph differs from the old one — no-op edits (inserting
// a present edge, deleting an absent one) dirty nothing.
type EditDelta struct {
	// OldN and NewN are the node counts before and after; NewN > OldN when
	// an insertion named a node past the old range.
	OldN, NewN int
	// Inserted and Removed count the edges actually added and actually
	// deleted — edits that found the graph already in the requested state
	// are excluded.
	Inserted, Removed int
	// DirtyOut and DirtyIn are the nodes whose out-/in-neighbourhoods
	// changed, each sorted ascending. Nodes in [OldN, NewN) appear only if
	// they gained edges in the respective direction.
	DirtyOut, DirtyIn []int32
}

// Empty reports whether the delta changed nothing.
func (d *EditDelta) Empty() bool {
	return d.Inserted == 0 && d.Removed == 0 && d.NewN == d.OldN
}

// ApplyEdits returns a new graph with the batch of edge mutations applied,
// leaving the receiver untouched — the copy-on-write step behind the
// dyngraph versioned store. The result is structurally identical to a graph
// built from scratch on the mutated edge list: rows stay sorted and
// deduplicated, so downstream structures derived from it (transition
// matrices, compressions) are bitwise-reproducible either way.
//
// Only rows of dirty nodes are recomputed; every clean row is copied into
// the new CSR arrays in bulk. Inserting an edge past the current node range
// grows the graph exactly as Builder.AddEdge would (labelled graphs backfill
// decimal labels for the new nodes). Deleting an edge that does not exist,
// or inserting one that does, is a no-op. When the whole batch is a no-op
// the receiver itself is returned.
func (g *Graph) ApplyEdits(ops []EdgeOp) (*Graph, *EditDelta, error) {
	delta := &EditDelta{OldN: g.n, NewN: g.n}
	if len(ops) == 0 {
		return g, delta, nil
	}
	// Collapse the sequence to one final verdict per edge (last op wins).
	// Order of first appearance is irrelevant: the per-row merge sorts.
	final := make(map[[2]int32]bool, len(ops))
	for _, op := range ops {
		if op.U < 0 || op.V < 0 {
			return nil, nil, fmt.Errorf("graph: negative node id in edit (%d, %d)", op.U, op.V)
		}
		if op.U > math.MaxInt32 || op.V > math.MaxInt32 {
			return nil, nil, fmt.Errorf("graph: node id in edit (%d, %d) exceeds int32", op.U, op.V)
		}
		final[[2]int32{int32(op.U), int32(op.V)}] = !op.Delete
	}
	// Split into effective inserts/deletes against the current graph.
	addOut := make(map[int32][]int32)
	addIn := make(map[int32][]int32)
	delOut := make(map[int32]map[int32]bool)
	delIn := make(map[int32]map[int32]bool)
	newN := g.n
	for e, insert := range final {
		u, v := e[0], e[1]
		exists := int(u) < g.n && int(v) < g.n && g.HasEdge(int(u), int(v))
		switch {
		case insert && !exists:
			addOut[u] = append(addOut[u], v)
			addIn[v] = append(addIn[v], u)
			if int(u) >= newN {
				newN = int(u) + 1
			}
			if int(v) >= newN {
				newN = int(v) + 1
			}
			delta.Inserted++
		case !insert && exists:
			if delOut[u] == nil {
				delOut[u] = make(map[int32]bool)
			}
			delOut[u][v] = true
			if delIn[v] == nil {
				delIn[v] = make(map[int32]bool)
			}
			delIn[v][u] = true
			delta.Removed++
		}
	}
	delta.NewN = newN
	if delta.Empty() {
		return g, delta, nil
	}

	oldOut := func(u int) []int32 {
		if u < g.n {
			return g.Out(u)
		}
		return nil
	}
	oldIn := func(v int) []int32 {
		if v < g.n {
			return g.In(v)
		}
		return nil
	}
	outRows, dirtyOut := mergeRows(oldOut, addOut, delOut)
	inRows, dirtyIn := mergeRows(oldIn, addIn, delIn)
	delta.DirtyOut, delta.DirtyIn = dirtyOut, dirtyIn

	ng := &Graph{
		n:       newN,
		labels:  g.labels,
		byLabel: g.byLabel,
	}
	ng.outOff, ng.outDst = spliceCSR(g.outOff, g.outDst, g.n, newN, outRows, dirtyOut)
	ng.inOff, ng.inSrc = spliceCSR(g.inOff, g.inSrc, g.n, newN, inRows, dirtyIn)

	// Grow labels the way Builder.EnsureN does: decimal backfill. The old
	// graph's label state is shared when the node set is unchanged, copied
	// when it must grow (labels and the byLabel map are read concurrently by
	// holders of the old graph).
	if g.labels != nil && newN > g.n {
		labels := make([]string, g.n, newN)
		copy(labels, g.labels)
		byLabel := make(map[string]int, newN)
		for l, id := range g.byLabel {
			byLabel[l] = id
		}
		for i := g.n; i < newN; i++ {
			l := fmt.Sprintf("%d", i)
			labels = append(labels, l)
			if _, taken := byLabel[l]; !taken {
				byLabel[l] = i
			}
		}
		ng.labels, ng.byLabel = labels, byLabel
	}
	return ng, delta, nil
}

// mergeRows computes the post-edit adjacency row for every touched node:
// the old row minus dels plus adds, kept sorted. Rows that come out
// identical to the old row (possible when an add and a del cancel against
// map-collapsed duplicates — defensive; the caller's effective split should
// prevent it) are dropped from the dirty set. Returns the new rows keyed by
// node and the sorted dirty node list.
func mergeRows(old func(int) []int32, adds map[int32][]int32, dels map[int32]map[int32]bool) (map[int32][]int32, []int32) {
	rows := make(map[int32][]int32, len(adds)+len(dels))
	touched := make(map[int32]bool, len(adds)+len(dels))
	for u := range adds {
		touched[u] = true
	}
	for u := range dels {
		touched[u] = true
	}
	dirty := make([]int32, 0, len(touched))
	for u := range touched {
		prev := old(int(u))
		add := adds[u]
		sort.Slice(add, func(i, j int) bool { return add[i] < add[j] })
		del := dels[u]
		merged := make([]int32, 0, len(prev)+len(add))
		i, j := 0, 0
		for i < len(prev) || j < len(add) {
			switch {
			case j == len(add) || (i < len(prev) && prev[i] < add[j]):
				if !del[prev[i]] {
					merged = append(merged, prev[i])
				}
				i++
			default:
				merged = append(merged, add[j])
				j++
			}
		}
		if equalRows(prev, merged) {
			continue
		}
		rows[u] = merged
		dirty = append(dirty, u)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	return rows, dirty
}

func equalRows(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// spliceCSR assembles the new CSR offset/index arrays: dirty rows take their
// recomputed content, every maximal run of clean rows is copied with a
// single bulk copy (their packed content is contiguous in the old arrays).
// Rows in [oldN, newN) not present in rows are empty.
func spliceCSR(oldOff, oldIdx []int32, oldN, newN int, rows map[int32][]int32, dirty []int32) (off, idx []int32) {
	off = make([]int32, newN+1)
	total := 0
	d := 0
	for u := 0; u < newN; u++ {
		if d < len(dirty) && int(dirty[d]) == u {
			total += len(rows[dirty[d]])
			d++
		} else if u < oldN {
			total += int(oldOff[u+1] - oldOff[u])
		}
		off[u+1] = int32(total)
	}
	idx = make([]int32, total)
	// Copy clean runs between consecutive dirty nodes in bulk, then drop the
	// dirty row's new content in place.
	prev := 0 // first row of the pending clean run
	flushClean := func(hi int) {
		if prev >= hi || prev >= oldN {
			return
		}
		top := hi
		if top > oldN {
			top = oldN
		}
		copy(idx[off[prev]:off[top]], oldIdx[oldOff[prev]:oldOff[top]])
	}
	for _, du := range dirty {
		u := int(du)
		flushClean(u)
		copy(idx[off[u]:off[u+1]], rows[du])
		prev = u + 1
	}
	flushClean(newN)
	return off, idx
}
