package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property test for the dynamic-graph write path: ANY batch of edits —
// duplicates of the same edge with conflicting verdicts, self-loops,
// deletes of absent edges, inserts of present ones, node growth, all mixed
// — must leave ApplyEdits bitwise-equal (CSR arrays, both directions) to
// building the collapsed mutated edge set from scratch. This is the
// invariant the whole incremental engine stack (transition splicing, epoch
// refresh, snapshot round-trips) is built on.

// oracleApply applies ops to an edge-set model of the graph under the
// documented batch semantics: collapse to last-op-wins verdicts, then grow
// the node count exactly as far as the surviving inserts require.
func oracleApply(set map[[2]int]bool, n int, ops []EdgeOp) (map[[2]int]bool, int) {
	final := make(map[[2]int]bool, len(ops))
	for _, op := range ops {
		final[[2]int{op.U, op.V}] = !op.Delete
	}
	for e, insert := range final {
		if insert {
			if !set[e] {
				set[e] = true
				if e[0] >= n {
					n = e[0] + 1
				}
				if e[1] >= n {
					n = e[1] + 1
				}
			}
		} else {
			delete(set, e)
		}
	}
	return set, n
}

func oracleBuild(t *testing.T, set map[[2]int]bool, n int) *Graph {
	t.Helper()
	b := NewBuilder()
	b.EnsureN(n)
	for e := range set {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomOps generates a batch that deliberately stresses the documented
// edge cases: ~half the ops target a small id range (forcing duplicate
// edges with conflicting verdicts), self-loops are injected outright, and
// ids run past n to force node growth.
func randomOps(rng *rand.Rand, n, count int) []EdgeOp {
	ops := make([]EdgeOp, 0, count)
	for i := 0; i < count; i++ {
		span := n + 6
		if rng.Intn(2) == 0 {
			span = 4 // tiny range: duplicates and verdict flips are common
		}
		op := EdgeOp{U: rng.Intn(span), V: rng.Intn(span), Delete: rng.Intn(2) == 0}
		if rng.Intn(8) == 0 {
			op.V = op.U // forced self-loop
		}
		ops = append(ops, op)
	}
	return ops
}

func TestApplyEditsPropertyBitwiseRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		set := make(map[[2]int]bool)
		for i := 0; i < rng.Intn(4*n); i++ {
			set[[2]int{rng.Intn(n), rng.Intn(n)}] = true
		}
		g := oracleBuild(t, set, n)
		// Chain several batches: every intermediate epoch must match its
		// from-scratch rebuild, not just the final state — the engine
		// splices each epoch from the previous one.
		for batch := 0; batch < 3; batch++ {
			ops := randomOps(rng, n, 1+rng.Intn(24))
			ng, delta, err := g.ApplyEdits(ops)
			if err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			set, n = oracleApply(set, n, ops)
			want := oracleBuild(t, set, n)
			assertStructurallyEqual(t, ng, want)
			if delta.NewN != n {
				t.Fatalf("trial %d batch %d: delta.NewN = %d, oracle %d", trial, batch, delta.NewN, n)
			}
			if delta.Empty() && ng != g {
				t.Fatalf("trial %d batch %d: empty delta did not return the receiver", trial, batch)
			}
			g = ng
		}
	}
}

// A transient node — named only by an insert that a later delete in the
// same batch cancels — must not be materialised (the collapsed-batch
// semantics pinned in the ApplyEdits contract).
func TestApplyEditsTransientNodeNotMaterialised(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	ng, delta, err := g.ApplyEdits([]EdgeOp{
		{U: 0, V: 9},               // would grow to 10 nodes...
		{U: 0, V: 9, Delete: true}, // ...but the batch cancels it
	})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("delta %+v, want empty", delta)
	}
	if ng != g {
		t.Fatal("net no-op batch must return the receiver")
	}
	if ng.N() != 3 {
		t.Fatalf("N = %d, want 3", ng.N())
	}
}

// The property must also hold on labelled graphs, where growth backfills
// decimal labels.
func TestApplyEditsPropertyLabelled(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		b := NewBuilder()
		n := 3 + rng.Intn(6)
		for i := 0; i < n; i++ {
			b.AddEdgeLabeled(fmt.Sprintf("node%d", rng.Intn(n)), fmt.Sprintf("node%d", rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[[2]int]bool)
		g.Edges(func(u, v int) { set[[2]int{u, v}] = true })
		ops := randomOps(rng, g.N(), 1+rng.Intn(12))
		ng, _, err := g.ApplyEdits(ops)
		if err != nil {
			t.Fatal(err)
		}
		set, wantN := oracleApply(set, g.N(), ops)
		want := oracleBuild(t, set, wantN)
		if ng.n != want.n {
			t.Fatalf("trial %d: n = %d, want %d", trial, ng.n, want.n)
		}
		assertStructurallyEqual(t, ng, want)
		if !ng.Labeled() {
			t.Fatalf("trial %d: labels lost", trial)
		}
		for i := g.N(); i < ng.N(); i++ {
			if got, want := ng.Label(i), fmt.Sprintf("%d", i); got != want {
				t.Fatalf("trial %d: grown node %d labelled %q, want %q", trial, i, got, want)
			}
		}
	}
}
