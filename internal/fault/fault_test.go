package fault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"kernel.panic",             // no rate
		"kernel.panic:2",           // probability out of range
		"kernel.panic:-0.1",        // negative
		"kernel.panic:x0",          // zero token trigger
		"kernel.panic:xq",          // malformed token trigger
		"nodot:0.5",                // point without a site.action dot
		"kernel.slow:0.5:nonsense", // bad delay
		"kernel.slow:0.5:1ms:extra",
		"kernel.panic:0.5,kernel.panic:0.5", // duplicate
	}
	for _, spec := range bad {
		if _, err := Parse(1, spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseEmptyIsInert(t *testing.T) {
	in, err := Parse(1, "  ")
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatalf("empty spec should yield a nil injector, got %v", in)
	}
	// Every method must be a no-op on nil.
	if fired, _ := in.Fire(PointKernelPanic); fired {
		t.Fatal("nil injector fired")
	}
	if in.Hook() != nil {
		t.Fatal("nil injector returned a hook")
	}
	r := strings.NewReader("data")
	if in.Reader(r) != io.Reader(r) {
		t.Fatal("nil injector wrapped a reader")
	}
	if in.Counts() != nil {
		t.Fatal("nil injector reported counts")
	}
	if in.String() != "<no faults>" {
		t.Fatalf("nil String = %q", in.String())
	}
}

func TestFireIsDeterministic(t *testing.T) {
	draw := func() []bool {
		in, err := Parse(42, "kernel.panic:0.3")
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i], _ = in.Fire(PointKernelPanic)
		}
		return out
	}
	a, b := draw(), b2(draw)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical injectors", i)
		}
	}
	anyFired := false
	for _, f := range a {
		anyFired = anyFired || f
	}
	if !anyFired {
		t.Fatal("rate 0.3 never fired in 64 draws")
	}
}

// b2 exists only to keep the two draw sequences visually symmetric.
func b2(f func() []bool) []bool { return f() }

func TestSeedMovesTheSchedule(t *testing.T) {
	seq := func(seed uint64) string {
		in, _ := Parse(seed, "kernel.panic:0.5")
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			if f, _ := in.Fire(PointKernelPanic); f {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		return sb.String()
	}
	if seq(1) == seq(2) {
		t.Fatal("different seeds produced the identical 64-draw schedule")
	}
}

func TestTokenTriggerFiresFirstN(t *testing.T) {
	in, err := Parse(7, "snapshot.err:x2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fired, _ := in.Fire(PointSnapshotErr)
		if want := i < 2; fired != want {
			t.Fatalf("draw %d: fired=%v, want %v", i, fired, want)
		}
	}
	if got := in.Counts()[PointSnapshotErr]; got != 2 {
		t.Fatalf("fired count = %d, want 2", got)
	}
}

func TestHookPanicsAndSleeps(t *testing.T) {
	in, err := Parse(3, "kernel.panic:x1,kernel.slow:x1:1ms")
	if err != nil {
		t.Fatal(err)
	}
	hook := in.Hook()
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("hook did not panic on a fired kernel.panic")
			}
		}()
		hook("kernel")
	}()
	if time.Since(start) < time.Millisecond {
		t.Error("hook did not sleep through kernel.slow")
	}
	// Both token triggers are spent: the next call is clean.
	hook("kernel")
}

func TestReaderInjectsAndRecovers(t *testing.T) {
	in, err := Parse(9, "snapshot.err:x2")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("snapshot payload bytes")
	// The first two wrapped readers fail on their first Read; the third
	// succeeds end to end — the retry-path schedule warm restart uses.
	for attempt := 0; attempt < 3; attempt++ {
		got, rerr := io.ReadAll(in.Reader(bytes.NewReader(payload)))
		if attempt < 2 {
			if !errors.Is(rerr, ErrInjected) {
				t.Fatalf("attempt %d: err = %v, want ErrInjected", attempt, rerr)
			}
			continue
		}
		if rerr != nil {
			t.Fatalf("attempt %d: %v", attempt, rerr)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("attempt %d read %q", attempt, got)
		}
	}
}

func TestStringListsPoints(t *testing.T) {
	in, _ := Parse(1, "kernel.slow:0.1:1ms,kernel.panic:0.2")
	if got := in.String(); got != "kernel.panic,kernel.slow" {
		t.Fatalf("String = %q", got)
	}
}
