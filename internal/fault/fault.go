// Package fault is the deterministic fault-injection harness behind
// `simserve -fault` and `simbench -chaos`: a seeded Injector parsed from a
// compact spec string decides, at named points in the serving path, whether
// to panic, sleep, or fail an I/O read. Every decision is drawn from a
// per-point counter-driven PRNG stream — no clocks, no global rand — so the
// same (seed, spec) pair replays the identical fault schedule on every run,
// which is what lets the CI chaos job assert exact availability and
// certificate guarantees instead of flaky ones.
//
// Spec grammar (comma-separated entries):
//
//	point:rate[:delay]
//
// where point is a dotted site.action name (see the Point* constants), rate
// is either a firing probability in [0,1] or the token trigger "xN" (fire
// the first N draws, then never — the clock-free way to script "the first
// two snapshot reads fail, the third succeeds"), and delay is a
// time.ParseDuration string for the slow-action points.
//
// Example: "kernel.panic:0.02,kernel.slow:0.1:2ms,snapshot.err:x2".
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The injection points the serving path fires. Sites fire every action
// registered for them: an engine kernel entry consults kernel.slow then
// kernel.panic; each snapshot read consults snapshot.slow then snapshot.err.
const (
	// PointKernelPanic panics at kernel entry — exercises the engine's and
	// the worker pools' recover-and-quarantine paths.
	PointKernelPanic = "kernel.panic"
	// PointKernelSlow sleeps at kernel entry — an artificial slow sweep that
	// drives deadline overruns and admission-queue pressure.
	PointKernelSlow = "kernel.slow"
	// PointSnapshotErr fails a snapshot read with ErrInjected — exercises
	// warm-restart validation and retry.
	PointSnapshotErr = "snapshot.err"
	// PointSnapshotSlow delays a snapshot read.
	PointSnapshotSlow = "snapshot.slow"
)

// ErrInjected is the error returned by injected I/O failures.
var ErrInjected = errors.New("fault: injected error")

// rule is one parsed spec entry.
type rule struct {
	prob  float64       // firing probability per draw, when first == 0
	first uint64        // "xN": fire draws 1..N, then never
	delay time.Duration // sleep when firing, for the slow actions
}

// pointState is the deterministic draw stream of one point.
type pointState struct {
	rng   uint64 // splitmix64 state
	draws uint64
	fired uint64
}

// Injector decides fault firings. The zero value and the nil pointer are
// inert: every method on a nil *Injector is a no-op, so call sites wire the
// hook unconditionally and pay one nil check when injection is off.
type Injector struct {
	seed  uint64
	mu    sync.Mutex
	rules map[string]*rule
	state map[string]*pointState
}

// Parse builds an Injector from a spec string (see the package comment for
// the grammar). An empty spec yields a nil Injector, which is valid and
// inert.
func Parse(seed uint64, spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{
		seed:  seed,
		rules: make(map[string]*rule),
		state: make(map[string]*pointState),
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		fields := strings.Split(entry, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("fault: entry %q: want point:rate[:delay]", entry)
		}
		point := strings.TrimSpace(fields[0])
		if point == "" || !strings.Contains(point, ".") {
			return nil, fmt.Errorf("fault: entry %q: point must be a dotted site.action name", entry)
		}
		var r rule
		rateStr := strings.TrimSpace(fields[1])
		if n, ok := strings.CutPrefix(rateStr, "x"); ok {
			first, err := strconv.ParseUint(n, 10, 64)
			if err != nil || first == 0 {
				return nil, fmt.Errorf("fault: entry %q: bad token trigger %q", entry, rateStr)
			}
			r.first = first
		} else {
			prob, err := strconv.ParseFloat(rateStr, 64)
			if err != nil || prob < 0 || prob > 1 {
				return nil, fmt.Errorf("fault: entry %q: rate must be a probability in [0,1] or xN", entry)
			}
			r.prob = prob
		}
		if len(fields) == 3 {
			d, err := time.ParseDuration(strings.TrimSpace(fields[2]))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: entry %q: bad delay %q", entry, fields[2])
			}
			r.delay = d
		}
		if _, dup := in.rules[point]; dup {
			return nil, fmt.Errorf("fault: duplicate point %q", point)
		}
		in.rules[point] = &r
	}
	return in, nil
}

// splitmix64 is the per-point PRNG step: tiny, seedable, and good enough to
// decorrelate firing schedules across points.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fire draws the point's next decision: whether it fires, and the configured
// delay when it does. Points without a rule never fire and record nothing.
func (in *Injector) Fire(point string) (bool, time.Duration) {
	if in == nil {
		return false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.rules[point]
	if !ok {
		return false, 0
	}
	st, ok := in.state[point]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(point))
		st = &pointState{rng: in.seed ^ h.Sum64()}
		in.state[point] = st
	}
	st.draws++
	fired := false
	if r.first > 0 {
		fired = st.draws <= r.first
	} else {
		st.rng = splitmix64(st.rng)
		// Top 53 bits → uniform float64 in [0, 1).
		u := float64(st.rng>>11) / (1 << 53)
		fired = u < r.prob
	}
	if fired {
		st.fired++
	}
	return fired, r.delay
}

// Hook adapts the injector to the engine's fault-hook shape: a call with a
// site name consults the site's slow rule (sleeping through the configured
// delay) and then its panic rule (panicking with an identifiable message).
// A nil Injector returns a nil hook.
func (in *Injector) Hook() func(site string) {
	if in == nil {
		return nil
	}
	return func(site string) {
		if fired, d := in.Fire(site + ".slow"); fired && d > 0 {
			time.Sleep(d)
		}
		if fired, _ := in.Fire(site + ".panic"); fired {
			panic("fault: injected panic at " + site)
		}
	}
}

// Reader wraps r so every Read consults snapshot.slow (delaying) and
// snapshot.err (failing with ErrInjected). A nil Injector returns r
// unchanged.
func (in *Injector) Reader(r io.Reader) io.Reader {
	if in == nil {
		return r
	}
	return &faultReader{in: in, r: r}
}

type faultReader struct {
	in *Injector
	r  io.Reader
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if fired, d := fr.in.Fire(PointSnapshotSlow); fired && d > 0 {
		time.Sleep(d)
	}
	if fired, _ := fr.in.Fire(PointSnapshotErr); fired {
		return 0, ErrInjected
	}
	return fr.r.Read(p)
}

// Counts reports, per configured point, how many draws fired so far — the
// injector's own ledger, used by tests and chaos reports to cross-check the
// schedule actually exercised.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.state))
	for p, st := range in.state {
		out[p] = st.fired
	}
	return out
}

// String renders the configured points in sorted order, for logs.
func (in *Injector) String() string {
	if in == nil {
		return "<no faults>"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	points := make([]string, 0, len(in.rules))
	for p := range in.rules {
		points = append(points, p)
	}
	sort.Strings(points)
	return strings.Join(points, ",")
}
