package classic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/graph"
)

func TestCoCitationFigure1(t *testing.T) {
	g := dataset.Figure1()
	s := CoCitation(g)
	id := func(l string) int {
		i, ok := g.NodeByLabel(l)
		if !ok {
			t.Fatalf("missing %q", l)
		}
		return i
	}
	// I(h) ∩ I(i) = {e, j, k}.
	if v := s.At(id("h"), id("i")); v != 3 {
		t.Fatalf("cocitation(h,i) = %g, want 3", v)
	}
	// I(c) ∩ I(g) = {b, d}.
	if v := s.At(id("c"), id("g")); v != 2 {
		t.Fatalf("cocitation(c,g) = %g, want 2", v)
	}
	// Diagonal counts a node's own in-degree.
	if v := s.At(id("i"), id("i")); v != 6 {
		t.Fatalf("cocitation(i,i) = %g, want |I(i)| = 6", v)
	}
	// No common citers.
	if v := s.At(id("a"), id("b")); v != 0 {
		t.Fatalf("cocitation(a,b) = %g, want 0", v)
	}
}

func TestCouplingFigure1(t *testing.T) {
	g := dataset.Figure1()
	s := Coupling(g)
	b, _ := g.NodeByLabel("b")
	d, _ := g.NodeByLabel("d")
	// O(b) = {c,f,g,i}, O(d) = {c,g,i}: 3 common references.
	if v := s.At(b, d); v != 3 {
		t.Fatalf("coupling(b,d) = %g, want 3", v)
	}
}

func TestJaccardIn(t *testing.T) {
	g := dataset.Figure1()
	s := JaccardIn(g)
	h, _ := g.NodeByLabel("h")
	i, _ := g.NodeByLabel("i")
	a, _ := g.NodeByLabel("a")
	// |I(h)∩I(i)| / |I(h)∪I(i)| = 3/6.
	if v := s.At(h, i); v != 0.5 {
		t.Fatalf("jaccard(h,i) = %g, want 0.5", v)
	}
	if s.At(h, h) != 1 {
		t.Fatal("jaccard diagonal with in-links should be 1")
	}
	if s.At(a, a) != 0 {
		t.Fatal("jaccard diagonal of in-link-free node should be 0")
	}
}

// Property: all three measures are symmetric, and Jaccard is in [0, 1].
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		b := graph.NewBuilder()
		b.EnsureN(n)
		for i := 0; i < rng.Intn(5*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if !CoCitation(g).IsSymmetric(0) || !Coupling(g).IsSymmetric(0) {
			return false
		}
		j := JaccardIn(g)
		if !j.IsSymmetric(1e-12) {
			return false
		}
		for _, v := range j.Data {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Co-citation on g equals coupling on the reversed graph.
func TestQuickCoCitationCouplingDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := graph.NewBuilder()
		b.EnsureN(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g, _ := b.Build()
		return CoCitation(g).MaxAbsDiff(Coupling(g.Reverse())) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
