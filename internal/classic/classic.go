// Package classic implements the rudimentary link-based measures that
// predate SimRank and that the paper's related-work section positions
// against: co-citation (Small, 1973), bibliographic coupling (Kessler,
// 1963), and their Jaccard normalisation. SimRank's recursion is exactly the
// fixed-point strengthening of "two nodes are similar if they share
// neighbours"; these serve as sanity anchors in tests and examples.
package classic

import (
	"repro/internal/dense"
	"repro/internal/graph"
)

// CoCitation returns the matrix of raw co-citation counts
// |I(a) ∩ I(b)| — the number of nodes referencing both a and b.
func CoCitation(g *graph.Graph) *dense.Matrix {
	n := g.N()
	s := dense.New(n, n)
	// Scatter over each node's out-links: x citing both a and b contributes
	// one co-citation to (a, b). O(Σ outdeg²).
	for x := 0; x < n; x++ {
		out := g.Out(x)
		for _, a := range out {
			row := s.Row(int(a))
			for _, b := range out {
				row[b]++
			}
		}
	}
	return s
}

// Coupling returns the matrix of bibliographic coupling counts
// |O(a) ∩ O(b)| — the number of common references of a and b.
func Coupling(g *graph.Graph) *dense.Matrix {
	n := g.N()
	s := dense.New(n, n)
	for x := 0; x < n; x++ {
		in := g.In(x)
		for _, a := range in {
			row := s.Row(int(a))
			for _, b := range in {
				row[b]++
			}
		}
	}
	return s
}

// JaccardIn returns |I(a) ∩ I(b)| / |I(a) ∪ I(b)| for all pairs, with the
// convention that two nodes with no in-links score 0 (1 on the diagonal for
// a node with in-links; 0 even on the diagonal otherwise, matching the
// SimRank base-case convention that isolated nodes carry no evidence).
func JaccardIn(g *graph.Graph) *dense.Matrix {
	n := g.N()
	inter := CoCitation(g)
	s := dense.New(n, n)
	for a := 0; a < n; a++ {
		da := g.InDeg(a)
		row := s.Row(a)
		ir := inter.Row(a)
		for b := 0; b < n; b++ {
			union := float64(da + g.InDeg(b) - int(ir[b]))
			if union > 0 {
				row[b] = ir[b] / union
			}
		}
	}
	return s
}
