// Package dense provides the dense linear-algebra substrate: row-major
// matrices with parallel multiply, a one-sided Jacobi SVD and an LU solver.
// It exists because the paper's baselines need operations absent from the Go
// standard library — mtx-SR (Li et al.) requires a singular value
// decomposition and a small linear solve, and the exponential SimRank*
// closed form (Theorem 3) requires a dense product e^{-C}·T·Tᵀ.
package dense

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Matrix is a row-major dense matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("dense: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("dense: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a mutable slice view.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom overwrites m with o. Shapes must match.
func (m *Matrix) CopyFrom(o *Matrix) {
	m.mustMatch(o)
	copy(m.Data, o.Data)
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Add sets m = m + o.
func (m *Matrix) Add(o *Matrix) {
	m.mustMatch(o)
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Axpy sets m = m + a·o.
func (m *Matrix) Axpy(a float64, o *Matrix) {
	m.mustMatch(o)
	for i, v := range o.Data {
		m.Data[i] += a * v
	}
}

// AddDiag adds a to every diagonal element (square matrices).
func (m *Matrix) AddDiag(a float64) {
	if m.Rows != m.Cols {
		panic("dense: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += a
	}
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// SplitColumns unpacks m into one fresh vector per column:
// out[j][i] = m.At(i, j). The blocked multi-source kernels use it to hand
// each query of an n×B block its own length-n score vector.
func (m *Matrix) SplitColumns() [][]float64 {
	out := make([][]float64, m.Cols)
	for j := range out {
		out[j] = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j][i] = v
		}
	}
	return out
}

// Symmetrize sets m = (m + mᵀ)/2 in place (square matrices). It is used by
// the iterative SimRank* kernels to enforce exact symmetry against float
// round-off.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("dense: Symmetrize on non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.Data[i*n+j] + m.Data[j*n+i]) / 2
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// MaxAbs returns max |m_ij| — the ‖·‖_max norm the paper's error bounds use.
func (m *Matrix) MaxAbs() float64 {
	best := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// MaxAbsDiff returns ‖m − o‖_max.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	m.mustMatch(o)
	best := 0.0
	for i, v := range o.Data {
		if a := math.Abs(m.Data[i] - v); a > best {
			best = a
		}
	}
	return best
}

// IsSymmetric reports whether ‖m − mᵀ‖_max <= tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m.Data[i*n+j]-m.Data[j*n+i]) > tol {
				return false
			}
		}
	}
	return true
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("dense: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
	return y
}

// Mul returns a·b computed with a cache-friendly ikj kernel parallelised
// over rows of a.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul shape mismatch (%dx%d)·(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	MulInto(c, a, b)
	return c
}

// MulInto computes c = a·b, overwriting c. c must not alias a or b.
func MulInto(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("dense: MulInto shape mismatch")
	}
	par.For(a.Rows, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			for k := range ci {
				ci[k] = 0
			}
			ai := a.Row(i)
			for k, av := range ai {
				if av == 0 {
					continue
				}
				Axpy(ci, av, b.Row(k))
			}
		}
	})
}

// MulABT returns a·bᵀ. It reads b row-wise on both sides, which keeps the
// kernel cache-friendly without materialising the transpose; it is the
// workhorse of the exponential closed form S = e^{-C}·T·Tᵀ.
func MulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("dense: MulABT shape mismatch")
	}
	c := New(a.Rows, b.Rows)
	par.For(a.Rows, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			ci := c.Row(i)
			for j := 0; j < b.Rows; j++ {
				ci[j] = Dot(ai, b.Row(j))
			}
		}
	})
	return c
}

func (m *Matrix) mustMatch(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("dense: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}
