package dense

import "math"

// Vector helpers shared by the dense and sparse kernels. They operate on raw
// []float64 so sparse×dense products can run on matrix row views without
// allocation.

// Dot returns Σ x_i·y_i. Slices must have equal length.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy sets y += a·x elementwise.
func Axpy(y []float64, a float64, x []float64) {
	if a == 0 {
		return
	}
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaledCopy sets y = a·x elementwise, overwriting y.
func ScaledCopy(y []float64, a float64, x []float64) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] = a * v
	}
}

// AddTo sets y += x elementwise.
func AddTo(y, x []float64) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += v
	}
}

// ScaleVec sets x *= a elementwise.
func ScaleVec(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

// ZeroVec sets every element of x to 0.
func ZeroVec(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// MaxAbsVec returns max |x_i|, or 0 for an empty slice.
func MaxAbsVec(x []float64) float64 {
	best := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// SumVec returns Σ x_i.
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}
