package dense

import (
	"math"
	"sort"
)

// SVD computes a thin singular value decomposition A = U·diag(S)·Vᵀ of an
// m×n matrix with m >= n, using one-sided Jacobi rotations (Hestenes).
// Singular values are returned in descending order. The decomposition is the
// substrate for the mtx-SR baseline (Li et al., EDBT'10), which SimRank* is
// compared against in the paper's Exp-2.
//
// One-sided Jacobi is chosen over Golub–Kahan because it is simple, has no
// external dependencies, and is numerically robust for the modest ranks
// (r <= a few dozen) mtx-SR uses.
type SVD struct {
	U *Matrix   // m×n, orthonormal columns
	S []float64 // n, descending, non-negative
	V *Matrix   // n×n, orthonormal columns
}

// ComputeSVD factorises a. It does not modify a. It panics if a has more
// columns than rows (callers should factorise the transpose instead).
func ComputeSVD(a *Matrix) *SVD {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("dense: ComputeSVD requires rows >= cols; factorise the transpose")
	}
	// Work on a column-major copy so column rotations are contiguous.
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		c := make([]float64, m)
		for i := 0; i < m; i++ {
			c[i] = a.At(i, j)
		}
		cols[j] = c
	}
	vcols := make([][]float64, n)
	for j := 0; j < n; j++ {
		c := make([]float64, n)
		c[j] = 1
		vcols[j] = c
	}

	const (
		maxSweeps = 60
		tol       = 1e-14
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		offDiag := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := Dot(cols[p], cols[p])
				beta := Dot(cols[q], cols[q])
				gamma := Dot(cols[p], cols[q])
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				offDiag = true
				// Jacobi rotation zeroing the (p,q) Gram entry.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotate(cols[p], cols[q], c, s)
				rotate(vcols[p], vcols[q], c, s)
			}
		}
		if !offDiag {
			break
		}
	}

	// Column norms are the singular values; normalised columns form U.
	type sv struct {
		val float64
		idx int
	}
	svs := make([]sv, n)
	for j := 0; j < n; j++ {
		svs[j] = sv{Norm2(cols[j]), j}
	}
	sort.Slice(svs, func(i, j int) bool { return svs[i].val > svs[j].val })

	out := &SVD{U: New(m, n), S: make([]float64, n), V: New(n, n)}
	for k, e := range svs {
		out.S[k] = e.val
		col := cols[e.idx]
		if e.val > 0 {
			inv := 1 / e.val
			for i := 0; i < m; i++ {
				out.U.Set(i, k, col[i]*inv)
			}
		}
		vc := vcols[e.idx]
		for i := 0; i < n; i++ {
			out.V.Set(i, k, vc[i])
		}
	}
	return out
}

// rotate applies the plane rotation [c -s; s c] to the column pair (x, y):
// x' = c·x − s·y, y' = s·x + c·y.
func rotate(x, y []float64, c, s float64) {
	for i := range x {
		xi, yi := x[i], y[i]
		x[i] = c*xi - s*yi
		y[i] = s*xi + c*yi
	}
}

// Rank returns the number of singular values above tol·S[0].
func (d *SVD) Rank(tol float64) int {
	if len(d.S) == 0 || d.S[0] == 0 {
		return 0
	}
	r := 0
	for _, s := range d.S {
		if s > tol*d.S[0] {
			r++
		}
	}
	return r
}

// Truncate returns the rank-r factors (U_r, S_r, V_r) as fresh matrices.
func (d *SVD) Truncate(r int) (*Matrix, []float64, *Matrix) {
	if r > len(d.S) {
		r = len(d.S)
	}
	u := New(d.U.Rows, r)
	v := New(d.V.Rows, r)
	s := make([]float64, r)
	copy(s, d.S[:r])
	for i := 0; i < d.U.Rows; i++ {
		copy(u.Row(i), d.U.Row(i)[:r])
	}
	for i := 0; i < d.V.Rows; i++ {
		copy(v.Row(i), d.V.Row(i)[:r])
	}
	return u, s, v
}

// Reconstruct returns U·diag(S)·Vᵀ, used by tests to bound ‖A − USVᵀ‖.
func (d *SVD) Reconstruct() *Matrix {
	us := d.U.Clone()
	for i := 0; i < us.Rows; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= d.S[j]
		}
	}
	return MulABT(us, d.V)
}
