package dense

import (
	"errors"
	"math"
)

// LU is an LU factorisation with partial pivoting, P·A = L·U. It backs the
// small r²×r² linear solve inside mtx-SR (the Sherman–Morrison–Woodbury
// system) — the only place this repository needs a general dense solver.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// ErrSingular is returned when the factorised matrix is numerically singular.
var ErrSingular = errors.New("dense: singular matrix")

// ComputeLU factorises the square matrix a. It does not modify a.
func ComputeLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("dense: ComputeLU requires a square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at or below the diagonal.
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > best {
				p, best = i, a
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("dense: Solve dimension mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x
}

// SolveMatrix solves A·X = B column by column.
func (f *LU) SolveMatrix(b *Matrix) *Matrix {
	x := New(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		sol := f.Solve(col)
		for i := 0; i < b.Rows; i++ {
			x.Set(i, j, sol[i])
		}
	}
	return x
}

// Det returns the determinant of the factorised matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}
