package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func naiveMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {40, 40, 40}} {
		a := randomMatrix(rng, shape[0], shape[1])
		b := randomMatrix(rng, shape[1], shape[2])
		got := Mul(a, b)
		want := naiveMul(a, b)
		if got.MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("shape %v: Mul differs from naive by %g", shape, got.MaxAbsDiff(want))
		}
	}
}

func TestMulABT(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 11, 7)
	b := randomMatrix(rng, 13, 7)
	got := MulABT(a, b)
	want := naiveMul(a, b.Transpose())
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("MulABT differs from naive by %g", got.MaxAbsDiff(want))
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 6, 6)
	if got := Mul(Identity(6), a); got.MaxAbsDiff(a) != 0 {
		t.Fatal("I·A != A")
	}
	if got := Mul(a, Identity(6)); got.MaxAbsDiff(a) != 0 {
		t.Fatal("A·I != A")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomMatrix(rng, 5, 9)
	if a.Transpose().Transpose().MaxAbsDiff(a) != 0 {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {4, 3}})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("Symmetrize gave %v", a.Data)
	}
	if !a.IsSymmetric(0) {
		t.Fatal("not symmetric after Symmetrize")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, 4}})
	b := a.Clone()
	b.Scale(2)
	if b.At(0, 1) != -4 {
		t.Fatal("Scale wrong")
	}
	b.Add(a)
	if b.At(1, 1) != 12 {
		t.Fatal("Add wrong")
	}
	b.Axpy(-3, a)
	if b.At(1, 0) != 0 {
		t.Fatal("Axpy wrong")
	}
	// After Axpy(-3, a), b = 3a − 3a = 0; AddDiag leaves 5·I.
	b.AddDiag(5)
	if b.At(0, 0) != 5 || b.At(0, 1) != 0 || b.At(1, 1) != 5 {
		t.Fatalf("AddDiag wrong: %v", b.Data)
	}
	if a.MaxAbs() != 4 {
		t.Fatal("MaxAbs wrong")
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero wrong")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {0, 1, 0}})
	y := a.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 1 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{1, 0, -1}
	if Dot(x, y) != -2 {
		t.Fatal("Dot wrong")
	}
	Axpy(y, 2, x)
	if y[0] != 3 || y[2] != 5 {
		t.Fatalf("Axpy = %v", y)
	}
	AddTo(y, x)
	if y[1] != 6 {
		t.Fatalf("AddTo = %v", y)
	}
	ScaleVec(y, 0.5)
	if y[0] != 2 {
		t.Fatalf("ScaleVec = %v", y)
	}
	if SumVec(x) != 6 {
		t.Fatal("SumVec wrong")
	}
	if MaxAbsVec([]float64{-7, 2}) != 7 {
		t.Fatal("MaxAbsVec wrong")
	}
	if MaxAbsVec(nil) != 0 {
		t.Fatal("MaxAbsVec(nil) != 0")
	}
	ZeroVec(y)
	if MaxAbsVec(y) != 0 {
		t.Fatal("ZeroVec wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Fatal("Norm2 wrong")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random shapes.
func TestQuickMulTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		lhs := Mul(a, b).Transpose()
		rhs := Mul(b.Transpose(), a.Transpose())
		return lhs.MaxAbsDiff(rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{4, 4}, {10, 6}, {25, 25}, {30, 7}} {
		a := randomMatrix(rng, shape[0], shape[1])
		d := ComputeSVD(a)
		if rec := d.Reconstruct(); rec.MaxAbsDiff(a) > 1e-9 {
			t.Fatalf("shape %v: ‖A − USVᵀ‖ = %g", shape, rec.MaxAbsDiff(a))
		}
		for i := 1; i < len(d.S); i++ {
			if d.S[i] > d.S[i-1]+1e-12 {
				t.Fatalf("singular values not descending: %v", d.S)
			}
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomMatrix(rng, 15, 8)
	d := ComputeSVD(a)
	utu := Mul(d.U.Transpose(), d.U)
	vtv := Mul(d.V.Transpose(), d.V)
	if utu.MaxAbsDiff(Identity(8)) > 1e-9 {
		t.Fatalf("UᵀU − I = %g", utu.MaxAbsDiff(Identity(8)))
	}
	if vtv.MaxAbsDiff(Identity(8)) > 1e-9 {
		t.Fatalf("VᵀV − I = %g", vtv.MaxAbsDiff(Identity(8)))
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-2 matrix: outer products.
	n := 12
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i*j)+float64((i%3)*(j%3)))
		}
	}
	d := ComputeSVD(a)
	if r := d.Rank(1e-10); r != 2 {
		t.Fatalf("Rank = %d, want 2", r)
	}
	if rec := d.Reconstruct(); rec.MaxAbsDiff(a) > 1e-8 {
		t.Fatalf("rank-deficient reconstruct off by %g", rec.MaxAbsDiff(a))
	}
	u, s, v := d.Truncate(2)
	if u.Cols != 2 || v.Cols != 2 || len(s) != 2 {
		t.Fatal("Truncate shapes wrong")
	}
	// Rank-2 truncation must still reconstruct exactly (rank is 2).
	us := u.Clone()
	for i := 0; i < us.Rows; i++ {
		us.Row(i)[0] *= s[0]
		us.Row(i)[1] *= s[1]
	}
	if MulABT(us, v).MaxAbsDiff(a) > 1e-8 {
		t.Fatal("rank-2 truncation does not reconstruct rank-2 matrix")
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) has singular values {3, 2}.
	a := FromRows([][]float64{{3, 0}, {0, 2}})
	d := ComputeSVD(a)
	if math.Abs(d.S[0]-3) > 1e-12 || math.Abs(d.S[1]-2) > 1e-12 {
		t.Fatalf("S = %v, want [3 2]", d.S)
	}
}

func TestLUSolve(t *testing.T) {
	a := FromRows([][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}})
	f, err := ComputeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{5, -2, 9})
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	if math.Abs(f.Det()-(-16)) > 1e-9 {
		t.Fatalf("Det = %g, want -16", f.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := ComputeLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUSolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(rng, 9, 9)
	f, err := ComputeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := randomMatrix(rng, 9, 4)
	x := f.SolveMatrix(b)
	if Mul(a, x).MaxAbsDiff(b) > 1e-9 {
		t.Fatalf("A·X − B = %g", Mul(a, x).MaxAbsDiff(b))
	}
}

// Property: LU solve then multiply recovers b for random well-conditioned
// systems (diagonally dominant to keep the condition number tame).
func TestQuickLURoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		lu, err := ComputeLU(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := lu.Solve(b)
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func BenchmarkMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
