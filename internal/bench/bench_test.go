package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTimed(t *testing.T) {
	d := Timed(func() { time.Sleep(5 * time.Millisecond) })
	if d < 4*time.Millisecond {
		t.Fatalf("Timed = %v, want >= 5ms", d)
	}
}

func TestHeapUsed(t *testing.T) {
	var keep []byte
	_, used := HeapUsed(func() { keep = make([]byte, 8<<20) })
	if used < 7<<20 {
		t.Fatalf("HeapUsed = %d, want >= ~8MB", used)
	}
	_ = keep
}

func TestMB(t *testing.T) {
	if got := MB(1 << 20); got != "1.0MB" {
		t.Fatalf("MB = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Add("alpha", 1.5)
	tab.Add("b", 250*time.Millisecond)
	tab.Add("c", 2*time.Second)
	tab.Add("d", 42)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"name", "alpha", "1.5", "250.0ms", "2.00s", "42", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + sep + 4 rows
		t.Fatalf("got %d lines", len(lines))
	}
}

func TestSection(t *testing.T) {
	var sb strings.Builder
	Section(&sb, "FIG1", "title")
	if !strings.Contains(sb.String(), "FIG1") {
		t.Fatal("Section missing id")
	}
}
