// Package bench provides the small harness shared by cmd/experiments and
// the root bench_test.go: wall-clock timing, heap-usage measurement (the
// paper's Fig. 6(h) memory metric) and aligned table rendering in the style
// of the paper's figures.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Timed runs fn and returns its wall-clock duration.
func Timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// HeapUsed runs fn and returns (duration, peak-ish heap delta in bytes).
// It GCs before and after, reporting the live-heap growth attributable to
// fn's retained result plus the largest transient allocation observable at
// completion — adequate for the order-of-magnitude comparisons of
// Fig. 6(h).
func HeapUsed(fn func()) (time.Duration, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	var used uint64
	if after.HeapAlloc > before.HeapAlloc {
		used = after.HeapAlloc - before.HeapAlloc
	}
	return dur, used
}

// PeakHeap runs fn while sampling the live heap every few milliseconds and
// returns (duration, peak heap growth over the pre-run baseline). This is
// the Fig. 6(h) "memory space" metric: it captures transient working-set
// peaks (iteration buffers, SVD temporaries) that a before/after snapshot
// misses.
func PeakHeap(fn func()) (time.Duration, uint64) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stop := make(chan struct{})
	peakCh := make(chan uint64)
	go func() {
		peak := base.HeapAlloc
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				peakCh <- peak
				return
			case <-ticker.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	fn()
	dur := time.Since(start)
	// One final sample after fn returns, before signalling.
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	close(stop)
	peak := <-peakCh
	if end.HeapAlloc > peak {
		peak = end.HeapAlloc
	}
	if peak <= base.HeapAlloc {
		return dur, 0
	}
	return dur, peak - base.HeapAlloc
}

// MB renders a byte count as mebibytes with one decimal.
func MB(b uint64) string { return fmt.Sprintf("%.1fMB", float64(b)/(1<<20)) }

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Section prints a figure/table banner matching the experiment ids of
// DESIGN.md.
func Section(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s — %s ===\n\n", id, title)
}
