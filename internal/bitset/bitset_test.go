package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("set not empty after Clear")
	}
}

func TestFromIndicesAndIndices(t *testing.T) {
	s := FromIndices(100, 3, 1, 4, 1, 5, 92)
	want := []int{1, 3, 4, 5, 92}
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(70, 1, 2, 3, 65)
	b := FromIndices(70, 3, 4, 65, 69)

	u := a.Clone()
	u.Or(b)
	if got := u.Indices(); len(got) != 6 {
		t.Fatalf("union = %v", got)
	}

	i := a.Clone()
	i.And(b)
	if got, want := i.String(), "{3, 65}"; got != want {
		t.Fatalf("intersection = %s, want %s", got, want)
	}

	d := a.Clone()
	d.AndNot(b)
	if got, want := d.String(), "{1, 2}"; got != want {
		t.Fatalf("difference = %s, want %s", got, want)
	}

	if !a.Intersects(b) {
		t.Fatal("Intersects = false, want true")
	}
	if a.IntersectionCount(b) != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", a.IntersectionCount(b))
	}
	c := FromIndices(70, 10, 11)
	if a.Intersects(c) {
		t.Fatal("Intersects = true, want false")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := FromIndices(40, 1, 2)
	b := FromIndices(40, 1, 2, 3)
	if !a.IsSubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.IsSubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone should equal original")
	}
	if a.Equal(b) {
		t.Fatal("a should not equal b")
	}
	if a.Equal(FromIndices(41, 1, 2)) {
		t.Fatal("different capacities should not be equal")
	}
}

func TestNext(t *testing.T) {
	s := FromIndices(200, 5, 64, 130)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130}, {131, -1}, {-3, 5}, {1000, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(100, 1, 2, 3, 4)
	seen := 0
	s.ForEach(func(i int) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Fatalf("ForEach visited %d elements, want 2 with early stop", seen)
	}
}

func TestCopy(t *testing.T) {
	a := FromIndices(64, 7)
	b := New(64)
	b.Copy(a)
	if !b.Contains(7) {
		t.Fatal("Copy lost element")
	}
	a.Add(8)
	if b.Contains(8) {
		t.Fatal("Copy aliases source")
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	New(10).Or(New(11))
}

// Property: Or/And/AndNot agree with a map-based reference implementation.
func TestQuickAlgebraAgainstMap(t *testing.T) {
	const n = 257
	f := func(xs, ys []uint16) bool {
		a, b := New(n), New(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			i := int(x) % n
			a.Add(i)
			ma[i] = true
		}
		for _, y := range ys {
			i := int(y) % n
			b.Add(i)
			mb[i] = true
		}
		u := a.Clone()
		u.Or(b)
		in := a.Clone()
		in.And(b)
		df := a.Clone()
		df.AndNot(b)
		for i := 0; i < n; i++ {
			if u.Contains(i) != (ma[i] || mb[i]) {
				return false
			}
			if in.Contains(i) != (ma[i] && mb[i]) {
				return false
			}
			if df.Contains(i) != (ma[i] && !mb[i]) {
				return false
			}
		}
		inter := 0
		for i := range ma {
			if mb[i] {
				inter++
			}
		}
		return a.IntersectionCount(b) == inter && a.Intersects(b) == (inter > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the number of distinct added indices.
func TestQuickCount(t *testing.T) {
	f := func(xs []uint16) bool {
		const n = 1 << 16
		s := New(n)
		m := map[int]bool{}
		for _, x := range xs {
			s.Add(int(x))
			m[int(x)] = true
		}
		return s.Count() == len(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(5)
	m.Set(0, 1)
	m.Set(2, 3)
	if !m.Get(0, 1) || m.Get(1, 0) {
		t.Fatal("Set/Get mismatch")
	}
	if m.CountTrue() != 2 {
		t.Fatalf("CountTrue = %d, want 2", m.CountTrue())
	}
	m.SymmetricClosure()
	if !m.Get(1, 0) || !m.Get(3, 2) {
		t.Fatal("SymmetricClosure missing transposed entries")
	}
	c := m.Clone()
	c.Set(4, 4)
	if m.Get(4, 4) {
		t.Fatal("Clone aliases original")
	}
	o := NewMatrix(5)
	o.Set(4, 0)
	m.Or(o)
	if !m.Get(4, 0) {
		t.Fatal("Or missing entry")
	}
	m.Clear()
	if m.CountTrue() != 0 {
		t.Fatal("Clear left entries")
	}
	if m.N() != 5 {
		t.Fatalf("N = %d, want 5", m.N())
	}
}

func BenchmarkOr(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a, c := New(4096), New(4096)
	for i := 0; i < 500; i++ {
		a.Add(rng.Intn(4096))
		c.Add(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Or(c)
	}
}
