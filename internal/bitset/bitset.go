// Package bitset provides a fixed-size bitset tuned for the dense row
// operations used by the in-link path analyser (internal/paths) and the
// biclique miner (internal/biclique): bulk OR/AND, popcount, and fast
// intersection tests over node sets.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset over [0, Len()). The zero value is an empty
// set of capacity zero; use New to allocate capacity.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set of capacity n containing the given indices.
func FromIndices(n int, idx ...int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Len reports the capacity (number of addressable bits).
func (s *Set) Len() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of o. The sets must have equal capacity.
func (s *Set) Copy(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

// Or sets s = s ∪ o.
func (s *Set) Or(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// And sets s = s ∩ o.
func (s *Set) And(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// AndNot sets s = s \ o.
func (s *Set) AndNot(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s ∩ o is non-empty without materialising it.
func (s *Set) Intersects(o *Set) bool {
	s.mustMatch(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ o| without materialising the intersection.
func (s *Set) IntersectionCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// Equal reports whether s and o contain the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every element of s is in o.
func (s *Set) IsSubsetOf(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order. Iteration stops if fn
// returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the elements of the set in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Next returns the smallest element >= i, or -1 if none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// String renders the set as "{1, 5, 9}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: size mismatch %d != %d", s.n, o.n))
	}
}

// Matrix is a dense boolean matrix stored as one bitset row per node, used
// for boolean walk-product computations such as bool[(Aᵀ)^{k1} A^{k2}].
type Matrix struct {
	rows []*Set
	n    int
}

// NewMatrix returns an all-false n×n boolean matrix.
func NewMatrix(n int) *Matrix {
	m := &Matrix{rows: make([]*Set, n), n: n}
	for i := range m.rows {
		m.rows[i] = New(n)
	}
	return m
}

// N returns the dimension of the matrix.
func (m *Matrix) N() int { return m.n }

// Row returns row i (shared, not a copy).
func (m *Matrix) Row(i int) *Set { return m.rows[i] }

// Set sets entry (i, j) to true.
func (m *Matrix) Set(i, j int) { m.rows[i].Add(j) }

// Get reports entry (i, j).
func (m *Matrix) Get(i, j int) bool { return m.rows[i].Contains(j) }

// Or sets m = m ∨ o elementwise.
func (m *Matrix) Or(o *Matrix) {
	for i, r := range o.rows {
		m.rows[i].Or(r)
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: make([]*Set, m.n), n: m.n}
	for i, r := range m.rows {
		c.rows[i] = r.Clone()
	}
	return c
}

// Clear zeroes all entries.
func (m *Matrix) Clear() {
	for _, r := range m.rows {
		r.Clear()
	}
}

// CountTrue returns the total number of true entries.
func (m *Matrix) CountTrue() int {
	c := 0
	for _, r := range m.rows {
		c += r.Count()
	}
	return c
}

// SymmetricClosure ORs the matrix with its transpose in place, so that
// (i,j) is true iff (i,j) or (j,i) was true.
func (m *Matrix) SymmetricClosure() {
	for i := 0; i < m.n; i++ {
		m.rows[i].ForEach(func(j int) bool {
			m.rows[j].Add(i)
			return true
		})
	}
}
