// Package cachekey is a simlint fixture for the cachekey analyzer: the
// strip function of a result-cache key must declare every field it zeroes.
package cachekey

// config is a params struct whose strip function is fully compliant.
type config struct {
	c         float64
	tolerance float64
	workers   int
}

// key is the cache key carrying the stripped params.
type key struct {
	params config
	node   int
}

// cacheParams declares and strips exactly the serving-only set; the
// conditional tolerance collapse is a normalisation, not a strip.
//
//simstar:cachekey-exempt workers
func (cfg config) cacheParams() config {
	cfg.workers = 0
	if cfg.tolerance < 1e-12 {
		cfg.tolerance = 0
	}
	return cfg
}

// badConfig is a params struct whose strip function zeroes an undeclared
// field.
type badConfig struct {
	c       float64
	workers int
}

// badKey carries badConfig so the embed check passes.
type badKey struct {
	params badConfig
}

// strip zeroes c, a query-affecting field, without declaring it exempt.
//
//simstar:cachekey-exempt workers
func (cfg badConfig) strip() badConfig {
	cfg.workers = 0
	cfg.c = 0 // want `strip strips field "c" from the result-cache key without declaring it exempt`
	return cfg
}

// staleConfig is a params struct whose allowlist has drifted from the code.
type staleConfig struct {
	c       float64
	workers int
	cache   int
}

// staleKey carries staleConfig so the embed check passes.
type staleKey struct {
	params staleConfig
}

// stale declares cache exempt but never strips it.
//
//simstar:cachekey-exempt workers cache
func (cfg staleConfig) stale() staleConfig { // want `field "cache" is declared exempt but stale never strips it`
	cfg.workers = 0
	return cfg
}

// lonelyConfig is a params struct whose strip function opts out of the
// contract silently.
type lonelyConfig struct {
	workers int
}

// lonelyKey carries lonelyConfig so the embed check passes.
type lonelyKey struct {
	params lonelyConfig
}

// cacheParams lacks the directive; the conventional name makes that
// reportable.
func (cfg lonelyConfig) cacheParams() lonelyConfig { // want `cacheParams has no //simstar:cachekey-exempt declaration`
	cfg.workers = 0
	return cfg
}

// suppressedConfig is a params struct with a documented contract exception.
type suppressedConfig struct {
	c       float64
	workers int
}

// suppressedKey carries suppressedConfig so the embed check passes.
type suppressedKey struct {
	params suppressedConfig
}

// suppressedStrip zeroes an undeclared field under an explicit suppression.
//
//simstar:cachekey-exempt workers
func (cfg suppressedConfig) suppressedStrip() suppressedConfig {
	cfg.workers = 0
	//simstar:lint-ignore cachekey fixture: c is provably query-neutral here
	cfg.c = 0
	return cfg
}
