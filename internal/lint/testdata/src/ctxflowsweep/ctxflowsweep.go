// Package ctxflowsweep is a simlint fixture for the ctxflow analyzer,
// loaded as a leaf sweep package: context-free nested-loop kernels are
// allowed (callers cancel between sweeps), but a function that does take a
// context must still consult it inside its loops.
package ctxflowsweep

import "context"

// MulInto is a context-free leaf sweep with nested loops: allowed in sweep
// packages, where cancellation is the caller's job.
func MulInto(dst []float64, m [][]float64, x []float64) {
	for i, row := range m {
		dst[i] = 0
		for j, v := range row {
			dst[i] += v * x[j]
		}
	}
}

// SweepCtx takes a context but never consults it: flagged even in a sweep
// package, because a threaded-but-ignored context is worse than none.
func SweepCtx(ctx context.Context, xs []float64) float64 { // want `SweepCtx takes a context.Context but never consults it inside its loops`
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
