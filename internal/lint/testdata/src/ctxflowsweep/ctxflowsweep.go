// Package ctxflowsweep is a simlint fixture for the ctxflow analyzer,
// loaded as a leaf sweep package: context-free nested-loop kernels are
// allowed (callers cancel between sweeps), but a function that does take a
// context must still consult it inside its loops.
package ctxflowsweep

import "context"

// MulInto is a context-free leaf sweep with nested loops: allowed in sweep
// packages, where cancellation is the caller's job.
func MulInto(dst []float64, m [][]float64, x []float64) {
	for i, row := range m {
		dst[i] = 0
		for j, v := range row {
			dst[i] += v * x[j]
		}
	}
}

// poll mimics sparse.CtxPoll in the sweep package itself: deriving it from
// ctx carries the cancellation contract.
type poll struct{ ctx context.Context }

func (p *poll) check() error { return p.ctx.Err() }

// SweepPolled consults ctx through a derived poller inside its loop:
// compliant in sweep packages too.
func SweepPolled(ctx context.Context, xs []float64) error {
	p := poll{ctx: ctx}
	for range xs {
		if err := p.check(); err != nil {
			return err
		}
	}
	return nil
}

// SweepCtx takes a context but never consults it: flagged even in a sweep
// package, because a threaded-but-ignored context is worse than none.
func SweepCtx(ctx context.Context, xs []float64) float64 { // want `SweepCtx takes a context.Context but never consults it inside its loops`
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
