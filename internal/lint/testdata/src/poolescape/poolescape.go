// Package poolescape is a simlint fixture for the poolescape analyzer:
// values on loan from a sync.Pool or a workspace arena must not outlive
// their release.
package poolescape

import (
	"sync"

	"repro/internal/par"
	"repro/internal/sparse"
)

var pool = sync.Pool{New: func() any { return make([]float64, 16) }}

var sink []float64

// Borrow uses the pooled buffer and releases it on exit: compliant.
func Borrow() float64 {
	buf := pool.Get().([]float64)
	defer pool.Put(buf)
	return buf[0]
}

// Leak returns the pooled buffer, so the loan escapes the frame that is
// responsible for releasing it.
func Leak() []float64 {
	buf := pool.Get().([]float64)
	return buf // want `pooled value buf is returned`
}

// Stash parks the pooled buffer in a package-level variable, outliving any
// release.
func Stash() {
	buf := pool.Get().([]float64)
	sink = buf // want `pooled value buf is stored in a package-level variable`
}

// Ship sends the pooled buffer to a receiver that outlives the release.
func Ship(ch chan []float64) {
	buf := pool.Get().([]float64)
	ch <- buf // want `pooled value buf is sent on a channel`
}

// Spawn captures the pooled buffer in a goroutine that may run after the
// deferred release.
func Spawn() {
	buf := pool.Get().([]float64)
	defer pool.Put(buf)
	go func(b []float64) { // want `pooled value captured by a goroutine`
		_ = b[0]
	}(buf)
}

// get is a sanctioned single-expression accessor: its own return is exempt,
// and its call sites count as pool sources.
func get() []float64 { return pool.Get().([]float64) }

// ViaAccessor obtains the buffer through the accessor; returning it is
// still an escape.
func ViaAccessor() []float64 {
	buf := get()
	return buf // want `pooled value buf is returned`
}

// holder demonstrates the struct-field escape against a real workspace
// arena: the next Reset scribbles over h.v.
type holder struct{ v []float64 }

// TakeAndLeak stores an arena buffer in a field.
func (h *holder) TakeAndLeak(ws *sparse.Workspace) {
	v := ws.Take()
	h.v = v // want `pooled value v is stored in a struct field`
}

// FanOutShared captures one pooled buffer in a parallel loop closure: every
// worker scribbles on the same arena concurrently, a race the goroutine
// check alone cannot see (the loop joins before the Put).
func FanOutShared(ws *sparse.Workspace) {
	buf := ws.Take()
	par.For(len(buf), 0, func(lo, hi int) { // want `pooled value captured by a parallel loop closure`
		for i := lo; i < hi; i++ {
			buf[i] = 0
		}
	})
}

// FanOutPool does the same through sync.Pool, via the other loop drivers.
func FanOutPool() {
	buf := pool.Get().([]float64)
	defer pool.Put(buf)
	par.ForEach(len(buf), 0, func(i int) { // want `pooled value captured by a parallel loop closure`
		buf[i] = 0
	})
}

// FanOutPerWorker is the sanctioned shape: each closure invocation borrows
// its own arena and releases it before returning — nothing shared, nothing
// flagged.
func FanOutPerWorker(n int) {
	par.ForEach(n, 0, func(i int) {
		buf := pool.Get().([]float64)
		defer pool.Put(buf)
		buf[0] = float64(i)
	})
}

// FanOutUnpooled captures an ordinary local in the loop closure; only
// pooled loans are the analyzer's business.
func FanOutUnpooled(dst []float64) {
	par.For(len(dst), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = 1
		}
	})
}

// Retire intentionally removes a buffer from pool circulation; the
// suppression documents the one place that is legal.
func Retire() {
	buf := pool.Get().([]float64)
	//simstar:lint-ignore poolescape fixture: buffer is retired from the pool on purpose
	sink = buf
}
