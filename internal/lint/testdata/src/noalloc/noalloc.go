// Package noalloc is a simlint fixture for the noalloc analyzer: functions
// annotated //simstar:noalloc must contain no allocating constructs.
package noalloc

// Sum is annotated and clean: pure loop arithmetic.
//
//simstar:noalloc
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Guard panics on bad input; the boxing inside a fatal path is exempt.
//
//simstar:noalloc
func Guard(dst, src []float64) {
	if len(dst) != len(src) {
		panic("noalloc: length mismatch")
	}
	copy(dst, src)
}

// Grow is annotated but allocates twice.
//
//simstar:noalloc
func Grow(xs []float64) []float64 {
	out := make([]float64, 0, len(xs)) // want `Grow is //simstar:noalloc but calls make`
	out = append(out, xs...)           // want `Grow is //simstar:noalloc but calls append`
	return out
}

// Box converts a concrete value to an interface, which boxes on the heap.
//
//simstar:noalloc
func Box(x float64) any {
	return any(x) // want `Box is //simstar:noalloc but converts a concrete value to an interface`
}

// Capture declares a closure.
//
//simstar:noalloc
func Capture(xs []float64) func() int {
	return func() int { return len(xs) } // want `Capture is //simstar:noalloc but declares a function literal`
}

// Helper allocates freely: no annotation, no check.
func Helper(n int) []float64 { return make([]float64, n) }

// Fallback allocates only on its cold first-use path, with the suppression
// documenting the exception.
//
//simstar:noalloc
func Fallback(dst []float64, n int) []float64 {
	if cap(dst) < n {
		//simstar:lint-ignore noalloc fixture: documented grow-on-first-use branch
		dst = make([]float64, n)
	}
	return dst[:n]
}

// Mislabeled suppresses the wrong analyzer, so the finding still lands.
//
//simstar:noalloc
func Mislabeled(n int) []float64 {
	//simstar:lint-ignore ctxflow fixture: names the wrong analyzer
	return make([]float64, n) // want `Mislabeled is //simstar:noalloc but calls make`
}
