// Package obsnoop is a simlint fixture for the obsnoop analyzer: method
// calls on nilable obs hooks inside //simstar:noalloc functions must be
// nil-guarded, so absence costs one branch instead of a panic.
package obsnoop

import "repro/internal/obs"

// engine mimics the production shape: an optional observer whose hook
// fields are non-nil whenever the observer itself is.
type engine struct {
	obsv  *observer
	trace *obs.KernelTrace
}

type observer struct {
	hits   *obs.Counter
	sweeps *obs.Counter
}

// workspace carries a value-typed trace, the &ws.Trace borrow source.
type workspace struct {
	Trace obs.KernelTrace
}

// Guarded uses the two production guard idioms: a block guard on the
// container and an if-init binding on the hook itself.
//
//simstar:noalloc
func (e *engine) Guarded(n int) {
	if e.obsv != nil {
		e.obsv.hits.Inc()
	}
	if tr := e.trace; tr != nil {
		tr.AddSweeps(n)
	}
}

// EarlyReturn guards by bailing out: past the return, the hook is proven.
//
//simstar:noalloc
func EarlyReturn(tr *obs.KernelTrace, n int) {
	if tr == nil {
		return
	}
	tr.AddSweeps(n)
}

// CaseGuard guards through a tagless switch clause.
//
//simstar:noalloc
func CaseGuard(tr *obs.KernelTrace, n int) {
	switch {
	case tr != nil:
		tr.AddSweeps(n)
	default:
	}
}

// Borrowed takes the address of a workspace-resident trace: non-nil by
// construction, no guard needed.
//
//simstar:noalloc
func Borrowed(ws *workspace, n int) {
	kt := &ws.Trace
	kt.AddSweeps(n)
}

// ValueReceiver calls through an addressable value, which cannot be nil.
//
//simstar:noalloc
func ValueReceiver(ws *workspace) {
	ws.Trace.Reset()
}

// Unguarded calls hooks without establishing non-nilness anywhere.
//
//simstar:noalloc
func Unguarded(e *engine, tr *obs.KernelTrace, n int) {
	e.obsv.hits.Inc() // want `Unguarded is //simstar:noalloc but calls e.obsv.hits.Inc on a nilable obs hook without a nil guard`
	tr.AddSweeps(n)   // want `Unguarded is //simstar:noalloc but calls tr.AddSweeps on a nilable obs hook without a nil guard`
}

// WrongBranch checks the hook but calls it where the check does not hold.
//
//simstar:noalloc
func WrongBranch(tr *obs.KernelTrace, n int) {
	if tr != nil {
		_ = n
	} else {
		tr.AddSweeps(n) // want `WrongBranch is //simstar:noalloc but calls tr.AddSweeps on a nilable obs hook without a nil guard`
	}
}

// OtherGuard checks a different hook than the one it calls.
//
//simstar:noalloc
func (e *engine) OtherGuard(n int) {
	if e.trace != nil {
		e.obsv.sweeps.Add(uint64(n)) // want `OtherGuard is //simstar:noalloc but calls e.obsv.sweeps.Add on a nilable obs hook without a nil guard`
	}
}

// Cold documents an intentionally unguarded hook on a path that only runs
// with observation on; the suppression carries the reason.
//
//simstar:noalloc
func Cold(tr *obs.KernelTrace) {
	//simstar:lint-ignore obsnoop fixture: caller contract guarantees a non-nil trace here
	tr.Reset()
}

// Unannotated is free to call hooks bare: only noalloc paths are checked.
func Unannotated(tr *obs.KernelTrace, n int) {
	tr.AddSweeps(n)
}
