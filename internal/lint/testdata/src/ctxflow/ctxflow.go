// Package ctxflow is a simlint fixture for the ctxflow analyzer, loaded as a
// kernel package: exported iterative kernels must thread context.Context and
// consult it inside their sweep loops.
package ctxflow

import "context"

// SweepChecked consults ctx inside its loop: compliant.
func SweepChecked(ctx context.Context, xs []float64) error {
	for range xs {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// SweepDelegated passes ctx to a helper on every iteration, which counts as
// consulting it: compliant.
func SweepDelegated(ctx context.Context, xs []float64) error {
	for range xs {
		if err := step(ctx); err != nil {
			return err
		}
	}
	return nil
}

func step(ctx context.Context) error { return ctx.Err() }

// SweepUnchecked threads a context but never consults it, so its deadline
// can never fire.
func SweepUnchecked(ctx context.Context, xs []float64) float64 { // want `SweepUnchecked takes a context.Context but never consults it inside its loops`
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Kernel nests sweep loops without a context: an uncancellable kernel.
func Kernel(m [][]float64) float64 { // want `Kernel is an iterative kernel \(nested sweep loops\) without a context.Context`
	var s float64
	for _, row := range m {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// Scale has only a single flat loop, which rule 2 does not treat as an
// iterative kernel: compliant.
func Scale(xs []float64, c float64) {
	for i := range xs {
		xs[i] *= c
	}
}

// kernel is unexported; the contract is carried by exported entry points.
func kernel(m [][]float64) float64 {
	var s float64
	for _, row := range m {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// Batch nests loops without a context, with the suppression documenting why
// the invariant does not apply.
//
//simstar:lint-ignore ctxflow fixture: bounded 8x8 sweep, cancellation unneeded
func Batch(m [][]float64) float64 {
	var s float64
	for _, row := range m {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// poller mimics sparse.CtxPoll: a value derived from the context that
// carries its cancellation contract into the loop.
type poller struct{ ctx context.Context }

func (p *poller) check() error { return p.ctx.Err() }

func pollEvery(ctx context.Context, stride int) poller {
	_ = stride
	return poller{ctx: ctx}
}

// SweepPolled consults the context only through a poller derived from it,
// which carries the cancellation contract: compliant.
func SweepPolled(ctx context.Context, xs []float64) error {
	poll := pollEvery(ctx, 8)
	for range xs {
		if err := poll.check(); err != nil {
			return err
		}
	}
	return nil
}

// SweepTransitive derives the in-loop carrier through two hops (a var
// declaration then a reassignment): still compliant.
func SweepTransitive(ctx context.Context, xs []float64) error {
	var base = pollEvery(ctx, 4)
	active := base
	for range xs {
		if err := active.check(); err != nil {
			return err
		}
	}
	return nil
}

// SweepUnrelatedLocal references the context outside its loop and consults
// only an unrelated local inside it, so the deadline still cannot fire
// mid-sweep: flagged.
func SweepUnrelatedLocal(ctx context.Context, xs []float64) float64 { // want `SweepUnrelatedLocal takes a context.Context but never consults it inside its loops`
	_ = ctx.Err()
	bound := len(xs)
	var s float64
	for i := 0; i < bound; i++ {
		s += xs[i]
	}
	return s
}

// Nest nests its loops inside a function literal, which belongs to the
// literal rather than to Nest's own iteration structure: compliant.
func Nest(m [][]float64) func() float64 {
	return func() float64 {
		var s float64
		for _, row := range m {
			for _, v := range row {
				s += v
			}
		}
		return s
	}
}
