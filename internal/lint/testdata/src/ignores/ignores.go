// Package ignores is a simlint fixture for the suppression syntax itself: a
// directive without a reason is malformed, reported, and suppresses nothing.
package ignores

// Sum carries a malformed suppression — analyzer named, reason missing — on
// an annotated function that does allocate, so both the malformed directive
// and the unsuppressed finding must surface.
//
//simstar:noalloc
func Sum(xs []float64) []float64 {
	//simstar:lint-ignore noalloc
	out := make([]float64, len(xs))
	copy(out, xs)
	return out
}
