package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file is the suite's package loader. The module is dependency-free by
// policy, so instead of golang.org/x/tools/go/packages it drives the go
// command directly: `go list -export -deps -json` enumerates the packages
// matching a pattern together with compiled export data for every
// dependency (standard library included), the target packages are re-parsed
// from source for full syntax, and go/types checks them against the export
// data through the compiler importer. The result is the same
// (fset, syntax, types) triple the x/tools loader would produce.

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (for fixtures, the fixture's
	// testdata-relative path).
	Path string
	// Files is the package's parsed syntax, comments included. Test files
	// are not loaded: the invariants guard production paths.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs the go command in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts a map of import path → export data file into the
// lookup function the gc importer wants.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// newChecker returns a types.Config resolving imports from exports.
func newChecker(fset *token.FileSet, exports map[string]string) *types.Config {
	return &types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports)),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
}

// newInfo returns an Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// parseFiles parses the named files (absolute paths) with comments.
func parseFiles(fset *token.FileSet, files []string) ([]*ast.File, error) {
	var parsed []*ast.File
	for _, f := range files {
		file, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, file)
	}
	return parsed, nil
}

// check type-checks one package's parsed files.
func check(fset *token.FileSet, cfg *types.Config, path string, files []*ast.File) (*Package, error) {
	info := newInfo()
	tpkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// LoadPatterns loads and type-checks the non-test source of every package
// matching the go patterns (e.g. "./..."), resolved relative to dir. All
// returned packages share the returned FileSet.
func LoadPatterns(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	listed, err := goList(dir, append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Export,GoFiles,DepOnly,Error"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	cfg := newChecker(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		parsed, err := parseFiles(fset, files)
		if err != nil {
			return nil, nil, err
		}
		pkg, err := check(fset, cfg, t.ImportPath, parsed)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

// LoadFixture loads the single fixture package in dir (every .go file, test
// fixtures are plain files) and type-checks it under the import path
// `path`, resolving its imports — standard library or module packages —
// through fresh export data from the go command. The analysistest harness
// loads its testdata packages through this.
func LoadFixture(dir, path string) (*token.FileSet, *Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	parsed, err := parseFiles(fset, files)
	if err != nil {
		return nil, nil, err
	}
	importSet := make(map[string]bool)
	for _, f := range parsed {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, nil, err
			}
			importSet[p] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		listed, err := goList(dir, append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Error"}, imports...)...)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			exports[p.ImportPath] = p.Export
		}
	}
	pkg, err := check(fset, newChecker(fset, exports), path, parsed)
	if err != nil {
		return nil, nil, err
	}
	return fset, pkg, nil
}
