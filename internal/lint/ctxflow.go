package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The ctxflow analyzer enforces the cancellation contract of the iterative
// kernels: every serving query must be abortable, so a kernel that sweeps
// the graph has to accept a context.Context and actually consult it inside
// its sweep loops — a ctx parameter that is threaded in but never checked
// between iterations is a deadline that cannot fire.
//
// Two rules, applied to exported functions only (unexported helpers are
// reached through exported entry points that already carry the contract):
//
//   - In kernel and sweep packages alike: a function that takes a
//     context.Context and contains loops must reference the context inside
//     at least one loop — either checking ctx.Err()/ctx.Done() directly,
//     passing ctx to a callee that does, or consulting a local derived from
//     ctx (e.g. an amortised sparse.CtxPoll built by PollEvery(ctx, n)).
//   - In kernel packages only: a function without a context.Context whose
//     body nests loops two deep or more is an iterative kernel that cannot
//     be cancelled. The fix is a Ctx variant (the loop-free original stays
//     as a context.Background() wrapper) or threading ctx outright. Leaf
//     sweep packages (internal/sparse) are exempt from this rule: their
//     kernels are deliberately context-free single sweeps, with
//     cancellation checked by the callers between sweeps.

// DefaultKernelPackages are the packages whose exported iterative kernels
// must thread and check context.Context.
var DefaultKernelPackages = []string{
	"repro/internal/core",
	"repro/internal/rwr",
	"repro/internal/sparsesim",
	"repro/internal/prank",
}

// DefaultSweepPackages are leaf sweep packages: functions there that do
// take a context must check it inside loops, but context-free leaf kernels
// are allowed (callers cancel between sweeps).
var DefaultSweepPackages = []string{
	"repro/internal/sparse",
}

// NewCtxflow returns a ctxflow analyzer checking the given package sets:
// kernel packages get both rules, sweep packages only the checked-if-taken
// rule. Paths match by prefix, so one entry covers a subtree.
func NewCtxflow(kernelPackages, sweepPackages []string) *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "exported iterative kernels must accept context.Context and check cancellation inside their sweep loops",
	}
	a.Run = func(pass *Pass) error {
		kernel := matchesAny(pass.Path, kernelPackages)
		sweep := matchesAny(pass.Path, sweepPackages)
		if !kernel && !sweep {
			return nil
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !fn.Name.IsExported() {
					continue
				}
				if ctx := ctxParam(pass, fn); ctx != nil {
					checkCtxUsedInLoops(pass, fn, ctx)
				} else if kernel && maxLoopDepth(fn.Body) >= 2 {
					pass.Reportf(fn.Name.Pos(),
						"%s is an iterative kernel (nested sweep loops) without a context.Context; add a Ctx variant or thread ctx and check cancellation in the sweep loop", fn.Name.Name)
				}
			}
		}
		return nil
	}
	return a
}

// matchesAny reports whether path equals one of the prefixes or lies under
// one of them.
func matchesAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// ctxParam returns the object of fn's context.Context parameter, if any.
func ctxParam(pass *Pass, fn *ast.FuncDecl) types.Object {
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxUsedInLoops reports fn if it contains loops but never references
// its context parameter inside any of them. "References" includes locals
// derived from the context — an amortised poller like
// `poll := sparse.PollEvery(ctx, n)` carries the cancellation contract, so a
// loop consulting only poll.Check() still counts as consulting ctx.
func checkCtxUsedInLoops(pass *Pass, fn *ast.FuncDecl, ctx types.Object) {
	derived := ctxDerivedLocals(pass, fn, ctx)
	hasLoop := false
	used := false
	var visitLoop func(body ast.Node)
	visitLoop = func(body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && derived[pass.Info.Uses[id]] {
				used = true
			}
			return !used
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			hasLoop = true
			visitLoop(loop.Body)
			return false // the subtree scan covered nested loops
		case *ast.RangeStmt:
			hasLoop = true
			visitLoop(loop.Body)
			return false
		case *ast.FuncLit:
			// Loops inside function literals belong to the literal, not to
			// fn's own iteration structure.
			return false
		}
		return true
	})
	if hasLoop && !used {
		pass.Reportf(fn.Name.Pos(),
			"%s takes a context.Context but never consults it inside its loops; check ctx.Err() (or pass ctx to the kernel) in the sweep loop", fn.Name.Name)
	}
}

// ctxDerivedLocals collects the objects that carry fn's cancellation
// contract: the ctx parameter itself, plus every local whose declaration or
// assignment references a carrier on its right-hand side — transitively, in
// source order (the only order Go locals can be derived in, since a local is
// declared before its derived use). Function literals are skipped to match
// the loop scan's scope rules.
func ctxDerivedLocals(pass *Pass, fn *ast.FuncDecl, ctx types.Object) map[types.Object]bool {
	derived := map[types.Object]bool{ctx: true}
	refsCarrier := func(expr ast.Expr) bool {
		found := false
		ast.Inspect(expr, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && derived[pass.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	mark := func(id *ast.Ident) {
		if obj := pass.Info.Defs[id]; obj != nil {
			derived[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			derived[obj] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			anyRHS := false
			for _, rhs := range st.Rhs {
				if refsCarrier(rhs) {
					anyRHS = true
					break
				}
			}
			if anyRHS {
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						mark(id)
					}
				}
			}
		case *ast.ValueSpec:
			anyRHS := false
			for _, rhs := range st.Values {
				if refsCarrier(rhs) {
					anyRHS = true
					break
				}
			}
			if anyRHS {
				for _, name := range st.Names {
					mark(name)
				}
			}
		}
		return true
	})
	return derived
}

// maxLoopDepth returns the deepest nesting of for/range statements directly
// in body, not descending into function literals.
func maxLoopDepth(body ast.Node) int {
	max := 0
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch loop := m.(type) {
			case *ast.ForStmt:
				if depth+1 > max {
					max = depth + 1
				}
				walk(loop.Body, depth+1)
				return false
			case *ast.RangeStmt:
				if depth+1 > max {
					max = depth + 1
				}
				walk(loop.Body, depth+1)
				return false
			case *ast.FuncLit:
				return false
			}
			return true
		})
	}
	walk(body, 0)
	return max
}
