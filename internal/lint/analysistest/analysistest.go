// Package analysistest runs simlint analyzers against fixture packages and
// checks their diagnostics against the fixtures' own expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest for the dependency-free suite.
//
// A fixture is one package under testdata/src/<name>. Lines that must be
// flagged carry a trailing expectation comment,
//
//	// want `regexp`
//
// with one backquoted or double-quoted regular expression per expected
// diagnostic on that line. Run loads the fixture, applies one analyzer —
// suppression directives included, so fixtures can demonstrate the escape
// hatch — and fails the test on any unexpected diagnostic or unmatched
// expectation.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"go/token"

	"repro/internal/lint"
)

// TestData returns the absolute path of the calling test's testdata
// directory, the conventional fixture root.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// expectation is one parsed want annotation: a source line that must produce
// a diagnostic whose message matches the pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe extracts the backquoted or double-quoted patterns of a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture package at <testdata>/src/<rel>, applies the
// analyzer, and reports any mismatch between the diagnostics and the
// fixture's want annotations. The surviving diagnostics are returned for
// tests that assert beyond positions and messages.
func Run(t *testing.T, testdata string, a *lint.Analyzer, rel string) []lint.Diagnostic {
	t.Helper()
	dir := filepath.Join(testdata, "src", rel)
	fset, pkg, err := lint.LoadFixture(dir, rel)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	diags := lint.Run(fset, []*lint.Package{pkg}, []*lint.Analyzer{a})
	wants := collectWants(t, fset, pkg)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
	return diags
}

// claim marks the first unmatched expectation at (file, line) whose pattern
// matches the message, reporting whether one existed.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every want comment of the fixture package.
func collectWants(t *testing.T, fset *token.FileSet, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns := wantRe.FindAllString(body, -1)
				if len(patterns) == 0 {
					t.Fatalf("%s:%d: malformed want comment: no quoted pattern", filepath.Base(pos.Filename), pos.Line)
				}
				for _, p := range patterns {
					text := p
					if strings.HasPrefix(p, "`") {
						text = strings.Trim(p, "`")
					} else if unq, err := strconv.Unquote(p); err == nil {
						text = unq
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", filepath.Base(pos.Filename), pos.Line, text, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
