package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The obsnoop analyzer enforces the zero-cost-when-off contract of the
// observability hooks. Metrics and traces thread through the engine as
// nilable pointers (*obs.Counter fields on an optional Observer,
// *obs.KernelTrace threaded through kernel Options); on the
// //simstar:noalloc serving paths every hook call site must establish that
// its receiver is non-nil before calling through it — an explicit branch,
// so an engine without an Observer pays one predictable compare per hook
// and can never panic on a nil counter.
//
// Within annotated functions, a method call whose receiver is a pointer to
// a type defined in a configured observability package must be one of:
//
//   - dominated by a nil check: inside the then-branch of
//     `if recv != nil` (or `if tr := e.trace; tr != nil`), a
//     `case recv != nil:` clause, or after an early `if recv == nil {
//     return }` — checking any prefix of the receiver chain counts, so
//     `if o != nil` sanctions `o.hits.Inc()` (a non-nil Observer's counter
//     fields are non-nil by construction);
//   - provably non-nil: the receiver is (or was assigned) an address-of
//     expression, like the workspace-resident `kt := &ws.Trace` borrow.
//
// Calls through addressable values (`ws.Trace.Reset()`) pass — a value
// receiver cannot be nil. The analysis is syntactic and flow-insensitive
// over assignments, matching the guard idioms the hot paths actually use;
// anything cleverer carries a //simstar:lint-ignore obsnoop <reason>.

// DefaultObsPackages are the packages whose pointer-receiver methods count
// as observability hooks on noalloc paths.
var DefaultObsPackages = []string{
	"repro/internal/obs",
}

// NewObsnoop returns an obsnoop analyzer treating pointer methods of types
// from the given packages as nilable observability hooks.
func NewObsnoop(obsPackages []string) *Analyzer {
	pkgs := make(map[string]bool, len(obsPackages))
	for _, p := range obsPackages {
		pkgs[p] = true
	}
	a := &Analyzer{
		Name: "obsnoop",
		Doc:  "obs hook calls in //simstar:noalloc functions must be nil-guarded (zero-cost-when-off)",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !hasDirective(fn.Doc, NoallocDirective) {
					continue
				}
				checkObsnoop(pass, fn, pkgs)
			}
		}
		return nil
	}
	return a
}

// obsnoopCheck carries one annotated function's analysis state.
type obsnoopCheck struct {
	pass   *Pass
	fnName string
	pkgs   map[string]bool
	// nonNil holds identifiers assigned an address-of expression anywhere
	// in the function (flow-insensitive: the &x borrow idiom assigns once).
	nonNil map[types.Object]bool
}

func checkObsnoop(pass *Pass, fn *ast.FuncDecl, pkgs map[string]bool) {
	c := &obsnoopCheck{pass: pass, fnName: fn.Name.Name, pkgs: pkgs, nonNil: map[types.Object]bool{}}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			un, ok := rhs.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := identObj(pass, id); obj != nil {
				c.nonNil[obj] = true
			}
		}
		return true
	})
	c.walk(fn.Body, map[string]bool{})
}

// walk traverses n carrying the set of receiver chains currently proven
// non-nil, branching the set at the control structures that establish it.
func (c *obsnoopCheck) walk(n ast.Node, guards map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.BlockStmt:
			c.walkBlock(s, guards)
			return false
		case *ast.IfStmt:
			c.walkIf(s, guards)
			return false
		case *ast.SwitchStmt:
			c.walkSwitch(s, guards)
			return false
		case *ast.CallExpr:
			c.checkCall(s, guards)
			return true
		}
		return true
	})
}

// walkBlock handles statement sequences, promoting early-return guards:
// after `if recv == nil { return }`, the remaining statements run with recv
// proven non-nil.
func (c *obsnoopCheck) walkBlock(b *ast.BlockStmt, guards map[string]bool) {
	for _, stmt := range b.List {
		c.walk(stmt, guards)
		if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Else == nil && ifs.Init == nil && terminates(ifs.Body) {
			if eq := eqNilChains(ifs.Cond); len(eq) > 0 {
				guards = copyGuards(guards)
				for _, chain := range eq {
					guards[chain] = true
				}
			}
		}
	}
}

func (c *obsnoopCheck) walkIf(s *ast.IfStmt, guards map[string]bool) {
	if s.Init != nil {
		c.walk(s.Init, guards)
	}
	c.walk(s.Cond, guards)
	inner := guards
	if neq := neqNilChains(s.Cond); len(neq) > 0 {
		inner = copyGuards(guards)
		for _, chain := range neq {
			inner[chain] = true
		}
	}
	c.walk(s.Body, inner)
	if s.Else != nil {
		c.walk(s.Else, guards)
	}
}

// walkSwitch gives each tagless `case recv != nil:` clause its guard.
func (c *obsnoopCheck) walkSwitch(s *ast.SwitchStmt, guards map[string]bool) {
	if s.Init != nil {
		c.walk(s.Init, guards)
	}
	if s.Tag != nil {
		c.walk(s.Tag, guards)
	}
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		inner := guards
		for _, e := range cc.List {
			c.walk(e, guards)
			if s.Tag == nil {
				if neq := neqNilChains(e); len(neq) > 0 {
					if !copied(inner, guards) {
						inner = copyGuards(guards)
					}
					for _, chain := range neq {
						inner[chain] = true
					}
				}
			}
		}
		for _, bs := range cc.Body {
			c.walk(bs, inner)
		}
	}
}

// checkCall reports a method call on a nilable obs-package pointer whose
// receiver is not proven non-nil here.
func (c *obsnoopCheck) checkCall(call *ast.CallExpr, guards map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := unparen(sel.X)
	if id, ok := recv.(*ast.Ident); ok {
		if _, isPkg := c.pass.Info.Uses[id].(*types.PkgName); isPkg {
			return
		}
	}
	tv, ok := c.pass.Info.Types[sel.X]
	if !ok {
		return
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return // value receivers cannot be nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return
	}
	tobj := named.Obj()
	if tobj.Pkg() == nil || !c.pkgs[tobj.Pkg().Path()] {
		return
	}
	if un, ok := recv.(*ast.UnaryExpr); ok && un.Op == token.AND {
		return // address-of is non-nil by construction
	}
	chain, ok := renderChain(recv)
	if ok {
		// A guard on any prefix of the chain counts: a non-nil container's
		// hook fields are non-nil by construction.
		for prefix := chain; prefix != ""; {
			if guards[prefix] {
				return
			}
			i := strings.LastIndexByte(prefix, '.')
			if i < 0 {
				break
			}
			prefix = prefix[:i]
		}
	} else {
		chain = "the receiver"
	}
	if id, ok := recv.(*ast.Ident); ok {
		if obj := identObj(c.pass, id); obj != nil && c.nonNil[obj] {
			return
		}
	}
	c.pass.Reportf(call.Pos(),
		"%s is //simstar:noalloc but calls %s.%s on a nilable obs hook without a nil guard; absence must cost one branch, not a panic — wrap it in `if %s != nil`",
		c.fnName, chain, sel.Sel.Name, chain)
}

// renderChain prints an ident/selector chain ("o.hits", "cb.Trace");
// anything else (calls, indexing) is not a guardable chain.
func renderChain(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		if base, ok := renderChain(x.X); ok {
			return base + "." + x.Sel.Name, true
		}
	case *ast.ParenExpr:
		return renderChain(x.X)
	}
	return "", false
}

// neqNilChains extracts the receiver chains a condition proves non-nil when
// true: `x != nil` conjuncts, recursively through &&.
func neqNilChains(cond ast.Expr) []string {
	var out []string
	var collect func(e ast.Expr)
	collect = func(e ast.Expr) {
		switch c := unparen(e).(type) {
		case *ast.BinaryExpr:
			switch c.Op {
			case token.LAND:
				collect(c.X)
				collect(c.Y)
			case token.NEQ:
				if chain, ok := nilCompareChain(c); ok {
					out = append(out, chain)
				}
			}
		}
	}
	collect(cond)
	return out
}

// eqNilChains extracts the chains proven non-nil by a condition being
// *false* — the early-return form: `x == nil` disjuncts through ||.
func eqNilChains(cond ast.Expr) []string {
	var out []string
	var collect func(e ast.Expr)
	collect = func(e ast.Expr) {
		switch c := unparen(e).(type) {
		case *ast.BinaryExpr:
			switch c.Op {
			case token.LOR:
				collect(c.X)
				collect(c.Y)
			case token.EQL:
				if chain, ok := nilCompareChain(c); ok {
					out = append(out, chain)
				}
			}
		}
	}
	collect(cond)
	return out
}

// nilCompareChain returns the non-nil side of a comparison against nil.
func nilCompareChain(c *ast.BinaryExpr) (string, bool) {
	if isNilIdent(c.Y) {
		return renderChain(unparen(c.X))
	}
	if isNilIdent(c.X) {
		return renderChain(unparen(c.Y))
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// terminates reports whether a block always leaves the enclosing statement
// list: its last statement is a return, a branch, or a panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func copyGuards(g map[string]bool) map[string]bool {
	out := make(map[string]bool, len(g)+2)
	for k := range g {
		out[k] = true
	}
	return out
}

// copied reports whether inner has already diverged from base.
func copied(inner, base map[string]bool) bool {
	return len(inner) != len(base)
}
