package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The noalloc analyzer keeps the zero-alloc serving paths honest. A warmed
// engine answers SingleSourceInto queries with zero heap allocations — the
// property PR 5's benchmarks bought — and the easiest way to lose it is an
// innocent-looking edit: an append in a sweep, a closure that captures a
// loop variable, a value boxed into an interface for a log line. Functions
// annotated
//
//	//simstar:noalloc
//
// in their doc comment are checked for allocating constructs:
//
//   - make, new and append calls,
//   - map/slice composite literals and &T{...} (heap-escaping literals),
//   - function literals (closures allocate when they capture),
//   - string concatenation and string<->[]byte/[]rune conversions,
//   - explicit conversions of concrete values to interface types,
//   - calls to constructors named New* (allocation moved behind a call).
//
// panic(...) subtrees are exempt: a panicking path is already fatal.
// Intentional cold-path allocations (a nil-workspace fallback, a
// grow-on-first-use branch) carry a //simstar:lint-ignore noalloc <reason>
// on the allocating line, so every exception is visible and justified.
//
// This is a syntactic approximation, not escape analysis: ordinary calls
// are trusted to be noalloc themselves (annotate the callee to check it),
// and plain struct literals pass (they stay on the stack unless they
// escape). The benchmark suite's allocs/op tracking is the ground truth the
// analyzer approximates between benchmark runs.

// NoallocDirective marks a function whose body must not allocate.
const NoallocDirective = "//simstar:noalloc"

// Noalloc is the analyzer enforcing //simstar:noalloc annotations.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //simstar:noalloc must contain no allocating constructs",
	Run:  runNoalloc,
}

func runNoalloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, NoallocDirective) {
				continue
			}
			checkNoalloc(pass, fn)
		}
	}
	return nil
}

// hasDirective reports whether doc contains the given directive comment as
// a full line (exact match or directive followed by whitespace).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func checkNoalloc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.CallExpr:
				switch funName(pass, e.Fun) {
				case "panic":
					// A panicking path is fatal; its boxing is irrelevant.
					return false
				case "make":
					pass.Reportf(e.Pos(), "%s is //simstar:noalloc but calls make", name)
				case "new":
					pass.Reportf(e.Pos(), "%s is //simstar:noalloc but calls new", name)
				case "append":
					pass.Reportf(e.Pos(), "%s is //simstar:noalloc but calls append (may grow the backing array)", name)
				}
				if isInterfaceConversion(pass, e) {
					pass.Reportf(e.Pos(), "%s is //simstar:noalloc but converts a concrete value to an interface (boxes on the heap)", name)
				}
				if isStringBytesConversion(pass, e) {
					pass.Reportf(e.Pos(), "%s is //simstar:noalloc but converts between string and byte/rune slice (copies)", name)
				}
				if ctor := constructorName(pass, e.Fun); ctor != "" {
					pass.Reportf(e.Pos(), "%s is //simstar:noalloc but calls constructor %s (allocates behind the call)", name, ctor)
				}
			case *ast.CompositeLit:
				tv, ok := pass.Info.Types[e]
				if !ok {
					return true
				}
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(e.Pos(), "%s is //simstar:noalloc but builds a map literal", name)
				case *types.Slice:
					pass.Reportf(e.Pos(), "%s is //simstar:noalloc but builds a slice literal", name)
				}
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					if _, ok := e.X.(*ast.CompositeLit); ok {
						pass.Reportf(e.Pos(), "%s is //simstar:noalloc but takes the address of a composite literal (escapes to the heap)", name)
					}
				}
			case *ast.FuncLit:
				pass.Reportf(e.Pos(), "%s is //simstar:noalloc but declares a function literal (closures allocate when they capture)", name)
				return false
			case *ast.BinaryExpr:
				if e.Op == token.ADD {
					if tv, ok := pass.Info.Types[e]; ok {
						if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
							pass.Reportf(e.Pos(), "%s is //simstar:noalloc but concatenates strings", name)
						}
					}
				}
			}
			return true
		})
	}
	walk(fn.Body)
}

// funName resolves fun to a builtin or top-level function name, "" for
// anything else (method values, conversions, locals).
func funName(pass *Pass, fun ast.Expr) string {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
			return obj.Name()
		}
		return ""
	}
	return ""
}

// constructorName reports calls to functions named New or New*: the
// conventional shape of an allocating constructor.
func constructorName(pass *Pass, fun ast.Expr) string {
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return ""
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return ""
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return ""
	}
	if obj.Name() == "New" || (strings.HasPrefix(obj.Name(), "New") && len(obj.Name()) > 3 && obj.Name()[3] >= 'A' && obj.Name()[3] <= 'Z') {
		return obj.Name()
	}
	return ""
}

// isInterfaceConversion reports explicit conversions T(x) where T is an
// interface type and x is concrete.
func isInterfaceConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	if !types.IsInterface(tv.Type) {
		return false
	}
	if len(call.Args) != 1 {
		return false
	}
	argTV, ok := pass.Info.Types[call.Args[0]]
	return ok && !types.IsInterface(argTV.Type)
}

// isStringBytesConversion reports []byte(s), []rune(s) and string(b)
// conversions, which copy their operand.
func isStringBytesConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	argTV, ok := pass.Info.Types[call.Args[0]]
	if !ok {
		return false
	}
	toString := isBasicString(tv.Type) && isByteOrRuneSlice(argTV.Type)
	toSlice := isByteOrRuneSlice(tv.Type) && isBasicString(argTV.Type)
	return toString || toSlice
}

func isBasicString(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && (elem.Kind() == types.Byte || elem.Kind() == types.Rune || elem.Kind() == types.Uint8 || elem.Kind() == types.Int32)
}
