// Package lint implements simlint, a suite of project-specific static
// analyzers that machine-check the invariants the engine's hot paths rely
// on. The rules are enforced only by convention otherwise, and every one of
// them fails as a p99 regression or a race in production rather than as a
// compile error:
//
//   - ctxflow: iterative kernels must thread context.Context and consult it
//     inside their sweep loops, so deadlines and cancellation actually abort
//     long runs.
//   - poolescape: values handed out by a sync.Pool or a sparse.Workspace
//     arena must not outlive their release — escaping them silently corrupts
//     the pooled serving loop.
//   - noalloc: functions annotated //simstar:noalloc must contain no
//     allocating constructs, keeping the zero-alloc serving paths honest.
//   - cachekey: the result-cache key must cover every query-affecting
//     option; fields stripped from the key must be declared serving-only.
//   - obsnoop: observability hook calls on //simstar:noalloc paths must be
//     nil-guarded, so metrics-off serving costs one branch per hook and a
//     missing Observer can never panic a query.
//
// The types here deliberately mirror golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the suite can migrate onto the real
// framework wholesale if the dependency ever becomes available; the module
// is dependency-free by policy, so a minimal reimplementation ships instead.
//
// # Suppression
//
// Any diagnostic can be silenced with an explicit, reasoned escape hatch:
//
//	//simstar:lint-ignore <analyzer> <reason>
//
// placed either on the flagged line or alone on the line directly above it.
// The reason is mandatory — an ignore without one is itself reported — so
// every suppression documents why the invariant does not apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check: a name (used in diagnostics and
// suppression comments), a one-paragraph doc string, and the function that
// runs the check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in output and in lint-ignore comments.
	Name string
	// Doc describes the invariant the analyzer enforces.
	Doc string
	// Run reports the package's violations through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one analyzed package — its syntax, type information and a
// sink for diagnostics — to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the check this pass is running.
	Analyzer *Analyzer
	// Fset maps token positions of Files back to file/line/column.
	Fset *token.FileSet
	// Files holds the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Path is the package's import path.
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	// Pos locates the violation in the Fset of the pass that produced it.
	Pos token.Pos
	// Message states the violation and, where possible, the fix.
	Message string
	// Analyzer is the name of the check that produced the diagnostic.
	Analyzer string
}

// IgnoreDirective is the comment prefix of the suppression escape hatch.
const IgnoreDirective = "//simstar:lint-ignore"

// ignoreAnalyzer is the pseudo-analyzer name under which malformed
// suppression comments are reported; it cannot itself be suppressed.
const ignoreAnalyzer = "lint-ignore"

// ignoreRe splits a well-formed ignore: directive, analyzer name, reason.
var ignoreRe = regexp.MustCompile(`^//simstar:lint-ignore\s+(\S+)\s+(.+)$`)

// Run applies every analyzer to every package, resolves suppression
// comments, and returns the surviving diagnostics sorted by position. All
// packages must share one token.FileSet (the Loader guarantees this).
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores, malformed := collectIgnores(fset, pkg.Files)
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				if !ignores.covers(fset.Position(d.Pos), a.Name) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Files[0].Pos(),
					Message:  fmt.Sprintf("analyzer failed: %v", err),
					Analyzer: a.Name,
				})
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// ignoreSet records, per file and line, which analyzers are suppressed
// there. A directive covers its own line and the line below it, so it works
// both as a trailing comment and as a standalone line above the construct.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) add(file string, line int, analyzer string) {
	if s[file] == nil {
		s[file] = make(map[int]map[string]bool)
	}
	if s[file][line] == nil {
		s[file][line] = make(map[string]bool)
	}
	s[file][line][analyzer] = true
}

func (s ignoreSet) covers(pos token.Position, analyzer string) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer] || byLine[pos.Line-1][analyzer]
}

// collectIgnores scans every comment for ignore directives. Malformed
// directives — no analyzer name, or no reason — come back as diagnostics:
// an undocumented suppression is a violation in its own right.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	ignores := make(ignoreSet)
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("malformed %s: need \"%s <analyzer> <reason>\"", IgnoreDirective, IgnoreDirective),
						Analyzer: ignoreAnalyzer,
					})
					continue
				}
				pos := fset.Position(c.Pos())
				ignores.add(pos.Filename, pos.Line, m[1])
			}
		}
	}
	return ignores, malformed
}

// Analyzers returns the default suite with the production configuration:
// the kernel-package lists and arena types of this repository.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewCtxflow(DefaultKernelPackages, DefaultSweepPackages),
		NewPoolescape(DefaultArenaTypes),
		Noalloc,
		Cachekey,
		NewObsnoop(DefaultObsPackages),
	}
}
