package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The cachekey analyzer keeps the result cache sound. The engine's cache
// key embeds the full option struct after a strip function (cacheParams)
// zeroes the serving-only knobs; a correct strip set is precisely what
// stands between "cache hit" and "stale scores served to a user". The
// failure mode is always the same: someone adds a query-affecting option,
// strips it from the key "like the others", and two requests that compute
// different numbers start sharing an entry.
//
// The contract is declared next to the code it governs. The strip function
// carries
//
//	//simstar:cachekey-exempt field1 field2 ...
//
// naming every field it is allowed to zero (the serving-only set). The
// analyzer then checks, for the strip function's receiver struct:
//
//   - every field unconditionally zeroed in the strip function is declared
//     exempt (stripping an undeclared field is the stale-cache bug),
//   - every declared-exempt field is actually stripped (a stale allowlist
//     entry means the contract and the code disagree),
//   - every exempt name is a real field (catches renames),
//   - some struct in the package embeds the receiver type as a field — the
//     cache key must actually carry the surviving params.
//
// Conditional assignments (inside if/for) are treated as normalisation,
// not stripping: collapsing sub-threshold tolerances to zero changes the
// key only where results are identical by construction.
//
// A function named cacheParams without the directive is reported too: the
// convention is load-bearing, so opting out must be visible.

// CachekeyDirective declares the serving-only fields a strip function may
// zero.
const CachekeyDirective = "//simstar:cachekey-exempt"

// cacheParamsName is the conventional name of the strip function.
const cacheParamsName = "cacheParams"

// Cachekey is the analyzer enforcing the result-cache key contract.
var Cachekey = &Analyzer{
	Name: "cachekey",
	Doc:  "every query-affecting option field must survive into the result-cache key; stripped fields must be declared exempt",
	Run:  runCachekey,
}

func runCachekey(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			exempt, declared := cachekeyExemptList(fn.Doc)
			if !declared {
				if fn.Name.Name == cacheParamsName {
					pass.Reportf(fn.Name.Pos(), "%s has no %s declaration; list its serving-only fields so strips are auditable", cacheParamsName, CachekeyDirective)
				}
				continue
			}
			checkCachekey(pass, fn, exempt)
		}
	}
	return nil
}

// cachekeyExemptList parses the directive from doc, returning the exempt
// field names and whether the directive is present.
func cachekeyExemptList(doc *ast.CommentGroup) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		if c.Text == CachekeyDirective {
			return nil, true
		}
		if strings.HasPrefix(c.Text, CachekeyDirective+" ") {
			return strings.Fields(strings.TrimPrefix(c.Text, CachekeyDirective+" ")), true
		}
	}
	return nil, false
}

func checkCachekey(pass *Pass, fn *ast.FuncDecl, exempt []string) {
	recv := receiverStruct(pass, fn)
	if recv == nil {
		pass.Reportf(fn.Name.Pos(), "%s carries %s but is not a method on a struct", fn.Name.Name, CachekeyDirective)
		return
	}
	fields := make(map[string]bool)
	for i := 0; i < recv.NumFields(); i++ {
		fields[recv.Field(i).Name()] = true
	}
	exemptSet := make(map[string]bool, len(exempt))
	for _, name := range exempt {
		exemptSet[name] = true
		if !fields[name] {
			pass.Reportf(fn.Name.Pos(), "%s names %q, which is not a field of the receiver struct (renamed or removed?)", CachekeyDirective, name)
		}
	}
	stripped := strippedFields(pass, fn)
	for _, s := range stripped {
		if !exemptSet[s.name] {
			pass.Reportf(s.pos, "%s strips field %q from the result-cache key without declaring it exempt; a query-affecting field here serves stale results", fn.Name.Name, s.name)
		}
	}
	strippedSet := make(map[string]bool, len(stripped))
	for _, s := range stripped {
		strippedSet[s.name] = true
	}
	for _, name := range exempt {
		if fields[name] && !strippedSet[name] {
			pass.Reportf(fn.Name.Pos(), "field %q is declared exempt but %s never strips it; drop it from %s or strip it", name, fn.Name.Name, CachekeyDirective)
		}
	}
	if !packageEmbedsStruct(pass, fn, recv) {
		pass.Reportf(fn.Name.Pos(), "no struct in this package embeds the receiver type of %s as a field; the cache key must carry the stripped params struct", fn.Name.Name)
	}
}

// receiverStruct returns the struct type underlying fn's receiver, nil if
// fn is not a method on a (possibly pointer-to-) struct.
func receiverStruct(pass *Pass, fn *ast.FuncDecl) *types.Struct {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.Info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	s, _ := t.Underlying().(*types.Struct)
	return s
}

// strippedField is one unconditional receiver-field assignment in the
// strip function.
type strippedField struct {
	name string
	pos  token.Pos
}

// strippedFields returns the receiver fields assigned at the top level of
// fn's body (assignments nested under if/for/switch are normalisations,
// not strips).
func strippedFields(pass *Pass, fn *ast.FuncDecl) []strippedField {
	recvNames := make(map[types.Object]bool)
	for _, field := range fn.Recv.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				recvNames[obj] = true
			}
		}
	}
	var out []strippedField
	for _, stmt := range fn.Body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range assign.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok || !recvNames[pass.Info.Uses[base]] {
				continue
			}
			out = append(out, strippedField{name: sel.Sel.Name, pos: sel.Pos()})
		}
	}
	return out
}

// packageEmbedsStruct reports whether any other struct type in the package
// has a field whose type is fn's receiver struct — i.e. whether a cache key
// actually carries the params.
func packageEmbedsStruct(pass *Pass, fn *ast.FuncDecl, recv *types.Struct) bool {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		s, ok := tn.Type().Underlying().(*types.Struct)
		if !ok || s == recv {
			continue
		}
		for i := 0; i < s.NumFields(); i++ {
			if types.Identical(s.Field(i).Type().Underlying(), recv) {
				return true
			}
		}
	}
	return false
}
