package lint_test

import (
	"strings"
	"testing"

	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// The fixture tests pin each analyzer's behaviour on a purpose-built
// package: at least one true positive (the // want lines), true negatives
// (compliant shapes that must stay silent), and one finding silenced by a
// well-formed //simstar:lint-ignore.

func TestCtxflowKernelFixture(t *testing.T) {
	a := lint.NewCtxflow([]string{"ctxflow"}, nil)
	analysistest.Run(t, analysistest.TestData(), a, "ctxflow")
}

func TestCtxflowSweepFixture(t *testing.T) {
	a := lint.NewCtxflow(nil, []string{"ctxflowsweep"})
	analysistest.Run(t, analysistest.TestData(), a, "ctxflowsweep")
}

func TestPoolescapeFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.NewPoolescape(lint.DefaultArenaTypes), "poolescape")
}

func TestNoallocFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Noalloc, "noalloc")
}

func TestCachekeyFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Cachekey, "cachekey")
}

func TestObsnoopFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.NewObsnoop(lint.DefaultObsPackages), "obsnoop")
}

// TestMalformedIgnoreReported checks the suppression syntax's own contract:
// a directive without a reason is reported under the lint-ignore
// pseudo-analyzer and does not silence the finding it sits on.
func TestMalformedIgnoreReported(t *testing.T) {
	dir := filepath.Join(analysistest.TestData(), "src", "ignores")
	fset, pkg, err := lint.LoadFixture(dir, "ignores")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := lint.Run(fset, []*lint.Package{pkg}, []*lint.Analyzer{lint.Noalloc})
	var malformed, unsuppressed bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "lint-ignore" && strings.Contains(d.Message, "malformed"):
			malformed = true
		case d.Analyzer == "noalloc" && strings.Contains(d.Message, "calls make"):
			unsuppressed = true
		}
	}
	if !malformed {
		t.Errorf("malformed lint-ignore directive was not reported; got %v", diags)
	}
	if !unsuppressed {
		t.Errorf("malformed lint-ignore silenced the noalloc finding; got %v", diags)
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 diagnostics, got %d: %v", len(diags), diags)
	}
}

// TestDefaultSuite pins the shape of the production configuration: five
// analyzers, unique names, documented.
func TestDefaultSuite(t *testing.T) {
	suite := lint.Analyzers()
	if len(suite) != 5 {
		t.Fatalf("want 5 analyzers, got %d", len(suite))
	}
	seen := make(map[string]bool)
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestRepositoryIsClean runs the full production suite over the whole
// module — the same invocation as `go run ./cmd/simlint ./...` — and fails
// on any finding. This is the self-test that keeps the tree at zero
// violations: a hot-path regression fails `go test` before it reaches CI's
// lint job.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	fset, pkgs, err := lint.LoadPatterns("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	for _, d := range lint.Run(fset, pkgs, lint.Analyzers()) {
		pos := fset.Position(d.Pos)
		t.Errorf("%s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
	}
}
