package lint

import (
	"go/ast"
	"go/types"
)

// The poolescape analyzer guards the pooled serving loop: a value obtained
// from a sync.Pool.Get (or handed out by a sparse.Workspace arena) is only
// on loan until the matching Put/Reset, and any reference that survives the
// release aliases memory the next query will scribble over — the bug class
// that corrupts results silently instead of crashing.
//
// The check is function-local and deliberately conservative: it tracks
// local variables initialised directly from a pool source and flags the
// flows that outlive the function's own frame —
//
//   - returning the value (except from a single-expression accessor whose
//     whole body is `return pool.Get().(T)`; call sites of such accessors
//     are themselves treated as pool sources),
//   - storing it into a struct field, array/slice/map element, or a
//     package-level variable,
//   - sending it on a channel,
//   - capturing it in a goroutine launched with `go` (the goroutine can
//     outlive the Put that follows),
//   - capturing it in a closure handed to one of the internal/par loop
//     drivers (For, ForEach, ForEachCtx): the loop body runs on several
//     goroutines at once, so a single shared workspace races with itself
//     even though every worker finishes before the Put. Each worker must
//     own its arena (Get inside the closure, or a per-worker pool like
//     sparse.Sweeper's).
//
// Passing the value to an ordinary call is allowed — that is exactly what
// the `defer pool.Put(v)` pattern and the kernel invocations do. Methods of
// an arena type itself are exempt: the arena hands its own buffers out by
// design.

// DefaultArenaTypes are the workspace-arena types whose handout methods
// (Take, Raw, TakeVecs) are pool sources, named "pkgpath.TypeName".
var DefaultArenaTypes = []string{
	"repro/internal/sparse.Workspace",
}

// arenaHandoutMethods are the method names through which an arena lends out
// its buffers.
var arenaHandoutMethods = map[string]bool{"Take": true, "Raw": true, "TakeVecs": true}

// parLoopPkg and parLoopFuncs name the parallel loop drivers whose closure
// arguments run concurrently on multiple goroutines.
const parLoopPkg = "repro/internal/par"

var parLoopFuncs = map[string]bool{"For": true, "ForEach": true, "ForEachCtx": true}

// NewPoolescape returns a poolescape analyzer treating the given arena
// types (in addition to sync.Pool) as pool sources.
func NewPoolescape(arenaTypes []string) *Analyzer {
	arenas := make(map[string]bool, len(arenaTypes))
	for _, t := range arenaTypes {
		arenas[t] = true
	}
	a := &Analyzer{
		Name: "poolescape",
		Doc:  "values from sync.Pool.Get or workspace arenas must not escape past their release",
	}
	a.Run = func(pass *Pass) error {
		p := &poolescapePass{Pass: pass, arenas: arenas}
		p.findAccessors()
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				p.checkFunc(fn)
			}
		}
		return nil
	}
	return a
}

type poolescapePass struct {
	*Pass
	arenas map[string]bool
	// accessors are this package's single-expression pool accessors: their
	// call sites count as pool sources and their own return is exempt.
	accessors map[types.Object]bool
}

// typeKey renders a (possibly pointer-wrapped) named type as
// "pkgpath.Name", or "" for anything else.
func typeKey(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// isPoolSource reports whether call yields a pooled value: sync.Pool.Get,
// an arena handout method, or a call to a local accessor.
func (p *poolescapePass) isPoolSource(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			obj := sel.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Get" {
				return true
			}
			if arenaHandoutMethods[obj.Name()] && p.arenas[typeKey(sel.Recv())] {
				return true
			}
		}
		if obj := p.Info.Uses[fun.Sel]; obj != nil && p.accessors[obj] {
			return true
		}
	case *ast.Ident:
		if obj := p.Info.Uses[fun]; obj != nil && p.accessors[obj] {
			return true
		}
	}
	return false
}

// sourceExpr unwraps a type assertion and reports whether e is a pool
// source call.
func (p *poolescapePass) sourceExpr(e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	return ok && p.isPoolSource(call)
}

// findAccessors records functions whose entire body is `return <source>`
// (type assertion allowed): sanctioned wrappers like getWS.
func (p *poolescapePass) findAccessors() {
	p.accessors = make(map[types.Object]bool)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || len(fn.Body.List) != 1 {
				continue
			}
			ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 || !p.sourceExpr(ret.Results[0]) {
				continue
			}
			if obj := p.Info.Defs[fn.Name]; obj != nil {
				p.accessors[obj] = true
			}
		}
	}
}

// isArenaMethod reports whether fn is a method on one of the arena types —
// the arena handing out its own buffers is the design, not an escape.
func (p *poolescapePass) isArenaMethod(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := p.Info.Types[fn.Recv.List[0].Type]
	return ok && p.arenas[typeKey(tv.Type)]
}

// checkFunc tracks pooled locals in fn and reports escapes.
func (p *poolescapePass) checkFunc(fn *ast.FuncDecl) {
	if p.isArenaMethod(fn) {
		return
	}
	// Collect locals initialised straight from a pool source.
	tracked := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !p.sourceExpr(rhs) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					tracked[obj] = true
				} else if obj := p.Info.Uses[id]; obj != nil {
					tracked[obj] = true
				}
			}
		}
		return true
	})
	accessor := false
	if obj := p.Info.Defs[fn.Name]; obj != nil && p.accessors[obj] {
		accessor = true
	}
	usesTracked := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && tracked[p.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ReturnStmt:
			if accessor {
				return true
			}
			for _, res := range stmt.Results {
				// Returning the raw source expression (not through a local)
				// is the accessor pattern handled above; returning a tracked
				// local leaks the loan.
				if id, ok := res.(*ast.Ident); ok && tracked[p.Info.Uses[id]] {
					p.Reportf(res.Pos(), "pooled value %s is returned; it must be released to its pool before %s exits", id.Name, fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			if len(stmt.Lhs) != len(stmt.Rhs) {
				return true
			}
			for i, rhs := range stmt.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || !tracked[p.Info.Uses[id]] {
					continue
				}
				if p.escapingLHS(stmt.Lhs[i]) {
					p.Reportf(rhs.Pos(), "pooled value %s is stored in %s, outliving its release; keep pooled values on the stack", id.Name, describeLHS(stmt.Lhs[i]))
				}
			}
		case *ast.SendStmt:
			if id, ok := stmt.Value.(*ast.Ident); ok && tracked[p.Info.Uses[id]] {
				p.Reportf(stmt.Value.Pos(), "pooled value %s is sent on a channel; the receiver outlives the release", id.Name)
			}
		case *ast.GoStmt:
			if usesTracked(stmt.Call) {
				p.Reportf(stmt.Pos(), "pooled value captured by a goroutine that may outlive its release; Get inside the goroutine instead")
			}
			return false
		case *ast.CallExpr:
			if !p.isParLoop(stmt) {
				return true
			}
			for _, arg := range stmt.Args {
				fl, ok := arg.(*ast.FuncLit)
				if !ok || !p.capturesTracked(fl, tracked) {
					continue
				}
				p.Reportf(fl.Pos(), "pooled value captured by a parallel loop closure; the workers race on one arena — give each worker its own (Get inside the closure)")
			}
		}
		return true
	})
}

// capturesTracked reports whether fl references a tracked pooled value it
// did not obtain itself: a worker borrowing its own arena inside the
// closure is the sanctioned per-worker pattern, only captures of the
// enclosing frame's loan are an escape.
func (p *poolescapePass) capturesTracked(fl *ast.FuncLit, tracked map[types.Object]bool) bool {
	local := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && tracked[obj] && !local[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isParLoop reports whether call invokes one of the internal/par loop
// drivers, whose closure arguments fan out across goroutines.
func (p *poolescapePass) isParLoop(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !parLoopFuncs[sel.Sel.Name] {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == parLoopPkg
}

// escapingLHS reports whether assigning to lhs stores the value beyond the
// function frame: a field, an element, or a package-level variable.
func (p *poolescapePass) escapingLHS(lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := p.Info.Uses[l]
		if obj == nil {
			obj = p.Info.Defs[l]
		}
		// A package-level variable escapes; locals are fine.
		return obj != nil && obj.Parent() == p.Pkg.Scope()
	}
	return false
}

// describeLHS names the escape destination for the diagnostic.
func describeLHS(lhs ast.Expr) string {
	switch lhs.(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a container element"
	case *ast.StarExpr:
		return "a pointee"
	default:
		return "a package-level variable"
	}
}
