# Development entry points. Every target is a one-liner over the standard
# toolchain, so none of them is load-bearing: CI runs the same commands
# verbatim (see .github/workflows/ci.yml).

GO ?= go
# The staticcheck release CI pins; needs network on first run.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test race lint simlint staticcheck doccheck fmt bench-smoke bench-serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full lint gate, as CI runs it: formatting, vet, doc coverage, the
# project's own invariant suite, and staticcheck.
lint: fmt simlint doccheck
	$(GO) vet ./...
	$(MAKE) staticcheck

# simlint machine-checks the engine's hot-path invariants (ctxflow,
# poolescape, noalloc, cachekey — see ARCHITECTURE.md "Enforced invariants").
simlint:
	$(GO) run ./cmd/simlint ./...

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

doccheck:
	$(GO) run ./cmd/doccheck

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# The deterministic serving-path workload (CI runs the same profile and
# uploads the report as an artifact).
bench-serve:
	$(GO) run ./cmd/simbench -profile tiny -seed 1 -out bench-serve.json
