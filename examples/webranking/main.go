// Webranking: "related pages" on an R-MAT webgraph — the paper's Web-Google
// scenario. Demonstrates the exponential SimRank* variant (fastest at equal
// accuracy), accuracy-driven iteration counts and threshold sieving through
// the simstar options, and the asymmetry pitfall of RWR on the web.
//
//	go run ./examples/webranking
package main

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/simstar"
)

func main() {
	g := dataset.RMATDefault(9, 6, 99) // 512 pages, heavy-tailed links
	fmt.Printf("webgraph: %d pages, %d links, density %.1f\n\n", g.N(), g.M(), g.Density())

	// Accuracy-driven iteration counts (WithEps) and threshold sieving
	// (WithSieve) are engine-wide options; the exponential form reaches
	// ε = 0.001 in far fewer iterations than the geometric form.
	ctx := context.Background()
	eng := simstar.NewEngine(g,
		simstar.WithC(0.6), simstar.WithEps(0.001), simstar.WithSieve(1e-4))

	// All-pairs with threshold sieving: drop scores below 1e-4 as the paper
	// does, keeping the result sparse enough to store.
	s, err := eng.AllPairs(ctx, simstar.MeasureExponentialMemo)
	if err != nil {
		panic(err)
	}
	total := g.N() * g.N()
	fmt.Printf("sieved score matrix: %d/%d entries kept (%.1f%%)\n\n",
		s.NNZ(), total, 100*float64(s.NNZ())/float64(total))

	// Query: the most linked-to page among those that link out the least —
	// a content sink (think a PDF or a landing page). RWR is starved here:
	// it can only score pages the query reaches by its own out-links.
	q, best := 0, -1
	for v := 0; v < g.N(); v++ {
		if g.OutDeg(v) == 0 && g.InDeg(v) > best {
			q, best = v, g.InDeg(v)
		}
	}
	if best < 0 { // no sinks: fall back to max in-degree
		for v := 0; v < g.N(); v++ {
			if d := g.InDeg(v); d > best {
				q, best = v, d
			}
		}
	}
	fmt.Printf("related pages for sink %d (in-degree %d, out-degree %d):\n", q, best, g.OutDeg(q))
	row := s.Row(q)
	for i, r := range simstar.TopK(row, 5, q) {
		fmt.Printf("  %d. page %-4d score %.4f\n", i+1, r.Node, r.Score)
	}

	// RWR asymmetry: a hub is reachable from many pages, but reaches few —
	// so RWR "related pages" for a hub is starved while SimRank* is not.
	// The same engine serves it off the cached forward transition matrix
	// (ε=0.001 resolves to K=13 under the geometric bound); With() drops
	// the sieve for this query so even sub-threshold RWR mass counts.
	rv, err := eng.With(simstar.WithSieve(0)).SingleSource(ctx, simstar.MeasureRWR, q)
	if err != nil {
		panic(err)
	}
	rwNonzero := 0
	for i, v := range rv {
		if i != q && v > 0 {
			rwNonzero++
		}
	}
	srNonzero := 0
	for i, v := range row {
		if i != q && v > 0 {
			srNonzero++
		}
	}
	fmt.Printf("\npages with non-zero relatedness to the hub: SimRank* %d, RWR %d\n",
		srNonzero, rwNonzero)
	fmt.Println("(RWR only scores pages the hub links toward — the Sec. 3.1 asymmetry.)")
}
