// Quickstart: build a small citation graph, compute SimRank* similarities
// through the simstar API, and contrast them with classic SimRank on the
// paper's own Figure-1 example — the fastest way to see what the
// "zero-similarity" fix means.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/simstar"
)

func main() {
	// A citation graph (edges point from citing to cited): the survey cites
	// both classics; two follow-ups cite the survey; a review cites both
	// follow-ups; a fresh preprint cites followup1 only.
	b := simstar.NewGraphBuilder()
	for _, e := range [][2]string{
		{"survey", "classicA"}, {"survey", "classicB"},
		{"followup1", "survey"}, {"followup2", "survey"},
		{"review", "followup1"}, {"review", "followup2"},
		{"preprint", "followup1"},
	} {
		b.AddEdgeLabeled(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}

	// One engine per graph: the transition matrices and the biclique
	// compression are built here, once, and reused by every query below.
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(10))

	star, err := eng.AllPairs(ctx, simstar.MeasureGeometric)
	if err != nil {
		panic(err)
	}
	sr, err := eng.AllPairs(ctx, simstar.MeasureSimRankMatrix)
	if err != nil {
		panic(err)
	}

	show := func(a, bl string) {
		i, _ := g.NodeByLabel(a)
		j, _ := g.NodeByLabel(bl)
		fmt.Printf("  %-22s SimRank*=%.4f   SimRank=%.4f\n",
			fmt.Sprintf("(%s, %s)", a, bl), star.At(i, j), sr.At(i, j))
	}

	fmt.Println("co-cited pairs (both measures see them):")
	show("classicA", "classicB")   // co-cited by the survey: symmetric path
	show("followup1", "followup2") // co-cited by the review

	fmt.Println("cross-generation pairs (SimRank is blind, SimRank* is not):")
	show("survey", "classicA")   // direct citation: no symmetric in-link path
	show("preprint", "survey")   // grand-citation, unequal distances
	show("preprint", "classicB") // three generations apart

	fmt.Println("pair with no in-link path at all (both correctly zero):")
	show("preprint", "followup2") // nothing cites preprint; preprint cannot reach followup2

	// Single-source top-k: "papers most similar to followup1" in O(Km)
	// without materialising the n×n matrix — the engine serves it off the
	// cached transition matrix.
	q, _ := g.NodeByLabel("followup1")
	top, err := eng.TopK(ctx, simstar.MeasureGeometric, q, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ntop-3 most similar to followup1:")
	for _, r := range top {
		fmt.Printf("  %-10s %.4f\n", g.Label(r.Node), r.Score)
	}
}
