// Coauthors: collaborator recommendation on a synthetic DBLP-like network.
// Builds a community-structured coauthorship graph, recommends collaborators
// for an author with SimRank* through the memoized engine path, and verifies
// recommendations respect the planted community structure and similar
// H-index roles — the paper's DBLP evaluation in miniature.
//
//	go run ./examples/coauthors
package main

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/simstar"
)

func main() {
	net := dataset.Coauthor(dataset.CoauthorOptions{
		Authors: 400, Papers: 1200, Communities: 8, Seed: 7,
	})
	g := net.G
	fmt.Printf("network: %d authors, %d coauthorship edges, density %.1f\n",
		g.N(), g.M(), g.Density())

	// Edge concentration is what makes repeated queries cheap: the engine
	// compresses once at construction and reuses it for every computation.
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(8))
	st := eng.Stats()
	fmt.Printf("edge concentration: m=%d → m̃=%d (%.1f%% compression, %d concentration nodes)\n\n",
		st.Edges, st.CompressedEdges, st.CompressionRatio, st.ConcentrationNodes)

	s, err := eng.AllPairs(ctx, simstar.MeasureGeometricMemo)
	if err != nil {
		panic(err)
	}

	// Pick the most collaborative author as the case study.
	q, best := 0, 0
	for a := 0; a < g.N(); a++ {
		if d := g.OutDeg(a); d > best {
			q, best = a, d
		}
	}
	fmt.Printf("query author %d: community %d, H-index %d, %d direct collaborators\n",
		q, net.Community[q], net.HIndex(q), g.OutDeg(q))

	// Exclude existing collaborators — recommendations should be new people.
	var exclude []int
	for _, c := range g.Out(q) {
		exclude = append(exclude, int(c))
	}
	recs := s.TopK(q, 8, exclude...)

	fmt.Println("\nrecommended new collaborators (not yet coauthors):")
	sameComm := 0
	for i, r := range recs {
		mark := ""
		if net.Community[r.Node] == net.Community[q] {
			mark = " [same community]"
			sameComm++
		}
		fmt.Printf("  %d. author %-4d score %.4f  H-index %-3d%s\n",
			i+1, r.Node, r.Score, net.HIndex(r.Node), mark)
	}
	fmt.Printf("\n%d/%d recommendations are in the query's community — SimRank*'s\n", sameComm, len(recs))
	fmt.Println("all-paths aggregation surfaces 2-hop and 3-hop colleagues that classic")
	fmt.Println("SimRank scores zero when the collaboration distances are odd.")
}
