// Citations: related-paper search on a synthetic arXiv-like corpus — the
// paper's motivating CitHepTh scenario. Generates a planted-topic citation
// DAG, answers "papers related to q" with four measures, and scores each
// against the planted ground truth, showing why aggregating all in-link
// paths (SimRank*) recovers topical relatedness that SimRank and RWR miss.
//
//	go run ./examples/citations
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rwr"
	"repro/internal/simrank"
)

func main() {
	corpus := dataset.TopicCitation(dataset.TopicCitationOptions{
		N: 500, Topics: 6, AvgOut: 8, Seed: 42,
	})
	g := corpus.G
	fmt.Printf("corpus: %d papers, %d citations, %d planted topics\n\n",
		g.N(), g.M(), corpus.NumTopics)

	// A mid-corpus paper as the query: enough older papers to cite and
	// enough newer papers citing it.
	q := 250
	fmt.Printf("query: paper %d (topic %d, %d citations received)\n\n",
		q, corpus.Dominant[q], corpus.CitationCount(q))

	opt := core.Options{C: 0.6, K: 8}
	results := map[string][]float64{
		"SimRank* (geometric)": core.SingleSourceGeometric(g, q, opt),
		"SimRank* (exponent.)": core.SingleSourceExponential(g, q, opt),
		"RWR":                  rwr.SingleSource(g, q, rwr.Options{C: 0.6, K: 8}),
	}
	// SimRank needs the all-pairs run (no cheap single-source form — one of
	// SimRank*'s practical advantages).
	sr := simrank.PSum(g, simrank.Options{C: 0.6, K: 8})
	srRow := make([]float64, g.N())
	copy(srRow, sr.Row(q))
	results["SimRank"] = srRow

	truth := make([]float64, g.N())
	for j := range truth {
		truth[j] = corpus.TrueSim(q, j)
	}
	truth[q] = 0

	for _, name := range []string{"SimRank* (geometric)", "SimRank* (exponent.)", "SimRank", "RWR"} {
		scores := results[name]
		scores[q] = 0
		top := core.TopK(scores, 5, q)
		sameTopic := 0
		for _, r := range top {
			if corpus.Dominant[r.Node] == corpus.Dominant[q] {
				sameTopic++
			}
		}
		rho := eval.SpearmanRho(scores, truth)
		fmt.Printf("%-22s Spearman-vs-truth %+.3f, top-5 same-topic %d/5:", name, rho, sameTopic)
		for _, r := range top {
			fmt.Printf("  %d(%.3f)", r.Node, r.Score)
		}
		fmt.Println()
	}

	fmt.Println("\nnote: SimRank scores many related papers exactly 0 (no equal-length")
	fmt.Println("common ancestor); RWR sees only papers the query can reach by citing.")
}
