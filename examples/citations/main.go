// Citations: related-paper search on a synthetic arXiv-like corpus — the
// paper's motivating CitHepTh scenario. Generates a planted-topic citation
// DAG, answers "papers related to q" with four registry measures through
// one engine, and scores each against the planted ground truth, showing why
// aggregating all in-link paths (SimRank*) recovers topical relatedness
// that SimRank and RWR miss.
//
//	go run ./examples/citations
package main

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/simstar"
)

func main() {
	corpus := dataset.TopicCitation(dataset.TopicCitationOptions{
		N: 500, Topics: 6, AvgOut: 8, Seed: 42,
	})
	g := corpus.G
	fmt.Printf("corpus: %d papers, %d citations, %d planted topics\n\n",
		g.N(), g.M(), corpus.NumTopics)

	// A mid-corpus paper as the query: enough older papers to cite and
	// enough newer papers citing it.
	q := 250
	fmt.Printf("query: paper %d (topic %d, %d citations received)\n\n",
		q, corpus.Dominant[q], corpus.CitationCount(q))

	// One engine serves every measure: the transition matrices are shared.
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(8))

	// Measures are registry names — swapping one is a string change, and a
	// serving system can expose the whole family behind one endpoint.
	contenders := []struct{ label, measure string }{
		{"SimRank* (geometric)", simstar.MeasureGeometric},
		{"SimRank* (exponent.)", simstar.MeasureExponential},
		{"SimRank", simstar.MeasureSimRank},
		{"RWR", simstar.MeasureRWR},
	}

	truth := make([]float64, g.N())
	for j := range truth {
		truth[j] = corpus.TrueSim(q, j)
	}
	truth[q] = 0

	for _, m := range contenders {
		scores, err := eng.SingleSource(ctx, m.measure, q)
		if err != nil {
			panic(err)
		}
		scores[q] = 0
		top := simstar.TopK(scores, 5, q)
		sameTopic := 0
		for _, r := range top {
			if corpus.Dominant[r.Node] == corpus.Dominant[q] {
				sameTopic++
			}
		}
		rho := eval.SpearmanRho(scores, truth)
		fmt.Printf("%-22s Spearman-vs-truth %+.3f, top-5 same-topic %d/5:", m.label, rho, sameTopic)
		for _, r := range top {
			fmt.Printf("  %d(%.3f)", r.Node, r.Score)
		}
		fmt.Println()
	}

	fmt.Println("\nnote: SimRank scores many related papers exactly 0 (no equal-length")
	fmt.Println("common ancestor); RWR sees only papers the query can reach by citing.")
}
