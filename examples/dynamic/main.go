// Dynamic graphs: the evolving-workload example. A citation graph does not
// hold still — papers appear, links are added, mistakes are retracted. This
// example streams edge mutations into a live Engine with ApplyEdits and
// shows the three properties the dyngraph subsystem guarantees:
//
//   - queries keep answering while edits stream in (each sees one epoch),
//
//   - each mutation batch refreshes the preprocessing incrementally, far
//     cheaper than rebuilding the engine from scratch,
//
//   - the refreshed engine's scores match a from-scratch build exactly.
//
// Run it with:
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/simstar"
)

func main() {
	// A synthetic citation DAG big enough that rebuild cost is visible.
	g := dataset.PrefAttachDAG(4000, 8, 1)
	ctx := context.Background()

	t0 := time.Now()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(6))
	buildTime := time.Since(t0)
	fmt.Printf("engine built: %d nodes, %d edges in %v (epoch %d)\n",
		g.N(), g.M(), buildTime.Round(time.Millisecond), eng.Epoch())

	query := 100
	before, err := eng.TopK(ctx, simstar.MeasureGeometric, query, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ntop-5 of node %d before churn: %v\n", query, before)

	// Stream ~1%-churn batches: new citations appear, a few are retracted.
	// Every batch materialises a new epoch; the transition matrices are
	// spliced incrementally, and the result cache versions itself out.
	var refreshTotal time.Duration
	var added [][2]int // edges inserted by earlier batches, retraction fodder
	batches := 10
	for b := 0; b < batches; b++ {
		var edits []simstar.Edit
		settled := len(added) // only retract edges from earlier batches
		for i := 0; i < 150; i++ {
			if i%5 == 0 && settled > 0 {
				settled--
				e := added[settled]
				added = append(added[:settled], added[settled+1:]...)
				edits = append(edits, simstar.DeleteEdge(e[0], e[1]))
				continue
			}
			u := (b*331 + i*17) % g.N()
			v := (b*739 + i*29) % g.N()
			edits = append(edits, simstar.InsertEdge(u, v))
			added = append(added, [2]int{u, v})
		}
		st, err := eng.ApplyEdits(edits...)
		if err != nil {
			panic(err)
		}
		refreshTotal += st.RefreshTime
		if b == 0 || b == batches-1 {
			fmt.Printf("batch %2d: epoch %d, +%d −%d edges, refreshed in %v\n",
				b, st.Epoch, st.Inserted, st.Removed, st.RefreshTime.Round(time.Microsecond))
		}
	}
	snap := eng.Snapshot()
	fmt.Printf("\nafter %d batches: epoch %d, %d nodes, %d edges\n",
		batches, snap.Epoch, snap.Graph.N(), snap.Graph.M())
	fmt.Printf("total incremental refresh: %v — vs one from-scratch build: %v\n",
		refreshTotal.Round(time.Microsecond), buildTime.Round(time.Millisecond))

	after, err := eng.TopK(ctx, simstar.MeasureGeometric, query, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("top-5 of node %d after churn:  %v\n", query, after)

	// The incremental engine answers exactly like a from-scratch engine on
	// the mutated graph — bitwise, for every measure.
	fresh := simstar.NewEngine(snap.Graph, simstar.WithC(0.6), simstar.WithK(6))
	a, err := eng.SingleSource(ctx, simstar.MeasureGeometric, query)
	if err != nil {
		panic(err)
	}
	b, err := fresh.SingleSource(ctx, simstar.MeasureGeometric, query)
	if err != nil {
		panic(err)
	}
	for i := range a {
		if a[i] != b[i] {
			panic("incremental and from-scratch scores diverge")
		}
	}
	fmt.Println("\nincremental scores are bitwise-identical to a from-scratch build ✓")
}
