// Batched multi-source queries: the serving-path example. A recommender
// that must rank "related papers" for every paper a user has open does not
// issue one query at a time — it hands the whole working set to
// Engine.BatchTopK, which serves cache hits first, stacks same-measure
// queries into blocked kernels, and fans the rest across a worker pool.
//
//	go run ./examples/batchqueries
package main

import (
	"context"
	"fmt"
	"time"

	"repro/simstar"
)

func main() {
	// A small co-citation web: two research threads sharing one classic.
	b := simstar.NewGraphBuilder()
	for _, e := range [][2]string{
		{"survey", "classicA"}, {"survey", "classicB"},
		{"followup1", "survey"}, {"followup2", "survey"},
		{"review", "followup1"}, {"review", "followup2"},
		{"preprint", "followup1"}, {"preprint", "classicA"},
		{"thesis", "review"}, {"thesis", "preprint"},
		{"classicB", "classicA"},
	} {
		b.AddEdgeLabeled(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}

	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(8))

	// The user's working set: rank related papers for all of it at once.
	// One query rides along under a different measure and tighter K to show
	// per-query overrides.
	var queries []simstar.Query
	for _, label := range []string{"followup1", "followup2", "review", "preprint"} {
		node, _ := g.NodeByLabel(label)
		queries = append(queries, simstar.Query{
			Measure: simstar.MeasureGeometric,
			Node:    node,
			K:       3,
		})
	}
	rwrNode, _ := g.NodeByLabel("thesis")
	queries = append(queries, simstar.Query{
		Measure: simstar.MeasureRWR,
		Node:    rwrNode,
		K:       3,
		Opts:    []simstar.Option{simstar.WithK(12)},
	})

	t0 := time.Now()
	results := eng.BatchTopK(ctx, queries)
	fmt.Printf("batch of %d ranked queries in %v (cold cache)\n\n", len(queries), time.Since(t0).Round(time.Microsecond))

	for i, res := range results {
		if res.Err != nil {
			fmt.Printf("  query %d failed: %v\n", i, res.Err)
			continue
		}
		fmt.Printf("  related to %-10s [%s]:", g.Label(queries[i].Node), queries[i].Measure)
		for _, r := range res.Top {
			fmt.Printf("  %s (%.4f)", g.Label(r.Node), r.Score)
		}
		fmt.Println()
	}

	// The same batch again: every vector now comes from the result cache.
	t0 = time.Now()
	results = eng.BatchTopK(ctx, queries)
	hits := 0
	for _, res := range results {
		if res.Cached {
			hits++
		}
	}
	fmt.Printf("\nrepeat batch in %v: %d/%d served from cache\n", time.Since(t0).Round(time.Microsecond), hits, len(results))
	st := eng.CacheStats()
	fmt.Printf("cache: %d/%d entries, %d hits, %d misses\n", st.Size, st.Capacity, st.Hits, st.Misses)
}
