// Package repro holds the top-level benchmark harness: one testing.B family
// per table/figure of the paper's evaluation (see DESIGN.md §3 for the
// experiment index). The cmd/experiments binary prints the paper-style
// tables; these benches expose the same computations to `go test -bench`
// with -benchmem for the Fig. 6(h) memory columns.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/biclique"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/prank"
	"repro/internal/rwr"
	"repro/internal/simrank"
)

// benchGraph builds the scaled dataset once per benchmark binary run.
func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	p, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	// Bench sizes are trimmed relative to cmd/experiments so the full
	// -bench=. sweep stays in CI budget.
	p.ScaledN /= 2
	return p.Build()
}

// ---- FIG1: the walk-through table ----------------------------------------

func BenchmarkFig1Table(b *testing.B) {
	g := dataset.Figure1()
	for i := 0; i < b.N; i++ {
		simrank.MatrixForm(g, simrank.Options{C: 0.8, K: 25})
		prank.MatrixForm(g, prank.Options{C: 0.8, K: 25})
		core.Geometric(g, core.Options{C: 0.8, K: 25})
		rwr.AllPairs(g, rwr.Options{C: 0.8, K: 25})
	}
}

// ---- FIG6a: semantic effectiveness ----------------------------------------

func benchmarkFig6aMeasure(b *testing.B, run func(g *graph.Graph)) {
	corpus := dataset.TopicCitation(dataset.TopicCitationOptions{N: 400, AvgOut: 12, Seed: 601})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(corpus.G)
	}
}

func BenchmarkFig6a_eSRstar(b *testing.B) {
	benchmarkFig6aMeasure(b, func(g *graph.Graph) { core.ExponentialMemo(g, core.Options{C: 0.6, K: 5}) })
}

func BenchmarkFig6a_gSRstar(b *testing.B) {
	benchmarkFig6aMeasure(b, func(g *graph.Graph) { core.GeometricMemo(g, core.Options{C: 0.6, K: 5}) })
}

func BenchmarkFig6a_SimRank(b *testing.B) {
	benchmarkFig6aMeasure(b, func(g *graph.Graph) { simrank.PSum(g, simrank.Options{C: 0.6, K: 5}) })
}

func BenchmarkFig6a_PRank(b *testing.B) {
	benchmarkFig6aMeasure(b, func(g *graph.Graph) { prank.AllPairs(g, prank.Options{C: 0.6, K: 5}) })
}

func BenchmarkFig6a_RWR(b *testing.B) {
	benchmarkFig6aMeasure(b, func(g *graph.Graph) { rwr.AllPairs(g, rwr.Options{C: 0.6, K: 5}) })
}

// ---- FIG6b/6c: pair analytics ---------------------------------------------

func BenchmarkFig6b_TopPairs(b *testing.B) {
	corpus := dataset.TopicCitation(dataset.TopicCitationOptions{N: 400, AvgOut: 12, Seed: 602})
	s := core.GeometricMemo(corpus.G, core.Options{C: 0.6, K: 5})
	n := corpus.G.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.TopPairs(n, s.At, n)
	}
}

func BenchmarkFig6c_DecileSimilarity(b *testing.B) {
	corpus := dataset.TopicCitation(dataset.TopicCitationOptions{N: 400, AvgOut: 12, Seed: 603})
	s := core.GeometricMemo(corpus.G, core.Options{C: 0.6, K: 5})
	n := corpus.G.N()
	role := make([]int, n)
	for i := range role {
		role[i] = corpus.G.InDeg(i)
	}
	dec := eval.Deciles(role)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.DecileSimilarity(n, s.At, dec, true)
		eval.DecileSimilarity(n, s.At, dec, false)
	}
}

// ---- FIG6d: zero-similarity analysis --------------------------------------

func BenchmarkFig6d_PathAnalysis(b *testing.B) {
	g := benchGraph(b, "CitHepTh-s")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths.Analyze(g, 5).Stats()
	}
}

// ---- FIG6e: the algorithm suite, one bench per competitor per dataset -----

func benchmarkAlgo(b *testing.B, ds string, run func(g *graph.Graph)) {
	g := benchGraph(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(g)
	}
}

func kGeo() int { return core.Options{C: 0.6, Eps: 0.001}.IterationsGeometric() }
func kExp() int { return core.Options{C: 0.6, Eps: 0.001}.IterationsExponential() }

func BenchmarkFig6e(b *testing.B) {
	for _, ds := range []string{"D05-s", "D08-s", "D11-s"} {
		b.Run(ds+"/memo-eSR*", func(b *testing.B) {
			benchmarkAlgo(b, ds, func(g *graph.Graph) { core.ExponentialMemo(g, core.Options{C: 0.6, K: kExp()}) })
		})
		b.Run(ds+"/memo-gSR*", func(b *testing.B) {
			benchmarkAlgo(b, ds, func(g *graph.Graph) { core.GeometricMemo(g, core.Options{C: 0.6, K: kGeo()}) })
		})
		b.Run(ds+"/iter-gSR*", func(b *testing.B) {
			benchmarkAlgo(b, ds, func(g *graph.Graph) { core.Geometric(g, core.Options{C: 0.6, K: kGeo()}) })
		})
		b.Run(ds+"/psum-SR", func(b *testing.B) {
			benchmarkAlgo(b, ds, func(g *graph.Graph) { simrank.PSum(g, simrank.Options{C: 0.6, K: kGeo()}) })
		})
	}
	// mtx-SR only on the smallest snapshot, as the paper ran it only where
	// the SVD cost allows.
	b.Run("D05-s/mtx-SR", func(b *testing.B) {
		benchmarkAlgo(b, "D05-s", func(g *graph.Graph) {
			if _, err := simrank.MtxSR(g, simrank.MtxOptions{C: 0.6, Rank: 15}); err != nil {
				b.Fatal(err)
			}
		})
	})
}

func BenchmarkFig6e_KSweep(b *testing.B) {
	for _, k := range []int{5, 10, 20} {
		k := k
		b.Run(fmt.Sprintf("WebGoogle-s/iter-gSR*/K=%d", k), func(b *testing.B) {
			benchmarkAlgo(b, "WebGoogle-s", func(g *graph.Graph) { core.Geometric(g, core.Options{C: 0.6, K: k}) })
		})
		b.Run(fmt.Sprintf("WebGoogle-s/psum-SR/K=%d", k), func(b *testing.B) {
			benchmarkAlgo(b, "WebGoogle-s", func(g *graph.Graph) { simrank.PSum(g, simrank.Options{C: 0.6, K: k}) })
		})
	}
}

// ---- FIG6f: the two memo phases -------------------------------------------

func BenchmarkFig6f_CompressBigraph(b *testing.B) {
	g := benchGraph(b, "WebGoogle-s")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		biclique.Compress(g, biclique.Options{})
	}
}

func BenchmarkFig6f_ShareSums(b *testing.B) {
	g := benchGraph(b, "WebGoogle-s")
	comp := biclique.Compress(g, biclique.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GeometricWithCompressed(g, comp, core.Options{C: 0.6, K: kGeo()})
	}
}

// ---- FIG6g: density sweep --------------------------------------------------

func BenchmarkFig6g(b *testing.B) {
	for _, d := range []int{10, 20, 40} {
		g := dataset.RMATDefault(9, d, int64(700+d))
		comp := biclique.Compress(g, biclique.Options{})
		b.Run(fmt.Sprintf("d=%d/memo-gSR*", d), func(b *testing.B) {
			b.ReportMetric(comp.CompressionRatio(), "compression%")
			for i := 0; i < b.N; i++ {
				core.GeometricWithCompressed(g, comp, core.Options{C: 0.6, K: kGeo()})
			}
		})
		b.Run(fmt.Sprintf("d=%d/psum-SR", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simrank.PSum(g, simrank.Options{C: 0.6, K: kGeo()})
			}
		})
	}
}

// ---- FIG6h: memory (read the -benchmem B/op column) ------------------------

func BenchmarkFig6h(b *testing.B) {
	algos := []struct {
		name string
		run  func(g *graph.Graph)
	}{
		{"memo-eSR*", func(g *graph.Graph) { core.ExponentialMemo(g, core.Options{C: 0.6, K: kExp()}) }},
		{"memo-gSR*", func(g *graph.Graph) { core.GeometricMemo(g, core.Options{C: 0.6, K: kGeo()}) }},
		{"iter-gSR*", func(g *graph.Graph) { core.Geometric(g, core.Options{C: 0.6, K: kGeo()}) }},
		{"psum-SR", func(g *graph.Graph) { simrank.PSum(g, simrank.Options{C: 0.6, K: kGeo()}) }},
		{"mtx-SR", func(g *graph.Graph) {
			if _, err := simrank.MtxSR(g, simrank.MtxOptions{C: 0.6, Rank: 15}); err != nil {
				panic(err)
			}
		}},
	}
	for _, a := range algos {
		b.Run("D05-s/"+a.name, func(b *testing.B) {
			benchmarkAlgo(b, "D05-s", a.run)
		})
	}
}

// ---- ABL: design-choice ablations ------------------------------------------

func BenchmarkAblation_LengthWeights(b *testing.B) {
	g := dataset.TopicCitation(dataset.TopicCitationOptions{N: 300, AvgOut: 8, Seed: 604}).G
	for _, w := range []core.LengthWeight{
		core.GeometricWeight(0.6), core.ExponentialWeight(0.6), core.HarmonicWeight(0.6),
	} {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SeriesWeighted(g, w, 8)
			}
		})
	}
}

func BenchmarkAblation_Miner(b *testing.B) {
	g := dataset.ErdosRenyi(400, 4000, 605)
	for _, mode := range []struct {
		name string
		opt  biclique.Options
	}{
		{"identical-only", biclique.Options{DisablePairMining: true}},
		{"full", biclique.Options{}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				biclique.Compress(g, mode.opt)
			}
		})
	}
}

// ---- Single-source query path (the O(Km) regime of Exp-1) ------------------

func BenchmarkSingleSource(b *testing.B) {
	g := benchGraph(b, "CitHepTh-s")
	b.Run("geometric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SingleSourceGeometric(g, i%g.N(), core.Options{C: 0.6, K: 5})
		}
	})
	b.Run("exponential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SingleSourceExponential(g, i%g.N(), core.Options{C: 0.6, K: 5})
		}
	})
	b.Run("rwr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rwr.SingleSource(g, i%g.N(), rwr.Options{C: 0.6, K: 5})
		}
	})
}
