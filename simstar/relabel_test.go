package simstar_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/simstar"
)

// relabelModes are the non-trivial layouts under test.
var relabelModes = map[string]simstar.RelabelMode{
	"degree": simstar.RelabelDegree,
	"rcm":    simstar.RelabelRCM,
}

// A relabelled engine must be observationally identical to the natural-order
// engine for every registered measure: same SingleSource scores (within
// float reassociation noise — the permuted sweeps add the same terms in a
// different order) and same TopK ranking, in external node ids, including on
// epochs produced by ApplyEdits.
func TestRelabeledEngineMatchesNaturalOrder(t *testing.T) {
	g := dataset.RMATDefault(6, 4, 2026) // 64 nodes, heavy-tailed
	ctx := context.Background()
	edits := []simstar.Edit{
		simstar.InsertEdge(3, 17), simstar.InsertEdge(63, 0),
		simstar.DeleteEdge(0, 1), simstar.InsertEdge(64, 5), // grows the graph
	}
	const tol = 1e-12

	for modeName, mode := range relabelModes {
		for _, name := range simstar.Names() {
			if name == simstar.MeasureMtxSimRank {
				// No fast path: mtx-SR takes the same natural-order fallback
				// the other baselines already cover here, at an SVD per call
				// — minutes of runtime for no extra relabeling coverage.
				continue
			}
			t.Run(modeName+"/"+name, func(t *testing.T) {
				plain := simstar.NewEngine(g, simstar.WithK(4))
				perm := simstar.NewEngine(g, simstar.WithK(4), simstar.WithRelabeling(mode))
				compareEngines(t, ctx, plain, perm, name, tol)

				// The refreshed epoch re-derives the permutation; scores must
				// still agree.
				if _, err := plain.ApplyEdits(edits...); err != nil {
					t.Fatal(err)
				}
				if _, err := perm.ApplyEdits(edits...); err != nil {
					t.Fatal(err)
				}
				if pe, pp := plain.Epoch(), perm.Epoch(); pe != pp {
					t.Fatalf("epochs diverged: %d vs %d", pe, pp)
				}
				compareEngines(t, ctx, plain, perm, name, tol)
			})
		}
	}
}

func compareEngines(t *testing.T, ctx context.Context, plain, perm *simstar.Engine, measure string, tol float64) {
	t.Helper()
	n := plain.Graph().N()
	for q := 0; q < n; q += 7 {
		want, err := plain.SingleSource(ctx, measure, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := perm.SingleSource(ctx, measure, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > tol {
				t.Fatalf("q=%d node %d: relabelled %g vs natural %g", q, i, got[i], want[i])
			}
		}
		wantTop, err := plain.TopK(ctx, measure, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		gotTop, err := perm.TopK(ctx, measure, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTop) != len(wantTop) {
			t.Fatalf("q=%d: TopK lengths %d vs %d", q, len(gotTop), len(wantTop))
		}
		for r := range wantTop {
			if math.Abs(gotTop[r].Score-wantTop[r].Score) > tol {
				t.Fatalf("q=%d rank %d: scores %g vs %g", q, r, gotTop[r].Score, wantTop[r].Score)
			}
			// Equal-score prefixes may legitimately reorder only if scores
			// tie; with the tolerance above a node mismatch means a real
			// translation bug unless the two scores coincide.
			if gotTop[r].Node != wantTop[r].Node &&
				math.Abs(gotTop[r].Score-wantTop[r].Score) > 0 {
				t.Fatalf("q=%d rank %d: node %d vs %d (scores %g vs %g)",
					q, r, gotTop[r].Node, wantTop[r].Node, gotTop[r].Score, wantTop[r].Score)
			}
		}
	}
}

// Batch queries must translate ids exactly like the single-source path, on
// both the blocked exact kernels and the sieved approximate ones.
func TestRelabeledBatchMatchesSingleSource(t *testing.T) {
	g := dataset.RMATDefault(6, 4, 9)
	ctx := context.Background()
	for _, opts := range [][]simstar.Option{
		{simstar.WithK(4), simstar.WithRelabeling(simstar.RelabelRCM)},
		{simstar.WithK(4), simstar.WithRelabeling(simstar.RelabelRCM), simstar.WithTolerance(1e-4)},
	} {
		eng := simstar.NewEngine(g, opts...)
		plain := simstar.NewEngine(g, opts[:len(opts)-0]...) // same opts; separate caches
		var queries []simstar.Query
		for q := 0; q < g.N(); q += 5 {
			queries = append(queries,
				simstar.Query{Measure: simstar.MeasureGeometric, Node: q},
				simstar.Query{Measure: simstar.MeasureRWR, Node: q},
			)
		}
		results := eng.MultiSource(ctx, queries)
		for i, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			want, err := plain.SingleSource(ctx, queries[i].Measure, queries[i].Node)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if r.Scores[j] != want[j] {
					t.Fatalf("query %d node %d: batch %g vs single %g", i, j, r.Scores[j], want[j])
				}
			}
		}
	}
}

// SingleSourceInto must agree exactly with SingleSource and reuse the
// caller's buffer.
func TestSingleSourceIntoMatchesSingleSource(t *testing.T) {
	g := dataset.RMATDefault(6, 4, 11)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(4), simstar.WithRelabeling(simstar.RelabelDegree))
	buf := make([]float64, 0, g.N())
	for _, measure := range []string{
		simstar.MeasureGeometric, simstar.MeasureExponential, simstar.MeasureRWR,
		simstar.MeasureSimRank, // no fast path: exercises the fallback copy
	} {
		for q := 0; q < g.N(); q += 9 {
			want, err := eng.SingleSource(ctx, measure, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.SingleSourceInto(ctx, measure, q, buf)
			if err != nil {
				t.Fatal(err)
			}
			if cap(buf) >= g.N() && &got[0] != &buf[:1][0] {
				t.Fatalf("SingleSourceInto did not reuse the caller's buffer")
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s q=%d node %d: Into %g vs SingleSource %g", measure, q, i, got[i], want[i])
				}
			}
		}
	}
	if _, err := eng.SingleSourceInto(ctx, simstar.MeasureGeometric, -1, buf); err == nil {
		t.Fatal("out-of-range query not rejected")
	}
}

// The exact fast-path serving loop must be allocation-free once warmed:
// pooled kernel workspaces, caller-owned result buffer, no result cache.
func TestSingleSourceIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; alloc counts are not meaningful")
	}
	g := dataset.RMATDefault(9, 4, 13) // 512 nodes
	ctx := context.Background()
	for name, opts := range map[string][]simstar.Option{
		"natural": {simstar.WithCacheSize(-1)},
		"rcm":     {simstar.WithCacheSize(-1), simstar.WithRelabeling(simstar.RelabelRCM)},
	} {
		t.Run(name, func(t *testing.T) {
			eng := simstar.NewEngine(g, opts...)
			buf := make([]float64, g.N())
			for _, measure := range []string{simstar.MeasureGeometric, simstar.MeasureExponential, simstar.MeasureRWR} {
				// Warm the workspace pool before counting.
				if _, err := eng.SingleSourceInto(ctx, measure, 0, buf); err != nil {
					t.Fatal(err)
				}
				q := 0
				allocs := testing.AllocsPerRun(50, func() {
					var err error
					if _, err = eng.SingleSourceInto(ctx, measure, q%g.N(), buf); err != nil {
						t.Fatal(err)
					}
					q++
				})
				// A GC between runs can empty the sync.Pool and force a
				// one-off re-grow; anything at or above one alloc per run is
				// a real leak in the steady-state path.
				if allocs >= 1 {
					t.Fatalf("%s: %v allocs/op on the pooled path", measure, allocs)
				}
			}
		})
	}
}
