package simstar

import (
	"context"
	"fmt"

	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/prank"
	"repro/internal/rwr"
	"repro/internal/simrank"
	"repro/internal/sparsesim"
)

// Measure is a node-pair similarity measure. Implementations answer
// all-pairs and single-source queries under a context: cancellation and
// deadlines are checked between iterations, so a long run aborts promptly
// with ctx.Err().
//
// SingleSource(ctx, g, q) always equals row q of AllPairs(ctx, g) — the
// conformance tests assert this for every registered measure. Measures
// without a cheaper native single-source form derive the row from an
// all-pairs run.
type Measure interface {
	// Name returns the name the measure answers to in the registry.
	Name() string
	// AllPairs computes the full n×n similarity matrix over g.
	AllPairs(ctx context.Context, g *Graph) (*Scores, error)
	// SingleSource computes the scores of query node q against every node
	// of g — row q of AllPairs, usually at far lower cost.
	SingleSource(ctx context.Context, g *Graph, q int) ([]float64, error)
}

// Canonical names of the built-in measures, as registered. Lookup also
// accepts the paper's algorithm names as aliases (iter-gsr*, memo-gsr*,
// esr*, memo-esr*, psum-sr).
const (
	MeasureGeometric       = "gsimrank*"        // iterative geometric SimRank* (iter-gSR*)
	MeasureGeometricMemo   = "memo-gsimrank*"   // geometric through edge concentration (memo-gSR*)
	MeasureExponential     = "esimrank*"        // exponential SimRank* (eSR*)
	MeasureExponentialMemo = "memo-esimrank*"   // exponential through edge concentration (memo-eSR*)
	MeasureSimRank         = "simrank"          // classic SimRank, partial-sums form (psum-SR)
	MeasureSimRankMatrix   = "simrank-matrix"   // SimRank, (1−C)-normalised matrix form
	MeasurePRank           = "prank"            // P-Rank, diagonal pinned to 1
	MeasurePRankMatrix     = "prank-matrix"     // P-Rank, (1−C)-normalised convention
	MeasureRWR             = "rwr"              // random walk with restart
	MeasureSparse          = "sparse-gsimrank*" // threshold-sieved sparse geometric SimRank*
	MeasureCoCitation      = "cocitation"       // co-citation counts (non-iterative baseline)
)

// measure adapts one family's solver functions to the Measure interface.
type measure struct {
	name string
	cfg  config
	// allPairs is required; single may be nil, in which case SingleSource
	// falls back to extracting row q from a full all-pairs run.
	allPairs func(ctx context.Context, g *Graph, cfg config) (*Scores, error)
	single   func(ctx context.Context, g *Graph, q int, cfg config) ([]float64, error)
}

func (m *measure) Name() string { return m.name }

func (m *measure) AllPairs(ctx context.Context, g *Graph) (*Scores, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.allPairs(ctx, g, m.cfg)
}

func (m *measure) SingleSource(ctx context.Context, g *Graph, q int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q < 0 || q >= g.N() {
		return nil, fmt.Errorf("simstar: query node %d out of range [0, %d)", q, g.N())
	}
	if m.single != nil {
		return m.single(ctx, g, q, m.cfg)
	}
	s, err := m.allPairs(ctx, g, m.cfg)
	if err != nil {
		return nil, err
	}
	return s.Row(q), nil
}

// factoryFor closes a measure template over the options given at Lookup.
func factoryFor(name string,
	allPairs func(ctx context.Context, g *Graph, cfg config) (*Scores, error),
	single func(ctx context.Context, g *Graph, q int, cfg config) ([]float64, error)) Factory {
	return func(opts ...Option) Measure {
		return &measure{name: name, cfg: buildConfig(opts), allPairs: allPairs, single: single}
	}
}

func init() {
	registerBuiltin(MeasureGeometric, factoryFor(MeasureGeometric,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			m, err := core.GeometricCtx(ctx, g, cfg.coreOptions())
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		},
		func(ctx context.Context, g *Graph, q int, cfg config) ([]float64, error) {
			return core.SingleSourceGeometricCtx(ctx, g, q, cfg.coreOptions())
		}))

	registerBuiltin(MeasureGeometricMemo, factoryFor(MeasureGeometricMemo,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			opt := cfg.coreOptions()
			m, err := core.GeometricFromCompressed(ctx, compress(g, cfg), opt)
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		},
		// Single-source never materialises the matrix, so it does not use
		// the compression; it still matches row q of the memo run exactly.
		func(ctx context.Context, g *Graph, q int, cfg config) ([]float64, error) {
			return core.SingleSourceGeometricCtx(ctx, g, q, cfg.coreOptions())
		}))

	registerBuiltin(MeasureExponential, factoryFor(MeasureExponential,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			m, err := core.ExponentialCtx(ctx, g, cfg.coreOptions())
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		},
		func(ctx context.Context, g *Graph, q int, cfg config) ([]float64, error) {
			return core.SingleSourceExponentialCtx(ctx, g, q, cfg.coreOptions())
		}))

	registerBuiltin(MeasureExponentialMemo, factoryFor(MeasureExponentialMemo,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			opt := cfg.coreOptions()
			m, err := core.ExponentialFromCompressed(ctx, compress(g, cfg), opt)
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		},
		func(ctx context.Context, g *Graph, q int, cfg config) ([]float64, error) {
			return core.SingleSourceExponentialCtx(ctx, g, q, cfg.coreOptions())
		}))

	registerBuiltin(MeasureSimRank, factoryFor(MeasureSimRank,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			m, err := simrank.PSumCtx(ctx, g, cfg.simrankOptions())
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		}, nil))

	registerBuiltin(MeasureSimRankMatrix, factoryFor(MeasureSimRankMatrix,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			m, err := simrank.MatrixFormCtx(ctx, g, cfg.simrankOptions())
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		}, nil))

	registerBuiltin(MeasurePRank, factoryFor(MeasurePRank,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			m, err := prank.AllPairsCtx(ctx, g, cfg.prankOptions())
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		}, nil))

	registerBuiltin(MeasurePRankMatrix, factoryFor(MeasurePRankMatrix,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			m, err := prank.MatrixFormCtx(ctx, g, cfg.prankOptions())
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		}, nil))

	registerBuiltin(MeasureRWR, factoryFor(MeasureRWR,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			m, err := rwr.AllPairsCtx(ctx, g, cfg.rwrOptions())
			if err != nil {
				return nil, err
			}
			return denseScores(m), nil
		},
		func(ctx context.Context, g *Graph, q int, cfg config) ([]float64, error) {
			return rwr.SingleSourceCtx(ctx, g, q, cfg.rwrOptions())
		}))

	registerBuiltin(MeasureSparse, factoryFor(MeasureSparse,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			s, err := sparsesim.GeometricCtx(ctx, g, cfg.sparseOptions())
			if err != nil {
				return nil, err
			}
			return sparseScores(s), nil
		}, nil))

	registerBuiltin(MeasureCoCitation, factoryFor(MeasureCoCitation,
		func(ctx context.Context, g *Graph, cfg config) (*Scores, error) {
			// Non-iterative: the entry check in AllPairs is the only
			// cancellation point.
			return denseScores(classic.CoCitation(g)), nil
		}, nil))

	// The paper's algorithm names.
	RegisterAlias("iter-gsr*", MeasureGeometric)
	RegisterAlias("gsr*", MeasureGeometric)
	RegisterAlias("memo-gsr*", MeasureGeometricMemo)
	RegisterAlias("esr*", MeasureExponential)
	RegisterAlias("memo-esr*", MeasureExponentialMemo)
	RegisterAlias("psum-sr", MeasureSimRank)
	RegisterAlias("ppr", MeasureRWR)
}
