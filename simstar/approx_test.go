package simstar_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/simstar"
)

// approxTestGraph builds the fixed random graph the certified-approximation
// tests run on, structured enough (hubs, chains, a few sinks) to make the
// sieve actually drop mass. The all-measure conformance loops use a small n:
// measures without a native single-source path pay a full AllPairs per query
// node, and mtx-simrank's SVD makes that expensive beyond a few dozen nodes.
func approxTestGraph(t testing.TB, n int) *simstar.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(271))
	edges := make([][2]int, 0, 3*n)
	for i := 0; i < 3*n; i++ {
		edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return simstar.GraphFromEdges(n, edges)
}

// The acceptance contract of the approximate subsystem: for every
// registered measure and every tolerance, the certified bound holds
// element-wise against the exact engine — |approx − exact| <= MaxError <=
// eps. Measures without a sieved path must come back exact with a zero
// certificate, which satisfies the same inequality.
func TestCertifiedApproxConformance(t *testing.T) {
	g := approxTestGraph(t, 20)
	ctx := context.Background()
	exact := simstar.NewEngine(g, simstar.WithK(5))
	queries := []int{0, 7, 19}
	for _, name := range simstar.Names() {
		for _, eps := range []float64{1e-3, 1e-5} {
			approx := simstar.NewEngine(g, simstar.WithK(5), simstar.WithTolerance(eps))
			for _, q := range queries {
				want, err := exact.SingleSource(ctx, name, q)
				if err != nil {
					t.Fatalf("%s eps=%g q=%d exact: %v", name, eps, q, err)
				}
				got, maxErr, err := approx.SingleSourceCertified(ctx, name, q)
				if err != nil {
					t.Fatalf("%s eps=%g q=%d approx: %v", name, eps, q, err)
				}
				if maxErr > eps {
					t.Fatalf("%s eps=%g q=%d: MaxError %g exceeds tolerance", name, eps, q, maxErr)
				}
				for i := range want {
					if diff := math.Abs(got[i] - want[i]); diff > maxErr {
						t.Fatalf("%s eps=%g q=%d i=%d: |approx−exact| = %g exceeds certificate %g",
							name, eps, q, i, diff, maxErr)
					}
				}
			}
		}
	}
}

// Tolerance zero (the default) and tolerances below MinTolerance must stay
// bitwise-identical to the exact kernels — the approximate machinery must
// be completely out of the loop, not merely close.
func TestToleranceZeroIsBitwiseExact(t *testing.T) {
	g := approxTestGraph(t, 20)
	ctx := context.Background()
	base := simstar.NewEngine(g, simstar.WithK(5))
	for _, tol := range []float64{0, simstar.MinTolerance / 2} {
		eng := simstar.NewEngine(g, simstar.WithK(5), simstar.WithTolerance(tol))
		for _, name := range simstar.Names() {
			for _, q := range []int{0, 19} {
				want, err := base.SingleSource(ctx, name, q)
				if err != nil {
					t.Fatal(err)
				}
				got, maxErr, err := eng.SingleSourceCertified(ctx, name, q)
				if err != nil {
					t.Fatal(err)
				}
				if maxErr != 0 {
					t.Fatalf("%s tol=%g q=%d: exact path reported MaxError %g", name, tol, q, maxErr)
				}
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s tol=%g q=%d i=%d: %v not bitwise-equal to exact %v",
							name, tol, q, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// The result cache must never satisfy a request from an entry computed at a
// different tolerance — except that exact entries (certificate 0) satisfy
// every tolerance.
func TestToleranceCacheKeySemantics(t *testing.T) {
	g := approxTestGraph(t, 60)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	loose := eng.With(simstar.WithTolerance(1e-3))
	tight := eng.With(simstar.WithTolerance(1e-5))

	s1, e1, err := loose.SingleSourceCertified(ctx, simstar.MeasureGeometric, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits := eng.CacheStats().Hits
	// A tighter request must not be served by the looser cached entry.
	_, e2, err := tight.SingleSourceCertified(ctx, simstar.MeasureGeometric, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheStats().Hits; got != hits {
		t.Fatalf("tighter request hit the cache (hits %d → %d)", hits, got)
	}
	if e2 > 1e-5 {
		t.Fatalf("tight certificate %g exceeds 1e-5", e2)
	}
	// The identical tolerance is a hit, re-serving the original certificate
	// and scores.
	hits = eng.CacheStats().Hits
	s3, e3, err := loose.SingleSourceCertified(ctx, simstar.MeasureGeometric, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheStats().Hits; got != hits+1 {
		t.Fatalf("identical tolerance missed the cache (hits %d → %d)", hits, got)
	}
	if e3 != e1 {
		t.Fatalf("cache hit changed the certificate: %g != %g", e3, e1)
	}
	for i := range s1 {
		if math.Float64bits(s3[i]) != math.Float64bits(s1[i]) {
			t.Fatalf("cache hit changed scores at %d", i)
		}
	}

	// Exact entries are universal donors: an approximate request is served
	// from a cached exact result with a zero certificate.
	eng2 := simstar.NewEngine(g, simstar.WithK(5))
	want, err := eng2.SingleSource(ctx, simstar.MeasureRWR, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := eng2.With(simstar.WithTolerance(1e-3)).MultiSource(ctx, []simstar.Query{
		{Measure: simstar.MeasureRWR, Node: 7},
	})[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Cached {
		t.Fatal("approximate request was not served from the exact donor entry")
	}
	if res.MaxError != 0 {
		t.Fatalf("donor-served result carries certificate %g, want 0", res.MaxError)
	}
	for i := range want {
		if math.Float64bits(res.Scores[i]) != math.Float64bits(want[i]) {
			t.Fatalf("donor-served scores differ at %d", i)
		}
	}
}

// Batch queries under a tolerance go through the sieved multi-source
// kernels; every result must carry a certificate consistent with the exact
// engine, and per-query overrides must control the tolerance query by
// query.
func TestBatchCertifiedApprox(t *testing.T) {
	g := approxTestGraph(t, 60)
	ctx := context.Background()
	exact := simstar.NewEngine(g, simstar.WithK(5))
	approx := simstar.NewEngine(g, simstar.WithK(5), simstar.WithTolerance(1e-4))

	queries := []simstar.Query{
		{Measure: simstar.MeasureGeometric, Node: 1},
		{Measure: simstar.MeasureGeometric, Node: 2},
		{Measure: simstar.MeasureGeometric, Node: 1}, // duplicate
		{Measure: simstar.MeasureExponential, Node: 5},
		{Measure: simstar.MeasureRWR, Node: 9},
		{Measure: simstar.MeasurePRank, Node: 4}, // no sieved path: exact
	}
	results := approx.MultiSource(ctx, queries)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		if res.MaxError > 1e-4 {
			t.Fatalf("query %d: MaxError %g exceeds tolerance", i, res.MaxError)
		}
		want, err := exact.SingleSource(ctx, queries[i].Measure, queries[i].Node)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if diff := math.Abs(res.Scores[j] - want[j]); diff > res.MaxError {
				t.Fatalf("query %d j=%d: |approx−exact| = %g exceeds certificate %g", i, j, diff, res.MaxError)
			}
		}
	}
	if results[5].MaxError != 0 {
		t.Fatalf("P-Rank (no sieved path) reported MaxError %g, want 0", results[5].MaxError)
	}
	// Duplicates inside one batch share one computation and one certificate.
	if results[0].MaxError != results[2].MaxError {
		t.Fatalf("duplicate queries disagree on MaxError: %g vs %g", results[0].MaxError, results[2].MaxError)
	}

	// A per-query override turns approximation on for that query alone.
	over := exact.MultiSource(ctx, []simstar.Query{
		{Measure: simstar.MeasureGeometric, Node: 11},
		{Measure: simstar.MeasureGeometric, Node: 12, Opts: []simstar.Option{simstar.WithTolerance(1e-3)}},
	})
	if over[0].Err != nil || over[1].Err != nil {
		t.Fatalf("override batch errors: %v %v", over[0].Err, over[1].Err)
	}
	if over[0].MaxError != 0 {
		t.Fatalf("exact query in override batch has MaxError %g", over[0].MaxError)
	}
	if over[1].MaxError <= 0 || over[1].MaxError > 1e-3 {
		t.Fatalf("overridden query MaxError %g outside (0, 1e-3]", over[1].MaxError)
	}

	// BatchTopK threads the certificate alongside the ranking.
	top := approx.BatchTopK(ctx, []simstar.Query{{Measure: simstar.MeasureGeometric, Node: 1, K: 5}})[0]
	if top.Err != nil {
		t.Fatal(top.Err)
	}
	if len(top.Top) != 5 {
		t.Fatalf("topk returned %d entries", len(top.Top))
	}
	if top.MaxError <= 0 || top.MaxError > 1e-4 {
		t.Fatalf("topk MaxError %g outside (0, 1e-4]", top.MaxError)
	}
}
