package simstar

import (
	"repro/internal/dense"
	"repro/internal/sparsesim"
)

// Scores is an all-pairs similarity result. Depending on the measure it
// wraps either a dense n×n matrix or the sparse threshold-sieved rows of
// the large-graph solver; the accessors hide the difference.
type Scores struct {
	n      int
	dense  *dense.Matrix
	sparse *sparsesim.Scores
}

func denseScores(m *dense.Matrix) *Scores      { return &Scores{n: m.Rows, dense: m} }
func sparseScores(s *sparsesim.Scores) *Scores { return &Scores{n: s.N, sparse: s} }

// ScoresFromRows builds a dense Scores from a square slice of rows, for
// Measure implementations outside this package. The rows are copied.
func ScoresFromRows(rows [][]float64) *Scores {
	return denseScores(dense.FromRows(rows))
}

// N returns the number of nodes scored.
func (s *Scores) N() int { return s.n }

// At returns the similarity of (i, j); 0 if the entry was sieved out.
func (s *Scores) At(i, j int) float64 {
	if s.dense != nil {
		return s.dense.At(i, j)
	}
	return s.sparse.At(i, j)
}

// Row returns the scores of node i against every node as a fresh dense
// slice, safe for the caller to modify.
func (s *Scores) Row(i int) []float64 {
	out := make([]float64, s.n)
	if s.dense != nil {
		copy(out, s.dense.Row(i))
		return out
	}
	cols, vals := s.sparse.Row(i)
	for k, c := range cols {
		out[c] = vals[k]
	}
	return out
}

// NNZ returns the number of non-zero entries stored.
func (s *Scores) NNZ() int {
	if s.dense != nil {
		nz := 0
		for _, v := range s.dense.Data {
			if v != 0 {
				nz++
			}
		}
		return nz
	}
	return s.sparse.NNZ()
}

// TopK returns the k highest-scoring nodes of row q, excluding q itself and
// any nodes in exclude, ties broken by node id.
func (s *Scores) TopK(q, k int, exclude ...int) []Ranked {
	return TopK(s.Row(q), k, append([]int{q}, exclude...)...)
}
