package simstar_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/simstar"
)

// sortTopK is the O(n log n) reference the heap selection replaced.
func sortTopK(scores []float64, k int, exclude ...int) []simstar.Ranked {
	skip := make(map[int]bool)
	for _, e := range exclude {
		skip[e] = true
	}
	all := make([]simstar.Ranked, 0, len(scores))
	for i, s := range scores {
		if !skip[i] {
			all = append(all, simstar.Ranked{Node: i, Score: s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestTopKMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		scores := make([]float64, n)
		for i := range scores {
			// Coarse buckets force plenty of score ties to exercise the
			// node-id tie-break.
			scores[i] = float64(rng.Intn(5)) / 4
		}
		k := rng.Intn(n + 3)
		var exclude []int
		for e := 0; e < rng.Intn(3); e++ {
			exclude = append(exclude, rng.Intn(n))
		}
		got := simstar.TopK(scores, k, exclude...)
		want := sortTopK(scores, k, exclude...)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: [%d] = %+v, want %+v (n=%d k=%d)", trial, i, got[i], want[i], n, k)
			}
		}
	}
}

// The tie-breaking order is part of the public contract, not an
// implementation accident: equal scores rank by ascending node id, both in
// which candidates survive the cut and in the order they are returned.
// Batched, cached and approximate paths all lean on this determinism.
func TestTopKTieBreakIsAscendingNodeID(t *testing.T) {
	// All-equal scores: the top k must be exactly the k smallest node ids,
	// ascending.
	scores := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	got := simstar.TopK(scores, 4)
	for i, r := range got {
		if r.Node != i {
			t.Fatalf("all-ties: position %d holds node %d, want %d (got %+v)", i, r.Node, i, got)
		}
	}
	// Mixed: a tie group straddling the cut keeps its lowest ids, and ties
	// inside the result stay id-ordered between the distinct scores.
	scores = []float64{0.3, 0.9, 0.3, 0.9, 0.3, 0.1}
	got = simstar.TopK(scores, 4)
	want := []simstar.Ranked{{Node: 1, Score: 0.9}, {Node: 3, Score: 0.9}, {Node: 0, Score: 0.3}, {Node: 2, Score: 0.3}}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The tie-break also decides who survives against the heap's weakest
	// entry: with k=1, the lowest id of the best tie group must win.
	if got := simstar.TopK([]float64{0.7, 0.7, 0.7}, 1); len(got) != 1 || got[0].Node != 0 {
		t.Fatalf("k=1 tie: got %+v, want node 0", got)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if got := simstar.TopK(nil, 5); len(got) != 0 {
		t.Fatalf("empty scores: got %d entries", len(got))
	}
	if got := simstar.TopK([]float64{1, 2, 3}, 0); got != nil {
		t.Fatalf("k=0: got %v", got)
	}
	if got := simstar.TopK([]float64{1, 2, 3}, -1); got != nil {
		t.Fatalf("k<0: got %v", got)
	}
	// k larger than candidate count returns every candidate, ordered.
	got := simstar.TopK([]float64{0.1, 0.9, 0.5}, 10, 1)
	if len(got) != 2 || got[0].Node != 2 || got[1].Node != 0 {
		t.Fatalf("k>n: got %+v", got)
	}
	// k exactly the candidate count behaves like k>n.
	got = simstar.TopK([]float64{0.1, 0.9, 0.5}, 2, 1)
	if len(got) != 2 || got[0].Node != 2 || got[1].Node != 0 {
		t.Fatalf("k==candidates: got %+v", got)
	}
	// An absurd k is clamped before allocation: this must complete without
	// attempting a multi-terabyte heap (the documented "give me everything"
	// contract).
	got = simstar.TopK([]float64{0.3, 0.7}, 1<<40)
	if len(got) != 2 || got[0].Node != 1 {
		t.Fatalf("huge k: got %+v", got)
	}
	// Excluding every node leaves nothing, whatever k says.
	if got := simstar.TopK([]float64{1, 2}, 5, 0, 1); len(got) != 0 {
		t.Fatalf("all excluded: got %+v", got)
	}
}
