package simstar_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/simstar"
)

// First query computes (a miss), the identical repeat is served from the
// cache (a hit) — and byte-for-byte equal.
func TestCacheHitMiss(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	first, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Misses != 1 || st.Hits != 0 || st.Size != 1 {
		t.Fatalf("after first query: %+v, want 1 miss, 0 hits, size 1", st)
	}
	second, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	st = eng.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after repeat: %+v, want 1 hit, 1 miss", st)
	}
	for j := range first {
		if first[j] != second[j] {
			t.Fatalf("cached result differs at %d: %g vs %g", j, first[j], second[j])
		}
	}
	// A different node, measure, or parameter set is a different key.
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SingleSource(ctx, simstar.MeasureRWR, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.With(simstar.WithK(2)).SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	st = eng.CacheStats()
	if st.Hits != 1 || st.Misses != 4 || st.Size != 4 {
		t.Fatalf("after distinct keys: %+v, want 1 hit, 4 misses, size 4", st)
	}
}

// Mutating a returned slice must not poison the cache.
func TestCacheReturnsPrivateCopies(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	a, _ := eng.SingleSource(ctx, simstar.MeasureGeometric, 0)
	want := a[0]
	a[0] = -1
	b, _ := eng.SingleSource(ctx, simstar.MeasureGeometric, 0)
	if b[0] != want {
		t.Fatalf("cache served a mutated vector: got %g, want %g", b[0], want)
	}
	b[0] = -2
	c, _ := eng.SingleSource(ctx, simstar.MeasureGeometric, 0)
	if c[0] != want {
		t.Fatalf("cache hit returned a shared slice: got %g, want %g", c[0], want)
	}
}

// The cache is size-bounded: old entries are evicted LRU-first.
func TestCacheEviction(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5), simstar.WithCacheSize(2))
	for q := 0; q < 3; q++ {
		if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, q); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.CacheStats()
	if st.Size != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts into capacity 2: %+v", st)
	}
	// Node 0 was evicted; nodes 1 and 2 are resident.
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheStats().Hits; got != 1 {
		t.Fatalf("resident entry was not a hit: %+v", eng.CacheStats())
	}
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0); err != nil {
		t.Fatal(err)
	}
	st = eng.CacheStats()
	if st.Hits != 1 || st.Evictions != 2 {
		t.Fatalf("evicted entry was served as a hit: %+v", st)
	}
}

// WithCacheSize(-1) disables the cache entirely.
func TestCacheDisabled(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5), simstar.WithCacheSize(-1))
	for i := 0; i < 3; i++ {
		if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.CacheStats(); st != (simstar.CacheStats{}) {
		t.Fatalf("disabled cache reports activity: %+v", st)
	}
}

// Engines derived with With share the cache, so a With(K=2) answer warms the
// cache for any other engine view asking the same question.
func TestCacheSharedAcrossWith(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	if _, err := eng.With(simstar.WithK(2)).SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.With(simstar.WithK(2)).SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("With-derived engines do not share the cache: %+v", st)
	}
}

// Worker count and cache capacity are serving knobs: they must not split the
// cache key space.
func TestCacheKeyIgnoresServingKnobs(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.With(simstar.WithWorkers(3)).SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits != 1 {
		t.Fatalf("WithWorkers changed the cache key: %+v", st)
	}
}

// namedConstant is constantMeasure under a registrable name, so the
// registry conformance sweep (which asserts Name() matches the key) stays
// happy with test registrations from this file.
type namedConstant struct {
	constantMeasure
	name string
}

func (m namedConstant) Name() string { return m.name }

// Re-registering a measure name must invalidate cached results for it: the
// registry generation is part of the key.
func TestCacheInvalidatedByRegistryOverride(t *testing.T) {
	const name = "test-cache-gen"
	simstar.Register(name, func(opts ...simstar.Option) simstar.Measure {
		return namedConstant{name: name}
	})
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g)
	if _, err := eng.SingleSource(ctx, name, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SingleSource(ctx, name, 0); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits != 1 {
		t.Fatalf("warm-up did not hit: %+v", st)
	}
	simstar.Register(name, func(opts ...simstar.Option) simstar.Measure {
		return namedConstant{name: name}
	})
	if _, err := eng.SingleSource(ctx, name, 0); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("re-registration served a stale cache entry: %+v", st)
	}
}

// PurgeCache empties the cache and resets the counters.
// Counter coherence under churn: with queries, PurgeCache and ApplyEdits
// (epoch hot-swap) racing, the shared Observer's cache counters must be
// monotone — every lookup counted exactly once, never lost to a purge or a
// swap, never double-counted — while CacheStats may reset (purge zeroes it
// by documented contract) but must always read a coherent snapshot. Run
// under -race in CI.
func TestCacheCountersUnderPurgeChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 40
	edges := randomEdges(rng, n, 200)
	set := make(map[[2]int]bool)
	var dedup [][2]int
	for _, e := range edges {
		if !set[e] {
			set[e] = true
			dedup = append(dedup, e)
		}
	}
	o := simstar.NewObserver(nil)
	eng := simstar.NewEngine(simstar.GraphFromEdges(n, dedup),
		simstar.WithK(3), simstar.WithObserver(o))
	// The registry hands back the very counters the engine increments.
	hits := o.Registry().Counter("simstar_cache_hits_total",
		"Single-source result-cache hits, exact-donor hits included.")
	misses := o.Registry().Counter("simstar_cache_misses_total",
		"Single-source result-cache misses.")

	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Monitor: observer counters never go backwards, and each snapshot of
	// CacheStats is internally coherent.
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		var lastHits, lastMisses uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			h, m := hits.Value(), misses.Value()
			if h < lastHits || m < lastMisses {
				t.Errorf("observer counters went backwards: hits %d->%d misses %d->%d",
					lastHits, h, lastMisses, m)
				return
			}
			lastHits, lastMisses = h, m
			st := eng.CacheStats()
			if st.Size < 0 || (st.Capacity > 0 && st.Size > st.Capacity) {
				t.Errorf("incoherent CacheStats snapshot: %+v", st)
				return
			}
		}
	}()

	// Queriers: a mix guaranteed to produce both hits and misses.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				m := simstar.MeasureGeometric
				if i%2 == 1 {
					m = simstar.MeasureRWR
				}
				if _, err := eng.SingleSource(ctx, m, rng.Intn(8)); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(7 + r))
	}

	// Purger and editor: churn the cache and hot-swap epochs underneath.
	wg.Add(1)
	go func() {
		defer wg.Done()
		editRng := rand.New(rand.NewSource(77))
		for i := 0; i < 30; i++ {
			eng.PurgeCache()
			if i%5 == 4 {
				if _, err := eng.ApplyEdits(churn(editRng, n, set, 4)...); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Wait for workers, then stop the monitor.
	wg.Wait()
	close(stop)
	monitor.Wait()

	// Every lookup of the run is in the observer exactly once; the cache's
	// own stats cover at most the lookups since the last purge.
	h, m := hits.Value(), misses.Value()
	if h+m < 3*150 {
		t.Fatalf("observer lost lookups: hits+misses = %d, want >= %d", h+m, 3*150)
	}
	st := eng.CacheStats()
	if st.Hits+st.Misses > h+m {
		t.Fatalf("cache stats (%d lookups) exceed observer totals (%d)", st.Hits+st.Misses, h+m)
	}
}

func TestCachePurge(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0); err != nil {
		t.Fatal(err)
	}
	eng.PurgeCache()
	st := eng.CacheStats()
	if st.Size != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("after purge: %+v", st)
	}
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("purged entry still resident: %+v", st)
	}
}
