package simstar_test

import (
	"context"
	"testing"

	"repro/simstar"
)

// First query computes (a miss), the identical repeat is served from the
// cache (a hit) — and byte-for-byte equal.
func TestCacheHitMiss(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	first, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Misses != 1 || st.Hits != 0 || st.Size != 1 {
		t.Fatalf("after first query: %+v, want 1 miss, 0 hits, size 1", st)
	}
	second, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	st = eng.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after repeat: %+v, want 1 hit, 1 miss", st)
	}
	for j := range first {
		if first[j] != second[j] {
			t.Fatalf("cached result differs at %d: %g vs %g", j, first[j], second[j])
		}
	}
	// A different node, measure, or parameter set is a different key.
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SingleSource(ctx, simstar.MeasureRWR, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.With(simstar.WithK(2)).SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	st = eng.CacheStats()
	if st.Hits != 1 || st.Misses != 4 || st.Size != 4 {
		t.Fatalf("after distinct keys: %+v, want 1 hit, 4 misses, size 4", st)
	}
}

// Mutating a returned slice must not poison the cache.
func TestCacheReturnsPrivateCopies(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	a, _ := eng.SingleSource(ctx, simstar.MeasureGeometric, 0)
	want := a[0]
	a[0] = -1
	b, _ := eng.SingleSource(ctx, simstar.MeasureGeometric, 0)
	if b[0] != want {
		t.Fatalf("cache served a mutated vector: got %g, want %g", b[0], want)
	}
	b[0] = -2
	c, _ := eng.SingleSource(ctx, simstar.MeasureGeometric, 0)
	if c[0] != want {
		t.Fatalf("cache hit returned a shared slice: got %g, want %g", c[0], want)
	}
}

// The cache is size-bounded: old entries are evicted LRU-first.
func TestCacheEviction(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5), simstar.WithCacheSize(2))
	for q := 0; q < 3; q++ {
		if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, q); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.CacheStats()
	if st.Size != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts into capacity 2: %+v", st)
	}
	// Node 0 was evicted; nodes 1 and 2 are resident.
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheStats().Hits; got != 1 {
		t.Fatalf("resident entry was not a hit: %+v", eng.CacheStats())
	}
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0); err != nil {
		t.Fatal(err)
	}
	st = eng.CacheStats()
	if st.Hits != 1 || st.Evictions != 2 {
		t.Fatalf("evicted entry was served as a hit: %+v", st)
	}
}

// WithCacheSize(-1) disables the cache entirely.
func TestCacheDisabled(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5), simstar.WithCacheSize(-1))
	for i := 0; i < 3; i++ {
		if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.CacheStats(); st != (simstar.CacheStats{}) {
		t.Fatalf("disabled cache reports activity: %+v", st)
	}
}

// Engines derived with With share the cache, so a With(K=2) answer warms the
// cache for any other engine view asking the same question.
func TestCacheSharedAcrossWith(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	if _, err := eng.With(simstar.WithK(2)).SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.With(simstar.WithK(2)).SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("With-derived engines do not share the cache: %+v", st)
	}
}

// Worker count and cache capacity are serving knobs: they must not split the
// cache key space.
func TestCacheKeyIgnoresServingKnobs(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.With(simstar.WithWorkers(3)).SingleSource(ctx, simstar.MeasureGeometric, 1); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits != 1 {
		t.Fatalf("WithWorkers changed the cache key: %+v", st)
	}
}

// namedConstant is constantMeasure under a registrable name, so the
// registry conformance sweep (which asserts Name() matches the key) stays
// happy with test registrations from this file.
type namedConstant struct {
	constantMeasure
	name string
}

func (m namedConstant) Name() string { return m.name }

// Re-registering a measure name must invalidate cached results for it: the
// registry generation is part of the key.
func TestCacheInvalidatedByRegistryOverride(t *testing.T) {
	const name = "test-cache-gen"
	simstar.Register(name, func(opts ...simstar.Option) simstar.Measure {
		return namedConstant{name: name}
	})
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g)
	if _, err := eng.SingleSource(ctx, name, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SingleSource(ctx, name, 0); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits != 1 {
		t.Fatalf("warm-up did not hit: %+v", st)
	}
	simstar.Register(name, func(opts ...simstar.Option) simstar.Measure {
		return namedConstant{name: name}
	})
	if _, err := eng.SingleSource(ctx, name, 0); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("re-registration served a stale cache entry: %+v", st)
	}
}

// PurgeCache empties the cache and resets the counters.
func TestCachePurge(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(5))
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0); err != nil {
		t.Fatal(err)
	}
	eng.PurgeCache()
	st := eng.CacheStats()
	if st.Size != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("after purge: %+v", st)
	}
	if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 0); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("purged entry still resident: %+v", st)
	}
}
