//go:build !race

package simstar_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
