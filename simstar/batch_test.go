package simstar_test

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/simstar"
)

// The batch path must be a pure performance construct: for every registered
// measure, MultiSource answers exactly what per-query SingleSource answers.
// The cache is disabled so the comparison pits the blocked kernels against
// a genuine per-query recomputation, not against their own cached output.
func TestMultiSourceMatchesSingleSource(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(4), simstar.WithCacheSize(-1))
	var queries []simstar.Query
	for _, name := range simstar.Names() {
		for q := 0; q < g.N(); q += 2 {
			queries = append(queries, simstar.Query{Measure: name, Node: q})
		}
	}
	results := eng.MultiSource(ctx, queries)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		q := queries[i]
		if r.Err != nil {
			t.Fatalf("query %d (%s, node %d): %v", i, q.Measure, q.Node, r.Err)
		}
		want, err := eng.SingleSource(ctx, q.Measure, q.Node)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if d := math.Abs(r.Scores[j] - want[j]); d > 1e-12 {
				t.Fatalf("query %d (%s, node %d): scores[%d] differs by %g", i, q.Measure, q.Node, j, d)
			}
		}
	}
}

// BatchTopK must agree with Engine.TopK query by query, including the
// exclusion list and the K boundary cases.
func TestBatchTopKMatchesTopK(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithK(6))
	queries := []simstar.Query{
		{Measure: simstar.MeasureGeometric, Node: 0, K: 3},
		{Measure: simstar.MeasureRWR, Node: 1, K: 2, Exclude: []int{0}},
		{Measure: simstar.MeasureExponential, Node: 2, K: 0},        // boundary: empty
		{Measure: simstar.MeasureGeometric, Node: 3, K: 10 * g.N()}, // boundary: everything
	}
	results := eng.BatchTopK(ctx, queries)
	for i, r := range results {
		q := queries[i]
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		want, err := eng.TopK(ctx, q.Measure, q.Node, q.K, q.Exclude...)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Top) != len(want) {
			t.Fatalf("query %d: %d ranked, want %d", i, len(r.Top), len(want))
		}
		for j := range want {
			if r.Top[j] != want[j] {
				t.Fatalf("query %d: Top[%d] = %+v, want %+v", i, j, r.Top[j], want[j])
			}
		}
	}
	if len(results[2].Top) != 0 {
		t.Fatalf("K=0 query returned %d entries, want 0", len(results[2].Top))
	}
	if len(results[3].Top) != g.N()-1 {
		t.Fatalf("oversized-K query returned %d entries, want all %d candidates", len(results[3].Top), g.N()-1)
	}
}

// Per-query Opts must behave exactly like Engine.With for that query alone.
func TestMultiSourcePerQueryOverrides(t *testing.T) {
	g := toyGraph(t)
	ctx := context.Background()
	eng := simstar.NewEngine(g, simstar.WithC(0.6), simstar.WithK(8))
	queries := []simstar.Query{
		{Measure: simstar.MeasureGeometric, Node: 1},
		{Measure: simstar.MeasureGeometric, Node: 1, Opts: []simstar.Option{simstar.WithK(2)}},
	}
	results := eng.MultiSource(ctx, queries)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
	}
	wantDefault, err := eng.SingleSource(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantOverride, err := eng.With(simstar.WithK(2)).SingleSource(ctx, simstar.MeasureGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for j := range wantDefault {
		if results[0].Scores[j] != wantDefault[j] {
			t.Fatalf("default query: scores[%d] = %g, want %g", j, results[0].Scores[j], wantDefault[j])
		}
		if results[1].Scores[j] != wantOverride[j] {
			t.Fatalf("override query: scores[%d] = %g, want %g", j, results[1].Scores[j], wantOverride[j])
		}
		if wantDefault[j] != wantOverride[j] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("K=8 and K=2 gave identical vectors; the override was not applied")
	}
}

// One bad query must fail alone, not take the batch down with it.
func TestMultiSourcePerQueryErrors(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g, simstar.WithK(4))
	results := eng.MultiSource(context.Background(), []simstar.Query{
		{Measure: simstar.MeasureGeometric, Node: 0},
		{Measure: "no-such-measure", Node: 0},
		{Measure: simstar.MeasureGeometric, Node: g.N() + 5},
		{Measure: simstar.MeasureRWR, Node: 2},
	})
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("good queries failed: %v, %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil {
		t.Fatal("unknown measure must error")
	}
	if results[2].Err == nil {
		t.Fatal("out-of-range node must error")
	}
	if results[1].Scores != nil || results[2].Scores != nil {
		t.Fatal("failed queries must not carry scores")
	}
}

// A cancelled context reaches every query: the running ones abort in their
// kernels, the undispatched ones are answered with ctx's error directly.
func TestMultiSourceCancellation(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g, simstar.WithK(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := make([]simstar.Query, 32)
	for i := range queries {
		queries[i] = simstar.Query{Measure: simstar.MeasureGeometric, Node: i % g.N()}
	}
	for _, results := range [][]simstar.Result{
		eng.MultiSource(ctx, queries),
		eng.BatchTopK(ctx, queries),
	} {
		if len(results) != len(queries) {
			t.Fatalf("got %d results for %d queries", len(results), len(queries))
		}
		for i, r := range results {
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("result %d: err = %v, want context.Canceled", i, r.Err)
			}
		}
	}
}

// countingMeasure counts SingleSource invocations — the probe for the
// duplicates-compute-once contract on the fan-out path.
type countingMeasure struct {
	constantMeasure
	name  string
	calls *int64
}

func (m countingMeasure) Name() string { return m.name }

func (m countingMeasure) SingleSource(ctx context.Context, g *simstar.Graph, q int) ([]float64, error) {
	atomic.AddInt64(m.calls, 1)
	return m.constantMeasure.SingleSource(ctx, g, q)
}

// Duplicate queries inside one batch must compute once even on the worker
// fan-out path (non-blockable measure) with the cache disabled.
func TestMultiSourceDeduplicatesFanOut(t *testing.T) {
	const name = "test-counting"
	var calls int64
	simstar.Register(name, func(opts ...simstar.Option) simstar.Measure {
		return countingMeasure{name: name, calls: &calls}
	})
	g := toyGraph(t)
	eng := simstar.NewEngine(g, simstar.WithCacheSize(-1))
	queries := []simstar.Query{
		{Measure: name, Node: 1},
		{Measure: name, Node: 1},
		{Measure: name, Node: 1},
		{Measure: name, Node: 2},
	}
	results := eng.MultiSource(context.Background(), queries)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if len(r.Scores) != g.N() {
			t.Fatalf("query %d: %d scores", i, len(r.Scores))
		}
	}
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Fatalf("measure computed %d times for 2 distinct queries, want 2", got)
	}
	// The shared results must not alias: mutating one leaves the others.
	results[0].Scores[0] = -99
	if results[1].Scores[0] == -99 {
		t.Fatal("duplicate results share one backing slice")
	}
}

// The fan-out must respect WithWorkers(1) and still cover the whole batch.
func TestMultiSourceSingleWorker(t *testing.T) {
	g := toyGraph(t)
	eng := simstar.NewEngine(g, simstar.WithK(4), simstar.WithWorkers(1))
	queries := make([]simstar.Query, g.N())
	for i := range queries {
		queries[i] = simstar.Query{Measure: simstar.MeasureRWR, Node: i}
	}
	for i, r := range eng.MultiSource(context.Background(), queries) {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if len(r.Scores) != g.N() {
			t.Fatalf("query %d: %d scores, want %d", i, len(r.Scores), g.N())
		}
	}
}
