package simstar_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/simstar"
)

// engineBenchGraph builds the 100k-node benchmark graph: every node links to
// deg mostly-local neighbours (the community structure of social and citation
// graphs), and the node ids are then scrambled by a fixed random permutation,
// so the locality is real but invisible in the arrival order — the regime a
// crawl ordered by URL hash or insertion time produces, and the one
// WithRelabeling exists to fix.
func engineBenchGraph(n, deg int) *simstar.Graph {
	rng := rand.New(rand.NewSource(271828))
	shuf := rng.Perm(n)
	edges := make([][2]int, 0, n*deg)
	for u := 0; u < n; u++ {
		for d := 0; d < deg; d++ {
			v := u + 1 + rng.Intn(64)
			if v >= n {
				v -= n
			}
			edges = append(edges, [2]int{shuf[u], shuf[v]})
		}
	}
	return graph.FromEdges(n, edges)
}

// benchMiner keeps NewEngine's eager biclique mining out of the benchmark
// setup cost; the single-source paths under test never touch the compression.
var benchMiner = simstar.WithMiner(simstar.MinerOptions{
	MinSources: 64, MinTargets: 64, DisablePairMining: true,
})

// BenchmarkEngineSingleSource100k is the headline serving-path number: exact
// single-source SimRank* through the engine on a 100k-node degree-3 graph,
// result cache disabled so every iteration pays the kernel. The sub-benchmarks
// compare the natural (scrambled) layout against WithRelabeling; BENCH_5.json
// tracks the numbers across PRs.
func BenchmarkEngineSingleSource100k(b *testing.B) {
	g := engineBenchGraph(100_000, 3)
	ctx := context.Background()
	run := func(b *testing.B, eng *simstar.Engine) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SingleSource(ctx, simstar.MeasureGeometric, (i*7919)%g.N()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("exact", func(b *testing.B) {
		run(b, simstar.NewEngine(g, simstar.WithCacheSize(-1), benchMiner))
	})
	b.Run("exact-rcm", func(b *testing.B) {
		run(b, simstar.NewEngine(g, simstar.WithCacheSize(-1), benchMiner,
			simstar.WithRelabeling(simstar.RelabelRCM)))
	})
	b.Run("exact-degree", func(b *testing.B) {
		run(b, simstar.NewEngine(g, simstar.WithCacheSize(-1), benchMiner,
			simstar.WithRelabeling(simstar.RelabelDegree)))
	})
	// The zero-allocation serving loop: pooled kernel workspaces plus a
	// caller-owned result buffer. allocs/op must report 0.
	b.Run("exact-rcm-into", func(b *testing.B) {
		eng := simstar.NewEngine(g, simstar.WithCacheSize(-1), benchMiner,
			simstar.WithRelabeling(simstar.RelabelRCM))
		buf := make([]float64, g.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SingleSourceInto(ctx, simstar.MeasureGeometric, (i*7919)%g.N(), buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-rwr-rcm", func(b *testing.B) {
		eng := simstar.NewEngine(g, simstar.WithCacheSize(-1), benchMiner,
			simstar.WithRelabeling(simstar.RelabelRCM))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SingleSource(ctx, simstar.MeasureRWR, (i*7919)%g.N()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
